// Debugging a product-matching blocker on Walmart-Amazon-style electronics
// tables — the high-coverage e-commerce scenario from the paper's intro.
//
// The blocker is a realistic rule: keep pairs whose titles share at least
// half their words AND whose prices differ by at most $20. MatchCatcher
// surfaces the matches this kills (brand variants, missing brands, price
// spreads) and reports which injected data problems the surfaced matches
// exhibit — the Table 4 "blocker problems" readout.

#include <iomanip>
#include <iostream>
#include <map>
#include <memory>

#include "blocking/metrics.h"
#include "blocking/rule_blocker.h"
#include "core/match_catcher.h"
#include "datagen/generator.h"
#include "explain/blame.h"
#include "explain/summary.h"

int main() {
  // Scaled-down Walmart-Amazon (defaults keep this example under a minute).
  mc::datagen::GeneratedDataset dataset = mc::datagen::GenerateWalmartAmazon(
      mc::datagen::ScaleDims(mc::datagen::kDimsWalmartAmazon, 0.25));
  const mc::Table& a = dataset.table_a;
  const mc::Table& b = dataset.table_b;
  const mc::Schema& schema = a.schema();
  std::cout << "electronics: |A| = " << a.num_rows() << ", |B| = "
            << b.num_rows() << ", gold matches = " << dataset.gold.size()
            << "\n";

  mc::ConjunctiveRule rule(
      {std::make_shared<mc::SetSimilarityPredicate>(
           schema.RequireIndexOf("title"), mc::TokenizerSpec::Word(),
           mc::SetMeasure::kJaccard, 0.5),
       std::make_shared<mc::NumericDiffPredicate>(
           schema.RequireIndexOf("price"), 20.0)});
  mc::RuleBlocker blocker({rule});
  mc::CandidateSet c = blocker.Run(a, b);
  mc::BlockerMetrics metrics =
      mc::EvaluateBlocking(c, dataset.gold, a.num_rows(), b.num_rows());
  std::cout << "blocker: " << blocker.Description(schema) << "\n|C| = "
            << metrics.candidate_count << ", recall = " << std::fixed
            << std::setprecision(1) << metrics.recall * 100
            << "%, killed matches = " << metrics.killed_matches << "\n\n";

  mc::MatchCatcherOptions options;
  options.joint.k = 500;
  mc::Result<mc::DebugSession> session =
      mc::DebugSession::Create(a, b, c, options);
  if (!session.ok()) {
    std::cerr << session.status().ToString() << "\n";
    return 1;
  }
  std::cout << "top-k SSJ module: |E| = " << session->CandidatePairs().size()
            << " candidates in " << std::setprecision(2)
            << session->topk_seconds() << "s over "
            << session->config_tree().size() << " configs\n";

  mc::GoldOracle oracle(&dataset.gold);
  mc::VerifierResult result = session->RunVerification(oracle);
  std::cout << "verifier: " << result.confirmed_matches.size()
            << " killed-off matches confirmed in "
            << result.num_iterations() << " iterations\n\n";

  // Automatic explanation summary (§8 extension): diagnose each surfaced
  // match and aggregate by pervasiveness — no generator ground truth used.
  std::vector<mc::PairId> confirmed(result.confirmed_matches.begin(),
                                    result.confirmed_matches.end());
  std::vector<mc::ProblemGroup> groups =
      session->SummarizeProblems(confirmed);
  std::cout << mc::RenderProblemSummary(a, b, groups) << "\n";

  // Blocker-aware blame for the most pervasive problem's example pair:
  // since we *do* have the blocker here, report exactly which conjuncts
  // rejected it.
  if (!groups.empty()) {
    std::cout << mc::ExplainKill(blocker, a, b, groups.front().example)
              << "\n";
  }

  // Cross-check against the generator's injected ground truth.
  std::map<std::string, size_t> injected;
  for (mc::PairId pair : result.confirmed_matches) {
    auto it = dataset.problem_tags.find(pair);
    if (it == dataset.problem_tags.end()) continue;
    for (const std::string& tag : it->second) ++injected[tag];
  }
  std::cout << "injected ground truth for the same matches:\n";
  for (const auto& [tag, count] : injected) {
    std::cout << "  " << std::left << std::setw(28) << tag << count
              << " matches\n";
  }
  std::cout << "\nfix suggestions: add a brand-variant rule, handle missing "
               "brands, widen or drop the price conjunct.\n";
  return 0;
}
