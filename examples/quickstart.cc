// Quickstart: debug a blocker in ~30 lines.
//
// We match two small person tables with a city-equality blocker, then ask
// MatchCatcher which plausible matches the blocker killed off.

#include <iostream>

#include "blocking/standard_blockers.h"
#include "core/match_catcher.h"

int main() {
  mc::Schema schema({{"name", mc::AttributeType::kString},
                     {"city", mc::AttributeType::kString},
                     {"age", mc::AttributeType::kString}});
  mc::Table a(schema), b(schema);
  a.AddRow({"Dave Smith", "Altanta", "18"});
  a.AddRow({"Daniel Smith", "LA", "18"});
  a.AddRow({"Joe Welson", "New York", "25"});
  a.AddRow({"Charles Williams", "Chicago", "45"});
  a.AddRow({"Charlie William", "Atlanta", "28"});
  b.AddRow({"David Smith", "Atlanta", "18"});
  b.AddRow({"Joe Wilson", "NY", "25"});
  b.AddRow({"Daniel W. Smith", "LA", "30"});
  b.AddRow({"Charles Williams", "Chicago", "45"});

  // The blocker under debugging: keep pairs only when cities are equal.
  auto blocker = mc::HashBlocker::AttributeEquivalence(1);
  mc::CandidateSet c = blocker->Run(a, b);
  std::cout << "blocker: " << blocker->Description(schema) << "\n"
            << "surviving pairs |C| = " << c.size() << "\n\n";

  // MatchCatcher sees only A, B, and C — never the blocker itself.
  mc::MatchCatcherOptions options;
  options.joint.k = 10;
  mc::Result<mc::DebugSession> session =
      mc::DebugSession::Create(a, b, c, options);
  if (!session.ok()) {
    std::cerr << "MatchCatcher failed: " << session.status().ToString()
              << "\n";
    return 1;
  }

  std::cout << "plausible killed-off matches, best first:\n";
  mc::MatchVerifier verifier = session->MakeVerifier();
  for (mc::PairId pair : verifier.NextBatch()) {
    std::cout << "\n" << session->ExplainPair(pair);
  }
  std::cout << "\nLabel the true matches above, fix the blocker (e.g. add a "
               "last-name rule),\nand run MatchCatcher again.\n";
  return 0;
}
