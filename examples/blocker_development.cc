// The paper's Example 1.1 workflow at realistic scale: start with a naive
// blocker, use MatchCatcher to find what it kills, revise, repeat.
//
// Dataset: generated Fodors-Zagats-style restaurant tables (533 x 331, 112
// gold matches) with the misspellings, abbreviations, and "city sprinkled in
// name" problems that motivate the paper.
//
//   Q1:  a.city = b.city                 (attribute equivalence)
//   Q2:  Q1  OR  lastword(name) equal    (add a hash rule)
//   Q3:  Q1  OR  ed(lastword(name)) <= 2 (relax to edit distance)

#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "blocking/metrics.h"
#include "blocking/standard_blockers.h"
#include "core/match_catcher.h"
#include "datagen/generator.h"
#include "explain/repair.h"

namespace {

void DebugRound(const mc::datagen::GeneratedDataset& dataset,
                const std::shared_ptr<const mc::Blocker>& blocker,
                const char* label) {
  const mc::Table& a = dataset.table_a;
  const mc::Table& b = dataset.table_b;
  mc::CandidateSet c = blocker->Run(a, b);
  mc::BlockerMetrics metrics =
      mc::EvaluateBlocking(c, dataset.gold, a.num_rows(), b.num_rows());

  std::cout << "\n=== " << label << ": " << blocker->Description(a.schema())
            << "\n    |C| = " << metrics.candidate_count
            << ", recall = " << std::fixed << std::setprecision(1)
            << metrics.recall * 100 << "%, killed matches = "
            << metrics.killed_matches << "\n";

  mc::MatchCatcherOptions options;
  options.joint.k = 200;
  mc::Result<mc::DebugSession> session =
      mc::DebugSession::Create(a, b, c, options);
  if (!session.ok()) {
    std::cerr << "debug failed: " << session.status().ToString() << "\n";
    return;
  }

  // Simulate the user working through the first two iterations.
  mc::GoldOracle oracle(&dataset.gold);
  mc::MatchVerifier verifier = session->MakeVerifier();
  mc::VerifierResult result = verifier.RunIterations(oracle, 2);
  std::cout << "    MatchCatcher: " << result.confirmed_matches.size()
            << " true killed-off matches surfaced in 2 iterations ("
            << result.pairs_shown << " pairs examined)\n";

  int shown = 0;
  for (mc::PairId pair : result.confirmed_matches) {
    if (shown++ == 2) break;
    std::cout << "\n" << session->ExplainPair(pair);
  }

  // What the user would do next, suggested automatically.
  if (!result.confirmed_matches.empty()) {
    std::vector<mc::PairId> confirmed(result.confirmed_matches.begin(),
                                      result.confirmed_matches.end());
    std::cout << "\n"
              << mc::RenderRepairs(
                     a.schema(),
                     mc::SuggestRepairs(a, b, confirmed));
  }
}

}  // namespace

int main() {
  mc::datagen::GeneratedDataset dataset = mc::datagen::GenerateFodorsZagats();
  const mc::Schema& schema = dataset.table_a.schema();
  size_t name_col = schema.RequireIndexOf("name");
  size_t city_col = schema.RequireIndexOf("city");
  std::cout << "restaurants: |A| = " << dataset.table_a.num_rows()
            << ", |B| = " << dataset.table_b.num_rows()
            << ", gold matches = " << dataset.gold.size() << "\n";

  auto q1 = mc::HashBlocker::AttributeEquivalence(city_col);
  DebugRound(dataset, q1, "Q1");

  auto q2 = std::make_shared<mc::UnionBlocker>(
      std::vector<std::shared_ptr<const mc::Blocker>>{
          q1, std::make_shared<mc::HashBlocker>(mc::KeyFunction(
                  mc::KeyFunction::Kind::kLastWord, name_col))});
  DebugRound(dataset, q2, "Q2");

  auto q3 = std::make_shared<mc::UnionBlocker>(
      std::vector<std::shared_ptr<const mc::Blocker>>{
          q1, std::make_shared<mc::EditDistanceBlocker>(
                  mc::KeyFunction(mc::KeyFunction::Kind::kLastWord, name_col),
                  2)});
  DebugRound(dataset, q3, "Q3");

  std::cout << "\nEach revision raises recall; when MatchCatcher stops "
               "surfacing true matches,\nthe blocker is ready.\n";
  return 0;
}
