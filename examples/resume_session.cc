// Debugging across sittings: label a couple of iterations today, save the
// session, resume tomorrow, finish, and get repair suggestions.
//
// Demonstrates core/session_io.h (top-k list + label persistence) and
// explain/repair.h (problem -> blocker revision suggestions).

#include <cstdio>
#include <iostream>

#include "blocking/metrics.h"
#include "blocking/standard_blockers.h"
#include "core/match_catcher.h"
#include "core/session_io.h"
#include "datagen/generator.h"
#include "explain/repair.h"

int main() {
  mc::datagen::GeneratedDataset dataset = mc::datagen::GenerateFodorsZagats();
  const mc::Table& a = dataset.table_a;
  const mc::Table& b = dataset.table_b;
  auto blocker = mc::HashBlocker::AttributeEquivalence(
      a.schema().RequireIndexOf("city"));
  mc::CandidateSet c = blocker->Run(a, b);
  std::cout << "blocker: " << blocker->Description(a.schema()) << " (|C| = "
            << c.size() << ")\n";

  mc::MatchCatcherOptions options;
  options.joint.k = 300;
  mc::Result<mc::DebugSession> session =
      mc::DebugSession::Create(a, b, c, options);
  if (!session.ok()) {
    std::cerr << session.status().ToString() << "\n";
    return 1;
  }
  mc::GoldOracle oracle(&dataset.gold);

  const std::string lists_path = "/tmp/mc_session_lists.mc";
  const std::string labels_path = "/tmp/mc_session_labels.csv";

  // --- Sitting 1: two iterations, then save and stop. -----------------
  {
    mc::MatchVerifier verifier = session->MakeVerifier();
    mc::VerifierResult partial = verifier.RunIterations(oracle, 2);
    std::cout << "sitting 1: " << partial.confirmed_matches.size()
              << " matches confirmed in 2 iterations; saving session\n";
    mc::Status saved = mc::SaveTopKLists(session->TopKLists(), lists_path);
    if (saved.ok()) {
      saved = mc::SaveLabeledPairs(verifier.LabeledPairs(), labels_path);
    }
    if (!saved.ok()) {
      std::cerr << saved.ToString() << "\n";
      return 1;
    }
  }

  // --- Sitting 2: restore and run to the natural stop. ----------------
  mc::Result<std::vector<std::vector<mc::ScoredPair>>> lists =
      mc::LoadTopKLists(lists_path);
  mc::Result<std::vector<std::pair<mc::PairId, bool>>> labels =
      mc::LoadLabeledPairs(labels_path);
  if (!lists.ok() || !labels.ok()) {
    std::cerr << "restore failed\n";
    return 1;
  }
  mc::MatchVerifier resumed(*lists, &session->extractor(),
                            mc::MatchCatcherOptions().verifier);
  resumed.PreloadLabels(*labels);
  std::cout << "sitting 2: resumed with " << labels->size() << " labels ("
            << resumed.confirmed_matches().size() << " matches)\n";
  mc::VerifierResult result = resumed.Run(oracle);
  std::cout << "final: " << result.confirmed_matches.size()
            << " killed-off matches after " << result.num_iterations()
            << " more iterations\n\n";

  std::vector<mc::PairId> confirmed(result.confirmed_matches.begin(),
                                    result.confirmed_matches.end());
  std::cout << mc::RenderRepairs(a.schema(),
                                 mc::SuggestRepairs(a, b, confirmed));

  // Apply the suggestions and report the recall change.
  std::vector<std::shared_ptr<const mc::Blocker>> members{blocker};
  for (const mc::RepairSuggestion& suggestion :
       mc::SuggestRepairs(a, b, confirmed)) {
    members.push_back(suggestion.addition);
  }
  mc::UnionBlocker repaired(members);
  mc::BlockerMetrics before = mc::EvaluateBlocking(
      c, dataset.gold, a.num_rows(), b.num_rows());
  mc::BlockerMetrics after = mc::EvaluateBlocking(
      repaired.Run(a, b), dataset.gold, a.num_rows(), b.num_rows());
  std::printf("\nrecall %.1f%% -> %.1f%% after applying the suggestions\n",
              before.recall * 100, after.recall * 100);

  std::remove(lists_path.c_str());
  std::remove(labels_path.c_str());
  return 0;
}
