// Auditing a *learned* blocker (the paper's §6.2 scenario): even a blocker
// learned from a labeled sample by a state-of-the-art learner can silently
// kill matches the sample never showed it. MatchCatcher surfaces them.
//
// Flow: generate paper-style tables -> sample pairs and label them from
// gold (standing in for crowdsourced labels) -> learn a rule blocker ->
// audit the learned blocker with MatchCatcher.

#include <iomanip>
#include <iostream>
#include <map>
#include <vector>

#include "blocking/blocker_learner.h"
#include "blocking/metrics.h"
#include "core/match_catcher.h"
#include "datagen/generator.h"
#include "util/random.h"

int main() {
  mc::datagen::GeneratedDataset dataset = mc::datagen::GeneratePapersLarge(
      mc::datagen::ScaleDims(mc::datagen::kDimsPapers, 0.01));
  const mc::Table& a = dataset.table_a;
  const mc::Table& b = dataset.table_b;
  std::cout << "papers: |A| = " << a.num_rows() << ", |B| = " << b.num_rows()
            << ", gold matches = " << dataset.gold.size() << "\n";

  // Build a labeled sample: 300 gold positives + 900 random negatives
  // (crowdsourcing stand-in).
  mc::Rng rng(2024);
  std::vector<std::pair<mc::PairId, bool>> sample;
  size_t positives = 0;
  for (mc::PairId pair : dataset.gold) {
    if (positives == 300) break;
    sample.emplace_back(pair, true);
    ++positives;
  }
  while (sample.size() < positives + 900) {
    mc::PairId pair = mc::MakePairId(
        static_cast<mc::RowId>(rng.NextBelow(a.num_rows())),
        static_cast<mc::RowId>(rng.NextBelow(b.num_rows())));
    if (dataset.gold.Contains(pair)) continue;
    sample.emplace_back(pair, false);
  }

  // Cap the per-rule negative rate tightly: a production blocker must be
  // selective (a rule keeping 10%+ of A x B defeats blocking's purpose).
  mc::BlockerLearnerOptions learner_options;
  learner_options.max_rule_negative_rate = 0.01;
  mc::Result<mc::LearnedBlocker> learned =
      mc::LearnBlocker(a, b, sample, learner_options);
  if (!learned.ok()) {
    std::cerr << "learning failed: " << learned.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nlearned blocker: "
            << learned->blocker->Description(a.schema()) << "\n"
            << "sample recall = " << std::fixed << std::setprecision(1)
            << learned->sample_recall * 100 << "%, sample negative rate = "
            << learned->sample_negative_rate * 100 << "%\n";

  mc::CandidateSet c = learned->blocker->Run(a, b);
  mc::BlockerMetrics metrics =
      mc::EvaluateBlocking(c, dataset.gold, a.num_rows(), b.num_rows());
  std::cout << "on the full tables: |C| = " << metrics.candidate_count
            << ", TRUE recall = " << metrics.recall * 100
            << "% (killed matches = " << metrics.killed_matches << ")\n"
            << "-> the sample hid " << metrics.killed_matches
            << " problems; now audit with MatchCatcher.\n\n";

  mc::MatchCatcherOptions options;
  options.joint.k = 1000;
  mc::Result<mc::DebugSession> session =
      mc::DebugSession::Create(a, b, c, options);
  if (!session.ok()) {
    std::cerr << session.status().ToString() << "\n";
    return 1;
  }

  // The §6.2 protocol: run 5 verifier iterations, count matches found.
  mc::GoldOracle oracle(&dataset.gold);
  mc::MatchVerifier verifier = session->MakeVerifier();
  mc::VerifierResult result = verifier.RunIterations(oracle, 5);
  std::cout << "after 5 iterations MatchCatcher surfaced "
            << result.confirmed_matches.size()
            << " true matches the learned blocker killed.\n\nwhy:\n";

  std::map<std::string, size_t> problems;
  for (mc::PairId pair : result.confirmed_matches) {
    auto it = dataset.problem_tags.find(pair);
    if (it == dataset.problem_tags.end()) continue;
    for (const std::string& tag : it->second) ++problems[tag];
  }
  for (const auto& [tag, count] : problems) {
    std::cout << "  " << std::left << std::setw(26) << tag << count
              << " matches\n";
  }
  return 0;
}
