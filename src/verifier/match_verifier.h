#ifndef MATCHCATCHER_VERIFIER_MATCH_VERIFIER_H_
#define MATCHCATCHER_VERIFIER_MATCH_VERIFIER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blocking/candidate_set.h"
#include "learn/features.h"
#include "learn/random_forest.h"
#include "rank/rank_aggregation.h"
#include "ssj/topk_list.h"
#include "util/thread_pool.h"
#include "verifier/user_oracle.h"

namespace mc {

/// Tuning knobs for the Match Verifier (paper §5).
struct VerifierOptions {
  /// n: pairs shown per iteration (paper: 20).
  size_t pairs_per_iteration = 20;
  /// Hybrid active-learning iterations before pure online learning
  /// (paper: 3). The sensitivity bench sweeps this.
  size_t active_learning_iterations = 3;
  /// Natural stop: this many consecutive iterations with no new match.
  size_t stop_after_empty_iterations = 2;
  /// Hard ceiling on iterations (the synthetic-user experiments run to the
  /// natural stop well before this).
  size_t max_iterations = 500;
  /// false = weighted-median-rank only (the §6.5 learning ablation
  /// baseline); true = MedRank bootstrap + active/online random forest.
  bool use_learning = true;
  /// Of each active-learning batch, 1/controversial_fraction_denominator of
  /// the pairs are the learner's most controversial picks (paper: n/4).
  size_t controversial_fraction_denominator = 4;
  /// Worker threads for the batched re-ranking (feature-matrix build and
  /// fused forest scoring of the unshown pool); 1 = sequential. Batches,
  /// confirmed matches, and traces are bit-identical for every value — the
  /// parallel stages write disjoint rows/outputs and the merge is
  /// deterministic (see tests/verifier_test.cc).
  size_t num_threads = 1;
  uint64_t seed = 7;
  ForestParams forest;
};

/// What happened in one verifier iteration.
struct IterationTrace {
  /// "medrank", "wmr", "active", or "online".
  std::string phase;
  std::vector<PairId> shown;
  size_t new_matches = 0;
};

/// Outcome of a full verifier run.
struct VerifierResult {
  CandidateSet confirmed_matches;
  std::vector<IterationTrace> iterations;
  size_t pairs_shown = 0;

  size_t num_iterations() const { return iterations.size(); }
};

/// The Match Verifier: aggregates per-config top-k lists, iteratively shows
/// n pairs to the user, and reranks from the labels with WMR or
/// active/online learning until the natural stopping point.
///
/// Protocol (paper §5): MedRank bootstrap until at least one match and one
/// non-match are labeled; then `active_learning_iterations` hybrid rounds
/// (n/4 most controversial + 3n/4 highest-confidence pairs); then pure
/// online learning (top-n confidence, retraining on every batch); stop after
/// `stop_after_empty_iterations` consecutive empty iterations.
class MatchVerifier {
 public:
  /// `lists` are the per-config top-k lists (sorted by score descending);
  /// `extractor` must outlive the verifier.
  MatchVerifier(std::vector<std::vector<ScoredPair>> lists,
                const PairFeatureExtractor* extractor,
                const VerifierOptions& options);

  /// Candidate set E (union of the lists).
  const std::vector<PairId>& candidates() const {
    return aggregator_.items();
  }

  /// Next batch of pairs to show, empty when the verifier is done.
  std::vector<PairId> NextBatch();

  /// Records the user's labels for the pairs of the last NextBatch().
  void SubmitLabels(const std::vector<std::pair<PairId, bool>>& labels);

  /// Restores labels from a previous sitting (see core/session_io.h):
  /// marks the pairs as shown and labeled without consuming an iteration,
  /// so the next batch continues where the saved session stopped. Must be
  /// called before the first NextBatch().
  void PreloadLabels(const std::vector<std::pair<PairId, bool>>& labels);

  /// Every label accumulated so far, in labeling order — the payload for
  /// SaveLabeledPairs.
  std::vector<std::pair<PairId, bool>> LabeledPairs() const;

  /// True once the stopping condition has been reached.
  bool ShouldStop() const;

  const CandidateSet& confirmed_matches() const { return confirmed_; }
  const std::vector<IterationTrace>& iterations() const {
    return iterations_;
  }

  /// Runs the full loop against `oracle` until the natural stop.
  VerifierResult Run(UserOracle& oracle);

  /// Convenience: runs exactly `iterations` iterations (or to exhaustion),
  /// ignoring the natural stop — the Table 4 "first three iterations"
  /// protocol.
  VerifierResult RunIterations(UserOracle& oracle, size_t iterations);

 private:
  /// Shows one batch to `oracle` and records its labels; false when E is
  /// exhausted.
  bool RunOneIteration(UserOracle& oracle);
  VerifierResult MakeResult() const;

  enum class Phase { kBootstrap, kActive, kOnline, kWmrOnly };

  const FeatureVector& Features(PairId pair);
  void TrainForest();
  std::vector<PairId> TakeUnshownPrefix(const std::vector<PairId>& order,
                                        size_t count) const;

  /// The batched re-ranking core: the unshown pairs (aggregator order) with
  /// their fused forest predictions, computed from a feature matrix built
  /// once per iteration (cached rows copied, missing rows extracted in
  /// parallel) and scored with RandomForest::PredictBatch over
  /// options_.num_threads workers.
  struct UnshownScores {
    std::vector<PairId> pairs;
    std::vector<double> confidence;   // By index into `pairs`.
    std::vector<double> controversy;  // |confidence - 0.5|.
  };
  UnshownScores ScoreUnshown();

  /// The shared worker pool for the batched re-ranking, created on first
  /// use; nullptr while options_.num_threads <= 1. One pool serves every
  /// iteration — re-spawning workers per batch would dominate small pools.
  ThreadPool* WorkerPool();

  std::vector<PairId> SelectActiveBatch();
  std::vector<PairId> SelectOnlineBatch();
  bool HasBothClasses() const;

  VerifierOptions options_;
  RankAggregator aggregator_;
  WmrWeights wmr_weights_;
  const PairFeatureExtractor* extractor_;

  std::unordered_map<PairId, FeatureVector, PairIdHash> feature_cache_;
  std::unordered_set<PairId, PairIdHash> shown_;
  std::vector<PairId> labeled_pairs_;  // In labeling order.
  std::unordered_map<PairId, bool, PairIdHash> labels_;
  CandidateSet confirmed_;

  std::vector<PairId> medrank_order_;
  std::unique_ptr<ThreadPool> pool_;  // See WorkerPool().
  RandomForest forest_;
  size_t active_iterations_done_ = 0;
  size_t consecutive_empty_ = 0;
  size_t iteration_count_ = 0;
  std::vector<IterationTrace> iterations_;
  std::vector<PairId> pending_batch_;
  std::string pending_phase_;
};

}  // namespace mc

#endif  // MATCHCATCHER_VERIFIER_MATCH_VERIFIER_H_
