#ifndef MATCHCATCHER_VERIFIER_USER_ORACLE_H_
#define MATCHCATCHER_VERIFIER_USER_ORACLE_H_

#include "blocking/candidate_set.h"
#include "blocking/pair.h"

namespace mc {

/// The user in the Match Verifier loop: labels a presented pair as a true
/// match or not. Production use wires this to a UI; experiments use
/// GoldOracle, the paper's "synthetic users, whom we assume can identify the
/// true matches accurately" (§6.1).
class UserOracle {
 public:
  virtual ~UserOracle() = default;
  virtual bool IsMatch(PairId pair) = 0;
};

/// Labels from a gold match set.
class GoldOracle : public UserOracle {
 public:
  explicit GoldOracle(const CandidateSet* gold) : gold_(gold) {}

  bool IsMatch(PairId pair) override { return gold_->Contains(pair); }

 private:
  const CandidateSet* gold_;
};

}  // namespace mc

#endif  // MATCHCATCHER_VERIFIER_USER_ORACLE_H_
