#include "verifier/match_verifier.h"

#include <algorithm>

#include "util/check.h"

namespace mc {

MatchVerifier::MatchVerifier(std::vector<std::vector<ScoredPair>> lists,
                             const PairFeatureExtractor* extractor,
                             const VerifierOptions& options)
    : options_(options),
      aggregator_(std::move(lists), options.seed),
      wmr_weights_(aggregator_.num_lists()),
      extractor_(extractor) {
  MC_CHECK(extractor_ != nullptr);
  MC_CHECK_GT(options_.pairs_per_iteration, 0u);
  medrank_order_ = aggregator_.MedRank();
}

const FeatureVector& MatchVerifier::Features(PairId pair) {
  auto it = feature_cache_.find(pair);
  if (it != feature_cache_.end()) return it->second;
  return feature_cache_.emplace(pair, extractor_->Extract(pair))
      .first->second;
}

bool MatchVerifier::HasBothClasses() const {
  bool has_match = false, has_non_match = false;
  for (const auto& [pair, label] : labels_) {
    has_match |= label;
    has_non_match |= !label;
  }
  return has_match && has_non_match;
}

void MatchVerifier::TrainForest() {
  std::vector<FeatureVector> features;
  std::vector<int> labels;
  features.reserve(labeled_pairs_.size());
  labels.reserve(labeled_pairs_.size());
  for (PairId pair : labeled_pairs_) {
    features.push_back(Features(pair));
    labels.push_back(labels_.at(pair) ? 1 : 0);
  }
  ForestParams params = options_.forest;
  // Deterministic but fresh randomness per retraining round.
  params.seed = options_.seed * 1000003ULL + iteration_count_;
  forest_ = RandomForest::Train(features, labels, params);
}

std::vector<PairId> MatchVerifier::TakeUnshownPrefix(
    const std::vector<PairId>& order, size_t count) const {
  std::vector<PairId> batch;
  for (PairId pair : order) {
    if (batch.size() == count) break;
    if (shown_.count(pair) > 0) continue;
    batch.push_back(pair);
  }
  return batch;
}

ThreadPool* MatchVerifier::WorkerPool() {
  if (options_.num_threads <= 1) return nullptr;
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads, "mc-verify");
  }
  return pool_.get();
}

MatchVerifier::UnshownScores MatchVerifier::ScoreUnshown() {
  UnshownScores out;
  for (PairId pair : aggregator_.items()) {
    if (shown_.count(pair) > 0) continue;
    out.pairs.push_back(pair);
  }
  const size_t nf = extractor_->num_features();
  // Build the iteration's feature matrix once (SoA for the forest): cached
  // rows are copied, the rest extracted in parallel and then cached for the
  // next retraining round. Row order = aggregator order, so the matrix (and
  // everything derived from it) is independent of thread count.
  std::vector<double> matrix(out.pairs.size() * nf);
  std::vector<PairId> missing;
  std::vector<size_t> missing_rows;
  for (size_t i = 0; i < out.pairs.size(); ++i) {
    auto it = feature_cache_.find(out.pairs[i]);
    if (it != feature_cache_.end()) {
      std::copy(it->second.begin(), it->second.end(),
                matrix.data() + i * nf);
    } else {
      missing.push_back(out.pairs[i]);
      missing_rows.push_back(i);
    }
  }
  if (!missing.empty()) {
    std::vector<double> fresh(missing.size() * nf);
    extractor_->ExtractBatch(missing.data(), missing.size(), WorkerPool(),
                             fresh.data());
    for (size_t k = 0; k < missing.size(); ++k) {
      const double* row = fresh.data() + k * nf;
      double* dst = matrix.data() + missing_rows[k] * nf;
      for (size_t c = 0; c < nf; ++c) dst[c] = row[c];
      feature_cache_.emplace(missing[k], FeatureVector(row, row + nf));
    }
  }
  out.confidence.resize(out.pairs.size());
  out.controversy.resize(out.pairs.size());
  forest_.PredictBatch(matrix.data(), out.pairs.size(), nf, WorkerPool(),
                       out.confidence.data(), out.controversy.data());
  return out;
}

std::vector<PairId> MatchVerifier::SelectActiveBatch() {
  // n/4 most controversial + 3n/4 highest-confidence unshown pairs.
  const size_t n = options_.pairs_per_iteration;
  const size_t controversial_count =
      n / std::max<size_t>(1, options_.controversial_fraction_denominator);

  struct Scored {
    PairId pair;
    double controversy;
    double confidence;
  };
  const UnshownScores scores = ScoreUnshown();
  std::vector<Scored> unshown;
  unshown.reserve(scores.pairs.size());
  for (size_t i = 0; i < scores.pairs.size(); ++i) {
    unshown.push_back(Scored{scores.pairs[i], scores.controversy[i],
                             scores.confidence[i]});
  }

  std::vector<PairId> batch;
  std::unordered_set<PairId, PairIdHash> taken;
  std::sort(unshown.begin(), unshown.end(),
            [](const Scored& x, const Scored& y) {
              if (x.controversy != y.controversy) {
                return x.controversy < y.controversy;
              }
              return x.pair < y.pair;
            });
  for (const Scored& entry : unshown) {
    if (batch.size() == controversial_count) break;
    batch.push_back(entry.pair);
    taken.insert(entry.pair);
  }
  std::sort(unshown.begin(), unshown.end(),
            [](const Scored& x, const Scored& y) {
              if (x.confidence != y.confidence) {
                return x.confidence > y.confidence;
              }
              return x.pair < y.pair;
            });
  for (const Scored& entry : unshown) {
    if (batch.size() == n) break;
    if (taken.count(entry.pair) > 0) continue;
    batch.push_back(entry.pair);
  }
  return batch;
}

std::vector<PairId> MatchVerifier::SelectOnlineBatch() {
  struct Scored {
    PairId pair;
    double confidence;
  };
  const UnshownScores scores = ScoreUnshown();
  std::vector<Scored> unshown;
  unshown.reserve(scores.pairs.size());
  for (size_t i = 0; i < scores.pairs.size(); ++i) {
    unshown.push_back(Scored{scores.pairs[i], scores.confidence[i]});
  }
  std::sort(unshown.begin(), unshown.end(),
            [](const Scored& x, const Scored& y) {
              if (x.confidence != y.confidence) {
                return x.confidence > y.confidence;
              }
              return x.pair < y.pair;
            });
  std::vector<PairId> batch;
  for (const Scored& entry : unshown) {
    if (batch.size() == options_.pairs_per_iteration) break;
    batch.push_back(entry.pair);
  }
  return batch;
}

std::vector<PairId> MatchVerifier::NextBatch() {
  MC_CHECK(pending_batch_.empty())
      << "SubmitLabels() must be called before the next batch";
  if (shown_.size() >= aggregator_.items().size()) return {};  // Exhausted.

  std::vector<PairId> batch;
  if (!options_.use_learning) {
    pending_phase_ = "wmr";
    batch = TakeUnshownPrefix(
        aggregator_.WeightedMedRank(wmr_weights_.weights()),
        options_.pairs_per_iteration);
  } else if (!HasBothClasses()) {
    pending_phase_ = "medrank";
    batch = TakeUnshownPrefix(medrank_order_, options_.pairs_per_iteration);
  } else if (active_iterations_done_ < options_.active_learning_iterations) {
    pending_phase_ = "active";
    TrainForest();
    batch = SelectActiveBatch();
  } else {
    pending_phase_ = "online";
    TrainForest();
    batch = SelectOnlineBatch();
  }
  pending_batch_ = batch;
  return batch;
}

void MatchVerifier::SubmitLabels(
    const std::vector<std::pair<PairId, bool>>& labels) {
  MC_CHECK_EQ(labels.size(), pending_batch_.size());
  CandidateSet new_matches;
  for (const auto& [pair, is_match] : labels) {
    shown_.insert(pair);
    if (labels_.emplace(pair, is_match).second) {
      labeled_pairs_.push_back(pair);
    }
    if (is_match) {
      confirmed_.Add(pair);
      new_matches.Add(pair);
    }
  }
  if (pending_phase_ == "active") ++active_iterations_done_;
  if (!options_.use_learning) {
    wmr_weights_.Update(aggregator_, new_matches);
  }

  IterationTrace trace;
  trace.phase = pending_phase_;
  trace.shown = pending_batch_;
  trace.new_matches = new_matches.size();
  iterations_.push_back(std::move(trace));

  consecutive_empty_ = new_matches.empty() ? consecutive_empty_ + 1 : 0;
  ++iteration_count_;
  pending_batch_.clear();
}

void MatchVerifier::PreloadLabels(
    const std::vector<std::pair<PairId, bool>>& labels) {
  MC_CHECK(pending_batch_.empty() && iteration_count_ == 0)
      << "PreloadLabels must run before the first batch";
  for (const auto& [pair, is_match] : labels) {
    shown_.insert(pair);
    if (labels_.emplace(pair, is_match).second) {
      labeled_pairs_.push_back(pair);
    }
    if (is_match) confirmed_.Add(pair);
  }
}

std::vector<std::pair<PairId, bool>> MatchVerifier::LabeledPairs() const {
  std::vector<std::pair<PairId, bool>> labels;
  labels.reserve(labeled_pairs_.size());
  for (PairId pair : labeled_pairs_) {
    labels.emplace_back(pair, labels_.at(pair));
  }
  return labels;
}

bool MatchVerifier::ShouldStop() const {
  if (iteration_count_ >= options_.max_iterations) return true;
  if (consecutive_empty_ >= options_.stop_after_empty_iterations) return true;
  return shown_.size() >= aggregator_.items().size();
}

VerifierResult MatchVerifier::Run(UserOracle& oracle) {
  while (!ShouldStop()) {
    if (!RunOneIteration(oracle)) break;
  }
  return MakeResult();
}

VerifierResult MatchVerifier::RunIterations(UserOracle& oracle,
                                            size_t iterations) {
  for (size_t i = 0; i < iterations; ++i) {
    if (!RunOneIteration(oracle)) break;
  }
  return MakeResult();
}

bool MatchVerifier::RunOneIteration(UserOracle& oracle) {
  std::vector<PairId> batch = NextBatch();
  if (batch.empty()) return false;
  std::vector<std::pair<PairId, bool>> labels;
  labels.reserve(batch.size());
  for (PairId pair : batch) {
    labels.emplace_back(pair, oracle.IsMatch(pair));
  }
  SubmitLabels(labels);
  return true;
}

VerifierResult MatchVerifier::MakeResult() const {
  VerifierResult result;
  result.confirmed_matches = confirmed_;
  result.iterations = iterations_;
  result.pairs_shown = shown_.size();
  return result;
}

}  // namespace mc
