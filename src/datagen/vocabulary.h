#ifndef MATCHCATCHER_DATAGEN_VOCABULARY_H_
#define MATCHCATCHER_DATAGEN_VOCABULARY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/random.h"

namespace mc {
namespace datagen {

/// Word pools used by the synthetic dataset generators. Pools are ordered
/// most-common-first so Zipf sampling yields realistic token frequency
/// skew (which the SSJ's document-frequency token order relies on).

std::string_view FirstName(Rng& rng);
std::string_view LastName(Rng& rng);
std::string_view City(Rng& rng);
std::string_view StreetName(Rng& rng);
std::string_view StreetSuffix(Rng& rng);
std::string_view CuisineType(Rng& rng);
std::string_view SoftwareBrand(Rng& rng);
std::string_view ElectronicsBrand(Rng& rng);
std::string_view ProductNoun(Rng& rng);
std::string_view ProductAdjective(Rng& rng);
std::string_view ResearchTopic(Rng& rng);
std::string_view ResearchMethod(Rng& rng);
std::string_view Venue(Rng& rng);
std::string_view MusicGenre(Rng& rng);
std::string_view MusicWord(Rng& rng);
std::string_view FillerWord(Rng& rng);

/// Known natural variant of a value ("new york" -> "ny",
/// "hewlett packard" -> "hp", "street" -> "st"), or empty when none exists.
/// Both directions are tried.
std::string_view ValueVariant(std::string_view value);

/// Joins words with single spaces.
std::string JoinWords(const std::vector<std::string>& words);

}  // namespace datagen
}  // namespace mc

#endif  // MATCHCATCHER_DATAGEN_VOCABULARY_H_
