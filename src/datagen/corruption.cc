#include "datagen/corruption.h"

#include <cctype>
#include <cmath>
#include <sstream>

#include "datagen/vocabulary.h"
#include "text/tokenize.h"

namespace mc {
namespace datagen {

namespace {

std::vector<std::string> SplitWords(std::string_view value) {
  std::vector<std::string> words;
  std::string current;
  for (char c : value) {
    if (c == ' ') {
      if (!current.empty()) words.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

}  // namespace

std::string InjectTypo(std::string_view value, Rng& rng) {
  std::vector<std::string> words = SplitWords(value);
  if (words.empty()) return std::string(value);
  std::string& word = words[rng.NextBelow(words.size())];
  if (word.empty()) return JoinWords(words);
  size_t pos = rng.NextBelow(word.size());
  switch (rng.NextBelow(4)) {
    case 0:  // Adjacent swap.
      if (word.size() >= 2) {
        size_t i = pos + 1 < word.size() ? pos : pos - 1;
        std::swap(word[i], word[i + 1 < word.size() ? i + 1 : i - 1]);
      }
      break;
    case 1:  // Deletion.
      if (word.size() >= 2) word.erase(pos, 1);
      break;
    case 2:  // Duplication.
      word.insert(pos, 1, word[pos]);
      break;
    default:  // Substitution with a nearby letter.
      word[pos] = static_cast<char>('a' + rng.NextBelow(26));
      break;
  }
  return JoinWords(words);
}

std::string AbbreviateWord(std::string_view value, Rng& rng) {
  std::vector<std::string> words = SplitWords(value);
  if (words.empty()) return std::string(value);
  std::string& word = words[rng.NextBelow(words.size())];
  if (word.size() > 1) word = std::string(1, word[0]) + ".";
  return JoinWords(words);
}

std::string DropWord(std::string_view value, Rng& rng) {
  std::vector<std::string> words = SplitWords(value);
  if (words.size() < 2) return std::string(value);
  words.erase(words.begin() + rng.NextBelow(words.size()));
  return JoinWords(words);
}

std::string SwapWords(std::string_view value, Rng& rng) {
  std::vector<std::string> words = SplitWords(value);
  if (words.size() < 2) return std::string(value);
  size_t i = rng.NextBelow(words.size() - 1);
  std::swap(words[i], words[i + 1]);
  return JoinWords(words);
}

std::string JumbleCase(std::string_view value, Rng& rng) {
  std::string out(value);
  for (char& c : out) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalpha(u)) {
      c = rng.NextBool(0.5) ? static_cast<char>(std::toupper(u))
                            : static_cast<char>(std::tolower(u));
    }
  }
  return out;
}

std::string UpperCase(std::string_view value) {
  std::string out(value);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ApplyVariant(std::string_view value) {
  // Whole-value variant first.
  std::string_view whole = ValueVariant(value);
  if (!whole.empty()) return std::string(whole);
  // Otherwise try each word.
  std::vector<std::string> words = SplitWords(value);
  for (std::string& word : words) {
    std::string_view variant = ValueVariant(word);
    if (!variant.empty()) {
      word = std::string(variant);
      return JoinWords(words);
    }
  }
  return std::string(value);
}

std::string PerturbNumber(double value, double jitter, Rng& rng) {
  double factor = 1.0 + (rng.NextDouble() * 2.0 - 1.0) * jitter;
  double perturbed = value * factor;
  std::ostringstream out;
  out.precision(2);
  out << std::fixed << perturbed;
  return out.str();
}

}  // namespace datagen
}  // namespace mc
