#ifndef MATCHCATCHER_DATAGEN_CORRUPTION_H_
#define MATCHCATCHER_DATAGEN_CORRUPTION_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/random.h"

namespace mc {
namespace datagen {

/// Low-level string corruption primitives used to derive the dirty "B-side"
/// of a matched record. Each returns the corrupted value; the caller records
/// the problem tag so benchmarks can report *why* matches get killed off
/// (the Table 4 "blocker problems" column).

/// Injects one random typo into a random word: adjacent swap, deletion,
/// duplication, or substitution.
std::string InjectTypo(std::string_view value, Rng& rng);

/// Replaces one random word with its first letter + '.' ("david" -> "d.").
std::string AbbreviateWord(std::string_view value, Rng& rng);

/// Drops one random word (no-op for single-word values).
std::string DropWord(std::string_view value, Rng& rng);

/// Swaps two adjacent words (no-op for single-word values).
std::string SwapWords(std::string_view value, Rng& rng);

/// Randomizes the case of each letter ("love song" -> "LoVe SONg") — the
/// "input tables are not lower-cased" problem of Table 4.
std::string JumbleCase(std::string_view value, Rng& rng);

/// Uppercases the whole value.
std::string UpperCase(std::string_view value);

/// Replaces the value (or one of its words) with a known natural variant
/// ("new york" -> "ny"); returns the original when no variant exists.
std::string ApplyVariant(std::string_view value);

/// Multiplies a numeric value by a factor in [1-jitter, 1+jitter].
std::string PerturbNumber(double value, double jitter, Rng& rng);

}  // namespace datagen
}  // namespace mc

#endif  // MATCHCATCHER_DATAGEN_CORRUPTION_H_
