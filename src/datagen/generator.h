#ifndef MATCHCATCHER_DATAGEN_GENERATOR_H_
#define MATCHCATCHER_DATAGEN_GENERATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "blocking/candidate_set.h"
#include "table/table.h"
#include "util/random.h"
#include "util/status.h"

namespace mc {
namespace datagen {

/// A generated two-table matching dataset with exact gold matches and, for
/// every matched pair, the list of corruption problems injected into its
/// B-side record — the ground truth behind the Table-4-style "blocker
/// problems" reporting.
struct GeneratedDataset {
  std::string name;
  Table table_a;
  Table table_b;
  CandidateSet gold;
  std::unordered_map<PairId, std::vector<std::string>, PairIdHash>
      problem_tags;

  /// All distinct problem tags with their frequencies, most common first.
  std::vector<std::pair<std::string, size_t>> ProblemHistogram() const;
};

/// Table sizes and match count for a dataset (paper Table 1 row).
struct DatasetDims {
  size_t rows_a = 0;
  size_t rows_b = 0;
  size_t matches = 0;
};

/// Paper Table 1 default dimensions.
inline constexpr DatasetDims kDimsAmazonGoogle{1363, 3226, 1300};
inline constexpr DatasetDims kDimsWalmartAmazon{2554, 22074, 1154};
inline constexpr DatasetDims kDimsAcmDblp{2294, 2616, 2224};
inline constexpr DatasetDims kDimsFodorsZagats{533, 331, 112};
inline constexpr DatasetDims kDimsMusic1{100000, 100000, 2978};
inline constexpr DatasetDims kDimsMusic2{500000, 500000, 73646};
inline constexpr DatasetDims kDimsPapers{455996, 628231, 120000};

/// Scales every dimension of `dims` by `fraction` (minimum 1 row / match).
DatasetDims ScaleDims(DatasetDims dims, double fraction);

/// Amazon-Google-style software products: {title, description,
/// manufacturer, price, category}. Long descriptions; problems injected:
/// manufacturer sprinkled into the title (with the manufacturer field then
/// missing), title typos, dropped edition words, price jitter, rewritten
/// descriptions.
GeneratedDataset GenerateAmazonGoogle(DatasetDims dims = kDimsAmazonGoogle,
                                      uint64_t seed = 42);

/// Walmart-Amazon-style electronics: {title, category, brand, modelno,
/// price, shortdescr, dimensions}. Problems: brand name variants ("hewlett
/// packard" vs "hp"), missing brand values, model-number typos, price
/// differences exceeding blocker thresholds, reordered title words.
GeneratedDataset GenerateWalmartAmazon(DatasetDims dims = kDimsWalmartAmazon,
                                       uint64_t seed = 43);

/// ACM-DBLP-style papers: {title, authors, venue, year, pages}. Problems:
/// subtitles appended to titles in one table, author initials vs full first
/// names, venue naming variants, off-by-one or missing years.
GeneratedDataset GenerateAcmDblp(DatasetDims dims = kDimsAcmDblp,
                                 uint64_t seed = 44);

/// Fodors-Zagats-style restaurants: {name, addr, city, phone, type, class,
/// review}. Problems: city sprinkled into the name, unnormalized addresses
/// ("street" vs "st"), cuisine-type variants ("barbecue" vs "bbq"), phone
/// formatting, name misspellings.
GeneratedDataset GenerateFodorsZagats(DatasetDims dims = kDimsFodorsZagats,
                                      uint64_t seed = 45);

/// Music-style songs: {title, artist_name, release, year, duration, genre,
/// number, language}. Problems: case-jumbled values (inputs not
/// lower-cased), missing years, "(live)"-style title suffixes, artist
/// abbreviations. Used for both Music1 and Music2 (pass the dims).
GeneratedDataset GenerateMusic(DatasetDims dims = kDimsMusic1,
                               uint64_t seed = 46);

/// Large Papers corpus: {title, authors, venue, year, abstract, keywords,
/// pages}; like ACM-DBLP plus long abstracts (exercises the long-attribute
/// machinery at scale).
GeneratedDataset GeneratePapersLarge(DatasetDims dims = kDimsPapers,
                                     uint64_t seed = 47);

/// Dispatch by dataset short name: "A-G", "W-A", "A-D", "F-Z", "M1", "M2",
/// "Papers" (paper Table 1 names).
Result<GeneratedDataset> GenerateByName(const std::string& name,
                                        double scale = 1.0,
                                        uint64_t seed_offset = 0);

}  // namespace datagen
}  // namespace mc

#endif  // MATCHCATCHER_DATAGEN_GENERATOR_H_
