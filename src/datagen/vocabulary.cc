#include "datagen/vocabulary.h"

#include <array>
#include <unordered_set>
#include <vector>

namespace mc {
namespace datagen {

namespace {

// Zipf-samples from a pool (most common entries first).
template <size_t N>
std::string_view Sample(const std::array<std::string_view, N>& pool,
                        Rng& rng, double skew = 0.7) {
  return pool[rng.NextZipf(N, skew)];
}

// Deterministically generates `count` pronounceable words (2-3 syllables).
// Used to extend the hand-written pools with a long tail of distinctive
// words so that large generated tables (Music2: 500K rows) don't collapse
// into a handful of token values. Leaked intentionally (static lifetime).
std::vector<std::string>* GenerateWordTail(size_t count, uint64_t seed) {
  static const char* const kOnsets[] = {
      "b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "l",
      "m", "n", "p", "r", "s", "st", "t", "tr", "v", "w", "z", "sh", "th",
      "bl", "cl", "pr", "sl"};
  static const char* const kNuclei[] = {"a", "e", "i", "o", "u", "ai", "ea",
                                        "ee", "oo", "ou", "ia", "io"};
  static const char* const kCodas[] = {"", "n", "r", "s", "t", "l", "m",
                                       "nd", "rk", "st", "x", "ne"};
  auto* words = new std::vector<std::string>();
  words->reserve(count);
  Rng rng(seed);
  std::unordered_set<std::string> seen;
  while (words->size() < count) {
    std::string word;
    size_t syllables = 2 + rng.NextBelow(2);
    for (size_t s = 0; s < syllables; ++s) {
      word += kOnsets[rng.NextBelow(30)];
      word += kNuclei[rng.NextBelow(12)];
      if (s + 1 == syllables || rng.NextBool(0.3)) {
        word += kCodas[rng.NextBelow(12)];
      }
    }
    if (seen.insert(word).second) words->push_back(std::move(word));
  }
  return words;
}

// Zipf-samples across a hand-written head pool plus a generated tail: the
// head words stay frequent, the tail supplies distinctiveness.
template <size_t N>
std::string_view SampleWithTail(const std::array<std::string_view, N>& head,
                                const std::vector<std::string>& tail,
                                Rng& rng, double skew) {
  size_t index = rng.NextZipf(N + tail.size(), skew);
  if (index < N) return head[index];
  return tail[index - N];
}

constexpr std::array<std::string_view, 40> kFirstNames = {
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen",
    "christopher", "nancy", "daniel", "lisa", "matthew", "betty", "anthony",
    "margaret", "mark", "sandra", "donald", "ashley", "steven", "kimberly",
    "paul", "emily", "andrew", "donna", "joshua", "michelle"};

constexpr std::array<std::string_view, 40> kLastNames = {
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores"};

constexpr std::array<std::string_view, 24> kCities = {
    "new york", "los angeles", "chicago", "houston", "phoenix",
    "philadelphia", "san antonio", "san diego", "dallas", "san francisco",
    "austin", "seattle", "denver", "boston", "atlanta", "miami", "portland",
    "las vegas", "detroit", "memphis", "baltimore", "milwaukee",
    "albuquerque", "tucson"};

constexpr std::array<std::string_view, 20> kStreetNames = {
    "main", "oak", "maple", "cedar", "elm", "washington", "lake", "hill",
    "park", "pine", "walnut", "spring", "north", "ridge", "church",
    "willow", "mill", "sunset", "railroad", "jefferson"};

constexpr std::array<std::string_view, 6> kStreetSuffixes = {
    "street", "avenue", "road", "boulevard", "drive", "lane"};

constexpr std::array<std::string_view, 16> kCuisines = {
    "american", "italian", "chinese", "mexican", "japanese", "french",
    "indian", "thai", "barbecue", "seafood", "steakhouse", "pizza",
    "vietnamese", "korean", "mediterranean", "cajun"};

constexpr std::array<std::string_view, 24> kSoftwareBrands = {
    "microsoft", "adobe", "symantec", "intuit", "corel", "mcafee", "apple",
    "autodesk", "roxio", "nero", "kaspersky", "norton", "quickbooks",
    "encore", "broderbund", "sage", "avanquest", "nuance", "pinnacle",
    "cyberlink", "individual", "topics", "valusoft", "cosmi"};

constexpr std::array<std::string_view, 24> kElectronicsBrands = {
    "samsung", "sony", "lg", "panasonic", "toshiba", "canon", "nikon",
    "hewlett packard", "dell", "lenovo", "asus", "acer", "philips",
    "sharp", "epson", "brother", "logitech", "belkin", "netgear", "sandisk",
    "kingston", "garmin", "vizio", "jvc"};

constexpr std::array<std::string_view, 40> kProductNouns = {
    "software", "suite", "edition", "camera", "laptop", "monitor",
    "printer", "keyboard", "mouse", "router", "drive", "player", "tablet",
    "phone", "charger", "cable", "adapter", "speaker", "headphones",
    "television", "projector", "scanner", "memory", "card", "battery",
    "case", "stand", "mount", "dock", "hub", "webcam", "microphone",
    "antivirus", "office", "studio", "photoshop", "security", "backup",
    "designer", "converter"};

constexpr std::array<std::string_view, 24> kProductAdjectives = {
    "professional", "deluxe", "premium", "standard", "ultimate", "home",
    "portable", "wireless", "digital", "compact", "advanced", "essential",
    "complete", "platinum", "gold", "express", "extreme", "classic",
    "elite", "mini", "pro", "plus", "basic", "smart"};

constexpr std::array<std::string_view, 40> kResearchTopics = {
    "query", "database", "stream", "index", "graph", "transaction",
    "storage", "network", "cache", "memory", "learning", "entity",
    "schema", "join", "aggregation", "cluster", "parallel", "distributed",
    "relational", "spatial", "temporal", "probabilistic", "semantic",
    "knowledge", "web", "cloud", "sensor", "workload", "recovery",
    "replication", "partitioning", "compression", "privacy", "security",
    "provenance", "crowdsourcing", "visualization", "integration",
    "matching", "mining"};

constexpr std::array<std::string_view, 24> kResearchMethods = {
    "efficient", "scalable", "adaptive", "optimal", "incremental",
    "approximate", "robust", "dynamic", "online", "interactive",
    "declarative", "automatic", "distributed", "parallel", "streaming",
    "learned", "hybrid", "unified", "fast", "practical", "novel",
    "effective", "lightweight", "generalized"};

constexpr std::array<std::string_view, 14> kVenues = {
    "sigmod", "vldb", "icde", "edbt", "cidr", "kdd", "www", "sigir",
    "cikm", "icdm", "aaai", "ijcai", "nips", "icml"};

constexpr std::array<std::string_view, 12> kGenres = {
    "rock", "pop", "jazz", "classical", "country", "electronic", "hip hop",
    "folk", "blues", "metal", "reggae", "soul"};

constexpr std::array<std::string_view, 48> kMusicWords = {
    "love", "night", "heart", "time", "baby", "dance", "dream", "fire",
    "light", "rain", "summer", "blue", "girl", "home", "road", "river",
    "moon", "star", "sky", "angel", "crazy", "sweet", "lonely", "forever",
    "tonight", "morning", "midnight", "golden", "broken", "wild", "young",
    "free", "lost", "city", "train", "shadow", "silver", "thunder",
    "whisper", "echo", "velvet", "neon", "paradise", "horizon", "ocean",
    "desert", "winter", "stone"};

constexpr std::array<std::string_view, 60> kFillerWords = {
    "the", "with", "for", "and", "new", "full", "version", "includes",
    "features", "support", "system", "windows", "user", "data", "file",
    "easy", "complete", "powerful", "tools", "design", "create", "manage",
    "digital", "media", "video", "audio", "photo", "image", "document",
    "email", "internet", "online", "security", "protection", "update",
    "license", "retail", "box", "pack", "single", "multi", "high",
    "performance", "quality", "speed", "storage", "backup", "recovery",
    "editing", "sharing", "printing", "scanning", "wireless", "network",
    "mobile", "desktop", "server", "premium", "lifetime", "compatible"};

struct VariantEntry {
  std::string_view canonical;
  std::string_view variant;
};

constexpr std::array<VariantEntry, 18> kVariants = {{
    {"new york", "ny"},
    {"los angeles", "la"},
    {"san francisco", "sf"},
    {"philadelphia", "philly"},
    {"las vegas", "vegas"},
    {"hewlett packard", "hp"},
    {"street", "st"},
    {"avenue", "ave"},
    {"road", "rd"},
    {"boulevard", "blvd"},
    {"drive", "dr"},
    {"lane", "ln"},
    {"barbecue", "bbq"},
    {"professional", "pro"},
    {"deluxe", "dlx"},
    {"television", "tv"},
    {"microphone", "mic"},
    {"second", "2nd"},
}};

}  // namespace

std::string_view FirstName(Rng& rng) {
  static const std::vector<std::string>& tail = *GenerateWordTail(400, 101);
  return SampleWithTail(kFirstNames, tail, rng, 0.8);
}
std::string_view LastName(Rng& rng) {
  static const std::vector<std::string>& tail = *GenerateWordTail(600, 102);
  return SampleWithTail(kLastNames, tail, rng, 0.8);
}
std::string_view City(Rng& rng) { return Sample(kCities, rng); }
std::string_view StreetName(Rng& rng) { return Sample(kStreetNames, rng); }
std::string_view StreetSuffix(Rng& rng) {
  return Sample(kStreetSuffixes, rng, 0.4);
}
std::string_view CuisineType(Rng& rng) { return Sample(kCuisines, rng); }
std::string_view SoftwareBrand(Rng& rng) {
  return Sample(kSoftwareBrands, rng);
}
std::string_view ElectronicsBrand(Rng& rng) {
  return Sample(kElectronicsBrands, rng);
}
std::string_view ProductNoun(Rng& rng) { return Sample(kProductNouns, rng); }
std::string_view ProductAdjective(Rng& rng) {
  return Sample(kProductAdjectives, rng);
}
std::string_view ResearchTopic(Rng& rng) {
  static const std::vector<std::string>& tail = *GenerateWordTail(800, 103);
  return SampleWithTail(kResearchTopics, tail, rng, 0.75);
}
std::string_view ResearchMethod(Rng& rng) {
  return Sample(kResearchMethods, rng);
}
std::string_view Venue(Rng& rng) { return Sample(kVenues, rng); }
std::string_view MusicGenre(Rng& rng) { return Sample(kGenres, rng, 0.4); }
std::string_view MusicWord(Rng& rng) {
  static const std::vector<std::string>& tail = *GenerateWordTail(1500, 104);
  return SampleWithTail(kMusicWords, tail, rng, 0.8);
}
std::string_view FillerWord(Rng& rng) {
  static const std::vector<std::string>& tail = *GenerateWordTail(400, 105);
  return SampleWithTail(kFillerWords, tail, rng, 0.85);
}

std::string_view ValueVariant(std::string_view value) {
  for (const VariantEntry& entry : kVariants) {
    if (entry.canonical == value) return entry.variant;
    if (entry.variant == value) return entry.canonical;
  }
  return {};
}

std::string JoinWords(const std::vector<std::string>& words) {
  std::string out;
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += words[i];
  }
  return out;
}

}  // namespace datagen
}  // namespace mc
