#include "datagen/generator.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "datagen/corruption.h"
#include "datagen/vocabulary.h"
#include "util/check.h"

namespace mc {
namespace datagen {

namespace {

using Record = std::vector<std::string>;
using Tags = std::vector<std::string>;

// An entity domain: schema, canonical-record generator, and B-side
// corruptor (mutates the record, appending problem tags).
struct Domain {
  Schema schema;
  std::function<Record(Rng&)> generate;
  std::function<void(Record&, Rng&, Tags&)> corrupt;
};

std::string Number(Rng& rng, int lo, int hi) {
  return std::to_string(rng.NextInRange(lo, hi));
}

std::string Words(Rng& rng, size_t lo, size_t hi,
                  std::string_view (*pool)(Rng&)) {
  size_t count = lo + rng.NextBelow(hi - lo + 1);
  std::vector<std::string> words;
  words.reserve(count);
  for (size_t i = 0; i < count; ++i) words.emplace_back(pool(rng));
  return JoinWords(words);
}

// Assembles two shuffled tables from a domain: `matches` entities appear in
// both tables (the B copy corrupted), the rest are singletons.
GeneratedDataset Assemble(std::string name, const Domain& domain,
                          DatasetDims dims, uint64_t seed) {
  MC_CHECK_GT(dims.rows_a, 0u);
  MC_CHECK_GT(dims.rows_b, 0u);
  Rng rng(seed);
  const size_t matches =
      std::min({dims.matches, dims.rows_a, dims.rows_b});

  // Row slots, shuffled so matched rows are spread through the tables.
  std::vector<size_t> slots_a(dims.rows_a);
  std::iota(slots_a.begin(), slots_a.end(), 0);
  rng.Shuffle(slots_a);
  std::vector<size_t> slots_b(dims.rows_b);
  std::iota(slots_b.begin(), slots_b.end(), 0);
  rng.Shuffle(slots_b);

  std::vector<Record> rows_a(dims.rows_a);
  std::vector<Record> rows_b(dims.rows_b);

  GeneratedDataset dataset;
  dataset.name = std::move(name);

  for (size_t m = 0; m < matches; ++m) {
    Record canonical = domain.generate(rng);
    Record corrupted = canonical;
    Tags tags;
    domain.corrupt(corrupted, rng, tags);
    size_t row_a = slots_a[m];
    size_t row_b = slots_b[m];
    rows_a[row_a] = std::move(canonical);
    rows_b[row_b] = std::move(corrupted);
    PairId pair =
        MakePairId(static_cast<RowId>(row_a), static_cast<RowId>(row_b));
    dataset.gold.Add(pair);
    if (!tags.empty()) dataset.problem_tags.emplace(pair, std::move(tags));
  }
  for (size_t m = matches; m < dims.rows_a; ++m) {
    rows_a[slots_a[m]] = domain.generate(rng);
  }
  for (size_t m = matches; m < dims.rows_b; ++m) {
    rows_b[slots_b[m]] = domain.generate(rng);
  }

  dataset.table_a = Table(domain.schema);
  for (Record& record : rows_a) dataset.table_a.AddRow(std::move(record));
  dataset.table_b = Table(domain.schema);
  for (Record& record : rows_b) dataset.table_b.AddRow(std::move(record));
  return dataset;
}

}  // namespace

std::vector<std::pair<std::string, size_t>>
GeneratedDataset::ProblemHistogram() const {
  std::unordered_map<std::string, size_t> counts;
  for (const auto& [pair, tags] : problem_tags) {
    for (const std::string& tag : tags) ++counts[tag];
  }
  std::vector<std::pair<std::string, size_t>> histogram(counts.begin(),
                                                        counts.end());
  std::sort(histogram.begin(), histogram.end(),
            [](const auto& x, const auto& y) {
              if (x.second != y.second) return x.second > y.second;
              return x.first < y.first;
            });
  return histogram;
}

DatasetDims ScaleDims(DatasetDims dims, double fraction) {
  auto scale = [&](size_t value) {
    return std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(value) * fraction));
  };
  return DatasetDims{scale(dims.rows_a), scale(dims.rows_b),
                     scale(dims.matches)};
}

GeneratedDataset GenerateAmazonGoogle(DatasetDims dims, uint64_t seed) {
  Domain domain;
  domain.schema = Schema({{"title", AttributeType::kString},
                          {"description", AttributeType::kString},
                          {"manufacturer", AttributeType::kString},
                          {"price", AttributeType::kNumeric},
                          {"category", AttributeType::kString}});
  static const char* const kCategories[] = {"software", "games", "education",
                                            "business", "utilities"};
  domain.generate = [](Rng& rng) -> Record {
    std::string manufacturer(SoftwareBrand(rng));
    std::string title = std::string(ProductAdjective(rng)) + " " +
                        std::string(ProductNoun(rng)) + " " +
                        std::string(ProductNoun(rng)) + " " +
                        Number(rng, 2, 12) + "." + Number(rng, 0, 9);
    std::string description = Words(rng, 18, 40, FillerWord);
    std::string price = PerturbNumber(
        10.0 + static_cast<double>(rng.NextBelow(490)), 0.0, rng);
    std::string category = kCategories[rng.NextBelow(5)];
    return {title, description, manufacturer, price, category};
  };
  domain.corrupt = [](Record& record, Rng& rng, Tags& tags) {
    if (rng.NextBool(0.35)) {
      record[0] = record[2] + " " + record[0];
      tags.push_back("manufacturer sprinkled in title");
      if (rng.NextBool(0.5)) {
        record[2] = "";
        tags.push_back("missing manufacturer");
      }
    }
    if (rng.NextBool(0.3)) {
      record[0] = InjectTypo(record[0], rng);
      if (rng.NextBool(0.5)) record[0] = InjectTypo(record[0], rng);
      tags.push_back("misspelling in title");
    }
    if (rng.NextBool(0.35)) {
      record[0] = DropWord(record[0], rng);
      tags.push_back("word dropped from title");
    }
    if (rng.NextBool(0.25)) {
      // Vendors describe the same product with different nouns
      // ("suite" vs "software"); replace one title word outright.
      record[0] = DropWord(record[0], rng);
      record[0] += " " + std::string(ProductNoun(rng));
      tags.push_back("title reworded");
    }
    if (rng.NextBool(0.3)) {
      std::optional<double> price = ParseDouble(record[3]);
      if (price.has_value()) {
        record[3] = PerturbNumber(*price, 0.3, rng);
        tags.push_back("price difference");
      }
    }
    if (rng.NextBool(0.15)) {
      record[3] = "";
      tags.push_back("missing price");
    }
    if (rng.NextBool(0.5)) {
      record[1] = Words(rng, 18, 40, FillerWord);
      tags.push_back("description rewritten");
    }
    if (rng.NextBool(0.15)) {
      std::string variant = ApplyVariant(record[0]);
      if (variant != record[0]) {
        record[0] = variant;
        tags.push_back("value variant in title");
      }
    }
  };
  return Assemble("A-G", domain, dims, seed);
}

GeneratedDataset GenerateWalmartAmazon(DatasetDims dims, uint64_t seed) {
  Domain domain;
  domain.schema = Schema({{"title", AttributeType::kString},
                          {"category", AttributeType::kString},
                          {"brand", AttributeType::kString},
                          {"modelno", AttributeType::kString},
                          {"price", AttributeType::kNumeric},
                          {"shortdescr", AttributeType::kString},
                          {"dimensions", AttributeType::kString}});
  static const char* const kCategories[] = {"electronics", "computers",
                                            "cameras", "audio", "accessories",
                                            "networking"};
  domain.generate = [](Rng& rng) -> Record {
    std::string brand(ElectronicsBrand(rng));
    std::string modelno =
        std::string(1, static_cast<char>('a' + rng.NextBelow(26))) +
        std::string(1, static_cast<char>('a' + rng.NextBelow(26))) +
        Number(rng, 100, 9999);
    std::string title = brand + " " + std::string(ProductNoun(rng)) + " " +
                        modelno + " " + std::string(ProductAdjective(rng));
    std::string category = kCategories[rng.NextBelow(6)];
    std::string price = PerturbNumber(
        15.0 + static_cast<double>(rng.NextBelow(900)), 0.0, rng);
    std::string shortdescr = Words(rng, 8, 16, FillerWord);
    std::string dimensions = Number(rng, 2, 30) + " x " + Number(rng, 2, 30) +
                             " x " + Number(rng, 1, 10) + " inches";
    return {title, category, brand, modelno, price, shortdescr, dimensions};
  };
  domain.corrupt = [](Record& record, Rng& rng, Tags& tags) {
    if (rng.NextBool(0.3)) {
      std::string variant = ApplyVariant(record[2]);
      if (variant != record[2]) {
        // Keep the title's brand mention consistent with the new spelling.
        size_t pos = record[0].find(record[2]);
        if (pos != std::string::npos) {
          record[0] =
              record[0].substr(0, pos) + variant +
              record[0].substr(pos + record[2].size());
        }
        record[2] = variant;
        tags.push_back("brand name variant");
      }
    }
    if (rng.NextBool(0.2)) {
      record[2] = "";
      tags.push_back("missing brand");
    }
    if (rng.NextBool(0.25)) {
      record[3] = InjectTypo(record[3], rng);
      tags.push_back("model number typo");
    }
    if (rng.NextBool(0.3)) {
      std::optional<double> price = ParseDouble(record[4]);
      if (price.has_value()) {
        record[4] = PerturbNumber(*price, 0.35, rng);
        tags.push_back("price difference");
      }
    }
    if (rng.NextBool(0.3)) {
      record[0] = SwapWords(record[0], rng);
      tags.push_back("title word order");
    }
    if (rng.NextBool(0.2)) {
      record[0] = InjectTypo(record[0], rng);
      tags.push_back("misspelling in title");
    }
    if (rng.NextBool(0.12)) {
      // The other vendor lists the product under a terse title: category
      // noun + model number (often itself typo'd) — very few shared words.
      std::string model = record[3];
      if (rng.NextBool(0.5)) model = InjectTypo(model, rng);
      record[0] = std::string(ProductNoun(rng)) + " " + model;
      tags.push_back("title rewritten by vendor");
    }
    if (rng.NextBool(0.3)) {
      record[5] = Words(rng, 8, 16, FillerWord);
      tags.push_back("description rewritten");
    }
  };
  return Assemble("W-A", domain, dims, seed);
}

GeneratedDataset GenerateAcmDblp(DatasetDims dims, uint64_t seed) {
  Domain domain;
  domain.schema = Schema({{"title", AttributeType::kString},
                          {"authors", AttributeType::kString},
                          {"venue", AttributeType::kString},
                          {"year", AttributeType::kNumeric},
                          {"pages", AttributeType::kString}});
  domain.generate = [](Rng& rng) -> Record {
    std::string title = std::string(ResearchMethod(rng)) + " " +
                        std::string(ResearchTopic(rng)) + " " +
                        std::string(ResearchTopic(rng)) + " " +
                        (rng.NextBool(0.5) ? "processing" : "analysis");
    size_t num_authors = 2 + rng.NextBelow(3);
    std::vector<std::string> authors;
    for (size_t i = 0; i < num_authors; ++i) {
      authors.push_back(std::string(FirstName(rng)) + " " +
                        std::string(LastName(rng)));
    }
    std::string venue(Venue(rng));
    std::string year = Number(rng, 1995, 2015);
    int first_page = static_cast<int>(rng.NextBelow(900)) + 1;
    std::string pages = std::to_string(first_page) + "-" +
                        std::to_string(first_page + 8 +
                                       static_cast<int>(rng.NextBelow(12)));
    return {title, JoinWords(authors), venue, year, pages};
  };
  domain.corrupt = [](Record& record, Rng& rng, Tags& tags) {
    if (rng.NextBool(0.3)) {
      record[0] += " a " + std::string(ResearchMethod(rng)) + " approach";
      tags.push_back("subtitle in title");
    }
    if (rng.NextBool(0.35)) {
      // Abbreviate every other word (the first names).
      std::string abbreviated = record[1];
      for (int i = 0; i < 3; ++i) {
        abbreviated = AbbreviateWord(abbreviated, rng);
      }
      record[1] = abbreviated;
      tags.push_back("author initials");
    }
    if (rng.NextBool(0.25)) {
      record[2] = "proceedings of " + record[2];
      tags.push_back("venue variant");
    }
    if (rng.NextBool(0.15)) {
      std::optional<double> year = ParseDouble(record[3]);
      if (year.has_value()) {
        record[3] =
            std::to_string(static_cast<int>(*year) +
                           (rng.NextBool(0.5) ? 1 : -1));
        tags.push_back("year off by one");
      }
    }
    if (rng.NextBool(0.1)) {
      record[3] = "";
      tags.push_back("missing year");
    }
    if (rng.NextBool(0.15)) {
      record[0] = InjectTypo(record[0], rng);
      tags.push_back("misspelling in title");
    }
  };
  return Assemble("A-D", domain, dims, seed);
}

GeneratedDataset GenerateFodorsZagats(DatasetDims dims, uint64_t seed) {
  Domain domain;
  domain.schema = Schema({{"name", AttributeType::kString},
                          {"addr", AttributeType::kString},
                          {"city", AttributeType::kString},
                          {"phone", AttributeType::kString},
                          {"type", AttributeType::kString},
                          {"class", AttributeType::kString},
                          {"review", AttributeType::kString}});
  static const char* const kVenueNouns[] = {"grill", "cafe", "kitchen",
                                            "bistro", "house", "garden",
                                            "room", "tavern"};
  domain.generate = [](Rng& rng) -> Record {
    std::string name = (rng.NextBool(0.3) ? "the " : "") +
                       std::string(LastName(rng)) + " " +
                       kVenueNouns[rng.NextBelow(8)];
    std::string addr = Number(rng, 1, 999) + " " +
                       std::string(StreetName(rng)) + " " +
                       std::string(StreetSuffix(rng));
    std::string city(City(rng));
    std::string phone = Number(rng, 200, 999) + "-555-" +
                        std::to_string(1000 + rng.NextBelow(9000));
    std::string type(CuisineType(rng));
    std::string klass = Number(rng, 0, 5);
    std::string review = Words(rng, 5, 15, FillerWord);
    return {name, addr, city, phone, type, klass, review};
  };
  domain.corrupt = [](Record& record, Rng& rng, Tags& tags) {
    if (rng.NextBool(0.3)) {
      record[0] += " " + record[2];
      tags.push_back("city sprinkled in name");
    }
    if (rng.NextBool(0.35)) {
      std::string variant = ApplyVariant(record[1]);
      if (variant != record[1]) {
        record[1] = variant;
        tags.push_back("unnormalized address");
      }
    }
    if (rng.NextBool(0.3)) {
      std::string variant = ApplyVariant(record[4]);
      if (variant != record[4]) {
        record[4] = variant;
        tags.push_back("type described differently");
      }
    }
    if (rng.NextBool(0.3)) {
      record[0] = InjectTypo(record[0], rng);
      tags.push_back("name misspelling");
    }
    if (rng.NextBool(0.15)) {
      // The restaurant moved (a real F-Z phenomenon): new street address.
      record[1] = Number(rng, 1, 999) + " " +
                  std::string(StreetName(rng)) + " " +
                  std::string(StreetSuffix(rng));
      tags.push_back("address changed");
    }
    if (rng.NextBool(0.08)) {
      record[1] = "";
      tags.push_back("missing address");
    }
    if (rng.NextBool(0.2)) {
      // "415-555-0123" -> "(415) 555 0123".
      std::string reformatted;
      for (char c : record[3]) {
        if (c == '-') {
          reformatted += ' ';
        } else {
          reformatted += c;
        }
      }
      record[3] = "(" + reformatted.substr(0, 3) + ")" +
                  reformatted.substr(3);
      tags.push_back("phone format");
    }
    if (rng.NextBool(0.1)) {
      record[3] = "";
      tags.push_back("missing phone");
    }
    if (rng.NextBool(0.2)) {
      std::string variant = ApplyVariant(record[2]);
      if (variant != record[2]) {
        record[2] = variant;
        tags.push_back("city variant");
      }
    }
  };
  return Assemble("F-Z", domain, dims, seed);
}

GeneratedDataset GenerateMusic(DatasetDims dims, uint64_t seed) {
  Domain domain;
  domain.schema = Schema({{"title", AttributeType::kString},
                          {"artist_name", AttributeType::kString},
                          {"release", AttributeType::kString},
                          {"year", AttributeType::kNumeric},
                          {"duration", AttributeType::kNumeric},
                          {"genre", AttributeType::kString},
                          {"number", AttributeType::kNumeric},
                          {"language", AttributeType::kString}});
  static const char* const kSuffixes[] = {" (live)", " (album version)",
                                          " (remastered)", " (radio edit)"};
  static const char* const kLanguages[] = {"english", "english", "english",
                                           "spanish", "french", "german"};
  domain.generate = [](Rng& rng) -> Record {
    std::string title = Words(rng, 2, 4, MusicWord);
    std::string artist =
        rng.NextBool(0.5)
            ? std::string(FirstName(rng)) + " " + std::string(LastName(rng))
            : "the " + std::string(MusicWord(rng)) + "s";
    std::string release = Words(rng, 1, 3, MusicWord);
    std::string year = Number(rng, 1960, 2015);
    std::string duration = Number(rng, 120, 420);
    std::string genre(MusicGenre(rng));
    std::string number = Number(rng, 1, 16);
    std::string language = kLanguages[rng.NextBelow(6)];
    return {title, artist, release, year, duration, genre, number, language};
  };
  domain.corrupt = [](Record& record, Rng& rng, Tags& tags) {
    if (rng.NextBool(0.3)) {
      record[0] = JumbleCase(record[0], rng);
      record[1] = JumbleCase(record[1], rng);
      tags.push_back("input not lower-cased");
    }
    if (rng.NextBool(0.2)) {
      record[3] = "";
      tags.push_back("missing year");
    }
    if (rng.NextBool(0.2)) {
      record[0] += kSuffixes[rng.NextBelow(4)];
      tags.push_back("title version suffix");
    }
    if (rng.NextBool(0.2)) {
      record[1] = AbbreviateWord(record[1], rng);
      tags.push_back("artist abbreviated");
    }
    if (rng.NextBool(0.15)) {
      record[0] = InjectTypo(record[0], rng);
      tags.push_back("misspelling in title");
    }
    if (rng.NextBool(0.1)) {
      record[2] = DropWord(record[2], rng);
      tags.push_back("release word dropped");
    }
  };
  return Assemble(dims.rows_a >= 300000 ? "M2" : "M1", domain, dims, seed);
}

GeneratedDataset GeneratePapersLarge(DatasetDims dims, uint64_t seed) {
  Domain domain;
  domain.schema = Schema({{"title", AttributeType::kString},
                          {"authors", AttributeType::kString},
                          {"venue", AttributeType::kString},
                          {"year", AttributeType::kNumeric},
                          {"abstract", AttributeType::kString},
                          {"keywords", AttributeType::kString},
                          {"pages", AttributeType::kString}});
  domain.generate = [](Rng& rng) -> Record {
    std::string title = std::string(ResearchMethod(rng)) + " " +
                        std::string(ResearchTopic(rng)) + " " +
                        std::string(ResearchTopic(rng)) + " for " +
                        std::string(ResearchTopic(rng)) + " " +
                        (rng.NextBool(0.5) ? "systems" : "applications");
    size_t num_authors = 1 + rng.NextBelow(4);
    std::vector<std::string> authors;
    for (size_t i = 0; i < num_authors; ++i) {
      authors.push_back(std::string(FirstName(rng)) + " " +
                        std::string(LastName(rng)));
    }
    std::string venue(Venue(rng));
    std::string year = Number(rng, 1990, 2017);
    // A short abstract snippet; the paper's Papers corpus averages only
    // 17-18 tokens per tuple (Table 1), so full-length abstracts would
    // make the stand-in much heavier than the original.
    std::string abstract = Words(rng, 8, 16, FillerWord);
    std::string keywords = Words(rng, 3, 5, ResearchTopic);
    int first_page = static_cast<int>(rng.NextBelow(2000)) + 1;
    std::string pages = std::to_string(first_page) + "-" +
                        std::to_string(first_page + 10 +
                                       static_cast<int>(rng.NextBelow(15)));
    return {title,    JoinWords(authors), venue, year,
            abstract, keywords,           pages};
  };
  domain.corrupt = [](Record& record, Rng& rng, Tags& tags) {
    if (rng.NextBool(0.3)) {
      // Long subtitles (the ACM/DBLP title-vs-full-title phenomenon)
      // meaningfully dilute both word and q-gram similarity.
      record[0] += " a " + std::string(ResearchMethod(rng)) + " study of " +
                   std::string(ResearchTopic(rng)) + " " +
                   std::string(ResearchTopic(rng));
      tags.push_back("subtitle in title");
    }
    if (rng.NextBool(0.2)) {
      // The same paper indexed under a slightly different title.
      record[0] = DropWord(record[0], rng);
      record[0] = std::string(ResearchMethod(rng)) + " " + record[0];
      tags.push_back("title reworded");
    }
    if (rng.NextBool(0.35)) {
      std::string abbreviated = record[1];
      for (int i = 0; i < 2; ++i) {
        abbreviated = AbbreviateWord(abbreviated, rng);
      }
      record[1] = abbreviated;
      tags.push_back("author initials");
    }
    if (rng.NextBool(0.25)) {
      record[2] = "proceedings of " + record[2];
      tags.push_back("venue variant");
    }
    if (rng.NextBool(0.3)) {
      // The other library spells the venue out in full — the single most
      // reliable way real bibliographic sources disagree.
      static const std::unordered_map<std::string, std::string> kFullNames =
          {{"sigmod", "acm international conference on management of data"},
           {"vldb", "international conference on very large data bases"},
           {"icde", "ieee international conference on data engineering"},
           {"edbt", "international conference on extending database "
                    "technology"},
           {"cidr", "conference on innovative data systems research"},
           {"kdd", "acm knowledge discovery and data mining"},
           {"www", "the web conference"},
           {"sigir", "acm conference on research and development in "
                     "information retrieval"},
           {"cikm", "acm conference on information and knowledge "
                    "management"},
           {"icdm", "ieee international conference on data mining"},
           {"aaai", "aaai conference on artificial intelligence"},
           {"ijcai", "international joint conference on artificial "
                     "intelligence"},
           {"nips", "conference on neural information processing systems"},
           {"icml", "international conference on machine learning"}};
      auto it = kFullNames.find(record[2]);
      if (it != kFullNames.end()) {
        record[2] = it->second;
        tags.push_back("venue spelled out");
      }
    }
    if (rng.NextBool(0.08)) {
      record[2] = "";
      tags.push_back("missing venue");
    }
    if (rng.NextBool(0.15)) {
      record[3] = "";
      tags.push_back("missing year");
    }
    if (rng.NextBool(0.5)) {
      record[4] = Words(rng, 8, 16, FillerWord);
      tags.push_back("abstract rewritten");
    }
    if (rng.NextBool(0.2)) {
      record[0] = InjectTypo(record[0], rng);
      tags.push_back("misspelling in title");
    }
    if (rng.NextBool(0.4)) {
      // Curators assign keyword lists differently: reorder, drop, replace
      // — and sometimes use an entirely different taxonomy.
      if (rng.NextBool(0.35)) {
        record[5] = Words(rng, 3, 5, ResearchTopic);
      } else {
        record[5] = SwapWords(record[5], rng);
        if (rng.NextBool(0.5)) record[5] = DropWord(record[5], rng);
        if (rng.NextBool(0.3)) {
          record[5] += " " + std::string(ResearchTopic(rng));
        }
      }
      tags.push_back("keywords differ");
    }
    if (rng.NextBool(0.1)) {
      record[5] = "";
      tags.push_back("missing keywords");
    }
    if (rng.NextBool(0.35)) {
      // The two libraries disagree on page numbering.
      int first_page = static_cast<int>(rng.NextBelow(2000)) + 1;
      record[6] = std::to_string(first_page) + "-" +
                  std::to_string(first_page + 10 +
                                 static_cast<int>(rng.NextBelow(15)));
      tags.push_back("pages differ");
    }
  };
  return Assemble("Papers", domain, dims, seed);
}

Result<GeneratedDataset> GenerateByName(const std::string& name, double scale,
                                        uint64_t seed_offset) {
  if (name == "A-G") {
    return GenerateAmazonGoogle(ScaleDims(kDimsAmazonGoogle, scale),
                                42 + seed_offset);
  }
  if (name == "W-A") {
    return GenerateWalmartAmazon(ScaleDims(kDimsWalmartAmazon, scale),
                                 43 + seed_offset);
  }
  if (name == "A-D") {
    return GenerateAcmDblp(ScaleDims(kDimsAcmDblp, scale), 44 + seed_offset);
  }
  if (name == "F-Z") {
    return GenerateFodorsZagats(ScaleDims(kDimsFodorsZagats, scale),
                                45 + seed_offset);
  }
  if (name == "M1") {
    GeneratedDataset dataset =
        GenerateMusic(ScaleDims(kDimsMusic1, scale), 46 + seed_offset);
    dataset.name = "M1";
    return dataset;
  }
  if (name == "M2") {
    GeneratedDataset dataset =
        GenerateMusic(ScaleDims(kDimsMusic2, scale), 48 + seed_offset);
    dataset.name = "M2";
    return dataset;
  }
  if (name == "Papers") {
    return GeneratePapersLarge(ScaleDims(kDimsPapers, scale),
                               47 + seed_offset);
  }
  return Status::InvalidArgument("unknown dataset name: " + name);
}

}  // namespace datagen
}  // namespace mc
