#include "table/table_delta.h"

#include <algorithm>

namespace mc {

bool RowsDelta::Touches(uint32_t row) const {
  return std::binary_search(touched.begin(), touched.end(), row);
}

Result<RowsDelta> MakeRowsDelta(const TableDelta& delta, size_t base_rows) {
  RowsDelta rows;
  rows.side = delta.side;
  rows.appended = delta.appended.size();
  rows.base_rows = base_rows;
  rows.touched.reserve(delta.mutated.size() + delta.deleted.size());
  for (const TableDelta::RowEdit& edit : delta.mutated) {
    rows.touched.push_back(edit.row);
  }
  rows.touched.insert(rows.touched.end(), delta.deleted.begin(),
                      delta.deleted.end());
  std::sort(rows.touched.begin(), rows.touched.end());
  if (std::adjacent_find(rows.touched.begin(), rows.touched.end()) !=
      rows.touched.end()) {
    return Status::InvalidArgument(
        "delta edits the same row twice (mutated/deleted overlap)");
  }
  if (!rows.touched.empty() && rows.touched.back() >= base_rows) {
    return Status::InvalidArgument(
        "delta touches row " + std::to_string(rows.touched.back()) +
        " of a " + std::to_string(base_rows) + "-row table");
  }
  rows.deleted = delta.deleted;
  std::sort(rows.deleted.begin(), rows.deleted.end());
  return rows;
}

Status ApplyDeltaToTable(Table& table, const TableDelta& delta) {
  // Validate the touched-row set up front so row-index errors surface
  // before any cell is changed.
  MC_ASSIGN_OR_RETURN(RowsDelta rows,
                      MakeRowsDelta(delta, table.num_rows()));
  (void)rows;
  for (const TableDelta::RowEdit& edit : delta.mutated) {
    MC_RETURN_IF_ERROR(table.SetRow(edit.row, edit.values));
  }
  // A tombstone clears every cell to missing: the row keeps its id (so
  // PairIds stay stable) but contributes no tokens — exactly what a
  // from-scratch build of the mutated table sees.
  const std::vector<std::string> empty_row(table.num_columns());
  for (uint32_t row : delta.deleted) {
    MC_RETURN_IF_ERROR(table.SetRow(row, empty_row));
  }
  for (const std::vector<std::string>& values : delta.appended) {
    MC_RETURN_IF_ERROR(table.TryAddRow(values));
  }
  return Status::Ok();
}

}  // namespace mc
