#ifndef MATCHCATCHER_TABLE_CSV_H_
#define MATCHCATCHER_TABLE_CSV_H_

#include <string>
#include <string_view>

#include "table/table.h"
#include "util/status.h"

namespace mc {

/// Parses RFC-4180-style CSV text (quoted fields, embedded commas/newlines,
/// doubled quotes). The first record is the header; all attributes are typed
/// kString — run InferAttributeTypes (table/profile.h) afterwards.
Result<Table> ReadCsvString(std::string_view text);

/// Reads and parses a CSV file.
Result<Table> ReadCsvFile(const std::string& path);

/// Serializes `table` to CSV (header + rows, quoting where needed).
std::string WriteCsvString(const Table& table);

/// Writes `table` to `path` as CSV.
Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace mc

#endif  // MATCHCATCHER_TABLE_CSV_H_
