#ifndef MATCHCATCHER_TABLE_TABLE_DELTA_H_
#define MATCHCATCHER_TABLE_TABLE_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "table/table.h"
#include "util/status.h"

namespace mc {

/// A batch of row-level edits against one side of a registered table pair —
/// the unit the incremental-update path (SessionManager::ApplyTableDelta)
/// ingests. Appends grow the table; mutations replace a row's cells in
/// place; deletes tombstone a row (its cells are cleared to missing — row
/// ids stay stable so PairIds in existing top-k lists remain valid).
struct TableDelta {
  struct RowEdit {
    uint32_t row = 0;
    std::vector<std::string> values;
  };

  /// Which table the delta targets: 0 = A, 1 = B.
  uint8_t side = 0;
  std::vector<std::vector<std::string>> appended;
  std::vector<RowEdit> mutated;
  std::vector<uint32_t> deleted;

  bool empty() const {
    return appended.empty() && mutated.empty() && deleted.empty();
  }
};

/// The delta reduced to the row sets the plane / corpus / top-k patchers
/// consume: which pre-existing rows changed content, which of those are
/// tombstones, and how many rows were appended.
struct RowsDelta {
  uint8_t side = 0;
  /// Mutated ∪ deleted rows, sorted ascending, all < base_rows.
  std::vector<uint32_t> touched;
  /// Deleted (tombstoned) rows, sorted ascending; a subset of `touched`.
  std::vector<uint32_t> deleted;
  size_t appended = 0;
  /// Row count of the side before the delta.
  size_t base_rows = 0;

  bool Touches(uint32_t row) const;
};

/// Validates `delta` against `table` (row indices in range, arity and cell
/// sizes per Table::TryAddRow, no row both mutated and deleted, no row
/// edited twice) and applies it: mutations and tombstones via SetRow,
/// appends via TryAddRow. On error the table may hold a prefix of the
/// appends but no mutation is half-applied per row; callers that need
/// all-or-nothing semantics stage on a copy (the service does).
Status ApplyDeltaToTable(Table& table, const TableDelta& delta);

/// Builds the patched-plane view of `delta` for a table that had
/// `base_rows` rows before the delta was applied. Fails (kInvalidArgument)
/// on out-of-range or duplicate touched rows.
Result<RowsDelta> MakeRowsDelta(const TableDelta& delta, size_t base_rows);

}  // namespace mc

#endif  // MATCHCATCHER_TABLE_TABLE_DELTA_H_
