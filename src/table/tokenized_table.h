#ifndef MATCHCATCHER_TABLE_TOKENIZED_TABLE_H_
#define MATCHCATCHER_TABLE_TOKENIZED_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mem/arena.h"
#include "mem/arena_vector.h"
#include "table/table.h"
#include "table/table_delta.h"
#include "text/token_dictionary.h"
#include "util/memory_budget.h"
#include "util/run_context.h"

namespace mc {

/// Which text data path a pipeline runs on. kTokenized is the production
/// path: every cell is normalized and tokenized exactly once into the
/// TokenizedTable arenas below, and all downstream stages (corpus build,
/// profiling, blockers, features, repair) read spans. kLegacy keeps the
/// original WordTokens(std::string)-per-call string path, retained for
/// before/after benchmarking and ablation; both paths produce bit-identical
/// outputs (tests/text_plane_equivalence_test.cc).
enum class TextPlane {
  kTokenized,
  kLegacy,
};

/// High bit of a token-stream entry: set when the token already appeared
/// earlier in the same cell. Masking repeats out of the stream yields the
/// cell's DistinctWordTokens sequence (first-appearance order); keeping
/// them yields the full WordTokens sequence with duplicates.
inline constexpr uint32_t kTextRepeatBit = 0x80000000u;
inline constexpr uint32_t kTextTokenIdMask = 0x7fffffffu;

/// Non-owning view of one cell's slice of a CSR arena. Valid while the
/// owning TokenizedTable is alive.
struct CellSpan {
  const uint32_t* data = nullptr;
  uint32_t length = 0;

  size_t size() const { return length; }
  bool empty() const { return length == 0; }
  uint32_t operator[](size_t i) const { return data[i]; }
  const uint32_t* begin() const { return data; }
  const uint32_t* end() const { return data + length; }
};

/// Options for TokenizedTable::Build.
struct TextPlaneBuildOptions {
  /// Worker threads for the block-parallel tokenize/flatten phases;
  /// 0 = hardware concurrency. The built plane is bit-identical for every
  /// thread count (per-block dictionaries merge in block order, the same
  /// determinism recipe as SsjCorpus::Build).
  size_t num_threads = 0;
  /// Rows per tokenize block; the decomposition depends only on this,
  /// never on the thread count.
  size_t block_rows = 1024;
  /// Cooperative cancellation/deadline. When it fires mid-build, remaining
  /// blocks are skipped and the plane is marked truncated(); a truncated
  /// plane is never served to consumers (SharedTextPlane returns nullptr)
  /// and DebugSession falls back to the legacy string path.
  RunContext run_context;
  /// Optional service-wide memory ceiling. The cell arenas (the plane's
  /// dominant footprint) are charged once their exact size is known, before
  /// allocation; a refused charge marks the plane truncated — it is then
  /// never attached, and consumers fall back to the legacy string path.
  /// The budget must outlive the plane.
  MemoryBudget* memory_budget = nullptr;
};

/// Where TokenizedTable::Build spent its time.
struct TextPlaneBuildStats {
  double tokenize_seconds = 0.0;  // Parallel per-block tokenization.
  double merge_seconds = 0.0;     // Block-order dictionary/pool merge.
  double flatten_seconds = 0.0;   // Rank conversion + CSR arena fill.
  size_t blocks = 0;
  size_t dropped_blocks = 0;  // Cancelled or fault-injected blocks.
  size_t threads = 0;
};

/// The tokenize-once text plane of a table pair: every cell of tables A and
/// B, over *all* columns, normalized and word-tokenized exactly once into
/// CSR arenas at build time. Consumers read spans instead of re-tokenizing
/// strings; string content never leaves the shared dictionary/pool.
///
/// Per cell (addressed side/row/column, cells flattened row-major):
///  - token stream: the full WordTokens sequence as interned ids in
///    appearance order, within-cell repeats flagged with kTextRepeatBit;
///  - sorted ranks: the distinct tokens as global ranks, sorted ascending
///    (rank = position in the dictionary's (document frequency, token)
///    order, rarest first — a consistent total order for O(n+m) overlap
///    merges and prefix filtering);
///  - the interned NormalizeForTokens value (untrimmed; shared pool across
///    both sides, so repeated values cost one string);
///  - q-gram planes, built lazily per (q, column) on first use and cached.
/// Missingness is not duplicated here: Table::IsMissing is already O(1).
///
/// Build parallelism follows SsjCorpus::Build: fixed row blocks tokenized
/// with thread-local dictionaries, then a sequential in-order merge that
/// reproduces the global stream-first-occurrence ids a single-threaded pass
/// would assign — the plane is bit-identical for every thread count.
///
/// Immutable after Build (the lazy q-gram cache is internally locked), so
/// one plane is safely shared by both tables and all threads.
class TokenizedTable {
 public:
  /// Lazily built per-(q, column) gram plane: distinct q-gram ids of every
  /// cell in the column (both sides), sorted ascending per cell. Gram ids
  /// are local to this plane; only counts/overlaps are meaningful.
  struct QGramColumn {
    std::vector<uint64_t> offsets[2];  // rows(side) + 1 entries.
    std::vector<uint32_t> grams[2];
    size_t dictionary_size = 0;

    CellSpan Row(size_t side, size_t row) const {
      return CellSpan{
          grams[side].data() + offsets[side][row],
          static_cast<uint32_t>(offsets[side][row + 1] -
                                offsets[side][row])};
    }
  };

  /// Tokenizes every cell of both tables. Never fails: cancellation and
  /// injected faults drop blocks and mark the plane truncated().
  static std::shared_ptr<const TokenizedTable> Build(
      const Table& table_a, const Table& table_b,
      const TextPlaneBuildOptions& options = {},
      TextPlaneBuildStats* stats = nullptr);

  /// Build() + attach to both tables (side 0 = `table_a`, 1 = `table_b`).
  /// A truncated plane is not attached. Returns the plane either way.
  static std::shared_ptr<const TokenizedTable> BuildAndAttach(
      Table& table_a, Table& table_b,
      const TextPlaneBuildOptions& options = {},
      TextPlaneBuildStats* stats = nullptr);

  /// Patches `base` with a row delta instead of rebuilding: only the
  /// touched and appended cells of the delta side are re-tokenized (new
  /// tokens are interned past the published dictionary; retired tokens keep
  /// their ids with df 0 and rank after every live token), untouched cell
  /// content is bulk-copied, and both sides' sorted-rank arenas are
  /// rewritten through an old-rank -> new-rank map (integer-only). Deleted
  /// rows are recorded in the tombstone bitmap; their cells are empty, as a
  /// rebuild of the mutated tables would see them.
  ///
  /// `table_a`/`table_b` must already hold the post-delta contents. The
  /// result is content-identical to Build() on the mutated tables
  /// (ContentCrc matches bit for bit); ids and pool slots may differ, so
  /// equality is defined over ranks and strings, which is all consumers
  /// observe.
  ///
  /// Returns nullptr — base untouched, nothing attached — when the delta
  /// does not match the plane's dimensions, the memory budget refuses the
  /// patched arenas, or the "text_plane/apply_delta" fault point fires.
  static std::shared_ptr<const TokenizedTable> ApplyDelta(
      const TokenizedTable& base, const Table& table_a, const Table& table_b,
      const RowsDelta& delta, const TextPlaneBuildOptions& options = {});

  size_t num_rows(size_t side) const { return rows_[side]; }
  size_t num_columns() const { return num_columns_; }

  /// O(1) missing bit, mirroring Table::IsMissing at build time.
  bool missing(size_t side, size_t row, size_t column) const {
    return missing_[side][Cell(side, row, column)] != 0;
  }

  /// Full WordTokens sequence of the cell: interned ids in appearance
  /// order; entries with kTextRepeatBit set are within-cell repeats.
  CellSpan TokenStream(size_t side, size_t row, size_t column) const {
    return Span(stream_[side], stream_offsets_[side],
                Cell(side, row, column));
  }

  /// Distinct tokens of the cell as global ranks, sorted ascending.
  CellSpan SortedRanks(size_t side, size_t row, size_t column) const {
    return Span(sorted_[side], sorted_offsets_[side],
                Cell(side, row, column));
  }

  /// Word-token count with duplicates (what profiling averages).
  uint32_t TokenCount(size_t side, size_t row, size_t column) const {
    const size_t cell = Cell(side, row, column);
    return static_cast<uint32_t>(stream_offsets_[side][cell + 1] -
                                 stream_offsets_[side][cell]);
  }

  /// Distinct word-token count (set semantics).
  uint32_t DistinctTokenCount(size_t side, size_t row, size_t column) const {
    const size_t cell = Cell(side, row, column);
    return static_cast<uint32_t>(sorted_offsets_[side][cell + 1] -
                                 sorted_offsets_[side][cell]);
  }

  /// The cell's NormalizeForTokens value, untrimmed (consumers trim on the
  /// fly where legacy code did). Interned: equal values share one string.
  std::string_view NormalizedValue(size_t side, size_t row,
                                   size_t column) const {
    return norm_values_[norm_ids_[side][Cell(side, row, column)]];
  }

  /// Pool id of the cell's normalized value — equal ids iff equal
  /// normalized values (profiling dedups on this instead of re-hashing
  /// strings).
  uint32_t NormId(size_t side, size_t row, size_t column) const {
    return norm_ids_[side][Cell(side, row, column)];
  }

  /// First / last word token of the cell ("" when the cell has none).
  std::string_view FirstTokenOf(size_t side, size_t row,
                                size_t column) const {
    CellSpan stream = TokenStream(side, row, column);
    if (stream.empty()) return {};
    return dictionary_.TokenOf(stream[0] & kTextTokenIdMask);
  }
  std::string_view LastTokenOf(size_t side, size_t row,
                               size_t column) const {
    CellSpan stream = TokenStream(side, row, column);
    if (stream.empty()) return {};
    return dictionary_.TokenOf(stream[stream.size() - 1] & kTextTokenIdMask);
  }

  /// The shared word dictionary (ids comparable across both sides). Ranks
  /// are finalized: RankOf is valid for every id in the streams.
  const TokenDictionary& word_dictionary() const { return dictionary_; }

  /// The (q, column) gram plane, built on first use and cached (lazy:
  /// q-gram consumers touch few columns). Returns nullptr for q == 0,
  /// out-of-range columns, or a truncated plane. Thread-safe.
  const QGramColumn* QGramsForColumn(size_t q, size_t column) const;

  /// True when the build was cut short: some cells have empty token lists
  /// and the plane must not be consulted (SharedTextPlane / attach both
  /// refuse truncated planes).
  bool truncated() const { return truncated_; }

  /// True when `row` was deleted by a delta (its cells are empty and its
  /// missing bits set; the row id stays valid). Always false on freshly
  /// built planes.
  bool row_tombstoned(size_t side, size_t row) const {
    return row < tombstones_[side].size() && tombstones_[side][row] != 0;
  }
  size_t tombstone_count(size_t side) const {
    size_t count = 0;
    for (uint8_t bit : tombstones_[side]) count += bit;
    return count;
  }

  /// Dictionary entries whose document frequency dropped to zero through
  /// deltas. They rank after all live tokens (so content equality with a
  /// rebuild holds) but still occupy id space and string storage — the
  /// service triggers compaction (a full rebuild) once
  /// dead_token_fraction() passes its threshold.
  size_t dead_tokens() const { return dead_tokens_; }
  double dead_token_fraction() const {
    return dictionary_.size() == 0
               ? 0.0
               : static_cast<double>(dead_tokens_) /
                     static_cast<double>(dictionary_.size());
  }

  /// Canonical content checksum: dims, missing bits, normalized value
  /// strings, token streams and sorted arenas with every token expressed as
  /// its global *rank* (ids and pool slots are build-order artifacts; ranks
  /// and strings are what consumers observe). A patched plane and a
  /// from-scratch rebuild of the same mutated tables produce the same CRC —
  /// the delta-equivalence contract.
  uint32_t ContentCrc() const;

  const TextPlaneBuildStats& build_stats() const { return build_stats_; }

  /// Exact resident footprint of the plane's arena — the cell arenas,
  /// offset tables, norm ids, and missing bits all allocate through it, and
  /// the arena charges the memory budget exactly this many bytes (charge ==
  /// reservation, the mem/ subsystem contract). The sizing signal for the
  /// service's shared-plane LRU cache. Excludes dictionary/pool string
  /// storage and lazy q-gram planes, which stay on the heap.
  size_t MemoryBytes() const {
    return arena_ != nullptr ? arena_->ReservedBytes() : 0;
  }

 private:
  TokenizedTable() = default;

  size_t Cell(size_t side, size_t row, size_t column) const {
    MC_CHECK_LT(row, rows_[side]);
    MC_CHECK_LT(column, num_columns_);
    return row * num_columns_ + column;
  }
  static CellSpan Span(const mem::ArenaVector<uint32_t>& arena,
                       const mem::ArenaVector<uint64_t>& offsets,
                       size_t cell) {
    return CellSpan{arena.data() + offsets[cell],
                    static_cast<uint32_t>(offsets[cell + 1] - offsets[cell])};
  }

  /// Points every CSR vector at `arena` (all must still be empty).
  void BindVectorsToArena(mem::Arena* arena);

  size_t num_columns_ = 0;
  size_t rows_[2] = {0, 0};
  // Backs every CSR vector below; charges the build's MemoryBudget exactly
  // its reserved bytes. Heap-allocated so the vectors' allocator pointers
  // stay stable if the plane object moves.
  std::unique_ptr<mem::Arena> arena_;
  mem::ArenaVector<uint64_t> stream_offsets_[2];  // rows*columns+1 entries.
  mem::ArenaVector<uint32_t> stream_[2];
  mem::ArenaVector<uint64_t> sorted_offsets_[2];
  mem::ArenaVector<uint32_t> sorted_[2];
  mem::ArenaVector<uint32_t> norm_ids_[2];
  mem::ArenaVector<uint8_t> missing_[2];
  // Rows deleted by deltas (empty on freshly built planes; sized lazily).
  std::vector<uint8_t> tombstones_[2];
  std::vector<std::string> norm_values_;  // Shared normalized-value pool.
  TokenDictionary dictionary_;
  size_t dead_tokens_ = 0;
  bool truncated_ = false;
  TextPlaneBuildStats build_stats_;
  // Lazy (q, column) gram planes; unique_ptr keeps returned pointers
  // stable across rehashes. Guarded for concurrent consumers.
  mutable std::shared_mutex qgram_mutex_;
  mutable std::unordered_map<uint64_t, std::unique_ptr<QGramColumn>>
      qgram_cache_;
};

/// The plane attached to `table`, or nullptr when there is none, it is
/// truncated, or its dimensions no longer cover the table. Single-table
/// consumers (profiling, key functions) gate their fast path on this.
const TokenizedTable* AttachedTextPlane(const Table& table);

/// The plane shared by both tables (same object attached to each, covering
/// both), or nullptr. Pair consumers (predicates, features, repair, corpus
/// build) gate their fast path on this; nullptr means the legacy string
/// path — which is exactly the TextPlane::kLegacy behaviour.
const TokenizedTable* SharedTextPlane(const Table& table_a,
                                      const Table& table_b);

/// Intersection size of two ascending-sorted spans (greedy merge count;
/// duplicates count with multiset semantics). Routed through the
/// SIMD-dispatched kernel plane (simd/kernels.h) — bit-identical at every
/// dispatch level.
size_t SortedSpanOverlap(CellSpan a, CellSpan b);

}  // namespace mc

#endif  // MATCHCATCHER_TABLE_TOKENIZED_TABLE_H_
