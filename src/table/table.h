#ifndef MATCHCATCHER_TABLE_TABLE_H_
#define MATCHCATCHER_TABLE_TABLE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "table/schema.h"
#include "util/check.h"

namespace mc {

/// Column-oriented in-memory table. Cell values are stored as raw strings
/// (the form in which EM source data arrives); an empty string after
/// whitespace trimming is treated as a missing value. Numeric access parses
/// on demand.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema)
      : schema_(std::move(schema)), columns_(schema_.size()) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.size(); }

  /// Appends a row; `values` must have one entry per schema attribute.
  void AddRow(std::vector<std::string> values);

  /// Raw cell value ("" when missing).
  std::string_view Value(size_t row, size_t column) const {
    MC_CHECK_LT(row, num_rows_);
    MC_CHECK_LT(column, columns_.size());
    return columns_[column][row];
  }

  /// True when the cell is empty / whitespace-only.
  bool IsMissing(size_t row, size_t column) const;

  /// Cell parsed as double, if present and parseable.
  std::optional<double> NumericValue(size_t row, size_t column) const;

  /// Whole column (reference valid until the next AddRow).
  const std::vector<std::string>& Column(size_t column) const {
    MC_CHECK_LT(column, columns_.size());
    return columns_[column];
  }

  /// Replaces the schema's attribute types (used after type inference).
  /// Names and arity must be unchanged.
  void SetSchema(Schema schema);

 private:
  Schema schema_;
  std::vector<std::vector<std::string>> columns_;
  size_t num_rows_ = 0;
};

/// Parses `text` as a double; rejects trailing garbage.
std::optional<double> ParseDouble(std::string_view text);

}  // namespace mc

#endif  // MATCHCATCHER_TABLE_TABLE_H_
