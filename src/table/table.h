#ifndef MATCHCATCHER_TABLE_TABLE_H_
#define MATCHCATCHER_TABLE_TABLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "table/schema.h"
#include "util/check.h"
#include "util/status.h"

namespace mc {

class TokenizedTable;

/// Column-oriented in-memory table. Cell values are stored as raw strings
/// (the form in which EM source data arrives); an empty string after
/// whitespace trimming is treated as a missing value (the missing bit is
/// precomputed at AddRow time, so IsMissing is O(1)). Numeric access parses
/// on demand.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema)
      : schema_(std::move(schema)),
        columns_(schema_.size()),
        missing_(schema_.size()) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.size(); }

  /// Appends a row; `values` must have one entry per schema attribute.
  /// Fatally checks the TryAddRow preconditions — use TryAddRow for
  /// untrusted input.
  void AddRow(std::vector<std::string> values);

  /// Appends a row with typed validation: kInvalidArgument when the arity
  /// does not match the schema or a cell exceeds MaxCellBytes() (a cell
  /// that large would overflow the text plane's uint32 span lengths —
  /// tokenized_table.h TokenSpan/CellSpan).
  Status TryAddRow(std::vector<std::string> values);

  /// Replaces an existing row's cells in place (same validation as
  /// TryAddRow, plus `row < num_rows()`). Missing bits are recomputed;
  /// any attached text plane is detached.
  Status SetRow(size_t row, std::vector<std::string> values);

  /// Largest accepted cell, in bytes. One token per byte is the worst case,
  /// so this bound keeps every per-cell token count below the text plane's
  /// uint32 span-length limit.
  static size_t MaxCellBytes();
  /// Test hook: lowers the cell-size ceiling so the rejection path is
  /// reachable without allocating gigabytes. 0 restores the default.
  static void SetMaxCellBytesForTest(size_t bytes);

  /// Raw cell value ("" when missing).
  std::string_view Value(size_t row, size_t column) const {
    MC_CHECK_LT(row, num_rows_);
    MC_CHECK_LT(column, columns_.size());
    return columns_[column][row];
  }

  /// True when the cell is empty / whitespace-only. O(1): the bit is
  /// precomputed by AddRow (this is called in hot profiling loops).
  bool IsMissing(size_t row, size_t column) const {
    MC_CHECK_LT(row, num_rows_);
    MC_CHECK_LT(column, missing_.size());
    return missing_[column][row] != 0;
  }

  /// Cell parsed as double, if present and parseable.
  std::optional<double> NumericValue(size_t row, size_t column) const;

  /// Whole column (reference valid until the next AddRow).
  const std::vector<std::string>& Column(size_t column) const {
    MC_CHECK_LT(column, columns_.size());
    return columns_[column];
  }

  /// Replaces the schema's attribute types (used after type inference).
  /// Names and arity must be unchanged. Does not detach the text plane
  /// (plane content depends only on cell values, never on types).
  void SetSchema(Schema schema);

  /// Attaches a tokenize-once text plane (table/tokenized_table.h); `side`
  /// is this table's side within the plane (0 = A, 1 = B). Consumers use
  /// the plane for span reads instead of re-tokenizing cell strings.
  /// AddRow detaches it again — a mutated table no longer matches the
  /// plane's cell contents.
  void AttachTextPlane(std::shared_ptr<const TokenizedTable> plane,
                       uint8_t side) {
    text_plane_ = std::move(plane);
    text_plane_side_ = side;
  }

  /// Drops the attached plane (forces the legacy string path).
  void DetachTextPlane() { text_plane_.reset(); }

  /// The attached plane, or nullptr. Prefer AttachedTextPlane() /
  /// SharedTextPlane() (tokenized_table.h), which also verify coverage.
  const TokenizedTable* text_plane() const { return text_plane_.get(); }
  std::shared_ptr<const TokenizedTable> text_plane_ref() const {
    return text_plane_;
  }
  uint8_t text_plane_side() const { return text_plane_side_; }

 private:
  Status ValidateRow(const std::vector<std::string>& values) const;

  Schema schema_;
  std::vector<std::vector<std::string>> columns_;
  // Per-column missing bitmap, parallel to columns_ (1 = whitespace-only).
  std::vector<std::vector<uint8_t>> missing_;
  size_t num_rows_ = 0;
  std::shared_ptr<const TokenizedTable> text_plane_;
  uint8_t text_plane_side_ = 0;
};

/// Parses `text` as a double; rejects trailing garbage.
std::optional<double> ParseDouble(std::string_view text);

}  // namespace mc

#endif  // MATCHCATCHER_TABLE_TABLE_H_
