#include "table/schema.h"

namespace mc {

const char* AttributeTypeName(AttributeType type) {
  switch (type) {
    case AttributeType::kString:
      return "string";
    case AttributeType::kNumeric:
      return "numeric";
    case AttributeType::kCategorical:
      return "categorical";
    case AttributeType::kBoolean:
      return "boolean";
  }
  return "unknown";
}

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    bool inserted = index_by_name_.emplace(attributes_[i].name, i).second;
    MC_CHECK(inserted) << "duplicate attribute name:" << attributes_[i].name;
  }
}

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  auto it = index_by_name_.find(std::string(name));
  if (it == index_by_name_.end()) return std::nullopt;
  return it->second;
}

size_t Schema::RequireIndexOf(std::string_view name) const {
  std::optional<size_t> index = IndexOf(name);
  MC_CHECK(index.has_value()) << "no attribute named" << name;
  return *index;
}

bool Schema::operator==(const Schema& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name != other.attributes_[i].name ||
        attributes_[i].type != other.attributes_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace mc
