#include "table/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace mc {

namespace {

// One parsed CSV record plus the 1-based line it started on — quoted
// fields may span lines, so error reporting needs the start, not the end.
struct CsvRecord {
  std::vector<std::string> fields;
  size_t line = 1;
};

std::string LinePrefix(size_t line) {
  return "CSV line " + std::to_string(line) + ": ";
}

// Splits CSV text into records of fields, honoring quotes. Malformed input
// (stray quotes, unterminated quotes, embedded NUL bytes) fails with
// InvalidArgument and a 1-based line number instead of misparsing.
Result<std::vector<CsvRecord>> ParseCsv(std::string_view text) {
  std::vector<CsvRecord> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  size_t line = 1;          // Current 1-based line.
  size_t record_line = 1;   // Line the current record started on.
  size_t quote_line = 1;    // Line the open quote started on.

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(CsvRecord{std::move(record), record_line});
    record.clear();
  };

  while (i < text.size()) {
    char c = text[i];
    if (c == '\0') {
      // NUL never belongs in CSV text; it usually means a binary file or a
      // torn write. Parsing on would silently corrupt downstream C string
      // handling, so reject it even inside quotes.
      return Status::InvalidArgument(LinePrefix(line) +
                                     "embedded NUL byte");
    }
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
      }
    } else if (c == '"') {
      if (field.empty() && !field_started) {
        in_quotes = true;
        quote_line = line;
        field_started = true;
      } else {
        return Status::InvalidArgument(LinePrefix(line) +
                                       "quote inside unquoted field");
      }
    } else if (c == ',') {
      end_field();
    } else if (c == '\r') {
      // Swallow; \r\n and bare \r both end the line via the \n / next char.
      if (i + 1 >= text.size() || text[i + 1] != '\n') {
        end_record();
        ++line;
        record_line = line;
      }
    } else if (c == '\n') {
      end_record();
      ++line;
      record_line = line;
    } else {
      field.push_back(c);
      field_started = true;
    }
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument(LinePrefix(quote_line) +
                                   "unterminated quoted field");
  }
  if (field_started || !field.empty() || !record.empty()) end_record();
  return records;
}

bool NeedsQuoting(std::string_view field) {
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendCsvField(std::string_view field, std::string& out) {
  if (!NeedsQuoting(field)) {
    out.append(field);
    return;
  }
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

Result<Table> ReadCsvString(std::string_view text) {
  MC_ASSIGN_OR_RETURN(std::vector<CsvRecord> records, ParseCsv(text));
  if (records.empty()) {
    return Status::InvalidArgument("CSV has no header record");
  }

  std::vector<Attribute> attributes;
  attributes.reserve(records[0].fields.size());
  for (const std::string& name : records[0].fields) {
    attributes.push_back(Attribute{name, AttributeType::kString});
  }
  Table table((Schema(std::move(attributes))));

  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].fields.size() != table.schema().size()) {
      std::ostringstream message;
      message << LinePrefix(records[r].line) << "record has "
              << records[r].fields.size() << " fields, expected "
              << table.schema().size();
      return Status::InvalidArgument(message.str());
    }
    Status added = table.TryAddRow(std::move(records[r].fields));
    if (!added.ok()) {
      return Status::InvalidArgument(LinePrefix(records[r].line) +
                                     added.message());
    }
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path) {
  std::ifstream input(path, std::ios::binary);
  if (!input) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << input.rdbuf();
  if (input.bad()) return Status::IoError("read failed for " + path);
  return ReadCsvString(buffer.str());
}

std::string WriteCsvString(const Table& table) {
  std::string out;
  for (size_t c = 0; c < table.schema().size(); ++c) {
    if (c > 0) out.push_back(',');
    AppendCsvField(table.schema().attribute(c).name, out);
  }
  out.push_back('\n');
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.schema().size(); ++c) {
      if (c > 0) out.push_back(',');
      AppendCsvField(table.Value(r, c), out);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream output(path, std::ios::binary);
  if (!output) return Status::IoError("cannot open " + path);
  output << WriteCsvString(table);
  if (!output) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace mc
