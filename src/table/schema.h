#ifndef MATCHCATCHER_TABLE_SCHEMA_H_
#define MATCHCATCHER_TABLE_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace mc {

/// Semantic attribute types distinguished by the config generator (§3.2:
/// numeric attributes are dropped; categorical/boolean attributes are dropped
/// when their value sets differ across the two tables).
enum class AttributeType {
  kString,
  kNumeric,
  kCategorical,
  kBoolean,
};

const char* AttributeTypeName(AttributeType type);

/// A named, typed column.
struct Attribute {
  std::string name;
  AttributeType type = AttributeType::kString;
};

/// Ordered list of attributes shared by the two input tables (the paper
/// assumes A and B share one schema; different-schema support is future work
/// there and here).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  size_t size() const { return attributes_.size(); }

  const Attribute& attribute(size_t index) const {
    MC_CHECK_LT(index, attributes_.size());
    return attributes_[index];
  }

  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, if present.
  std::optional<size_t> IndexOf(std::string_view name) const;

  /// Fatal if `name` is not present; convenience for tests and examples.
  size_t RequireIndexOf(std::string_view name) const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, size_t> index_by_name_;
};

}  // namespace mc

#endif  // MATCHCATCHER_TABLE_SCHEMA_H_
