#include "table/profile.h"

#include <algorithm>
#include <cstdint>

#include "table/tokenized_table.h"
#include "text/normalize.h"
#include "text/tokenize.h"

namespace mc {

double AttributeProfile::SingleTableEScore() const {
  const double n = non_missing_ratio;
  const double u = unique_ratio;
  if (n + u <= 0.0) return 0.0;
  return 2.0 * n * u / (n + u);
}

AttributeProfile ProfileAttribute(const Table& table, size_t column) {
  AttributeProfile profile;
  const size_t rows = table.num_rows();
  if (rows == 0) return profile;

  size_t non_missing = 0;
  size_t total_tokens = 0;
  const TokenizedTable* plane = AttachedTextPlane(table);
  if (plane != nullptr) {
    // Span path: token counts and normalized values were computed once at
    // plane build; dedup on interned norm ids before touching the string
    // set. Same insert/cap trajectory as the string path below.
    const size_t side = table.text_plane_side();
    std::unordered_set<uint32_t> seen_norms;
    for (size_t r = 0; r < rows; ++r) {
      if (table.IsMissing(r, column)) continue;
      ++non_missing;
      total_tokens += plane->TokenCount(side, r, column);
      if (!profile.distinct_values_truncated) {
        if (seen_norms.insert(plane->NormId(side, r, column)).second) {
          profile.distinct_values.insert(std::string(
              TrimWhitespace(plane->NormalizedValue(side, r, column))));
        }
        if (profile.distinct_values.size() >
            AttributeProfile::kMaxDistinctTracked) {
          profile.distinct_values_truncated = true;
        }
      }
    }
  } else {
    for (size_t r = 0; r < rows; ++r) {
      if (table.IsMissing(r, column)) continue;
      ++non_missing;
      std::string normalized = NormalizeForTokens(table.Value(r, column));
      total_tokens += WordTokens(normalized).size();
      if (!profile.distinct_values_truncated) {
        profile.distinct_values.insert(std::string(
            TrimWhitespace(normalized)));
        if (profile.distinct_values.size() >
            AttributeProfile::kMaxDistinctTracked) {
          profile.distinct_values_truncated = true;
        }
      }
    }
  }
  profile.non_missing_ratio = static_cast<double>(non_missing) / rows;
  profile.unique_ratio =
      non_missing == 0 ? 0.0
                       : static_cast<double>(profile.distinct_values.size()) /
                             non_missing;
  if (profile.distinct_values_truncated) {
    // With the cap hit, the unique ratio is a lower bound; attributes this
    // diverse are effectively fully unique for e-score purposes.
    profile.unique_ratio = std::min(1.0, profile.unique_ratio * 2.0);
  }
  profile.average_token_length = static_cast<double>(total_tokens) / rows;
  return profile;
}

std::vector<AttributeProfile> ProfileTable(const Table& table) {
  std::vector<AttributeProfile> profiles;
  profiles.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    profiles.push_back(ProfileAttribute(table, c));
  }
  return profiles;
}

double ValueSetJaccard(const AttributeProfile& a, const AttributeProfile& b) {
  if (a.distinct_values.empty() && b.distinct_values.empty()) return 1.0;
  size_t overlap = 0;
  const auto& small = a.distinct_values.size() <= b.distinct_values.size()
                          ? a.distinct_values
                          : b.distinct_values;
  const auto& large = a.distinct_values.size() <= b.distinct_values.size()
                          ? b.distinct_values
                          : a.distinct_values;
  for (const std::string& value : small) {
    if (large.count(value) > 0) ++overlap;
  }
  size_t union_size =
      a.distinct_values.size() + b.distinct_values.size() - overlap;
  return union_size == 0 ? 1.0
                         : static_cast<double>(overlap) / union_size;
}

namespace {

bool LooksBoolean(const std::unordered_set<std::string>& values) {
  static const char* const kBooleanLexicon[] = {
      "true", "false", "yes", "no", "y", "n", "t", "f", "0", "1", "m",
  };
  if (values.empty() || values.size() > 4) return false;
  for (const std::string& value : values) {
    bool known = false;
    for (const char* lexeme : kBooleanLexicon) {
      if (value == lexeme) {
        known = true;
        break;
      }
    }
    if (!known) return false;
  }
  return true;
}

AttributeType ClassifyColumn(const Table& table, size_t column,
                             const AttributeProfile& profile) {
  const size_t rows = table.num_rows();
  size_t non_missing = 0;
  size_t numeric = 0;
  for (size_t r = 0; r < rows; ++r) {
    if (table.IsMissing(r, column)) continue;
    ++non_missing;
    if (table.NumericValue(r, column).has_value()) ++numeric;
  }
  if (non_missing > 0 &&
      static_cast<double>(numeric) / non_missing >= 0.9) {
    return AttributeType::kNumeric;
  }
  if (LooksBoolean(profile.distinct_values)) return AttributeType::kBoolean;
  // Categorical: few distinct short values relative to table size.
  const size_t distinct = profile.distinct_values.size();
  const bool few_distinct =
      !profile.distinct_values_truncated &&
      distinct <= std::max<size_t>(12, non_missing / 20);
  if (few_distinct && non_missing >= 2 * distinct &&
      profile.average_token_length <= 3.0) {
    return AttributeType::kCategorical;
  }
  return AttributeType::kString;
}

}  // namespace

Schema InferAttributeTypes(const Table& table) {
  std::vector<Attribute> attributes = table.schema().attributes();
  for (size_t c = 0; c < attributes.size(); ++c) {
    AttributeProfile profile = ProfileAttribute(table, c);
    attributes[c].type = ClassifyColumn(table, c, profile);
  }
  return Schema(std::move(attributes));
}

}  // namespace mc
