#ifndef MATCHCATCHER_TABLE_PROFILE_H_
#define MATCHCATCHER_TABLE_PROFILE_H_

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "table/table.h"

namespace mc {

/// Per-attribute statistics feeding the config generator (Def. 3.1 and the
/// long-attribute procedure of §3.2).
struct AttributeProfile {
  /// n(f): fraction of tuples with a non-missing value for f.
  double non_missing_ratio = 0.0;
  /// u(f): distinct non-missing values over non-missing values.
  double unique_ratio = 0.0;
  /// AL_f: average number of word tokens over all tuples (missing = 0).
  double average_token_length = 0.0;
  /// Distinct normalized values (capped; see kMaxDistinctTracked).
  std::unordered_set<std::string> distinct_values;
  /// True when distinct_values hit the cap and was abandoned.
  bool distinct_values_truncated = false;

  static constexpr size_t kMaxDistinctTracked = 4096;

  /// e_T(f) = 2 n(f) u(f) / (n(f) + u(f)) — the harmonic mean from
  /// Def. 3.1 for a single table; 0 when both ratios are 0.
  double SingleTableEScore() const;
};

/// Profiles one attribute of `table`.
AttributeProfile ProfileAttribute(const Table& table, size_t column);

/// Profiles every attribute.
std::vector<AttributeProfile> ProfileTable(const Table& table);

/// Jaccard similarity of the distinct (normalized) value sets of column
/// `column` across the two tables; used to drop categorical/boolean
/// attributes whose appearances differ (§3.2).
double ValueSetJaccard(const AttributeProfile& a, const AttributeProfile& b);

/// Rule-based attribute type classifier (§3.2 "using a rule-based
/// classifier"): numeric when nearly all non-missing values parse as
/// numbers; boolean for tiny truthy vocabularies; categorical for small
/// distinct-value sets of short values; string otherwise. Returns a copy of
/// the schema with inferred types.
Schema InferAttributeTypes(const Table& table);

}  // namespace mc

#endif  // MATCHCATCHER_TABLE_PROFILE_H_
