#include "table/table.h"

#include <cstdlib>

#include "text/normalize.h"

namespace mc {
namespace {

// Cells are tokenized into uint32-length spans (tokenized_table.h); at one
// token per byte, capping cells below 2^31 bytes keeps every span length
// representable with room for the repeat-bit encoding.
constexpr size_t kDefaultMaxCellBytes = size_t{1} << 31;
size_t g_max_cell_bytes = kDefaultMaxCellBytes;

}  // namespace

size_t Table::MaxCellBytes() { return g_max_cell_bytes; }

void Table::SetMaxCellBytesForTest(size_t bytes) {
  g_max_cell_bytes = bytes == 0 ? kDefaultMaxCellBytes : bytes;
}

void Table::AddRow(std::vector<std::string> values) {
  Status status = TryAddRow(std::move(values));
  MC_CHECK(status.ok()) << status.ToString();
}

Status Table::TryAddRow(std::vector<std::string> values) {
  MC_RETURN_IF_ERROR(ValidateRow(values));
  for (size_t i = 0; i < values.size(); ++i) {
    missing_[i].push_back(TrimWhitespace(values[i]).empty() ? 1 : 0);
    columns_[i].push_back(std::move(values[i]));
  }
  ++num_rows_;
  // Any attached text plane no longer matches the cell contents.
  text_plane_.reset();
  return Status::Ok();
}

Status Table::SetRow(size_t row, std::vector<std::string> values) {
  if (row >= num_rows_) {
    return Status::InvalidArgument("SetRow: row " + std::to_string(row) +
                                   " out of range (" +
                                   std::to_string(num_rows_) + " rows)");
  }
  MC_RETURN_IF_ERROR(ValidateRow(values));
  for (size_t i = 0; i < values.size(); ++i) {
    missing_[i][row] = TrimWhitespace(values[i]).empty() ? 1 : 0;
    columns_[i][row] = std::move(values[i]);
  }
  text_plane_.reset();
  return Status::Ok();
}

Status Table::ValidateRow(const std::vector<std::string>& values) const {
  if (values.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(values.size()) + " cells, schema has " +
        std::to_string(schema_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].size() > MaxCellBytes()) {
      return Status::InvalidArgument(
          "cell for attribute '" + schema_.attribute(i).name + "' is " +
          std::to_string(values[i].size()) + " bytes, limit " +
          std::to_string(MaxCellBytes()) +
          " (token spans are uint32-length)");
    }
  }
  return Status::Ok();
}

std::optional<double> Table::NumericValue(size_t row, size_t column) const {
  if (IsMissing(row, column)) return std::nullopt;
  return ParseDouble(Value(row, column));
}

void Table::SetSchema(Schema schema) {
  MC_CHECK_EQ(schema.size(), schema_.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    MC_CHECK(schema.attribute(i).name == schema_.attribute(i).name)
        << "SetSchema must not rename attributes";
  }
  schema_ = std::move(schema);
}

std::optional<double> ParseDouble(std::string_view text) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) return std::nullopt;
  // Strip a leading currency symbol, a common artifact in product data.
  if (trimmed.front() == '$') trimmed.remove_prefix(1);
  std::string buffer(trimmed);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return std::nullopt;
  return value;
}

}  // namespace mc
