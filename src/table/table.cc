#include "table/table.h"

#include <cstdlib>

#include "text/normalize.h"

namespace mc {

void Table::AddRow(std::vector<std::string> values) {
  MC_CHECK_EQ(values.size(), schema_.size());
  for (size_t i = 0; i < values.size(); ++i) {
    missing_[i].push_back(TrimWhitespace(values[i]).empty() ? 1 : 0);
    columns_[i].push_back(std::move(values[i]));
  }
  ++num_rows_;
  // Any attached text plane no longer matches the cell contents.
  text_plane_.reset();
}

std::optional<double> Table::NumericValue(size_t row, size_t column) const {
  if (IsMissing(row, column)) return std::nullopt;
  return ParseDouble(Value(row, column));
}

void Table::SetSchema(Schema schema) {
  MC_CHECK_EQ(schema.size(), schema_.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    MC_CHECK(schema.attribute(i).name == schema_.attribute(i).name)
        << "SetSchema must not rename attributes";
  }
  schema_ = std::move(schema);
}

std::optional<double> ParseDouble(std::string_view text) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) return std::nullopt;
  // Strip a leading currency symbol, a common artifact in product data.
  if (trimmed.front() == '$') trimmed.remove_prefix(1);
  std::string buffer(trimmed);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return std::nullopt;
  return value;
}

}  // namespace mc
