#include "table/tokenized_table.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "simd/kernels.h"
#include "text/normalize.h"
#include "text/tokenize.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mc {

namespace {

// Product of tokenizing one block of rows with thread-local dictionaries.
// Local ids are assigned in first-occurrence order within the block; the
// sequential block-order merge then reproduces the global stream-order ids
// a single-threaded build would have assigned (a token's first global
// occurrence lies in the earliest block containing it) — the same recipe
// that makes SsjCorpus::Build bit-identical for every thread count.
struct PlaneBlock {
  size_t begin_row = 0;
  size_t num_rows = 0;
  std::vector<std::string> tokens;  // Local word id -> token string.
  std::vector<uint32_t> local_df;   // Cells containing the token (distinct).
  std::vector<std::string> norms;   // Local norm id -> normalized value.
  // Cells concatenated row-major: local ids in appearance order, within-cell
  // repeats flagged with kTextRepeatBit.
  std::vector<uint32_t> stream;
  std::vector<uint32_t> cell_stream_sizes;
  std::vector<uint32_t> cell_distinct_sizes;
  std::vector<uint32_t> cell_norm_ids;  // Local norm id per cell.
  std::vector<TokenId> id_map;          // Local -> global (set by the merge).
  std::vector<uint32_t> norm_id_map;    // Local -> pool id (set by the merge).
  // Cancelled or fault-injected: cells stay empty, plane marked truncated.
  bool dropped = false;
};

void TokenizePlaneBlock(const Table& table, size_t num_columns,
                        PlaneBlock& block) {
  std::unordered_map<std::string, uint32_t> local_ids;
  std::unordered_map<std::string, uint32_t> local_norms;
  std::vector<uint32_t> cell_distinct;  // Scratch: cells hold few tokens.
  std::string token;
  block.cell_stream_sizes.reserve(block.num_rows * num_columns);
  block.cell_distinct_sizes.reserve(block.num_rows * num_columns);
  block.cell_norm_ids.reserve(block.num_rows * num_columns);
  for (size_t row = block.begin_row; row < block.begin_row + block.num_rows;
       ++row) {
    for (size_t column = 0; column < num_columns; ++column) {
      std::string normalized = NormalizeForTokens(table.Value(row, column));
      auto [norm_it, norm_inserted] = local_norms.emplace(
          std::move(normalized), static_cast<uint32_t>(block.norms.size()));
      if (norm_inserted) block.norms.push_back(norm_it->first);
      block.cell_norm_ids.push_back(norm_it->second);

      // Word tokens are the maximal non-space runs of the normalized value
      // (NormalizeForTokens lower-cases and maps every non-alphanumeric
      // byte to a space) — byte-identical to WordTokens(raw value).
      const std::string& norm = norm_it->first;
      const size_t stream_before = block.stream.size();
      cell_distinct.clear();
      size_t i = 0;
      while (i < norm.size()) {
        if (norm[i] == ' ') {
          ++i;
          continue;
        }
        size_t j = i;
        while (j < norm.size() && norm[j] != ' ') ++j;
        token.assign(norm, i, j - i);
        i = j;
        auto [it, inserted] = local_ids.emplace(
            token, static_cast<uint32_t>(block.tokens.size()));
        if (inserted) {
          MC_CHECK_LT(block.tokens.size(), size_t{kTextRepeatBit});
          block.tokens.push_back(token);
          block.local_df.push_back(0);
        }
        const uint32_t local = it->second;
        const bool repeat =
            std::find(cell_distinct.begin(), cell_distinct.end(), local) !=
            cell_distinct.end();
        if (repeat) {
          block.stream.push_back(local | kTextRepeatBit);
        } else {
          block.stream.push_back(local);
          cell_distinct.push_back(local);
          ++block.local_df[local];
        }
      }
      block.cell_stream_sizes.push_back(
          static_cast<uint32_t>(block.stream.size() - stream_before));
      block.cell_distinct_sizes.push_back(
          static_cast<uint32_t>(cell_distinct.size()));
    }
  }
}

}  // namespace

void TokenizedTable::BindVectorsToArena(mem::Arena* arena) {
  for (size_t side = 0; side < 2; ++side) {
    mem::BindToArena(stream_offsets_[side], arena);
    mem::BindToArena(stream_[side], arena);
    mem::BindToArena(sorted_offsets_[side], arena);
    mem::BindToArena(sorted_[side], arena);
    mem::BindToArena(norm_ids_[side], arena);
    mem::BindToArena(missing_[side], arena);
  }
}

std::shared_ptr<const TokenizedTable> TokenizedTable::Build(
    const Table& table_a, const Table& table_b,
    const TextPlaneBuildOptions& options, TextPlaneBuildStats* stats) {
  MC_CHECK_EQ(table_a.num_columns(), table_b.num_columns());
  MC_CHECK_GE(options.block_rows, 1u);
  std::shared_ptr<TokenizedTable> plane_ptr(new TokenizedTable());
  TokenizedTable& plane = *plane_ptr;
  plane.num_columns_ = table_a.num_columns();
  plane.rows_[0] = table_a.num_rows();
  plane.rows_[1] = table_b.num_rows();

  // Carve both tables into fixed-size row blocks (A blocks then B blocks);
  // the decomposition depends only on block_rows, never on the thread
  // count, so every thread count produces the same plane.
  std::vector<PlaneBlock> blocks;
  auto plan_table = [&](const Table& table) {
    size_t planned = 0;
    for (size_t begin = 0; begin < table.num_rows();
         begin += options.block_rows) {
      PlaneBlock block;
      block.begin_row = begin;
      block.num_rows = std::min(options.block_rows, table.num_rows() - begin);
      blocks.push_back(std::move(block));
      ++planned;
    }
    return planned;
  };
  const size_t blocks_a = plan_table(table_a);
  plan_table(table_b);

  const size_t threads =
      std::min(blocks.empty() ? size_t{1} : blocks.size(),
               options.num_threads != 0
                   ? options.num_threads
                   : std::max<size_t>(1, std::thread::hardware_concurrency()));
  plane.build_stats_.blocks = blocks.size();
  plane.build_stats_.threads = threads;

  // Phase 1 (parallel): tokenize blocks with thread-local dictionaries.
  // Cancellation and the text_plane/build_block fault point are checked
  // once per block; a dropped block leaves its cells empty and marks the
  // plane truncated (it is then never attached/served).
  Stopwatch tokenize_watch;
  auto tokenize_one = [&](PlaneBlock& block, const Table& table) {
    if (options.run_context.Cancelled()) {
      block.dropped = true;
      return;
    }
    const FaultKind kind = MC_FAULT_POINT("text_plane/build_block");
    if (kind == FaultKind::kThrow) {
      block.dropped = true;
      throw std::runtime_error("injected fault: text_plane/build_block");
    }
    if (kind != FaultKind::kNone) {
      block.dropped = true;
      return;
    }
    TokenizePlaneBlock(table, plane.num_columns_, block);
  };
  if (threads == 1) {
    for (size_t i = 0; i < blocks.size(); ++i) {
      try {
        tokenize_one(blocks[i], i < blocks_a ? table_a : table_b);
      } catch (const std::exception&) {
        // Injected fault: the block is already marked dropped.
      }
    }
  } else {
    ThreadPool pool(threads, "mc-txtplane");
    for (size_t i = 0; i < blocks.size(); ++i) {
      pool.Submit([&, i] {
        tokenize_one(blocks[i], i < blocks_a ? table_a : table_b);
      });
    }
    // A throwing block (injected fault) is already marked dropped.
    pool.Wait();
  }
  plane.build_stats_.tokenize_seconds = tokenize_watch.ElapsedSeconds();

  // Phase 2 (sequential, block order): merge the thread-local dictionaries
  // and normalized-value pools. Interning block-by-block in local
  // first-occurrence order assigns exactly the ids a sequential pass over
  // all cells would have assigned.
  Stopwatch merge_watch;
  std::unordered_map<std::string, uint32_t> norm_pool_ids;
  // Pool id 0 is always "": cells of dropped blocks point at it, and its
  // unconditional presence keeps pool ids thread-count independent.
  norm_pool_ids.emplace("", 0);
  plane.norm_values_.emplace_back();
  for (PlaneBlock& block : blocks) {
    if (block.dropped) {
      plane.truncated_ = true;
      ++plane.build_stats_.dropped_blocks;
      continue;
    }
    block.id_map.resize(block.tokens.size());
    for (size_t local = 0; local < block.tokens.size(); ++local) {
      block.id_map[local] = plane.dictionary_.Intern(block.tokens[local]);
    }
    for (size_t local = 0; local < block.tokens.size(); ++local) {
      plane.dictionary_.AddDocumentFrequency(block.id_map[local],
                                             block.local_df[local]);
    }
    block.norm_id_map.resize(block.norms.size());
    for (size_t local = 0; local < block.norms.size(); ++local) {
      auto [it, inserted] = norm_pool_ids.emplace(
          block.norms[local],
          static_cast<uint32_t>(plane.norm_values_.size()));
      if (inserted) plane.norm_values_.push_back(block.norms[local]);
      block.norm_id_map[local] = it->second;
    }
  }
  MC_CHECK_LE(plane.dictionary_.size(), size_t{kTextTokenIdMask});
  plane.dictionary_.FinalizeRanks();
  plane.build_stats_.merge_seconds = merge_watch.ElapsedSeconds();

  // All CSR storage (offset tables, norm ids, missing bits, and the cell
  // arenas themselves) draws from one arena that charges the budget
  // exactly its reserved bytes. The metadata sizes follow from the
  // dimensions alone, so they are reserved before the fill; the cell
  // arenas are reserved once their exact size is known below.
  plane.arena_ = std::make_unique<mem::Arena>(mem::ArenaOptions{
      .budget = options.memory_budget, .tag = "text_plane"});
  size_t meta_bytes = 0;
  for (size_t side = 0; side < 2; ++side) {
    const size_t cells = plane.rows_[side] * plane.num_columns_;
    meta_bytes +=
        2 * mem::Arena::AlignedSize((cells + 1) * sizeof(uint64_t)) +
        mem::Arena::AlignedSize(cells * sizeof(uint32_t)) +
        mem::Arena::AlignedSize(cells);
  }
  const bool arena_ok = plane.arena_->Reserve(meta_bytes);
  if (arena_ok) {
    plane.BindVectorsToArena(plane.arena_.get());
  } else {
    // Budget refused even the offset tables: drop every block now, so the
    // fill below produces the all-empty truncated plane on plain heap
    // vectors, uncharged (charge == reservation == 0).
    for (PlaneBlock& block : blocks) {
      if (!block.dropped) {
        block.dropped = true;
        ++plane.build_stats_.dropped_blocks;
      }
    }
    plane.truncated_ = true;
  }

  // Phase 3 (sequential): per-cell offsets, missing bits, pool-resolved
  // norm ids for both sides. Idempotent (clears its outputs first) so the
  // budget-refusal path below can re-run it after dropping every block.
  Stopwatch flatten_watch;
  uint64_t arena_sizes[2][2] = {{0, 0}, {0, 0}};  // [side][stream, sorted].
  auto fill_side = [&](size_t first_block, size_t block_count, size_t side,
                       const Table& table) {
    const size_t cells = plane.rows_[side] * plane.num_columns_;
    auto& stream_offsets = plane.stream_offsets_[side];
    auto& sorted_offsets = plane.sorted_offsets_[side];
    stream_offsets.clear();
    sorted_offsets.clear();
    plane.norm_ids_[side].clear();
    plane.missing_[side].clear();
    stream_offsets.reserve(cells + 1);
    sorted_offsets.reserve(cells + 1);
    stream_offsets.push_back(0);
    sorted_offsets.push_back(0);
    plane.norm_ids_[side].reserve(cells);
    plane.missing_[side].reserve(cells);
    uint64_t stream_position = 0;
    uint64_t sorted_position = 0;
    for (size_t b = first_block; b < first_block + block_count; ++b) {
      const PlaneBlock& block = blocks[b];
      const size_t block_cells = block.num_rows * plane.num_columns_;
      for (size_t cell = 0; cell < block_cells; ++cell) {
        const size_t row = block.begin_row + cell / plane.num_columns_;
        const size_t column = cell % plane.num_columns_;
        plane.missing_[side].push_back(table.IsMissing(row, column) ? 1 : 0);
        if (block.dropped) {
          plane.norm_ids_[side].push_back(0);
        } else {
          plane.norm_ids_[side].push_back(
              block.norm_id_map[block.cell_norm_ids[cell]]);
          stream_position += block.cell_stream_sizes[cell];
          sorted_position += block.cell_distinct_sizes[cell];
        }
        stream_offsets.push_back(stream_position);
        sorted_offsets.push_back(sorted_position);
      }
    }
    arena_sizes[side][0] = stream_position;
    arena_sizes[side][1] = sorted_position;
  };
  fill_side(0, blocks_a, 0, table_a);
  fill_side(blocks_a, blocks.size() - blocks_a, 1, table_b);

  // Memory admission: the cell arenas dominate the plane footprint.
  // Reserve them (charging the budget) before allocating; a refusal drops
  // every block — the offsets recompute to an all-empty truncated plane,
  // which is never attached, so consumers fall back to the legacy string
  // path. The refill reuses the already-reserved metadata chunk (clear()
  // keeps capacity), so no allocation happens past a refusal.
  const size_t cell_bytes =
      mem::Arena::AlignedSize(arena_sizes[0][0] * sizeof(uint32_t)) +
      mem::Arena::AlignedSize(arena_sizes[0][1] * sizeof(uint32_t)) +
      mem::Arena::AlignedSize(arena_sizes[1][0] * sizeof(uint32_t)) +
      mem::Arena::AlignedSize(arena_sizes[1][1] * sizeof(uint32_t));
  if (arena_ok && !plane.arena_->Reserve(cell_bytes)) {
    for (PlaneBlock& block : blocks) {
      if (!block.dropped) {
        block.dropped = true;
        ++plane.build_stats_.dropped_blocks;
      }
    }
    plane.truncated_ = true;
    fill_side(0, blocks_a, 0, table_a);
    fill_side(blocks_a, blocks.size() - blocks_a, 1, table_b);
  }
  for (size_t side = 0; side < 2; ++side) {
    plane.stream_[side].resize(arena_sizes[side][0]);
    plane.sorted_[side].resize(arena_sizes[side][1]);
  }

  // Phase 4 (parallel): translate local ids to global, derive each cell's
  // sorted distinct ranks, and write both into their precomputed arena
  // slices (blocks write disjoint regions).
  auto flatten_one = [&](size_t block_index) {
    const PlaneBlock& block = blocks[block_index];
    if (block.dropped) return;
    const size_t side = block_index < blocks_a ? 0 : 1;
    auto& stream_arena = plane.stream_[side];
    auto& sorted_arena = plane.sorted_[side];
    const auto& stream_offsets = plane.stream_offsets_[side];
    const auto& sorted_offsets = plane.sorted_offsets_[side];
    const size_t first_cell = block.begin_row * plane.num_columns_;
    const size_t block_cells = block.num_rows * plane.num_columns_;
    std::vector<uint32_t> ranks;
    size_t read = 0;
    for (size_t cell = 0; cell < block_cells; ++cell) {
      const size_t n = block.cell_stream_sizes[cell];
      uint64_t write = stream_offsets[first_cell + cell];
      ranks.clear();
      for (size_t e = read; e < read + n; ++e) {
        const uint32_t entry = block.stream[e];
        const uint32_t global = block.id_map[entry & kTextTokenIdMask];
        if (entry & kTextRepeatBit) {
          stream_arena[write++] = global | kTextRepeatBit;
        } else {
          stream_arena[write++] = global;
          ranks.push_back(plane.dictionary_.RankOf(global));
        }
      }
      read += n;
      std::sort(ranks.begin(), ranks.end());
      uint64_t sorted_write = sorted_offsets[first_cell + cell];
      for (uint32_t rank : ranks) sorted_arena[sorted_write++] = rank;
    }
  };
  if (threads == 1) {
    for (size_t i = 0; i < blocks.size(); ++i) flatten_one(i);
  } else {
    ThreadPool pool(threads, "mc-txtplane");
    for (size_t i = 0; i < blocks.size(); ++i) {
      pool.Submit([&, i] { flatten_one(i); });
    }
    Status status = pool.Wait();
    MC_CHECK(status.ok()) << status.message();
  }
  plane.build_stats_.flatten_seconds = flatten_watch.ElapsedSeconds();

  if (stats != nullptr) *stats = plane.build_stats_;
  return plane_ptr;
}

std::shared_ptr<const TokenizedTable> TokenizedTable::ApplyDelta(
    const TokenizedTable& base, const Table& table_a, const Table& table_b,
    const RowsDelta& delta, const TextPlaneBuildOptions& options) {
  if (base.truncated()) return nullptr;
  if (delta.side > 1) return nullptr;
  const size_t side = delta.side;
  const size_t other = 1 - side;
  const Table& delta_table = side == 0 ? table_a : table_b;
  const Table& other_table = side == 0 ? table_b : table_a;
  const size_t new_rows = delta.base_rows + delta.appended;
  if (base.num_columns_ != table_a.num_columns() ||
      base.num_columns_ != table_b.num_columns() ||
      base.rows_[side] != delta.base_rows ||
      delta_table.num_rows() != new_rows ||
      other_table.num_rows() != base.rows_[other]) {
    return nullptr;
  }
  if (MC_FAULT_POINT("text_plane/apply_delta") != FaultKind::kNone) {
    return nullptr;
  }

  std::shared_ptr<TokenizedTable> out_ptr(new TokenizedTable());
  TokenizedTable& out = *out_ptr;
  const size_t cols = base.num_columns_;
  out.num_columns_ = cols;
  out.rows_[side] = new_rows;
  out.rows_[other] = base.rows_[other];
  out.dictionary_ = base.dictionary_;
  out.norm_values_ = base.norm_values_;
  out.build_stats_ = base.build_stats_;

  // The patched plane gets its own arena, charged exactly what it
  // reserves; the base generation keeps its own charge until it dies. The
  // metadata sizes (offset tables, norm ids, missing bits, both sides) are
  // known up front; a refused reserve rejects the delta, mirroring Build's
  // admission.
  out.arena_ = std::make_unique<mem::Arena>(mem::ArenaOptions{
      .budget = options.memory_budget, .tag = "text_plane"});
  {
    const size_t delta_cells = new_rows * cols;
    const size_t other_cells = base.rows_[other] * cols;
    const size_t meta_bytes =
        2 * mem::Arena::AlignedSize((delta_cells + 1) * sizeof(uint64_t)) +
        mem::Arena::AlignedSize(delta_cells * sizeof(uint32_t)) +
        mem::Arena::AlignedSize(delta_cells) +
        2 * mem::Arena::AlignedSize((other_cells + 1) * sizeof(uint64_t)) +
        mem::Arena::AlignedSize(other_cells * sizeof(uint32_t)) +
        mem::Arena::AlignedSize(other_cells);
    if (!out.arena_->Reserve(meta_bytes)) return nullptr;
    out.BindVectorsToArena(out.arena_.get());
  }

  // Retire the old content of every touched cell: one df decrement per
  // distinct token (the non-repeat stream entries).
  for (uint32_t row : delta.touched) {
    for (size_t column = 0; column < cols; ++column) {
      const CellSpan stream = base.TokenStream(side, row, column);
      for (uint32_t entry : stream) {
        if ((entry & kTextRepeatBit) == 0) {
          out.dictionary_.SubtractDocumentFrequency(entry, 1);
        }
      }
    }
  }

  // Re-tokenize only the touched + appended cells, interning directly into
  // the published dictionary and pool (new tokens take ids past the base's;
  // ranks are re-derived below, so id order is irrelevant to content).
  std::unordered_map<std::string, uint32_t> norm_pool_ids;
  norm_pool_ids.reserve(out.norm_values_.size());
  for (size_t i = 0; i < out.norm_values_.size(); ++i) {
    norm_pool_ids.emplace(out.norm_values_[i], static_cast<uint32_t>(i));
  }
  struct NewCell {
    std::vector<uint32_t> stream;  // Global ids, repeats flagged.
    std::vector<TokenId> distinct;
    uint32_t norm_id = 0;
  };
  std::unordered_map<size_t, NewCell> fresh;  // Keyed by new-layout cell.
  std::string token;
  auto tokenize_cell = [&](size_t row, size_t column) {
    NewCell cell;
    std::string normalized =
        NormalizeForTokens(delta_table.Value(row, column));
    auto [norm_it, norm_inserted] = norm_pool_ids.emplace(
        std::move(normalized), static_cast<uint32_t>(out.norm_values_.size()));
    if (norm_inserted) out.norm_values_.push_back(norm_it->first);
    cell.norm_id = norm_it->second;
    const std::string& norm = norm_it->first;
    size_t i = 0;
    while (i < norm.size()) {
      if (norm[i] == ' ') {
        ++i;
        continue;
      }
      size_t j = i;
      while (j < norm.size() && norm[j] != ' ') ++j;
      token.assign(norm, i, j - i);
      i = j;
      const TokenId id = out.dictionary_.Intern(token);
      const bool repeat =
          std::find(cell.distinct.begin(), cell.distinct.end(), id) !=
          cell.distinct.end();
      if (repeat) {
        cell.stream.push_back(id | kTextRepeatBit);
      } else {
        cell.stream.push_back(id);
        cell.distinct.push_back(id);
        out.dictionary_.AddDocumentFrequency(id, 1);
      }
    }
    fresh.emplace(row * cols + column, std::move(cell));
  };
  for (uint32_t row : delta.touched) {
    for (size_t column = 0; column < cols; ++column) tokenize_cell(row, column);
  }
  for (size_t row = delta.base_rows; row < new_rows; ++row) {
    for (size_t column = 0; column < cols; ++column) tokenize_cell(row, column);
  }
  MC_CHECK_LE(out.dictionary_.size(), size_t{kTextTokenIdMask});
  out.dictionary_.FinalizeRanks();
  out.dead_tokens_ = out.dictionary_.DeadTokenCount();

  // Old rank -> new rank, for rewriting the sorted arenas without touching
  // strings: every base id exists in the patched dictionary too (dead
  // tokens keep their ids).
  std::vector<uint32_t> rank_map(base.dictionary_.size());
  for (TokenId id = 0; id < rank_map.size(); ++id) {
    rank_map[base.dictionary_.RankOf(id)] = out.dictionary_.RankOf(id);
  }

  // Delta-side layout: per-cell sizes, then one pass of bulk copies.
  const size_t cells = new_rows * cols;
  auto& stream_offsets = out.stream_offsets_[side];
  auto& sorted_offsets = out.sorted_offsets_[side];
  stream_offsets.reserve(cells + 1);
  sorted_offsets.reserve(cells + 1);
  stream_offsets.push_back(0);
  sorted_offsets.push_back(0);
  out.norm_ids_[side].reserve(cells);
  out.missing_[side].reserve(cells);
  uint64_t stream_position = 0;
  uint64_t sorted_position = 0;
  for (size_t row = 0; row < new_rows; ++row) {
    const bool untouched = row < delta.base_rows && !delta.Touches(row);
    for (size_t column = 0; column < cols; ++column) {
      out.missing_[side].push_back(
          delta_table.IsMissing(row, column) ? 1 : 0);
      if (untouched) {
        const size_t cell = row * cols + column;
        out.norm_ids_[side].push_back(base.norm_ids_[side][cell]);
        stream_position += base.stream_offsets_[side][cell + 1] -
                           base.stream_offsets_[side][cell];
        sorted_position += base.sorted_offsets_[side][cell + 1] -
                           base.sorted_offsets_[side][cell];
      } else {
        const NewCell& cell = fresh.at(row * cols + column);
        out.norm_ids_[side].push_back(cell.norm_id);
        stream_position += cell.stream.size();
        sorted_position += cell.distinct.size();
      }
      stream_offsets.push_back(stream_position);
      sorted_offsets.push_back(sorted_position);
    }
  }

  // Memory admission before the big allocations, mirroring Build. The
  // other side's arenas are copied, so reserve both sides.
  const size_t cell_bytes =
      mem::Arena::AlignedSize(stream_position * sizeof(uint32_t)) +
      mem::Arena::AlignedSize(sorted_position * sizeof(uint32_t)) +
      mem::Arena::AlignedSize(base.stream_[other].size() * sizeof(uint32_t)) +
      mem::Arena::AlignedSize(base.sorted_[other].size() * sizeof(uint32_t));
  if (!out.arena_->Reserve(cell_bytes)) {
    return nullptr;
  }

  out.stream_[side].resize(stream_position);
  out.sorted_[side].resize(sorted_position);
  for (size_t row = 0; row < new_rows; ++row) {
    const bool untouched = row < delta.base_rows && !delta.Touches(row);
    if (untouched) {
      // Whole-row bulk copy: a row's cells are contiguous in the arena.
      const size_t first = row * cols;
      const uint64_t src = base.stream_offsets_[side][first];
      const uint64_t src_end = base.stream_offsets_[side][first + cols];
      std::copy(base.stream_[side].begin() + src,
                base.stream_[side].begin() + src_end,
                out.stream_[side].begin() + stream_offsets[first]);
    } else {
      for (size_t column = 0; column < cols; ++column) {
        const size_t cell = row * cols + column;
        const NewCell& content = fresh.at(cell);
        std::copy(content.stream.begin(), content.stream.end(),
                  out.stream_[side].begin() + stream_offsets[cell]);
      }
    }
  }

  // Other side: streams, offsets, norm ids, missing bits copy verbatim.
  out.stream_offsets_[other] = base.stream_offsets_[other];
  out.stream_[other] = base.stream_[other];
  out.sorted_offsets_[other] = base.sorted_offsets_[other];
  out.norm_ids_[other] = base.norm_ids_[other];
  out.missing_[other] = base.missing_[other];
  out.sorted_[other].resize(base.sorted_[other].size());

  // Both sides' sorted arenas are rewritten: df changes shift ranks
  // globally. Untouched cells go through rank_map (integer transform +
  // re-sort, no strings); fresh cells derive ranks from their distinct ids.
  std::vector<uint32_t> ranks;
  auto rewrite_sorted = [&](size_t s) {
    const auto& offsets = out.sorted_offsets_[s];
    for (size_t cell = 0; cell + 1 < offsets.size(); ++cell) {
      ranks.clear();
      auto fresh_it = s == side ? fresh.find(cell) : fresh.end();
      if (fresh_it != fresh.end()) {
        for (TokenId id : fresh_it->second.distinct) {
          ranks.push_back(out.dictionary_.RankOf(id));
        }
      } else {
        const uint64_t begin = base.sorted_offsets_[s][cell];
        const uint64_t end = base.sorted_offsets_[s][cell + 1];
        for (uint64_t e = begin; e < end; ++e) {
          ranks.push_back(rank_map[base.sorted_[s][e]]);
        }
      }
      std::sort(ranks.begin(), ranks.end());
      std::copy(ranks.begin(), ranks.end(),
                out.sorted_[s].begin() + offsets[cell]);
    }
  };
  rewrite_sorted(0);
  rewrite_sorted(1);

  // Tombstones: inherit, extend to the new row count, mark fresh deletes.
  out.tombstones_[other] = base.tombstones_[other];
  out.tombstones_[side] = base.tombstones_[side];
  if (!delta.deleted.empty() || !out.tombstones_[side].empty()) {
    out.tombstones_[side].resize(new_rows, 0);
    for (uint32_t row : delta.deleted) out.tombstones_[side][row] = 1;
  }
  return out_ptr;
}

uint32_t TokenizedTable::ContentCrc() const {
  uint32_t crc = 0;
  auto hash_u64 = [&crc](uint64_t value) {
    crc = Crc32(&value, sizeof(value), crc);
  };
  hash_u64(num_columns_);
  hash_u64(rows_[0]);
  hash_u64(rows_[1]);
  for (size_t side = 0; side < 2; ++side) {
    const size_t cells = rows_[side] * num_columns_;
    for (size_t cell = 0; cell < cells; ++cell) {
      crc = Crc32(&missing_[side][cell], 1, crc);
      const std::string& norm = norm_values_[norm_ids_[side][cell]];
      hash_u64(norm.size());
      crc = Crc32(norm.data(), norm.size(), crc);
      // Streams hash as ranks (repeat bit preserved): token ids are
      // build-order artifacts that differ between a patch and a rebuild.
      const uint64_t begin = stream_offsets_[side][cell];
      const uint64_t end = stream_offsets_[side][cell + 1];
      hash_u64(end - begin);
      for (uint64_t e = begin; e < end; ++e) {
        const uint32_t entry = stream_[side][e];
        const uint32_t canonical =
            dictionary_.RankOf(entry & kTextTokenIdMask) |
            (entry & kTextRepeatBit);
        crc = Crc32(&canonical, sizeof(canonical), crc);
      }
      const uint64_t sorted_begin = sorted_offsets_[side][cell];
      const uint64_t sorted_end = sorted_offsets_[side][cell + 1];
      hash_u64(sorted_end - sorted_begin);
      if (sorted_end > sorted_begin) {
        crc = Crc32(sorted_[side].data() + sorted_begin,
                    (sorted_end - sorted_begin) * sizeof(uint32_t), crc);
      }
    }
  }
  return crc;
}

std::shared_ptr<const TokenizedTable> TokenizedTable::BuildAndAttach(
    Table& table_a, Table& table_b, const TextPlaneBuildOptions& options,
    TextPlaneBuildStats* stats) {
  std::shared_ptr<const TokenizedTable> plane =
      Build(table_a, table_b, options, stats);
  if (!plane->truncated()) {
    table_a.AttachTextPlane(plane, 0);
    table_b.AttachTextPlane(plane, 1);
  }
  return plane;
}

const TokenizedTable::QGramColumn* TokenizedTable::QGramsForColumn(
    size_t q, size_t column) const {
  if (q == 0 || column >= num_columns_ || truncated_) return nullptr;
  const uint64_t key = (static_cast<uint64_t>(q) << 32) | column;
  {
    std::shared_lock<std::shared_mutex> lock(qgram_mutex_);
    auto it = qgram_cache_.find(key);
    if (it != qgram_cache_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(qgram_mutex_);
  auto it = qgram_cache_.find(key);
  if (it != qgram_cache_.end()) return it->second.get();

  auto built = std::make_unique<QGramColumn>();
  std::unordered_map<std::string, uint32_t> gram_ids;
  std::vector<uint32_t> cell;
  for (size_t side = 0; side < 2; ++side) {
    built->offsets[side].reserve(rows_[side] + 1);
    built->offsets[side].push_back(0);
    for (size_t row = 0; row < rows_[side]; ++row) {
      cell.clear();
      // QGrams(normalized) == QGrams(raw): QGrams' internal normalization
      // (lowercase, non-alnum -> space, collapse) is idempotent over
      // NormalizeForTokens output, so the pooled value suffices.
      for (const std::string& gram :
           QGrams(NormalizedValue(side, row, column), q)) {
        const uint32_t next = static_cast<uint32_t>(gram_ids.size());
        auto [gram_it, inserted] = gram_ids.emplace(gram, next);
        (void)inserted;
        cell.push_back(gram_it->second);
      }
      std::sort(cell.begin(), cell.end());
      built->grams[side].insert(built->grams[side].end(), cell.begin(),
                                cell.end());
      built->offsets[side].push_back(built->grams[side].size());
    }
  }
  built->dictionary_size = gram_ids.size();
  const QGramColumn* result = built.get();
  qgram_cache_.emplace(key, std::move(built));
  return result;
}

const TokenizedTable* AttachedTextPlane(const Table& table) {
  const TokenizedTable* plane = table.text_plane();
  if (plane == nullptr || plane->truncated()) return nullptr;
  const size_t side = table.text_plane_side();
  if (side > 1 || plane->num_rows(side) != table.num_rows() ||
      plane->num_columns() != table.num_columns()) {
    return nullptr;
  }
  return plane;
}

const TokenizedTable* SharedTextPlane(const Table& table_a,
                                      const Table& table_b) {
  const TokenizedTable* plane = AttachedTextPlane(table_a);
  if (plane == nullptr || plane != AttachedTextPlane(table_b)) return nullptr;
  return plane;
}

size_t SortedSpanOverlap(CellSpan a, CellSpan b) {
  return simd::OverlapCount(a.data, a.length, b.data, b.length);
}

}  // namespace mc
