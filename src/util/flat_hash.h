#ifndef MATCHCATCHER_UTIL_FLAT_HASH_H_
#define MATCHCATCHER_UTIL_FLAT_HASH_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace mc {

/// Minimal open-addressing hash map from uint64 keys to small values, used
/// on the top-k join's hottest path (pair-state bookkeeping: hundreds of
/// millions of probes per join on large inputs). Insert-only (no erase),
/// linear probing, power-of-two capacity. ~3-4x faster than
/// std::unordered_map for this access pattern because probes touch one
/// cache line and no nodes are allocated.
///
/// The all-ones key (0xFFFF...F) is reserved as the empty sentinel; packed
/// tuple-pair keys never reach it (tables are < 2^32 rows).
template <typename V>
class PairFlatMap {
 public:
  explicit PairFlatMap(size_t initial_capacity = 1024) {
    size_t capacity = 64;
    while (capacity < initial_capacity) capacity <<= 1;
    keys_.assign(capacity, kEmpty);
    values_.resize(capacity);
  }

  /// Pre-sizes the table for ~`expected` entries (no-op if already larger).
  void Reserve(size_t expected) {
    size_t capacity = keys_.size();
    while (capacity * 7 < expected * 10) capacity <<= 1;
    if (capacity == keys_.size()) return;
    PairFlatMap<V> larger(capacity);
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == kEmpty) continue;
      bool inserted = false;
      *larger.FindOrInsert(keys_[i], values_[i], &inserted) = values_[i];
    }
    *this = std::move(larger);
  }

  /// Returns a pointer to the value for `key`, inserting `initial` if the
  /// key is new; sets *inserted accordingly. The pointer is valid until the
  /// next FindOrInsert call (growth may reallocate).
  V* FindOrInsert(uint64_t key, V initial, bool* inserted) {
    MC_CHECK(key != kEmpty);
    if ((size_ + 1) * 10 >= keys_.size() * 7) Grow();
    size_t mask = keys_.size() - 1;
    size_t slot = Mix(key) & mask;
    while (true) {
      if (keys_[slot] == key) {
        *inserted = false;
        return &values_[slot];
      }
      if (keys_[slot] == kEmpty) {
        keys_[slot] = key;
        values_[slot] = initial;
        ++size_;
        *inserted = true;
        return &values_[slot];
      }
      slot = (slot + 1) & mask;
    }
  }

  /// Returns the value pointer for `key`, or nullptr.
  V* Find(uint64_t key) {
    size_t mask = keys_.size() - 1;
    size_t slot = Mix(key) & mask;
    while (true) {
      if (keys_[slot] == key) return &values_[slot];
      if (keys_[slot] == kEmpty) return nullptr;
      slot = (slot + 1) & mask;
    }
  }

  size_t size() const { return size_; }

 private:
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  static size_t Mix(uint64_t key) {
    uint64_t z = key + 0x9E3779B97f4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }

  void Grow() {
    // 4x growth while small (rehashing dominates insert cost on
    // multi-million-entry joins), 2x once large (memory slack dominates).
    const size_t factor = keys_.size() >= (size_t{1} << 22) ? 2 : 4;
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(old_keys.size() * factor, kEmpty);
    values_.assign(old_keys.size() * factor, V{});
    size_t mask = keys_.size() - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      size_t slot = Mix(old_keys[i]) & mask;
      while (keys_[slot] != kEmpty) slot = (slot + 1) & mask;
      keys_[slot] = old_keys[i];
      values_[slot] = old_values[i];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<V> values_;
  size_t size_ = 0;
};

}  // namespace mc

#endif  // MATCHCATCHER_UTIL_FLAT_HASH_H_
