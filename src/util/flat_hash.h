#ifndef MATCHCATCHER_UTIL_FLAT_HASH_H_
#define MATCHCATCHER_UTIL_FLAT_HASH_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace mc {

/// Minimal open-addressing hash map from uint64 keys to small values, used
/// on the top-k join's hottest path (pair-state bookkeeping: hundreds of
/// millions of probes per join on large inputs). Insert-only (no erase),
/// linear probing, power-of-two capacity. ~3-4x faster than
/// std::unordered_map for this access pattern because probes touch one
/// cache line and no nodes are allocated.
///
/// Key and value live side by side in one slot so a probe costs a single
/// cache-line fetch; with split key/value arrays every hit paid two misses
/// once the table outgrew the cache, which dominated join runtime.
///
/// The all-ones key (0xFFFF...F) is reserved as the empty sentinel; packed
/// tuple-pair keys never reach it (tables are < 2^32 rows).
template <typename V>
class PairFlatMap {
 public:
  explicit PairFlatMap(size_t initial_capacity = 1024) {
    size_t capacity = 64;
    while (capacity < initial_capacity) capacity <<= 1;
    slots_.assign(capacity, Slot{kEmpty, V{}});
  }

  /// Pre-sizes the table for ~`expected` entries (no-op if already larger).
  void Reserve(size_t expected) {
    size_t capacity = slots_.size();
    while (capacity * 7 < expected * 10) capacity <<= 1;
    if (capacity == slots_.size()) return;
    PairFlatMap<V> larger(capacity);
    for (const Slot& slot : slots_) {
      if (slot.key == kEmpty) continue;
      bool inserted = false;
      *larger.FindOrInsert(slot.key, slot.value, &inserted) = slot.value;
    }
    *this = std::move(larger);
  }

  /// Returns a pointer to the value for `key`, inserting `initial` if the
  /// key is new; sets *inserted accordingly. The pointer is valid until the
  /// next FindOrInsert call (growth may reallocate).
  V* FindOrInsert(uint64_t key, V initial, bool* inserted) {
    MC_CHECK(key != kEmpty);
    if ((size_ + 1) * 10 >= slots_.size() * 7) Grow();
    size_t mask = slots_.size() - 1;
    size_t index = Mix(key) & mask;
    while (true) {
      Slot& slot = slots_[index];
      if (slot.key == key) {
        *inserted = false;
        return &slot.value;
      }
      if (slot.key == kEmpty) {
        slot.key = key;
        slot.value = initial;
        ++size_;
        *inserted = true;
        return &slot.value;
      }
      index = (index + 1) & mask;
    }
  }

  /// Returns the value pointer for `key`, or nullptr.
  V* Find(uint64_t key) {
    size_t mask = slots_.size() - 1;
    size_t index = Mix(key) & mask;
    while (true) {
      Slot& slot = slots_[index];
      if (slot.key == key) return &slot.value;
      if (slot.key == kEmpty) return nullptr;
      index = (index + 1) & mask;
    }
  }

  size_t size() const { return size_; }

 private:
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  struct Slot {
    uint64_t key;
    V value;
  };

  static size_t Mix(uint64_t key) {
    uint64_t z = key + 0x9E3779B97f4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }

  void Grow() {
    // 4x growth while small (rehashing dominates insert cost on
    // multi-million-entry joins), 2x once large (memory slack dominates).
    const size_t factor = slots_.size() >= (size_t{1} << 22) ? 2 : 4;
    std::vector<Slot> old_slots = std::move(slots_);
    slots_.assign(old_slots.size() * factor, Slot{kEmpty, V{}});
    size_t mask = slots_.size() - 1;
    for (const Slot& old : old_slots) {
      if (old.key == kEmpty) continue;
      size_t index = Mix(old.key) & mask;
      while (slots_[index].key != kEmpty) index = (index + 1) & mask;
      slots_[index] = old;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

/// Bounded open-addressing map from uint64 keys to array indexes, sized
/// once for a known maximum entry count (no growth). Unlike PairFlatMap it
/// supports erase, via backward-shift deletion, so lookups never cross
/// tombstones. Used by TopKList for pair -> heap-position tracking: the
/// table holds at most k entries and stays cache-resident, so the
/// membership probe on the join's every scored pair is a couple of loads
/// instead of an unordered_map hash walk.
class PairPositionMap {
 public:
  /// Sizes the table for at most `max_entries` live entries (load <= 0.5).
  explicit PairPositionMap(size_t max_entries) {
    size_t capacity = 64;
    while (capacity < max_entries * 2) capacity <<= 1;
    slots_.assign(capacity, Slot{kEmpty, 0});
  }

  /// Returns a pointer to the index stored for `key`, or nullptr. The
  /// pointer is valid until the next Insert/Erase.
  size_t* Find(uint64_t key) {
    size_t mask = slots_.size() - 1;
    size_t i = Mix(key) & mask;
    while (true) {
      if (slots_[i].key == key) return &slots_[i].index;
      if (slots_[i].key == kEmpty) return nullptr;
      i = (i + 1) & mask;
    }
  }

  bool Contains(uint64_t key) const {
    return const_cast<PairPositionMap*>(this)->Find(key) != nullptr;
  }

  /// Inserts (`key` must be absent and the table not at max_entries).
  void Insert(uint64_t key, size_t index) {
    size_t mask = slots_.size() - 1;
    size_t i = Mix(key) & mask;
    while (slots_[i].key != kEmpty) {
      MC_CHECK(slots_[i].key != key);
      i = (i + 1) & mask;
    }
    slots_[i] = Slot{key, index};
  }

  /// Removes `key` (must be present), back-shifting the probe chain so no
  /// tombstone is left behind.
  void Erase(uint64_t key) {
    size_t mask = slots_.size() - 1;
    size_t i = Mix(key) & mask;
    while (slots_[i].key != key) {
      MC_CHECK(slots_[i].key != kEmpty);
      i = (i + 1) & mask;
    }
    size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (slots_[j].key == kEmpty) break;
      size_t ideal = Mix(slots_[j].key) & mask;
      // Entry at j may fill the hole at i only if its probe chain started
      // at or before i (cyclically): otherwise a later Find would stop at
      // the new hole before reaching it.
      if (((j - ideal) & mask) >= ((j - i) & mask)) {
        slots_[i] = slots_[j];
        i = j;
      }
    }
    slots_[i].key = kEmpty;
  }

 private:
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  struct Slot {
    uint64_t key;
    size_t index;
  };

  static size_t Mix(uint64_t key) {
    uint64_t z = key + 0x9E3779B97f4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }

  std::vector<Slot> slots_;
};

}  // namespace mc

#endif  // MATCHCATCHER_UTIL_FLAT_HASH_H_
