#ifndef MATCHCATCHER_UTIL_STATUS_H_
#define MATCHCATCHER_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace mc {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kDeadlineExceeded,
  /// A bounded resource (admission queue, memory budget, session slots) is
  /// full. The condition is expected to clear; messages carry a retry-after
  /// hint where the rejecting layer can estimate one.
  kResourceExhausted,
  /// A transient failure worth retrying as-is (RetryPolicy treats this and
  /// kResourceExhausted as retryable; kInvalidArgument and friends are not).
  kUnavailable,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Lightweight success-or-error value used by all fallible library
/// operations. The library does not use exceptions; functions that can fail
/// return `Status` (or `Result<T>`), and callers must inspect it.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Attaches a typed retry-after hint (milliseconds) and returns the
  /// status, builder style:
  ///
  ///   return Status::ResourceExhausted("queue full").WithRetryAfter(250);
  ///
  /// The hint is the payload callers act on; any "retry-after-ms=<n>" text
  /// in the message is for humans only and is never parsed back.
  Status&& WithRetryAfter(int64_t millis) && {
    retry_after_millis_ = millis;
    return std::move(*this);
  }
  Status& WithRetryAfter(int64_t millis) & {
    retry_after_millis_ = millis;
    return *this;
  }

  /// The retry-after hint in milliseconds, or -1 when none was attached.
  int64_t retry_after_millis() const { return retry_after_millis_; }
  bool has_retry_after() const { return retry_after_millis_ >= 0; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
  int64_t retry_after_millis_ = -1;
};

/// Holds either a value of type `T` or an error `Status`. Accessing the
/// value of an errored result is a fatal programming error.
template <typename T>
class Result {
 public:
  /// Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    MC_CHECK(!std::get<Status>(data_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    MC_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(data_);
  }
  T& value() & {
    MC_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(data_);
  }
  T&& value() && {
    MC_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace mc

/// Propagates an error status out of the current function.
#define MC_RETURN_IF_ERROR(expr)                   \
  do {                                             \
    ::mc::Status mc_status_ = (expr);              \
    if (!mc_status_.ok()) return mc_status_;       \
  } while (false)

/// Evaluates `expr` (a Result<T>), propagates its error out of the current
/// function, or assigns the value to `lhs`. `lhs` may declare a variable:
///
///   MC_ASSIGN_OR_RETURN(Table table, ReadCsvFile(path));
///   MC_ASSIGN_OR_RETURN(auto lines, ReadLines(path));
///
/// The enclosing function must return Status or Result<U>.
#define MC_ASSIGN_OR_RETURN(lhs, expr) \
  MC_ASSIGN_OR_RETURN_IMPL_(           \
      MC_STATUS_MACRO_CONCAT_(mc_result_, __LINE__), lhs, expr)

#define MC_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                              \
  if (!result.ok()) return result.status();          \
  lhs = std::move(result).value()

#define MC_STATUS_MACRO_CONCAT_(a, b) MC_STATUS_MACRO_CONCAT_IMPL_(a, b)
#define MC_STATUS_MACRO_CONCAT_IMPL_(a, b) a##b

#endif  // MATCHCATCHER_UTIL_STATUS_H_
