#ifndef MATCHCATCHER_UTIL_SHARDED_INSERT_MAP_H_
#define MATCHCATCHER_UTIL_SHARDED_INSERT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mc {

/// Insert-only concurrent hash map.
///
/// This is our stand-in for the "Atomic Unordered Hashmap" from Facebook's
/// Folly package that the paper uses for the shared overlap databases H_g
/// (§4.2): each write only ever *inserts* a value, never modifies or deletes
/// one, so readers can safely hold pointers to values across concurrent
/// inserts. We implement the same contract with shard-striped locks over
/// node-based maps (std::unordered_map values are pointer-stable), which
/// preserves the behaviour the paper relies on: concurrent insert + read with
/// no dirty reads.
///
/// Values must not be mutated after insertion (except through the pointer
/// returned by the inserting call itself, before it is shared).
template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedInsertMap {
 public:
  explicit ShardedInsertMap(size_t num_shards = 64)
      : shards_(RoundUpToPowerOfTwo(num_shards)) {}

  ShardedInsertMap(const ShardedInsertMap&) = delete;
  ShardedInsertMap& operator=(const ShardedInsertMap&) = delete;

  /// Inserts (key, value) if absent. Returns {pointer to stored value,
  /// whether this call performed the insertion}.
  std::pair<const V*, bool> Insert(const K& key, V value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, inserted] = shard.map.try_emplace(key, std::move(value));
    return {&it->second, inserted};
  }

  /// Inserts the value produced by `factory()` if the key is absent; the
  /// factory is only invoked on actual insertion (useful when constructing
  /// the value is expensive).
  template <typename Factory>
  std::pair<const V*, bool> InsertWith(const K& key, Factory&& factory) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) return {&it->second, false};
    auto [new_it, inserted] = shard.map.emplace(key, factory());
    return {&new_it->second, inserted};
  }

  /// Returns the stored value for `key`, or nullptr if absent. The returned
  /// pointer remains valid for the lifetime of the map.
  const V* Find(const K& key) const {
    const Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    return it == shard.map.end() ? nullptr : &it->second;
  }

  /// Total number of stored entries. Consistent only when no concurrent
  /// inserts are in flight.
  size_t Size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.map.size();
    }
    return total;
  }

  /// Invokes `fn(key, value)` for every entry. Must not run concurrently
  /// with inserts.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (const auto& [key, value] : shard.map) fn(key, value);
    }
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<K, V, Hash> map;
  };

  static size_t RoundUpToPowerOfTwo(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  Shard& ShardFor(const K& key) {
    return shards_[Hash{}(key)&(shards_.size() - 1)];
  }
  const Shard& ShardFor(const K& key) const {
    return shards_[Hash{}(key)&(shards_.size() - 1)];
  }

  std::vector<Shard> shards_;
};

}  // namespace mc

#endif  // MATCHCATCHER_UTIL_SHARDED_INSERT_MAP_H_
