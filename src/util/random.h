#ifndef MATCHCATCHER_UTIL_RANDOM_H_
#define MATCHCATCHER_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace mc {

/// Deterministic, seedable PRNG (xoshiro256** seeded via splitmix64).
/// Every randomized component in the library takes one of these explicitly so
/// experiments are reproducible; nothing in the library uses global RNG state.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97f4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBelow(uint64_t bound) {
    MC_CHECK_GT(bound, 0u);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    while (true) {
      uint64_t r = NextUint64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    MC_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Derives an independent child generator; useful for giving each parallel
  /// task its own deterministic stream.
  Rng Fork() { return Rng(NextUint64()); }

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBelow(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Zipf-like index in [0, n): rank r drawn with probability proportional to
  /// 1 / (r + 1)^skew. Used by the data generator for realistic vocabularies.
  size_t NextZipf(size_t n, double skew);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace mc

#endif  // MATCHCATCHER_UTIL_RANDOM_H_
