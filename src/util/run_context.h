#ifndef MATCHCATCHER_UTIL_RUN_CONTEXT_H_
#define MATCHCATCHER_UTIL_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

namespace mc {

/// Cooperative cancellation token with an optional deadline.
///
/// A RunContext is a cheap copyable handle to shared cancellation state.
/// Long-running operations (the joint top-k executor, the QJoin inner loop,
/// config generation) accept one through their options and poll
/// `Cancelled()` at natural checkpoints; when it fires they stop cleanly
/// and return best-so-far results flagged as truncated (see
/// docs/robustness.md for the partial-result contract).
///
/// A default-constructed RunContext is inert: it carries no state, never
/// cancels, and `Cancelled()` is a single null check — the no-deadline path
/// stays byte-identical to a run without any context.
///
///   RunContext ctx = RunContext::WithDeadline(50);   // expires in 50 ms
///   options.joint.run_context = ctx;
///   ...                                              // another thread may
///   ctx.Cancel();                                    // also cancel manually
class RunContext {
 public:
  /// Inert context: never cancelled, no deadline.
  RunContext() = default;

  /// Context that auto-cancels `millis` milliseconds from now. Manual
  /// Cancel() still works and fires earlier.
  static RunContext WithDeadline(int64_t millis) {
    RunContext context = Cancellable();
    context.state_->deadline =
        Clock::now() + std::chrono::milliseconds(millis);
    context.state_->has_deadline = true;
    return context;
  }

  /// Context with shared state but no deadline; cancel via Cancel().
  static RunContext Cancellable() {
    RunContext context;
    context.state_ = std::make_shared<State>();
    return context;
  }

  /// Child context derived from `parent`: it cancels as soon as the parent
  /// cancels (deadline or manual), and cancelling the child never affects
  /// the parent. The optional own deadline may tighten but never loosen the
  /// parent's: the effective deadline is the earlier of the two. Pass a
  /// negative `deadline_millis` (the default) for no additional deadline.
  ///
  /// The service layer derives one child per session from a manager-wide
  /// root (so shutdown cancels everything), and the joint executor derives
  /// one per config node (so a failed shard stops its siblings without
  /// touching other configs).
  static RunContext WithParent(const RunContext& parent,
                               int64_t deadline_millis = -1) {
    RunContext context = Cancellable();
    if (deadline_millis >= 0) {
      context.state_->deadline =
          Clock::now() + std::chrono::milliseconds(deadline_millis);
      context.state_->has_deadline = true;
    }
    if (parent.state_ != nullptr) {
      context.state_->parent = parent.state_;
      if (parent.state_->has_deadline &&
          (!context.state_->has_deadline ||
           parent.state_->deadline < context.state_->deadline)) {
        context.state_->deadline = parent.state_->deadline;
        context.state_->has_deadline = true;
      }
    }
    return context;
  }

  /// Requests cancellation. Safe from any thread; no-op on an inert
  /// context. Idempotent.
  void Cancel() {
    if (state_ != nullptr) {
      state_->cancelled.store(true, std::memory_order_relaxed);
    }
  }

  /// True once Cancel() was called or the deadline passed. Polling this is
  /// cheap (atomic load, plus one clock read when a deadline is set) but
  /// not free — call it once per batch of work (e.g. every
  /// `merge_poll_period` join events), not per element.
  bool Cancelled() const {
    if (state_ == nullptr) return false;
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    if (state_->has_deadline && Clock::now() >= state_->deadline) {
      state_->cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
    // Parent deadlines are folded into this state's deadline at WithParent
    // time; the chain walk only has to observe manual ancestor cancels.
    for (const State* ancestor = state_->parent.get(); ancestor != nullptr;
         ancestor = ancestor->parent.get()) {
      if (ancestor->cancelled.load(std::memory_order_relaxed)) {
        state_->cancelled.store(true, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  /// Milliseconds until the deadline (clamped at 0), or INT64_MAX when no
  /// deadline is set. An already-cancelled context reports 0.
  int64_t RemainingMillis() const {
    if (state_ == nullptr) return std::numeric_limits<int64_t>::max();
    if (Cancelled()) return 0;
    if (!state_->has_deadline) return std::numeric_limits<int64_t>::max();
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                         state_->deadline - Clock::now())
                         .count();
    return remaining > 0 ? remaining : 0;
  }

  /// True for contexts that can ever cancel (non-inert).
  bool can_cancel() const { return state_ != nullptr; }

 private:
  using Clock = std::chrono::steady_clock;

  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    Clock::time_point deadline{};
    // Set only by WithParent; immutable afterwards. Keeps the parent's
    // state alive so a child may outlive the handle it was derived from.
    std::shared_ptr<const State> parent;
  };

  std::shared_ptr<State> state_;
};

}  // namespace mc

#endif  // MATCHCATCHER_UTIL_RUN_CONTEXT_H_
