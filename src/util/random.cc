#include "util/random.h"

#include <cmath>

namespace mc {

size_t Rng::NextZipf(size_t n, double skew) {
  MC_CHECK_GT(n, 0u);
  if (n == 1) return 0;
  // Inverse-CDF sampling against the (approximate) continuous Zipf CDF.
  // Accuracy is unimportant here (synthetic-data realism only), so we use the
  // integral approximation of the generalized harmonic number.
  if (skew <= 0.0) return NextBelow(n);
  const double u = NextDouble();
  if (std::abs(skew - 1.0) < 1e-9) {
    const double h = std::log(static_cast<double>(n) + 1.0);
    const double x = std::exp(u * h) - 1.0;
    size_t r = static_cast<size_t>(x);
    return r < n ? r : n - 1;
  }
  const double one_minus = 1.0 - skew;
  const double h = (std::pow(static_cast<double>(n) + 1.0, one_minus) - 1.0) /
                   one_minus;
  const double x =
      std::pow(u * h * one_minus + 1.0, 1.0 / one_minus) - 1.0;
  size_t r = static_cast<size_t>(x);
  return r < n ? r : n - 1;
}

}  // namespace mc
