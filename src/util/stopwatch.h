#ifndef MATCHCATCHER_UTIL_STOPWATCH_H_
#define MATCHCATCHER_UTIL_STOPWATCH_H_

#include <chrono>

namespace mc {

/// Wall-clock timer used by the benchmark harnesses and the runtime columns
/// of the experiment tables.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mc

#endif  // MATCHCATCHER_UTIL_STOPWATCH_H_
