#ifndef MATCHCATCHER_UTIL_CHECK_H_
#define MATCHCATCHER_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace mc {
namespace internal_check {

/// Accumulates a fatal-error message and aborts the process when destroyed.
/// Used only via the MC_CHECK* macros below; never instantiate directly.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "MC_CHECK failed at " << file << ":" << line << ": "
            << condition;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Turns the streamed CheckFailure expression into void so it can sit in the
/// false branch of the MC_CHECK ternary (glog's "voidify" idiom).
struct Voidify {
  void operator&(const CheckFailure&) {}
};

}  // namespace internal_check
}  // namespace mc

/// Fatal invariant check: aborts with a message when `condition` is false.
/// Supports streaming extra context: MC_CHECK(n > 0) << "n was" << n;
/// Enabled in all build modes — these guard programming errors, not inputs.
#define MC_CHECK(condition)                                     \
  (condition) ? (void)0                                         \
              : ::mc::internal_check::Voidify() &               \
                    ::mc::internal_check::CheckFailure(         \
                        __FILE__, __LINE__, #condition)

#define MC_CHECK_EQ(a, b) MC_CHECK((a) == (b))
#define MC_CHECK_NE(a, b) MC_CHECK((a) != (b))
#define MC_CHECK_LT(a, b) MC_CHECK((a) < (b))
#define MC_CHECK_LE(a, b) MC_CHECK((a) <= (b))
#define MC_CHECK_GT(a, b) MC_CHECK((a) > (b))
#define MC_CHECK_GE(a, b) MC_CHECK((a) >= (b))

#endif  // MATCHCATCHER_UTIL_CHECK_H_
