#ifndef MATCHCATCHER_UTIL_THREAD_NAME_H_
#define MATCHCATCHER_UTIL_THREAD_NAME_H_

#include <string>

#if defined(__linux__) || defined(__APPLE__)
#include <pthread.h>
#endif

namespace mc {

/// Portability shim over pthread_setname_np: names the calling thread so
/// sanitizer reports, core dumps, and debugger sessions attribute work to
/// the pool that ran it ("mcserve-2", "mc-watchdog") instead of an
/// anonymous "Thread T17". Best effort: truncated to the platform limit
/// (15 chars + NUL on Linux) and a no-op where the platform offers nothing.
inline void SetCurrentThreadName(const std::string& name) {
#if defined(__linux__)
  char truncated[16];
  const size_t n = name.size() < 15 ? name.size() : 15;
  name.copy(truncated, n);
  truncated[n] = '\0';
  pthread_setname_np(pthread_self(), truncated);
#elif defined(__APPLE__)
  pthread_setname_np(name.substr(0, 63).c_str());
#else
  (void)name;
#endif
}

/// The calling thread's name ("" where unsupported); for tests.
inline std::string CurrentThreadName() {
#if defined(__linux__) || defined(__APPLE__)
  char buffer[64] = {0};
  if (pthread_getname_np(pthread_self(), buffer, sizeof(buffer)) != 0) {
    return std::string();
  }
  return std::string(buffer);
#else
  return std::string();
#endif
}

}  // namespace mc

#endif  // MATCHCATCHER_UTIL_THREAD_NAME_H_
