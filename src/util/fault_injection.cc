#include "util/fault_injection.h"

namespace mc {

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::ArmNthHit(const std::string& point, FaultKind kind,
                              size_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  PointState& state = points_[point];
  state.mode = PointState::Mode::kNth;
  state.kind = kind;
  state.nth = nth;
  state.hits = 0;
  any_armed_.store(true, std::memory_order_release);
}

void FaultRegistry::ArmEveryHit(const std::string& point, FaultKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  PointState& state = points_[point];
  state.mode = PointState::Mode::kEvery;
  state.kind = kind;
  state.hits = 0;
  any_armed_.store(true, std::memory_order_release);
}

void FaultRegistry::ArmWithProbability(const std::string& point,
                                       FaultKind kind, double p,
                                       uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  PointState& state = points_[point];
  state.mode = PointState::Mode::kProbability;
  state.kind = kind;
  state.probability = p;
  state.hits = 0;
  state.rng = Rng(seed);
  any_armed_.store(true, std::memory_order_release);
}

FaultKind FaultRegistry::Check(const std::string& point) {
  if (!any_armed_.load(std::memory_order_acquire)) return FaultKind::kNone;
  std::lock_guard<std::mutex> lock(mutex_);
  PointState& state = points_[point];
  ++state.hits;
  switch (state.mode) {
    case PointState::Mode::kDisarmed:
      return FaultKind::kNone;
    case PointState::Mode::kNth:
      if (state.hits == state.nth) {
        state.mode = PointState::Mode::kDisarmed;  // One-shot.
        return state.kind;
      }
      return FaultKind::kNone;
    case PointState::Mode::kEvery:
      return state.kind;
    case PointState::Mode::kProbability:
      return state.rng.NextDouble() < state.probability ? state.kind
                                                        : FaultKind::kNone;
  }
  return FaultKind::kNone;
}

size_t FaultRegistry::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.erase(point);
  for (const auto& [name, state] : points_) {
    (void)name;
    if (state.mode != PointState::Mode::kDisarmed) return;
  }
  any_armed_.store(false, std::memory_order_release);
}

void FaultRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  any_armed_.store(false, std::memory_order_release);
}

ScopedFaultArm::ScopedFaultArm(std::string point, FaultKind kind)
    : point_(std::move(point)) {
  FaultRegistry::Instance().ArmEveryHit(point_, kind);
}

ScopedFaultArm::ScopedFaultArm(std::string point, FaultKind kind, size_t nth)
    : point_(std::move(point)) {
  FaultRegistry::Instance().ArmNthHit(point_, kind, nth);
}

ScopedFaultArm::ScopedFaultArm(std::string point, FaultKind kind, double p,
                               uint64_t seed)
    : point_(std::move(point)) {
  FaultRegistry::Instance().ArmWithProbability(point_, kind, p, seed);
}

ScopedFaultArm::ScopedFaultArm(ScopedFaultArm&& other) noexcept
    : point_(std::move(other.point_)) {
  other.point_.clear();
}

ScopedFaultArm::~ScopedFaultArm() {
  if (!point_.empty()) FaultRegistry::Instance().Disarm(point_);
}

size_t ScopedFaultArm::HitCount() const {
  return FaultRegistry::Instance().HitCount(point_);
}

}  // namespace mc
