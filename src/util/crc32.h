#ifndef MATCHCATCHER_UTIL_CRC32_H_
#define MATCHCATCHER_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mc {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG variant) over
/// `data`. Used by the session checkpoint footer (core/session_io) to
/// detect torn or bit-rotted files; not a cryptographic hash.
///
/// `seed` lets callers chain incremental updates:
///   uint32_t c = Crc32(part1);
///   c = Crc32(part2, c);
/// equals Crc32(part1 + part2).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

/// Raw-buffer overload.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace mc

#endif  // MATCHCATCHER_UTIL_CRC32_H_
