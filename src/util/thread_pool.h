#ifndef MATCHCATCHER_UTIL_THREAD_POOL_H_
#define MATCHCATCHER_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mc {

/// Fixed-size worker pool with a FIFO task queue. Used by the joint top-k
/// executor ("one config per core", paper §4.2) and the QJoin q-value race.
///
/// Thread-safe: Submit() may be called from any thread, including from inside
/// a running task. Wait() blocks until the queue is empty and all workers are
/// idle. The destructor drains outstanding tasks before joining.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues `task` for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by running
  /// tasks) has completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool shutting_down_ = false;
};

}  // namespace mc

#endif  // MATCHCATCHER_UTIL_THREAD_POOL_H_
