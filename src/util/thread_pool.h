#ifndef MATCHCATCHER_UTIL_THREAD_POOL_H_
#define MATCHCATCHER_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace mc {

/// How a topology-aware pool binds workers to CPUs.
enum class ThreadPinning {
  /// Pin when the topology is real (not MC_TOPOLOGY-faked) and has more
  /// than one node; the MC_PIN_THREADS environment variable ("1"/"0")
  /// overrides in either direction. The default.
  kAuto,
  /// Pin whenever the topology is real. Requesting pinning on a fake
  /// topology records a topology fallback (the synthesized CPUs may not
  /// exist) and runs unpinned.
  kOn,
  /// Never pin.
  kOff,
};

/// Construction options for ThreadPool.
struct ThreadPoolOptions {
  /// Worker thread name prefix (util/thread_name.h).
  std::string name_prefix = "mcpool";
  /// Group workers by NUMA node: worker i belongs to node
  /// SystemTopology::NodeOfSlice(i, num_threads), is named
  /// `<prefix>-n<node>-w<i>`, and prefers tasks submitted for its node
  /// (SubmitOnNode). Off: the classic flat pool, workers named
  /// `<prefix>-<i>`.
  bool topology_aware = false;
  ThreadPinning pinning = ThreadPinning::kAuto;
};

/// Fixed-size worker pool with a FIFO task queue. Used by the joint top-k
/// executor ("one config per core", paper §4.2) and the QJoin q-value race.
///
/// ## Lifecycle
///
/// Workers start in the constructor and run until the destructor. The
/// destructor drains every outstanding task, then joins the workers.
/// Submit() may be called from any thread, including from inside a running
/// task — but never during or after destruction: once the destructor has
/// begun, Submit() is a fatal programming error (MC_CHECK), because the
/// task could otherwise be silently dropped or enqueued onto dead workers.
/// Arrange for all producers to be quiescent before the pool dies.
///
/// ## Failure semantics
///
/// The library is exception-free (Status-based), but tasks may call user
/// code that throws. A throwing task never kills its worker and never
/// aborts the process: the exception is caught at the task boundary and
/// converted to Status::Internal. Per task, the first of these applies:
///
///   1. if the task was submitted with an error sink, the sink receives the
///      Status (called on the worker thread);
///   2. otherwise the pool records the *first* such error, and the next
///      Wait() returns it (later errors are counted but dropped).
///
/// Wait() clears the recorded error once returned, so each Submit…Wait
/// round reports its own failures.
class ThreadPool {
 public:
  /// Sink invoked (on the worker thread) with the Status of a failed task.
  using ErrorSink = std::function<void(const Status&)>;

  /// Creates a pool with `num_threads` workers (minimum 1). Workers are
  /// named `<name_prefix>-<index>` (util/thread_name.h) so sanitizer
  /// reports and debugger sessions are attributable to the owning pool.
  explicit ThreadPool(size_t num_threads,
                      const std::string& name_prefix = "mcpool");

  /// As above with explicit options (topology-aware grouping, pinning).
  ThreadPool(size_t num_threads, const ThreadPoolOptions& options);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues `task`. A thrown exception is captured per the failure
  /// semantics above. Fatal if called during/after destruction.
  void Submit(std::function<void()> task);

  /// Enqueues `task` with a per-task error sink. The sink is only invoked
  /// on failure, at most once, on the worker thread.
  void Submit(std::function<void()> task, ErrorSink error_sink);

  /// Enqueues `task` with a NUMA-node preference: workers of `node` pick it
  /// up ahead of untagged work when they go idle. Purely a soft routing
  /// hint — any worker takes the queue front when nothing matches its own
  /// node, so no task ever starves, and on a non-topology-aware pool the
  /// tag is inert. Task *results* must not depend on which worker runs
  /// them (the executor's merges are canonical), so the hint never affects
  /// output — only locality.
  void SubmitOnNode(int node, std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by
  /// running tasks) has completed. Returns the first sink-less task error
  /// since the previous Wait(), or OK; the error is cleared once returned.
  Status Wait();

  size_t num_threads() const { return threads_.size(); }

  /// True when this pool groups workers by NUMA node.
  bool topology_aware() const { return topology_aware_; }

  /// The node worker `i` belongs to (-1 on a non-topology-aware pool).
  int NodeOfWorker(size_t i) const {
    return i < worker_nodes_.size() ? worker_nodes_[i] : -1;
  }

  /// True when workers were actually pinned to cores (for diagnostics; a
  /// requested-but-unavailable pin is a recorded topology fallback).
  bool pinned() const { return pinned_; }

  /// Number of task errors captured (sink-less tasks only) since the last
  /// Wait() that returned an error.
  size_t error_count() const;

 private:
  struct Task {
    std::function<void()> fn;
    ErrorSink error_sink;
    int node = -1;  // Preferred NUMA node; -1 = any worker.
  };

  void Enqueue(Task task);
  void WorkerLoop(int node);
  void RecordError(Status status);

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<Task> queue_;
  std::vector<std::thread> threads_;
  std::vector<int> worker_nodes_;  // Parallel to threads_; -1 = ungrouped.
  bool topology_aware_ = false;
  bool pinned_ = false;
  size_t active_ = 0;
  bool shutting_down_ = false;
  Status first_error_;
  size_t error_count_ = 0;
};

}  // namespace mc

#endif  // MATCHCATCHER_UTIL_THREAD_POOL_H_
