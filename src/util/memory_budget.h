#ifndef MATCHCATCHER_UTIL_MEMORY_BUDGET_H_
#define MATCHCATCHER_UTIL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <utility>

#include "util/check.h"

namespace mc {

/// Shared byte-accounting gauge with a hard ceiling. The session service
/// owns one and threads a pointer into every arena-building stage
/// (SsjCorpus::Build, TokenizedTable::Build), so the total footprint of all
/// concurrent sessions' planes is bounded by construction: a charge that
/// would cross the limit is *refused* — the builder then degrades to a
/// truncated result instead of OOM-ing the process.
///
/// Accounting covers the large CSR arenas, not every small allocation; the
/// limit is an engineering bound, not an exact rlimit. Thread-safe; a limit
/// of 0 means unlimited (every charge succeeds, usage still tracked).
class MemoryBudget {
 public:
  explicit MemoryBudget(size_t limit_bytes = 0) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Charges `bytes` unless that would push usage past the limit; returns
  /// whether the charge was taken. Refusals are counted.
  bool TryCharge(size_t bytes) {
    size_t used = used_.load(std::memory_order_relaxed);
    while (true) {
      const size_t next = used + bytes;
      if (limit_ != 0 && (next > limit_ || next < used)) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (used_.compare_exchange_weak(used, next, std::memory_order_relaxed)) {
        // Racy max update; peak is diagnostic, not a correctness value.
        size_t peak = peak_.load(std::memory_order_relaxed);
        while (next > peak &&
               !peak_.compare_exchange_weak(peak, next,
                                            std::memory_order_relaxed)) {
        }
        return true;
      }
    }
  }

  /// Returns a previous charge. Releasing more than was charged is a bug
  /// (e.g. a MemoryReservation destroyed against the wrong budget): usage
  /// clamps at 0 rather than wrapping, the violation is counted, and debug
  /// builds assert unless the over-release was expected by a test
  /// (set_tolerate_release_violations).
  void Release(size_t bytes) {
    size_t used = used_.load(std::memory_order_relaxed);
    while (!used_.compare_exchange_weak(
        used, used >= bytes ? used - bytes : 0, std::memory_order_relaxed)) {
    }
    // `used` now holds the pre-exchange value of the successful CAS, so the
    // violation is counted exactly once, not once per CAS retry.
    if (bytes > used) {
      release_violations_.fetch_add(1, std::memory_order_relaxed);
#ifndef NDEBUG
      MC_CHECK(tolerate_release_violations_.load(std::memory_order_relaxed))
          << "MemoryBudget::Release(" << bytes << ") exceeds the " << used
          << " bytes currently charged";
#endif
    }
  }

  size_t limit() const { return limit_; }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  /// Charges refused since construction.
  size_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
  /// Over-releases observed (each clamped at zero instead of wrapping).
  size_t release_violations() const {
    return release_violations_.load(std::memory_order_relaxed);
  }
  /// Lets a regression test trigger an over-release without tripping the
  /// debug assert. Production code never calls this.
  void set_tolerate_release_violations(bool tolerate) {
    tolerate_release_violations_.store(tolerate, std::memory_order_relaxed);
  }
  /// Bytes left under the limit (SIZE_MAX when unlimited).
  size_t remaining() const {
    if (limit_ == 0) return static_cast<size_t>(-1);
    const size_t used = used_.load(std::memory_order_relaxed);
    return used >= limit_ ? 0 : limit_ - used;
  }

 private:
  const size_t limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<size_t> rejected_{0};
  std::atomic<size_t> release_violations_{0};
  std::atomic<bool> tolerate_release_violations_{false};
};

/// Movable RAII handle over one MemoryBudget charge: acquired by a builder
/// when its arena sizes are known, released when the owning object (corpus,
/// text plane) is destroyed. The budget must outlive every reservation
/// taken from it — the service declares its budget before its caches and
/// sessions so it destructs last.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  ~MemoryReservation() { Release(); }

  MemoryReservation(MemoryReservation&& other) noexcept
      : budget_(std::exchange(other.budget_, nullptr)),
        bytes_(std::exchange(other.bytes_, 0)) {}
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      Release();
      budget_ = std::exchange(other.budget_, nullptr);
      bytes_ = std::exchange(other.bytes_, 0);
    }
    return *this;
  }

  /// Charges `bytes` against `budget`, releasing any previous charge first.
  /// Returns false — holding nothing — when the budget refuses. A null
  /// budget always succeeds (unlimited, nothing tracked).
  bool Acquire(MemoryBudget* budget, size_t bytes) {
    Release();
    if (budget == nullptr) return true;
    if (!budget->TryCharge(bytes)) return false;
    budget_ = budget;
    bytes_ = bytes;
    return true;
  }

  void Release() {
    if (budget_ != nullptr) budget_->Release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

  size_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_ = nullptr;
  size_t bytes_ = 0;
};

}  // namespace mc

#endif  // MATCHCATCHER_UTIL_MEMORY_BUDGET_H_
