#ifndef MATCHCATCHER_UTIL_FAULT_INJECTION_H_
#define MATCHCATCHER_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/random.h"

namespace mc {

/// What an armed fault point should do when it fires. The *point* only
/// reports the kind; the code hosting it interprets it (e.g. session_io
/// turns kError into Status::IoError, kPartialWrite into a torn .tmp file).
enum class FaultKind {
  kNone = 0,
  /// Fail with a typed Status (an injected IO/parse failure).
  kError,
  /// Throw std::runtime_error (exercises exception paths, e.g. ThreadPool).
  kThrow,
  /// IO points: write a truncated artifact, then fail — simulates a crash
  /// mid-write.
  kPartialWrite,
};

/// Process-wide registry of named fault points for deterministic fault
/// injection in tests. Production code marks recoverable failure sites with
/// MC_FAULT_POINT("area/operation"); tests arm a point, run the real code
/// path, and assert the recovery behavior — real faults, not mocks.
///
///   FaultRegistry::Instance().ArmNthHit("session_io/write", FaultKind::kError, 1);
///   Status s = SaveTopKLists(lists, path);   // fails with the injected fault
///   FaultRegistry::Instance().Reset();
///
/// Determinism: arming is explicit and counted — ArmNthHit fires on exactly
/// the nth hit, ArmWithProbability draws from a private seeded Rng, so a
/// given (arm calls, execution order) always yields the same faults. When
/// nothing is armed, Check() is one relaxed atomic load and hits are not
/// counted; the registry costs nothing in production.
///
/// Thread-safe: Check() may race with worker threads; arming/Reset should
/// happen while the system is quiescent (between test phases).
class FaultRegistry {
 public:
  static FaultRegistry& Instance();

  /// Fires `kind` on exactly the `nth` (1-based) hit of `point`, once.
  void ArmNthHit(const std::string& point, FaultKind kind, size_t nth);

  /// Fires `kind` on every hit of `point` until Reset().
  void ArmEveryHit(const std::string& point, FaultKind kind);

  /// Fires `kind` on each hit with probability `p`, drawn from an Rng
  /// seeded with `seed` — deterministic for a fixed execution order.
  void ArmWithProbability(const std::string& point, FaultKind kind, double p,
                          uint64_t seed);

  /// Called by MC_FAULT_POINT: counts the hit and returns the armed action,
  /// or kNone. Fast no-op when nothing is armed anywhere.
  FaultKind Check(const std::string& point);

  /// Hits seen by `point` since the last Reset(). Counted only while at
  /// least one point is armed (the disarmed fast path skips bookkeeping).
  size_t HitCount(const std::string& point) const;

  /// Disarms `point` only (dropping its hit counter), leaving other armed
  /// points and their counters untouched. Used by ScopedFaultArm so
  /// overlapping guards don't clobber one another.
  void Disarm(const std::string& point);

  /// Disarms every point and clears all hit counters.
  void Reset();

 private:
  FaultRegistry() = default;

  struct PointState {
    enum class Mode { kDisarmed, kNth, kEvery, kProbability };
    Mode mode = Mode::kDisarmed;
    FaultKind kind = FaultKind::kNone;
    size_t nth = 0;
    size_t hits = 0;
    double probability = 0.0;
    Rng rng{0};
  };

  std::atomic<bool> any_armed_{false};
  mutable std::mutex mutex_;
  std::unordered_map<std::string, PointState> points_;
};

/// RAII guard that arms one fault point for the current scope and disarms
/// it — that point only — on destruction, even when the scope is left by an
/// early `return`, a failed ASSERT, or an exception. Prefer this over
/// manual Arm…/Reset() pairs in tests: a tear-down Reset() skipped by an
/// assert failure leaks the armed fault into every later test case.
///
///   {
///     ScopedFaultArm fault("session_io/write", FaultKind::kError);
///     ASSERT_FALSE(SaveTopKLists(lists, path).ok());   // guard still fires
///   }                                                  // disarmed here
///
/// Guards over *different* points nest freely. Two live guards over the
/// same point are a test bug (the second re-arms over the first, and the
/// first destructor disarms both).
class ScopedFaultArm {
 public:
  /// Arms `kind` on every hit of `point` (ArmEveryHit).
  ScopedFaultArm(std::string point, FaultKind kind);
  /// Arms `kind` on exactly the `nth` hit (ArmNthHit).
  ScopedFaultArm(std::string point, FaultKind kind, size_t nth);
  /// Arms `kind` with probability `p` per hit (ArmWithProbability).
  ScopedFaultArm(std::string point, FaultKind kind, double p, uint64_t seed);

  ScopedFaultArm(const ScopedFaultArm&) = delete;
  ScopedFaultArm& operator=(const ScopedFaultArm&) = delete;
  ScopedFaultArm(ScopedFaultArm&& other) noexcept;
  ScopedFaultArm& operator=(ScopedFaultArm&&) = delete;

  ~ScopedFaultArm();

  /// Hits the guarded point has seen since arming.
  size_t HitCount() const;

 private:
  std::string point_;  // Empty after being moved from.
};

}  // namespace mc

/// Marks a recoverable failure site. Expands to the armed FaultKind for
/// this hit (kNone when disarmed). Name points "area/operation"
/// (e.g. "session_io/write"); the catalog lives in docs/robustness.md.
#define MC_FAULT_POINT(point) (::mc::FaultRegistry::Instance().Check(point))

#endif  // MATCHCATCHER_UTIL_FAULT_INJECTION_H_
