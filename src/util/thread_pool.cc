#include "util/thread_pool.h"

#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "mem/arena_stats.h"
#include "mem/topology.h"
#include "util/check.h"
#include "util/thread_name.h"

namespace mc {

namespace {

// Resolves the pinning policy against the environment and the detected
// topology. Pinning is only ever honored on a *real* topology: a faked one
// (MC_TOPOLOGY) synthesizes CPU ids that may not exist on the machine, so
// it routes decisions but never binds — requesting a bind there is a
// recorded topology fallback, not an error.
bool ShouldPin(ThreadPinning pinning, const mem::SystemTopology& topo) {
  const char* env = std::getenv("MC_PIN_THREADS");
  switch (pinning) {
    case ThreadPinning::kOff:
      return false;
    case ThreadPinning::kOn:
      break;
    case ThreadPinning::kAuto:
      if (env != nullptr) {
        if (env[0] == '0') return false;
        break;  // "1" (or anything else non-"0"): treat as kOn.
      }
      if (topo.num_nodes() <= 1) return false;
      break;
  }
  if (topo.fake()) {
    mem::ArenaStatsRegistry::Instance().RecordTopologyFallback();
    return false;
  }
  return true;
}

// Pins the calling thread to one core of its node (round-robin within the
// node's CPU list). Best effort: failure is a topology fallback.
void PinToCore(const std::vector<int>& cpus, size_t index) {
#if defined(__linux__)
  if (cpus.empty()) return;
  const int cpu = cpus[index % cpus.size()];
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    mem::ArenaStatsRegistry::Instance().RecordTopologyFallback();
  }
#else
  (void)cpus;
  (void)index;
  mem::ArenaStatsRegistry::Instance().RecordTopologyFallback();
#endif
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads, const std::string& name_prefix)
    : ThreadPool(num_threads, ThreadPoolOptions{.name_prefix = name_prefix}) {}

ThreadPool::ThreadPool(size_t num_threads, const ThreadPoolOptions& options) {
  if (num_threads == 0) num_threads = 1;
  topology_aware_ = options.topology_aware;
  threads_.reserve(num_threads);
  worker_nodes_.assign(num_threads, -1);
  if (!topology_aware_) {
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this, name = options.name_prefix + "-" +
                                       std::to_string(i)] {
        SetCurrentThreadName(name);
        WorkerLoop(/*node=*/-1);
      });
    }
    return;
  }

  // Topology-aware: carve the workers into contiguous per-node groups —
  // worker i serves node NodeOfSlice(i, n), mirroring how the executor
  // slices table-A rows across nodes, so a task routed to the node owning
  // its arena slice lands on a worker whose caches (and, when pinned, whose
  // memory controller) are local to that slice.
  const mem::SystemTopology& topo = mem::SystemTopology::Get();
  const bool pin = ShouldPin(options.pinning, topo);
  pinned_ = pin;
  std::vector<size_t> index_in_node(topo.num_nodes(), 0);
  for (size_t i = 0; i < num_threads; ++i) {
    const int node = static_cast<int>(topo.NodeOfSlice(i, num_threads));
    worker_nodes_[i] = node;
    const size_t core_index =
        index_in_node[static_cast<size_t>(node)]++;
    // The CPU list is copied into the worker: the cached topology can be
    // swapped under a running pool by SystemTopology::SetForTest.
    threads_.emplace_back([this, pin, node, core_index,
                           cpus = topo.nodes()[static_cast<size_t>(node)].cpus,
                           name = options.name_prefix + "-n" +
                                  std::to_string(node) + "-w" +
                                  std::to_string(i)] {
      SetCurrentThreadName(name);
      if (pin) PinToCore(cpus, core_index);
      WorkerLoop(node);
    });
  }
}

ThreadPool::~ThreadPool() {
  Wait();  // Drain; any unclaimed task error dies with the pool.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit(std::move(task), nullptr);
}

void ThreadPool::Submit(std::function<void()> task, ErrorSink error_sink) {
  MC_CHECK(task != nullptr);
  Enqueue(Task{std::move(task), std::move(error_sink), /*node=*/-1});
}

void ThreadPool::SubmitOnNode(int node, std::function<void()> task) {
  MC_CHECK(task != nullptr);
  Enqueue(Task{std::move(task), nullptr, node});
}

void ThreadPool::Enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MC_CHECK(!shutting_down_)
        << "ThreadPool::Submit() during or after pool destruction; the task "
           "would run on dead workers. All producers (including running "
           "tasks) must stop submitting before the pool is destroyed.";
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  Status first = std::move(first_error_);
  first_error_ = Status::Ok();
  error_count_ = 0;
  return first;
}

size_t ThreadPool::error_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return error_count_;
}

void ThreadPool::RecordError(Status status) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (first_error_.ok()) first_error_ = std::move(status);
  ++error_count_;
}

void ThreadPool::WorkerLoop(int node) {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting_down_ with no work left.
      // Soft node routing: a grouped worker prefers the earliest task
      // tagged for its own node, falling back to strict FIFO when nothing
      // matches — so tags redirect locality but can never starve a task.
      // The scan is O(queue length); queues here hold per-config/per-shard
      // tasks (dozens), not fine-grained items.
      auto it = queue_.begin();
      if (node >= 0) {
        for (auto scan = queue_.begin(); scan != queue_.end(); ++scan) {
          if (scan->node == node) {
            it = scan;
            break;
          }
        }
      }
      task = std::move(*it);
      queue_.erase(it);
      ++active_;
    }
    // Task boundary: exceptions stop here. A throwing task must neither
    // kill this worker (the pool would deadlock in Wait) nor unwind into
    // std::thread's terminate handler.
    Status failure;
    try {
      task.fn();
    } catch (const std::exception& e) {
      failure = Status::Internal(std::string("pool task threw: ") + e.what());
    } catch (...) {
      failure = Status::Internal("pool task threw a non-std exception");
    }
    if (!failure.ok()) {
      if (task.error_sink != nullptr) {
        task.error_sink(failure);
      } else {
        RecordError(std::move(failure));
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace mc
