#include "util/thread_pool.h"

#include <exception>
#include <string>
#include <utility>

#include "util/check.h"
#include "util/thread_name.h"

namespace mc {

ThreadPool::ThreadPool(size_t num_threads, const std::string& name_prefix) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, name = name_prefix + "-" +
                                     std::to_string(i)] {
      SetCurrentThreadName(name);
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  Wait();  // Drain; any unclaimed task error dies with the pool.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit(std::move(task), nullptr);
}

void ThreadPool::Submit(std::function<void()> task, ErrorSink error_sink) {
  MC_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MC_CHECK(!shutting_down_)
        << "ThreadPool::Submit() during or after pool destruction; the task "
           "would run on dead workers. All producers (including running "
           "tasks) must stop submitting before the pool is destroyed.";
    queue_.push_back(Task{std::move(task), std::move(error_sink)});
  }
  work_available_.notify_one();
}

Status ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  Status first = std::move(first_error_);
  first_error_ = Status::Ok();
  error_count_ = 0;
  return first;
}

size_t ThreadPool::error_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return error_count_;
}

void ThreadPool::RecordError(Status status) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (first_error_.ok()) first_error_ = std::move(status);
  ++error_count_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting_down_ with no work left.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    // Task boundary: exceptions stop here. A throwing task must neither
    // kill this worker (the pool would deadlock in Wait) nor unwind into
    // std::thread's terminate handler.
    Status failure;
    try {
      task.fn();
    } catch (const std::exception& e) {
      failure = Status::Internal(std::string("pool task threw: ") + e.what());
    } catch (...) {
      failure = Status::Internal("pool task threw a non-std exception");
    }
    if (!failure.ok()) {
      if (task.error_sink != nullptr) {
        task.error_sink(failure);
      } else {
        RecordError(std::move(failure));
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace mc
