#include "util/thread_pool.h"

#include <utility>

#include "util/check.h"

namespace mc {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  MC_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MC_CHECK(!shutting_down_) << "Submit() after shutdown";
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting_down_ with no work left.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace mc
