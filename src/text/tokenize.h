#ifndef MATCHCATCHER_TEXT_TOKENIZE_H_
#define MATCHCATCHER_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace mc {

/// Splits `text` into lower-cased word tokens (maximal alphanumeric runs).
/// "Dave Smith, Altanta" -> {"dave", "smith", "altanta"}.
std::vector<std::string> WordTokens(std::string_view text);

/// Distinct word tokens in first-appearance order (set semantics, which is
/// how the paper defines Jaccard over strings in §3.1).
std::vector<std::string> DistinctWordTokens(std::string_view text);

/// Character q-grams of the normalized string (spaces collapsed, the string
/// padded with q-1 '#' on each side, standard record-linkage convention).
/// Returns distinct q-grams.
std::vector<std::string> QGrams(std::string_view text, size_t q);

/// Last word token of `text`, or "" if there is none. Used by hash blockers
/// such as lastword(a.Name) = lastword(b.Name) in the paper's Example 1.1.
std::string LastWordToken(std::string_view text);

/// First word token of `text`, or "" if there is none.
std::string FirstWordToken(std::string_view text);

}  // namespace mc

#endif  // MATCHCATCHER_TEXT_TOKENIZE_H_
