#include "text/normalize.h"

#include <cctype>

namespace mc {

std::string ToLowerAscii(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string NormalizeForTokens(std::string_view text) {
  std::string result(text.size(), ' ');
  for (size_t i = 0; i < text.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    result[i] = std::isalnum(c) ? static_cast<char>(std::tolower(c)) : ' ';
  }
  return result;
}

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace mc
