#ifndef MATCHCATCHER_TEXT_TOKEN_DICTIONARY_H_
#define MATCHCATCHER_TEXT_TOKEN_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace mc {

/// Token id type used throughout the SSJ machinery.
using TokenId = uint32_t;

/// Interns word tokens to dense ids and tracks document frequencies, from
/// which it derives the global token ordering used by prefix-based joins
/// (ascending document frequency — rarest first — with ties broken by the
/// token string for determinism).
class TokenDictionary {
 public:
  TokenDictionary() = default;

  /// Returns the id of `token`, interning it if new.
  TokenId Intern(std::string_view token) {
    auto it = ids_.find(std::string(token));
    if (it != ids_.end()) return it->second;
    TokenId id = static_cast<TokenId>(tokens_.size());
    tokens_.emplace_back(token);
    document_frequency_.push_back(0);
    ids_.emplace(tokens_.back(), id);
    ranks_valid_ = false;
    return id;
  }

  /// Returns the id of `token` if already interned.
  std::optional<TokenId> Find(std::string_view token) const {
    auto it = ids_.find(std::string(token));
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  const std::string& TokenOf(TokenId id) const {
    MC_CHECK_LT(id, tokens_.size());
    return tokens_[id];
  }

  /// Records one document occurrence for each id in `distinct_ids`; the
  /// caller must have deduplicated ids within the document.
  void AddDocument(const std::vector<TokenId>& distinct_ids) {
    for (TokenId id : distinct_ids) {
      MC_CHECK_LT(id, document_frequency_.size());
      ++document_frequency_[id];
    }
    ranks_valid_ = false;
  }

  /// Adds `count` document occurrences to `id` in one step. The parallel
  /// corpus build tallies frequencies in per-block dictionaries and merges
  /// them here; the result is identical to `count` AddDocument calls.
  void AddDocumentFrequency(TokenId id, uint32_t count) {
    MC_CHECK_LT(id, document_frequency_.size());
    document_frequency_[id] += count;
    ranks_valid_ = false;
  }

  /// Removes `count` document occurrences from `id` — the delta path's
  /// inverse of AddDocumentFrequency, used when a row's old content is
  /// retired. Subtracting below zero is a programming error.
  void SubtractDocumentFrequency(TokenId id, uint32_t count) {
    MC_CHECK_LT(id, document_frequency_.size());
    MC_CHECK_GE(document_frequency_[id], count)
        << "document frequency underflow for token '" << tokens_[id] << "'";
    document_frequency_[id] -= count;
    ranks_valid_ = false;
  }

  uint32_t DocumentFrequency(TokenId id) const {
    MC_CHECK_LT(id, document_frequency_.size());
    return document_frequency_[id];
  }

  /// Tokens whose document frequency has dropped to zero (possible only
  /// after SubtractDocumentFrequency). They keep their ids — consumers may
  /// still hold streams referencing them — but rank after all live tokens
  /// and motivate compaction (a full rebuild) once they dominate.
  size_t DeadTokenCount() const {
    size_t dead = 0;
    for (uint32_t df : document_frequency_) dead += (df == 0);
    return dead;
  }

  size_t size() const { return tokens_.size(); }

  /// Global-order rank of a token: lower rank = rarer = earlier in every
  /// sorted token list. Call FinalizeRanks() after the last AddDocument().
  uint32_t RankOf(TokenId id) const {
    MC_CHECK(ranks_valid_) << "FinalizeRanks() not called";
    MC_CHECK_LT(id, ranks_.size());
    return ranks_[id];
  }

  /// Computes the global ordering from current document frequencies.
  void FinalizeRanks();

 private:
  std::unordered_map<std::string, TokenId> ids_;
  std::vector<std::string> tokens_;
  std::vector<uint32_t> document_frequency_;
  std::vector<uint32_t> ranks_;
  bool ranks_valid_ = false;
};

}  // namespace mc

#endif  // MATCHCATCHER_TEXT_TOKEN_DICTIONARY_H_
