#ifndef MATCHCATCHER_TEXT_NORMALIZE_H_
#define MATCHCATCHER_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace mc {

/// Lower-cases ASCII letters in place-semantics (returns a new string).
std::string ToLowerAscii(std::string_view text);

/// Canonical text normalization used before tokenization everywhere in the
/// library: lower-case ASCII and map every non-alphanumeric byte to a space.
std::string NormalizeForTokens(std::string_view text);

/// Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view text);

}  // namespace mc

#endif  // MATCHCATCHER_TEXT_NORMALIZE_H_
