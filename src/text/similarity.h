#ifndef MATCHCATCHER_TEXT_SIMILARITY_H_
#define MATCHCATCHER_TEXT_SIMILARITY_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace mc {

/// Set-based similarity measures over token sets (the measures the paper's
/// SSJ machinery supports: Jaccard, cosine, overlap, Dice — see Theorem 4.2),
/// plus edit distance for SIM blockers such as
/// ed(lastword(a.Name), lastword(b.Name)) <= 2.

/// Size of the intersection of two token sets. Duplicates in the inputs are
/// ignored (set semantics).
///
/// Legacy-only: plane-attached callers must not tokenize strings per pair —
/// they go through the SIMD-dispatched rank-span kernels instead
/// (simd::OverlapSize / SortedSpanOverlap over TokenizedTable spans). These
/// string-vector entry points remain for the TextPlane::kLegacy paths (no
/// plane attached: ad-hoc predicates, raw-string diagnosis/explain).
size_t OverlapSize(const std::vector<std::string>& a,
                   const std::vector<std::string>& b);

/// |A ∩ B| / |A ∪ B|; 1.0 when both sets are empty.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// |A ∩ B| / sqrt(|A| * |B|); 1.0 when both sets are empty, 0 when one is.
double CosineSimilarity(const std::vector<std::string>& a,
                        const std::vector<std::string>& b);

/// 2|A ∩ B| / (|A| + |B|); 1.0 when both sets are empty.
double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// |A ∩ B| / min(|A|, |B|); 1.0 when both sets are empty, 0 when one is.
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// Convenience: Jaccard over distinct word tokens of two raw strings.
double WordJaccard(std::string_view a, std::string_view b);

/// Convenience: Jaccard over distinct q-grams of two raw strings.
double QGramJaccard(std::string_view a, std::string_view b, size_t q);

/// Convenience: cosine over distinct word tokens of two raw strings.
double WordCosine(std::string_view a, std::string_view b);

/// Convenience: word-token overlap size of two raw strings. Legacy-only,
/// like OverlapSize above.
size_t WordOverlapSize(std::string_view a, std::string_view b);

/// Levenshtein distance (unit costs).
size_t EditDistance(std::string_view a, std::string_view b);

/// Levenshtein distance with early exit: returns `bound + 1` as soon as the
/// true distance provably exceeds `bound`. Used by edit-distance blockers.
size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t bound);

/// 1 - ed(a, b) / max(|a|, |b|); 1.0 when both strings are empty.
double NormalizedEditSimilarity(std::string_view a, std::string_view b);

/// American Soundex code of the first word token of `text` (e.g. "Robert"
/// -> "R163"); "" for inputs with no letters. Used by phonetic blocking.
std::string Soundex(std::string_view text);

/// Identifiers for the set-based measures supported by the top-k SSJ
/// machinery (Theorem 4.2 in the paper).
enum class SetMeasure {
  kJaccard,
  kCosine,
  kDice,
  kOverlapCoefficient,
};

const char* SetMeasureName(SetMeasure measure);

/// Computes the chosen measure from the primitive quantities |A|, |B|,
/// |A ∩ B|. All measures return 1.0 for two empty sets.
///
/// Defined inline: this is the innermost call of the top-k join's probe
/// loop (every positional/count bound and every exact score goes through
/// it), and keeping it in the header lets it fold into the caller.
inline double SetSimilarityFromCounts(SetMeasure measure, size_t size_a,
                                      size_t size_b, size_t overlap) {
  MC_CHECK_LE(overlap, std::min(size_a, size_b));
  if (size_a == 0 && size_b == 0) return 1.0;
  if (size_a == 0 || size_b == 0) return 0.0;
  const double o = static_cast<double>(overlap);
  const double a = static_cast<double>(size_a);
  const double b = static_cast<double>(size_b);
  switch (measure) {
    case SetMeasure::kJaccard:
      return o / (a + b - o);
    case SetMeasure::kCosine:
      return o / std::sqrt(a * b);
    case SetMeasure::kDice:
      return 2.0 * o / (a + b);
    case SetMeasure::kOverlapCoefficient:
      return o / std::min(a, b);
  }
  return 0.0;
}

/// Upper bound on the measure for any pair (a, y) where only tokens at
/// positions >= `position` of `a` (|a| = size_a, 0-based positions) can be
/// shared with y. This is the "cap" used to order prefix extensions and to
/// terminate top-k joins (paper §4.1). Monotonically non-increasing in
/// `position`, and an upper bound for every candidate partner y. Inline for
/// the same reason as SetSimilarityFromCounts.
inline double SetSimilarityCap(SetMeasure measure, size_t size_a,
                               size_t position) {
  if (size_a == 0 || position >= size_a) return 0.0;
  const double remaining = static_cast<double>(size_a - position);
  const double a = static_cast<double>(size_a);
  switch (measure) {
    case SetMeasure::kJaccard:
      // overlap <= remaining and union >= |a|.
      return remaining / a;
    case SetMeasure::kCosine:
      // max over |y| of min(remaining, |y|) / sqrt(a * |y|), attained at
      // |y| = remaining. Evaluated as the exact expression
      // SetSimilarityFromCounts computes for that attaining pair — the
      // algebraically equal sqrt(remaining / a) can round one ulp *below*
      // it (e.g. sqrt(3/8) < 3/sqrt(24)), and a cap below an achievable
      // exact score lets the strict termination bound drop an exact tie,
      // breaking canonical tie handling. Every other feasible (overlap,
      // |y|) scores relatively ~1/remaining below this sup, far beyond
      // rounding error, so the bound stays an upper bound.
      return remaining / std::sqrt(a * remaining);
    case SetMeasure::kDice:
      // max over |y| of 2 * min(remaining, |y|) / (a + |y|) at |y|=remaining.
      return 2.0 * remaining / (a + remaining);
    case SetMeasure::kOverlapCoefficient:
      // A partner fully contained in the remaining suffix scores 1.0; the
      // overlap coefficient admits no non-trivial prefix bound.
      return 1.0;
  }
  return 1.0;
}

}  // namespace mc

#endif  // MATCHCATCHER_TEXT_SIMILARITY_H_
