#include "text/tokenize.h"

#include <cctype>
#include <unordered_set>

#include "text/normalize.h"

namespace mc {

namespace {

// Invokes `fn(token)` for each maximal alphanumeric run, lower-cased.
template <typename Fn>
void ForEachWordToken(std::string_view text, Fn&& fn) {
  std::string current;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      fn(current);
      current.clear();
    }
  }
  if (!current.empty()) fn(current);
}

}  // namespace

std::vector<std::string> WordTokens(std::string_view text) {
  std::vector<std::string> tokens;
  ForEachWordToken(text, [&](const std::string& token) {
    tokens.push_back(token);
  });
  return tokens;
}

std::vector<std::string> DistinctWordTokens(std::string_view text) {
  std::vector<std::string> tokens;
  std::unordered_set<std::string> seen;
  ForEachWordToken(text, [&](const std::string& token) {
    if (seen.insert(token).second) tokens.push_back(token);
  });
  return tokens;
}

std::vector<std::string> QGrams(std::string_view text, size_t q) {
  std::vector<std::string> grams;
  if (q == 0) return grams;
  // Normalize: lowercase, non-alphanumerics to single spaces, then pad.
  std::string normalized;
  normalized.reserve(text.size() + 2 * (q - 1));
  normalized.append(q - 1, '#');
  bool last_was_space = true;
  bool has_content = false;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      normalized.push_back(static_cast<char>(std::tolower(c)));
      last_was_space = false;
      has_content = true;
    } else if (!last_was_space) {
      normalized.push_back(' ');
      last_was_space = true;
    }
  }
  if (!has_content) return grams;
  while (!normalized.empty() && normalized.back() == ' ') {
    normalized.pop_back();
  }
  normalized.append(q - 1, '#');
  if (normalized.size() < q) return grams;

  std::unordered_set<std::string> seen;
  for (size_t i = 0; i + q <= normalized.size(); ++i) {
    std::string gram = normalized.substr(i, q);
    if (seen.insert(gram).second) grams.push_back(std::move(gram));
  }
  return grams;
}

std::string LastWordToken(std::string_view text) {
  std::string last;
  ForEachWordToken(text, [&](const std::string& token) { last = token; });
  return last;
}

std::string FirstWordToken(std::string_view text) {
  std::string first;
  ForEachWordToken(text, [&](const std::string& token) {
    if (first.empty()) first = token;
  });
  return first;
}

}  // namespace mc
