#include "text/similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "text/tokenize.h"
#include "util/check.h"

namespace mc {

namespace {

// Deduplicated view of `tokens` as a hash set.
std::unordered_set<std::string_view> ToSet(
    const std::vector<std::string>& tokens) {
  std::unordered_set<std::string_view> set;
  set.reserve(tokens.size());
  for (const std::string& token : tokens) set.insert(token);
  return set;
}

}  // namespace

size_t OverlapSize(const std::vector<std::string>& a,
                   const std::vector<std::string>& b) {
  const std::vector<std::string>& small = a.size() <= b.size() ? a : b;
  const std::vector<std::string>& large = a.size() <= b.size() ? b : a;
  std::unordered_set<std::string_view> small_set = ToSet(small);
  std::unordered_set<std::string_view> large_set = ToSet(large);
  size_t overlap = 0;
  for (std::string_view token : small_set) {
    if (large_set.count(token) > 0) ++overlap;
  }
  return overlap;
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  std::unordered_set<std::string_view> sa = ToSet(a);
  std::unordered_set<std::string_view> sb = ToSet(b);
  size_t overlap = 0;
  for (std::string_view token : sa) {
    if (sb.count(token) > 0) ++overlap;
  }
  return SetSimilarityFromCounts(SetMeasure::kJaccard, sa.size(), sb.size(),
                                 overlap);
}

double CosineSimilarity(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  std::unordered_set<std::string_view> sa = ToSet(a);
  std::unordered_set<std::string_view> sb = ToSet(b);
  size_t overlap = 0;
  for (std::string_view token : sa) {
    if (sb.count(token) > 0) ++overlap;
  }
  return SetSimilarityFromCounts(SetMeasure::kCosine, sa.size(), sb.size(),
                                 overlap);
}

double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  std::unordered_set<std::string_view> sa = ToSet(a);
  std::unordered_set<std::string_view> sb = ToSet(b);
  size_t overlap = 0;
  for (std::string_view token : sa) {
    if (sb.count(token) > 0) ++overlap;
  }
  return SetSimilarityFromCounts(SetMeasure::kDice, sa.size(), sb.size(),
                                 overlap);
}

double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  std::unordered_set<std::string_view> sa = ToSet(a);
  std::unordered_set<std::string_view> sb = ToSet(b);
  size_t overlap = 0;
  for (std::string_view token : sa) {
    if (sb.count(token) > 0) ++overlap;
  }
  return SetSimilarityFromCounts(SetMeasure::kOverlapCoefficient, sa.size(),
                                 sb.size(), overlap);
}

double WordJaccard(std::string_view a, std::string_view b) {
  return JaccardSimilarity(DistinctWordTokens(a), DistinctWordTokens(b));
}

double QGramJaccard(std::string_view a, std::string_view b, size_t q) {
  return JaccardSimilarity(QGrams(a, q), QGrams(b, q));
}

double WordCosine(std::string_view a, std::string_view b) {
  return CosineSimilarity(DistinctWordTokens(a), DistinctWordTokens(b));
}

size_t WordOverlapSize(std::string_view a, std::string_view b) {
  return OverlapSize(DistinctWordTokens(a), DistinctWordTokens(b));
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t diagonal = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, substitution});
    }
  }
  return row[a.size()];
}

size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t bound) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > bound) return bound + 1;
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t diagonal = row[0];
    row[0] = j;
    size_t row_min = row[0];
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, substitution});
      row_min = std::min(row_min, row[i]);
    }
    if (row_min > bound) return bound + 1;
  }
  return std::min(row[a.size()], bound + 1);
}

double NormalizedEditSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t distance = EditDistance(a, b);
  return 1.0 - static_cast<double>(distance) /
                   static_cast<double>(std::max(a.size(), b.size()));
}

std::string Soundex(std::string_view text) {
  std::string word = FirstWordToken(text);
  // Drop any leading digits; Soundex is defined over letters.
  size_t start = 0;
  while (start < word.size() && (word[start] < 'a' || word[start] > 'z')) {
    ++start;
  }
  if (start == word.size()) return "";

  auto code_of = [](char c) -> char {
    switch (c) {
      case 'b': case 'f': case 'p': case 'v':
        return '1';
      case 'c': case 'g': case 'j': case 'k':
      case 'q': case 's': case 'x': case 'z':
        return '2';
      case 'd': case 't':
        return '3';
      case 'l':
        return '4';
      case 'm': case 'n':
        return '5';
      case 'r':
        return '6';
      default:
        return '0';  // vowels and h/w/y.
    }
  };

  std::string result(1, static_cast<char>(word[start] - 'a' + 'A'));
  char previous_code = code_of(word[start]);
  for (size_t i = start + 1; i < word.size() && result.size() < 4; ++i) {
    char c = word[i];
    if (c < 'a' || c > 'z') continue;
    char code = code_of(c);
    if (c == 'h' || c == 'w') continue;  // h/w do not reset the run.
    if (code != '0' && code != previous_code) result.push_back(code);
    previous_code = code;
  }
  result.append(4 - result.size(), '0');
  return result;
}

const char* SetMeasureName(SetMeasure measure) {
  switch (measure) {
    case SetMeasure::kJaccard:
      return "jaccard";
    case SetMeasure::kCosine:
      return "cosine";
    case SetMeasure::kDice:
      return "dice";
    case SetMeasure::kOverlapCoefficient:
      return "overlap_coefficient";
  }
  return "unknown";
}

}  // namespace mc
