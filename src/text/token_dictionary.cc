#include "text/token_dictionary.h"

#include <algorithm>
#include <numeric>

namespace mc {

void TokenDictionary::FinalizeRanks() {
  std::vector<TokenId> order(tokens_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](TokenId a, TokenId b) {
    // Dead tokens (df 0 — only possible after delta updates subtract
    // frequencies) sort after every live token, so the live ranks of a
    // patched dictionary equal the ranks a from-scratch rebuild (which
    // never interns the dead tokens) would assign. Freshly built
    // dictionaries have df >= 1 everywhere, making this branch inert.
    const bool dead_a = document_frequency_[a] == 0;
    const bool dead_b = document_frequency_[b] == 0;
    if (dead_a != dead_b) return dead_b;
    if (document_frequency_[a] != document_frequency_[b]) {
      return document_frequency_[a] < document_frequency_[b];
    }
    return tokens_[a] < tokens_[b];
  });
  ranks_.assign(tokens_.size(), 0);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    ranks_[order[rank]] = static_cast<uint32_t>(rank);
  }
  ranks_valid_ = true;
}

}  // namespace mc
