#include "text/token_dictionary.h"

#include <algorithm>
#include <numeric>

namespace mc {

void TokenDictionary::FinalizeRanks() {
  std::vector<TokenId> order(tokens_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](TokenId a, TokenId b) {
    if (document_frequency_[a] != document_frequency_[b]) {
      return document_frequency_[a] < document_frequency_[b];
    }
    return tokens_[a] < tokens_[b];
  });
  ranks_.assign(tokens_.size(), 0);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    ranks_[order[rank]] = static_cast<uint32_t>(rank);
  }
  ranks_valid_ = true;
}

}  // namespace mc
