#include "explain/diagnosis.h"

#include <cmath>
#include <sstream>

#include "text/normalize.h"
#include "text/similarity.h"
#include "text/tokenize.h"
#include "util/check.h"

namespace mc {

const char* ProblemKindName(ProblemKind kind) {
  switch (kind) {
    case ProblemKind::kNone:
      return "none";
    case ProblemKind::kMissingValue:
      return "missing value";
    case ProblemKind::kMisspelling:
      return "misspelling";
    case ProblemKind::kStringVariation:
      return "string variation";
    case ProblemKind::kExtraWords:
      return "extra words";
    case ProblemKind::kCaseMismatch:
      return "un-normalized case";
    case ProblemKind::kValueDisagreement:
      return "values disagree";
    case ProblemKind::kNumericDifference:
      return "numeric difference";
  }
  return "unknown";
}

namespace {

// True iff one token list is a strict subset of the other.
bool OneSideExtendsOther(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.size() == b.size()) return false;
  const std::vector<std::string>& small = a.size() < b.size() ? a : b;
  const std::vector<std::string>& large = a.size() < b.size() ? b : a;
  size_t overlap = OverlapSize(small, large);
  return overlap == small.size() && !small.empty();
}

AttributeDiagnosis DiagnoseStringAttribute(std::string_view value_a,
                                           std::string_view value_b,
                                           size_t column) {
  AttributeDiagnosis diagnosis;
  diagnosis.column = column;

  std::vector<std::string> words_a = DistinctWordTokens(value_a);
  std::vector<std::string> words_b = DistinctWordTokens(value_b);
  diagnosis.word_jaccard = JaccardSimilarity(words_a, words_b);
  diagnosis.gram_jaccard = QGramJaccard(value_a, value_b, 3);

  if (diagnosis.word_jaccard == 1.0) {
    // Token-identical. Raw mismatch with identical tokens = casing or
    // formatting only.
    std::string raw_a(TrimWhitespace(value_a));
    std::string raw_b(TrimWhitespace(value_b));
    if (raw_a != raw_b) {
      diagnosis.kind = ToLowerAscii(raw_a) == ToLowerAscii(raw_b)
                           ? ProblemKind::kCaseMismatch
                           : ProblemKind::kNone;  // Punctuation-only.
    }
    return diagnosis;
  }
  if (OneSideExtendsOther(words_a, words_b)) {
    diagnosis.kind = ProblemKind::kExtraWords;
    return diagnosis;
  }
  if (diagnosis.word_jaccard < 0.5 && diagnosis.gram_jaccard >= 0.5) {
    diagnosis.kind = ProblemKind::kMisspelling;
    return diagnosis;
  }
  if (diagnosis.word_jaccard == 0.0 && diagnosis.gram_jaccard < 0.15) {
    diagnosis.kind = ProblemKind::kValueDisagreement;
    return diagnosis;
  }
  diagnosis.kind = ProblemKind::kStringVariation;
  return diagnosis;
}

}  // namespace

std::vector<AttributeDiagnosis> DiagnosePair(const Table& table_a,
                                             const Table& table_b,
                                             PairId pair) {
  MC_CHECK(table_a.schema() == table_b.schema());
  const size_t row_a = PairRowA(pair);
  const size_t row_b = PairRowB(pair);
  const Schema& schema = table_a.schema();

  std::vector<AttributeDiagnosis> diagnosis;
  diagnosis.reserve(schema.size());
  for (size_t c = 0; c < schema.size(); ++c) {
    bool missing_a = table_a.IsMissing(row_a, c);
    bool missing_b = table_b.IsMissing(row_b, c);
    if (missing_a || missing_b) {
      AttributeDiagnosis entry;
      entry.column = c;
      // Both sides missing carries no evidence either way.
      entry.kind = (missing_a && missing_b) ? ProblemKind::kNone
                                            : ProblemKind::kMissingValue;
      entry.word_jaccard = 0.0;
      entry.gram_jaccard = 0.0;
      diagnosis.push_back(entry);
      continue;
    }
    if (schema.attribute(c).type == AttributeType::kNumeric) {
      AttributeDiagnosis entry;
      entry.column = c;
      std::optional<double> va = table_a.NumericValue(row_a, c);
      std::optional<double> vb = table_b.NumericValue(row_b, c);
      if (va.has_value() && vb.has_value() && *va != *vb) {
        entry.kind = ProblemKind::kNumericDifference;
        entry.word_jaccard = 0.0;
        entry.gram_jaccard = 0.0;
      }
      diagnosis.push_back(entry);
      continue;
    }
    diagnosis.push_back(DiagnoseStringAttribute(
        table_a.Value(row_a, c), table_b.Value(row_b, c), c));
  }
  return diagnosis;
}

std::vector<std::pair<size_t, ProblemKind>> ProblemSignature(
    const std::vector<AttributeDiagnosis>& diagnosis) {
  std::vector<std::pair<size_t, ProblemKind>> signature;
  for (const AttributeDiagnosis& entry : diagnosis) {
    if (entry.kind != ProblemKind::kNone) {
      signature.emplace_back(entry.column, entry.kind);
    }
  }
  return signature;
}

std::string RenderDiagnosis(
    const Table& table_a, const Table& table_b, PairId pair,
    const std::vector<AttributeDiagnosis>& diagnosis) {
  const size_t row_a = PairRowA(pair);
  const size_t row_b = PairRowB(pair);
  const Schema& schema = table_a.schema();
  std::ostringstream out;
  out << "pair (a" << row_a << ", b" << row_b << ")\n";
  for (const AttributeDiagnosis& entry : diagnosis) {
    const size_t c = entry.column;
    out << "  " << schema.attribute(c).name << ": \""
        << table_a.Value(row_a, c) << "\" vs \"" << table_b.Value(row_b, c)
        << "\"";
    if (schema.attribute(c).type != AttributeType::kNumeric &&
        entry.kind != ProblemKind::kMissingValue) {
      out << "  (jaccard_word=" << entry.word_jaccard
          << ", jaccard_3gram=" << entry.gram_jaccard << ")";
    }
    if (entry.kind != ProblemKind::kNone) {
      out << "  [problem: " << ProblemKindName(entry.kind) << "]";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace mc
