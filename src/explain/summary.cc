#include "explain/summary.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace mc {

std::vector<ProblemGroup> SummarizeProblems(
    const Table& table_a, const Table& table_b,
    const std::vector<PairId>& pairs) {
  std::map<std::pair<size_t, ProblemKind>, ProblemGroup> groups;
  for (PairId pair : pairs) {
    std::vector<AttributeDiagnosis> diagnosis =
        DiagnosePair(table_a, table_b, pair);
    for (const AttributeDiagnosis& entry : diagnosis) {
      if (entry.kind == ProblemKind::kNone) continue;
      ProblemGroup& group = groups[{entry.column, entry.kind}];
      if (group.pairs.empty()) {
        group.column = entry.column;
        group.kind = entry.kind;
        group.example = pair;
      }
      group.pairs.push_back(pair);
    }
  }
  std::vector<ProblemGroup> result;
  result.reserve(groups.size());
  for (auto& [key, group] : groups) result.push_back(std::move(group));
  std::sort(result.begin(), result.end(),
            [](const ProblemGroup& x, const ProblemGroup& y) {
              if (x.count() != y.count()) return x.count() > y.count();
              if (x.column != y.column) return x.column < y.column;
              return static_cast<int>(x.kind) < static_cast<int>(y.kind);
            });
  return result;
}

std::vector<PairId> FindSimilarlyKilledPairs(
    const Table& table_a, const Table& table_b,
    const std::vector<PairId>& pairs, PairId reference) {
  std::vector<std::pair<size_t, ProblemKind>> reference_signature =
      ProblemSignature(DiagnosePair(table_a, table_b, reference));
  std::vector<PairId> similar;
  for (PairId pair : pairs) {
    std::vector<std::pair<size_t, ProblemKind>> signature =
        ProblemSignature(DiagnosePair(table_a, table_b, pair));
    if (signature == reference_signature) similar.push_back(pair);
  }
  return similar;
}

std::string RenderProblemSummary(const Table& table_a, const Table& table_b,
                                 const std::vector<ProblemGroup>& groups,
                                 size_t max_groups) {
  const Schema& schema = table_a.schema();
  std::ostringstream out;
  out << "problem summary (" << groups.size() << " distinct problems):\n";
  size_t shown = 0;
  for (const ProblemGroup& group : groups) {
    if (shown++ == max_groups) {
      out << "  ...\n";
      break;
    }
    const size_t c = group.column;
    out << "  " << schema.attribute(c).name << ": "
        << ProblemKindName(group.kind) << " — " << group.count()
        << " pair(s); e.g. \"" << table_a.Value(PairRowA(group.example), c)
        << "\" vs \"" << table_b.Value(PairRowB(group.example), c) << "\"\n";
  }
  return out.str();
}

}  // namespace mc
