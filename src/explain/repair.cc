#include "explain/repair.h"

#include <algorithm>
#include <sstream>

#include "blocking/standard_blockers.h"
#include "table/tokenized_table.h"
#include "text/similarity.h"

namespace mc {

namespace {

// The complementary attribute whose values agree best across the group's
// pairs — the fallback when the problem attribute itself is unusable
// (missing values, total disagreement).
int BestComplementaryAttribute(const Table& table_a, const Table& table_b,
                               const ProblemGroup& group) {
  const Schema& schema = table_a.schema();
  const TokenizedTable* plane = SharedTextPlane(table_a, table_b);
  const size_t side_a = table_a.text_plane_side();
  const size_t side_b = table_b.text_plane_side();
  int best = -1;
  double best_similarity = 0.35;  // Require meaningful agreement.
  for (size_t c = 0; c < schema.size(); ++c) {
    if (c == group.column) continue;
    if (schema.attribute(c).type == AttributeType::kNumeric) continue;
    double total = 0.0;
    size_t counted = 0;
    for (PairId pair : group.pairs) {
      size_t row_a = PairRowA(pair);
      size_t row_b = PairRowB(pair);
      if (table_a.IsMissing(row_a, c) || table_b.IsMissing(row_b, c)) {
        continue;
      }
      if (plane != nullptr) {
        CellSpan ranks_a = plane->SortedRanks(side_a, row_a, c);
        CellSpan ranks_b = plane->SortedRanks(side_b, row_b, c);
        total += SetSimilarityFromCounts(SetMeasure::kJaccard, ranks_a.size(),
                                         ranks_b.size(),
                                         SortedSpanOverlap(ranks_a, ranks_b));
      } else {
        total += WordJaccard(table_a.Value(row_a, c), table_b.Value(row_b, c));
      }
      ++counted;
    }
    if (counted * 2 < group.pairs.size()) continue;  // Mostly missing.
    double average = total / static_cast<double>(counted);
    if (average > best_similarity) {
      best_similarity = average;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace

std::vector<RepairSuggestion> SuggestRepairs(
    const Table& table_a, const Table& table_b,
    const std::vector<PairId>& confirmed_matches) {
  std::vector<ProblemGroup> groups =
      SummarizeProblems(table_a, table_b, confirmed_matches);
  const Schema& schema = table_a.schema();

  std::vector<RepairSuggestion> suggestions;
  for (const ProblemGroup& group : groups) {
    RepairSuggestion suggestion;
    suggestion.column = group.column;
    suggestion.kind = group.kind;
    suggestion.support = group.count();
    const std::string& attr = schema.attribute(group.column).name;

    switch (group.kind) {
      case ProblemKind::kMisspelling:
        suggestion.addition = std::make_shared<SimilarityBlocker>(
            group.column, TokenizerSpec::QGram(3), SetMeasure::kJaccard,
            0.4);
        suggestion.rationale =
            attr + " values are misspelled; match them by character "
                   "3-grams instead of exact words";
        break;
      case ProblemKind::kStringVariation:
        suggestion.addition = std::make_shared<SimilarityBlocker>(
            group.column, TokenizerSpec::Word(), SetMeasure::kJaccard, 0.3);
        suggestion.rationale =
            attr + " values vary (abbreviations, renamed words); a word "
                   "Jaccard rule tolerates partial agreement";
        break;
      case ProblemKind::kExtraWords:
        suggestion.addition = std::make_shared<OverlapBlocker>(
            group.column, TokenizerSpec::Word(), 2);
        suggestion.rationale =
            attr + " values extend each other (subtitles, sprinkled "
                   "attributes); shared-word overlap survives the extra "
                   "words";
        break;
      case ProblemKind::kCaseMismatch:
        suggestion.addition = std::make_shared<HashBlocker>(
            KeyFunction(KeyFunction::Kind::kFullValue, group.column));
        suggestion.rationale =
            attr + " differs only in casing; hash the normalized "
                   "(lower-cased) value";
        break;
      case ProblemKind::kMissingValue:
      case ProblemKind::kValueDisagreement:
      case ProblemKind::kNumericDifference: {
        int other = BestComplementaryAttribute(table_a, table_b, group);
        if (other < 0) continue;
        suggestion.addition = std::make_shared<SimilarityBlocker>(
            static_cast<size_t>(other), TokenizerSpec::Word(),
            SetMeasure::kJaccard, 0.5);
        suggestion.rationale =
            attr + " cannot be repaired directly (" +
            ProblemKindName(group.kind) + "); block on " +
            schema.attribute(other).name + ", which agrees across the "
                                           "affected matches";
        break;
      }
      case ProblemKind::kNone:
        continue;
    }

    for (PairId pair : group.pairs) {
      std::optional<bool> keeps = suggestion.addition->KeepsPair(
          table_a, PairRowA(pair), table_b, PairRowB(pair));
      if (keeps.value_or(false)) ++suggestion.recovered;
    }
    if (suggestion.recovered == 0) continue;
    suggestions.push_back(std::move(suggestion));
  }
  std::sort(suggestions.begin(), suggestions.end(),
            [](const RepairSuggestion& x, const RepairSuggestion& y) {
              if (x.support != y.support) return x.support > y.support;
              return x.column < y.column;
            });
  return suggestions;
}

std::string RenderRepairs(const Schema& schema,
                          const std::vector<RepairSuggestion>& suggestions) {
  std::ostringstream out;
  out << "repair suggestions (" << suggestions.size() << "):\n";
  for (const RepairSuggestion& suggestion : suggestions) {
    out << "  OR " << suggestion.addition->Description(schema) << "\n"
        << "     why: " << suggestion.rationale << "\n"
        << "     recovers " << suggestion.recovered << " of "
        << suggestion.support << " affected matches\n";
  }
  return out.str();
}

}  // namespace mc
