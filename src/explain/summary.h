#ifndef MATCHCATCHER_EXPLAIN_SUMMARY_H_
#define MATCHCATCHER_EXPLAIN_SUMMARY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "blocking/pair.h"
#include "explain/diagnosis.h"
#include "table/table.h"

namespace mc {

/// One aggregated problem across a set of killed-off matches: "attribute X
/// suffers problem Y in N of the pairs" — the §8 future work of summarizing
/// per-pair explanations, plus the pervasiveness measure ("how pervasive is
/// this problem?") that tells the user which fix pays off most.
struct ProblemGroup {
  size_t column = 0;
  ProblemKind kind = ProblemKind::kNone;
  /// Pairs exhibiting the problem, in input order.
  std::vector<PairId> pairs;
  /// An example pair for display.
  PairId example = 0;

  size_t count() const { return pairs.size(); }
};

/// Aggregates per-attribute diagnoses over `pairs` and returns the problem
/// groups sorted by pervasiveness (most pairs first).
std::vector<ProblemGroup> SummarizeProblems(const Table& table_a,
                                            const Table& table_b,
                                            const std::vector<PairId>& pairs);

/// Pairs among `pairs` whose problem signature equals that of `reference` —
/// "all tuple pairs that are similar to that match from a blocking point of
/// view" (§8). The reference itself is included when present.
std::vector<PairId> FindSimilarlyKilledPairs(const Table& table_a,
                                             const Table& table_b,
                                             const std::vector<PairId>& pairs,
                                             PairId reference);

/// Renders the summary as a report: one line per problem group with its
/// pervasiveness count and an example, most pervasive first.
std::string RenderProblemSummary(const Table& table_a, const Table& table_b,
                                 const std::vector<ProblemGroup>& groups,
                                 size_t max_groups = 10);

}  // namespace mc

#endif  // MATCHCATCHER_EXPLAIN_SUMMARY_H_
