#ifndef MATCHCATCHER_EXPLAIN_DIAGNOSIS_H_
#define MATCHCATCHER_EXPLAIN_DIAGNOSIS_H_

#include <string>
#include <vector>

#include "blocking/pair.h"
#include "table/table.h"

namespace mc {

/// Automatic per-attribute problem classification for a killed-off match —
/// the first half of the paper's §8 future work ("develop a method to
/// automatically explain why each match is killed off").
enum class ProblemKind {
  /// Values agree (no problem on this attribute).
  kNone,
  /// One side's value is missing.
  kMissingValue,
  /// Character-level corruption: words differ but q-grams largely agree.
  kMisspelling,
  /// Word-level variation (abbreviation, synonym, extra/renamed words)
  /// with partial overlap remaining.
  kStringVariation,
  /// One value extends the other (subtitle, sprinkled attribute,
  /// "(live)"-style suffix).
  kExtraWords,
  /// Same letters, different casing — un-normalized input.
  kCaseMismatch,
  /// Values share essentially nothing.
  kValueDisagreement,
  /// Numeric values differ.
  kNumericDifference,
};

/// Short name, e.g. "misspelling".
const char* ProblemKindName(ProblemKind kind);

/// The diagnosis of one attribute of one pair.
struct AttributeDiagnosis {
  size_t column = 0;
  ProblemKind kind = ProblemKind::kNone;
  /// Similarity evidence (word-level and 3-gram Jaccard; 1.0 for clean
  /// numeric/missing cases where they do not apply).
  double word_jaccard = 1.0;
  double gram_jaccard = 1.0;
};

/// Diagnoses every attribute of `pair`. Both tables must share the schema.
std::vector<AttributeDiagnosis> DiagnosePair(const Table& table_a,
                                             const Table& table_b,
                                             PairId pair);

/// The pair's *problem signature*: the (column, kind) pairs with
/// kind != kNone, in column order. Two killed matches with the same
/// signature are "similar from a blocking point of view" (§8).
std::vector<std::pair<size_t, ProblemKind>> ProblemSignature(
    const std::vector<AttributeDiagnosis>& diagnosis);

/// Renders a human-readable explanation of the pair: attribute values side
/// by side with the diagnosed problems. This is what DebugSession::
/// ExplainPair shows.
std::string RenderDiagnosis(const Table& table_a, const Table& table_b,
                            PairId pair,
                            const std::vector<AttributeDiagnosis>& diagnosis);

}  // namespace mc

#endif  // MATCHCATCHER_EXPLAIN_DIAGNOSIS_H_
