#include "explain/blame.h"

#include <sstream>

#include "blocking/rule_blocker.h"

namespace mc {

namespace {

void ExplainInto(const Blocker& blocker, const Table& table_a,
                 const Table& table_b, size_t row_a, size_t row_b,
                 const std::string& indent, std::ostringstream& out) {
  const Schema& schema = table_a.schema();

  if (const auto* union_blocker =
          dynamic_cast<const UnionBlocker*>(&blocker)) {
    out << indent << "union of " << union_blocker->members().size()
        << " blockers; every member rejects the pair:\n";
    for (const auto& member : union_blocker->members()) {
      ExplainInto(*member, table_a, table_b, row_a, row_b, indent + "  ",
                  out);
    }
    return;
  }

  if (const auto* rule_blocker =
          dynamic_cast<const RuleBlocker*>(&blocker)) {
    size_t index = 1;
    for (const ConjunctiveRule& rule : rule_blocker->rules()) {
      out << indent << "rule " << index++ << " ("
          << rule.Description(schema) << ")";
      if (rule.Evaluate(table_a, row_a, table_b, row_b)) {
        out << " KEEPS the pair\n";
        continue;
      }
      out << " rejects; failing conjuncts:\n";
      for (const auto& predicate : rule.predicates()) {
        if (!predicate->Evaluate(table_a, row_a, table_b, row_b)) {
          out << indent << "    " << predicate->Description(schema) << "\n";
        }
      }
    }
    return;
  }

  std::optional<bool> keeps =
      blocker.KeepsPair(table_a, row_a, table_b, row_b);
  if (!keeps.has_value()) {
    out << indent << blocker.Description(schema)
        << ": decision is not pair-decomposable (depends on neighboring "
           "tuples)\n";
  } else if (*keeps) {
    out << indent << blocker.Description(schema) << " KEEPS the pair\n";
  } else {
    out << indent << blocker.Description(schema) << " rejects the pair\n";
  }
}

}  // namespace

std::string ExplainKill(const Blocker& blocker, const Table& table_a,
                        const Table& table_b, PairId pair) {
  const size_t row_a = PairRowA(pair);
  const size_t row_b = PairRowB(pair);
  std::ostringstream out;
  std::optional<bool> keeps =
      blocker.KeepsPair(table_a, row_a, table_b, row_b);
  out << "blocker decision for pair (a" << row_a << ", b" << row_b << "): ";
  if (keeps.has_value()) {
    out << (*keeps ? "KEPT" : "KILLED") << "\n";
  } else {
    out << "depends on neighboring tuples\n";
  }
  ExplainInto(blocker, table_a, table_b, row_a, row_b, "  ", out);
  return out.str();
}

}  // namespace mc
