#ifndef MATCHCATCHER_EXPLAIN_REPAIR_H_
#define MATCHCATCHER_EXPLAIN_REPAIR_H_

#include <memory>
#include <string>
#include <vector>

#include "blocking/blocker.h"
#include "explain/summary.h"
#include "table/table.h"

namespace mc {

/// A concrete blocker revision derived from a diagnosed problem group —
/// the step the paper's users perform by hand after reading MatchCatcher's
/// output (Example 1.1: "U observes that the problem with pair (a1, b1)
/// ... can be fixed by adding a new hash blocker ..."), automated: each
/// suggestion is an additional keep-rule whose union with the current
/// blocker recovers pairs exhibiting the problem.
struct RepairSuggestion {
  /// The problem being addressed.
  size_t column = 0;
  ProblemKind kind = ProblemKind::kNone;
  /// How many confirmed killed-off matches exhibit it (pervasiveness).
  size_t support = 0;
  /// The additional blocker to union with the current one.
  std::shared_ptr<const Blocker> addition;
  /// Human-readable rationale.
  std::string rationale;
  /// Of the `support` pairs, how many the addition actually recovers
  /// (computed on the diagnosed pairs; the addition must be
  /// pair-decomposable, which all suggested ones are).
  size_t recovered = 0;
};

/// Maps each diagnosed problem group to a candidate repair:
///   misspelling            -> 3-gram Jaccard similarity rule
///   string variation       -> word-Jaccard similarity rule
///   extra words            -> overlap rule (shared-token count)
///   un-normalized case     -> normalized attribute equivalence
///   missing value /
///   value disagreement /
///   numeric difference     -> rules on *other* attributes cannot fix the
///                             attribute itself; suggests the strongest
///                             complementary attribute rule instead
/// Suggestions are returned most-pervasive-first with their measured
/// recovery counts; groups whose suggestion recovers nothing are dropped.
std::vector<RepairSuggestion> SuggestRepairs(
    const Table& table_a, const Table& table_b,
    const std::vector<PairId>& confirmed_matches);

/// Renders suggestions as a short report.
std::string RenderRepairs(const Schema& schema,
                          const std::vector<RepairSuggestion>& suggestions);

}  // namespace mc

#endif  // MATCHCATCHER_EXPLAIN_REPAIR_H_
