#ifndef MATCHCATCHER_EXPLAIN_BLAME_H_
#define MATCHCATCHER_EXPLAIN_BLAME_H_

#include <string>

#include "blocking/blocker.h"
#include "blocking/pair.h"

namespace mc {

/// Blocker-aware kill explanation — the paper's planned extension of
/// MatchCatcher "to exploit the particularities of a specific blocker
/// type". MatchCatcher itself stays blocker-independent; when the user
/// *does* hand over the blocker, this walks its structure (union members,
/// rule conjuncts) and reports exactly which components rejected the pair:
///
///   blocker kills (a3, b2):
///     rule 1 (a.city = b.city) rejects: keys differ
///     rule 2 (...) rejects: failing conjunct ed(lastword(name)) <= 2
///
/// Window/cluster blockers (sorted neighborhood, canopy) are not
/// pair-decomposable; for those the report says so.
std::string ExplainKill(const Blocker& blocker, const Table& table_a,
                        const Table& table_b, PairId pair);

}  // namespace mc

#endif  // MATCHCATCHER_EXPLAIN_BLAME_H_
