#ifndef MATCHCATCHER_CONFIG_CONFIG_GENERATOR_H_
#define MATCHCATCHER_CONFIG_CONFIG_GENERATOR_H_

#include <cstddef>
#include <vector>

#include "config/config.h"
#include "table/profile.h"
#include "table/table.h"
#include "util/run_context.h"
#include "util/status.h"

namespace mc {

/// Tuning knobs for the Config Generator (paper §3).
struct ConfigGeneratorOptions {
  /// Minimum Jaccard similarity between the value sets of a categorical or
  /// boolean attribute in A and B; below this the attribute is dropped
  /// ("if Gender has values {Male, Female} in A but {M, F, U} in B ...").
  double categorical_value_jaccard_threshold = 0.5;
  /// δ of Condition 1 / Theorem 3.5.
  double delta = 0.2;
  /// Whether FindLongAttr runs at all (ablation: §6.5 "long attributes").
  bool handle_long_attributes = true;
  /// Safety cap on |T|; when exceeded the highest-e-score attributes win.
  size_t max_attributes = 16;
  /// Cooperative cancellation/deadline. Unlike the joint executor, config
  /// generation has no useful partial result, so cancellation mid-selection
  /// returns Status::DeadlineExceeded instead of a truncated value.
  RunContext run_context;
};

/// One node of the config tree.
struct ConfigNode {
  ConfigMask mask = 0;
  /// Index of the parent node, or -1 for the root.
  int parent = -1;
  /// Indices of child nodes (non-empty only along the expansion path).
  std::vector<int> children;
  size_t depth = 0;
};

/// The config tree of §3.2: the root holds all promising attributes; each
/// level removes one attribute; exactly one node per level is expanded
/// further. Nodes are stored in generation (BFS) order — the order the joint
/// executor processes them in.
struct ConfigTree {
  std::vector<ConfigNode> nodes;

  size_t size() const { return nodes.size(); }
};

/// Selects the promising attributes T (§3.2): drops numeric attributes,
/// drops categorical/boolean attributes whose value sets differ across the
/// tables, keeps the rest; computes e-scores and average lengths. Attribute
/// types are taken from the schema of `table_a` (run InferAttributeTypes
/// first if the source had no types). Fails if no attribute survives.
Result<PromisingAttributes> SelectPromisingAttributes(
    const Table& table_a, const Table& table_b,
    const ConfigGeneratorOptions& options = {});

/// Generates the config tree over the promising attributes, applying the
/// e-score expansion choice and (optionally) FindLongAttr.
ConfigTree GenerateConfigTree(const PromisingAttributes& attributes,
                              const ConfigGeneratorOptions& options = {});

/// Exposed for testing: returns the attribute of `expansion_candidate`
/// judged "too long" per the Theorem 3.5 average-length approximation, or
/// -1 when none. `expansion_candidate` is the default (e-score-chosen) node
/// to expand.
int FindLongAttr(ConfigMask expansion_candidate,
                 const PromisingAttributes& attributes, double delta);

}  // namespace mc

#endif  // MATCHCATCHER_CONFIG_CONFIG_GENERATOR_H_
