#include "config/config.h"

namespace mc {

std::string PromisingAttributes::ConfigDescription(
    ConfigMask mask, const Schema& schema) const {
  std::string out = "{";
  bool first = true;
  for (size_t bit = 0; bit < columns.size(); ++bit) {
    if (!ConfigContains(mask, bit)) continue;
    if (!first) out += ", ";
    out += schema.attribute(columns[bit]).name;
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace mc
