#ifndef MATCHCATCHER_CONFIG_CONFIG_H_
#define MATCHCATCHER_CONFIG_CONFIG_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "table/schema.h"
#include "util/check.h"

namespace mc {

/// A configuration ("config") is a subset of the promising attributes
/// (paper §3). Configs are bitmasks over *promising-attribute indices*
/// (bit i = the i-th promising attribute), not raw table columns; the
/// PromisingAttributes mapping translates.
using ConfigMask = uint32_t;

/// Number of attributes in the config.
inline size_t ConfigSize(ConfigMask mask) {
  return static_cast<size_t>(std::popcount(mask));
}

inline bool ConfigContains(ConfigMask mask, size_t bit) {
  return (mask >> bit) & 1u;
}

inline ConfigMask ConfigWithout(ConfigMask mask, size_t bit) {
  return mask & ~(ConfigMask{1} << bit);
}

/// The outcome of promising-attribute selection (§3.2 "Selecting the Most
/// Promising Attributes"): which table columns participate in config
/// generation, plus the per-attribute statistics the generator needs.
struct PromisingAttributes {
  /// Table column index of each promising attribute (bit i -> columns[i]).
  std::vector<size_t> columns;
  /// e(f) = e_A(f) * e_B(f) per promising attribute (Definition 3.1).
  std::vector<double> e_scores;
  /// Average word-token length of the attribute in table A / table B
  /// (AL_f(A), AL_f(B)), used by FindLongAttr.
  std::vector<double> avg_len_a;
  std::vector<double> avg_len_b;

  size_t size() const { return columns.size(); }

  /// The full config containing every promising attribute.
  ConfigMask FullMask() const {
    MC_CHECK_LE(columns.size(), 32u);
    return columns.size() == 32
               ? ~ConfigMask{0}
               : ((ConfigMask{1} << columns.size()) - 1);
  }

  /// Human-readable config description, e.g. "{name, city}".
  std::string ConfigDescription(ConfigMask mask, const Schema& schema) const;
};

}  // namespace mc

#endif  // MATCHCATCHER_CONFIG_CONFIG_H_
