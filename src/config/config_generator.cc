#include "config/config_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace mc {

namespace {

// Bit of `mask` whose attribute has the lowest e-score (the attribute the
// default expansion step excludes). Ties break toward the lower bit index
// for determinism.
int MinEScoreBit(ConfigMask mask, const PromisingAttributes& attributes) {
  int best_bit = -1;
  double best_score = 0.0;
  for (size_t bit = 0; bit < attributes.size(); ++bit) {
    if (!ConfigContains(mask, bit)) continue;
    double score = attributes.e_scores[bit];
    if (best_bit < 0 || score < best_score) {
      best_bit = static_cast<int>(bit);
      best_score = score;
    }
  }
  return best_bit;
}

// The configs of the *default* subtree rooted at `q` (excluding q itself):
// what the generator would produce below q using only e-scores. Used by
// FindLongAttr to ask "would f overwhelm the configs we are about to
// generate?".
std::vector<ConfigMask> DefaultSubtreeConfigs(
    ConfigMask q, const PromisingAttributes& attributes) {
  std::vector<ConfigMask> configs;
  ConfigMask current = q;
  while (ConfigSize(current) > 1) {
    for (size_t bit = 0; bit < attributes.size(); ++bit) {
      if (!ConfigContains(current, bit)) continue;
      configs.push_back(ConfigWithout(current, bit));
    }
    int exclude = MinEScoreBit(current, attributes);
    MC_CHECK_GE(exclude, 0);
    current = ConfigWithout(current, static_cast<size_t>(exclude));
  }
  return configs;
}

// Sum of average token lengths of the attributes in `mask` for one table.
double ConfigAverageLength(ConfigMask mask,
                           const std::vector<double>& avg_lengths) {
  double total = 0.0;
  for (size_t bit = 0; bit < avg_lengths.size(); ++bit) {
    if (ConfigContains(mask, bit)) total += avg_lengths[bit];
  }
  return total;
}

}  // namespace

Result<PromisingAttributes> SelectPromisingAttributes(
    const Table& table_a, const Table& table_b,
    const ConfigGeneratorOptions& options) {
  if (!(table_a.schema() == table_b.schema())) {
    return Status::InvalidArgument(
        "tables A and B must share one schema (different-schema matching is "
        "future work, as in the paper)");
  }
  // Profiling dominates this phase; check the context around each table
  // and once more before assembling the result.
  if (options.run_context.Cancelled()) {
    return Status::DeadlineExceeded(
        "config generation cancelled before profiling");
  }
  std::vector<AttributeProfile> profiles_a = ProfileTable(table_a);
  if (options.run_context.Cancelled()) {
    return Status::DeadlineExceeded(
        "config generation cancelled while profiling table A");
  }
  std::vector<AttributeProfile> profiles_b = ProfileTable(table_b);
  if (options.run_context.Cancelled()) {
    return Status::DeadlineExceeded(
        "config generation cancelled while profiling table B");
  }

  PromisingAttributes result;
  for (size_t column = 0; column < table_a.num_columns(); ++column) {
    AttributeType type = table_a.schema().attribute(column).type;
    if (type == AttributeType::kNumeric) continue;  // §3.2: drop numerics.
    if (type == AttributeType::kCategorical ||
        type == AttributeType::kBoolean) {
      double value_jaccard =
          ValueSetJaccard(profiles_a[column], profiles_b[column]);
      if (value_jaccard < options.categorical_value_jaccard_threshold) {
        continue;  // Value sets diverge across the tables; drop.
      }
    }
    result.columns.push_back(column);
    result.e_scores.push_back(profiles_a[column].SingleTableEScore() *
                              profiles_b[column].SingleTableEScore());
    result.avg_len_a.push_back(profiles_a[column].average_token_length);
    result.avg_len_b.push_back(profiles_b[column].average_token_length);
  }
  if (result.columns.empty()) {
    return Status::FailedPrecondition(
        "no promising attributes survive selection; the tables have only "
        "numeric or divergent categorical attributes");
  }
  if (result.columns.size() > options.max_attributes) {
    // Keep the attributes with the highest e-scores.
    std::vector<size_t> order(result.columns.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      if (result.e_scores[x] != result.e_scores[y]) {
        return result.e_scores[x] > result.e_scores[y];
      }
      return x < y;
    });
    order.resize(options.max_attributes);
    std::sort(order.begin(), order.end());  // Preserve column order.
    PromisingAttributes trimmed;
    for (size_t index : order) {
      trimmed.columns.push_back(result.columns[index]);
      trimmed.e_scores.push_back(result.e_scores[index]);
      trimmed.avg_len_a.push_back(result.avg_len_a[index]);
      trimmed.avg_len_b.push_back(result.avg_len_b[index]);
    }
    result = std::move(trimmed);
  }
  return result;
}

int FindLongAttr(ConfigMask expansion_candidate,
                 const PromisingAttributes& attributes, double delta) {
  const ConfigMask q = expansion_candidate;
  if (ConfigSize(q) <= 1) return -1;

  const double al_q_a = ConfigAverageLength(q, attributes.avg_len_a);
  const double al_q_b = ConfigAverageLength(q, attributes.avg_len_b);
  if (al_q_a <= 0.0 || al_q_b <= 0.0) return -1;
  const double length_factor =
      (1.0 + delta) * std::max(al_q_a, al_q_b) / (al_q_a + al_q_b);
  const double q_size = static_cast<double>(ConfigSize(q));

  std::vector<ConfigMask> subtree = DefaultSubtreeConfigs(q, attributes);

  int best_bit = -1;
  double best_beta = 0.0;
  for (size_t bit = 0; bit < attributes.size(); ++bit) {
    if (!ConfigContains(q, bit)) continue;
    // β approximated with average lengths (paper §3.2).
    double beta = std::min(attributes.avg_len_a[bit] / al_q_a,
                           attributes.avg_len_b[bit] / al_q_b);
    size_t containing = 0;
    size_t overwhelmed = 0;
    for (ConfigMask r : subtree) {
      if (!ConfigContains(r, bit)) continue;
      // Singleton configs {f} carry no evidence: switching from q to {f}
      // trivially keeps f dominant, and R2 degenerates (the theorem's
      // "remaining length distributed among the remaining attributes"
      // premise needs at least one attribute besides f).
      if (ConfigSize(r) < 2) continue;
      ++containing;
      // R2 with |q ∩ r| = |r| (r is a subset of q).
      double rhs = 1.0 - (q_size - 1.0) /
                             static_cast<double>(ConfigSize(r)) *
                             length_factor;
      if (beta >= rhs) ++overwhelmed;
    }
    if (containing == 0) continue;
    if (2 * overwhelmed >= containing) {
      // f is "too long". The paper argues at most one attribute qualifies;
      // under our average-length approximation several may, so prefer the
      // one that dominates the config length most.
      if (best_bit < 0 || beta > best_beta) {
        best_bit = static_cast<int>(bit);
        best_beta = beta;
      }
    }
  }
  return best_bit;
}

ConfigTree GenerateConfigTree(const PromisingAttributes& attributes,
                              const ConfigGeneratorOptions& options) {
  MC_CHECK_GT(attributes.size(), 0u);
  ConfigTree tree;
  ConfigNode root;
  root.mask = attributes.FullMask();
  tree.nodes.push_back(root);

  int current = 0;
  while (ConfigSize(tree.nodes[current].mask) > 1) {
    const ConfigMask mask = tree.nodes[current].mask;
    const size_t depth = tree.nodes[current].depth;

    // Add every child (remove each attribute in turn).
    int first_child = static_cast<int>(tree.nodes.size());
    for (size_t bit = 0; bit < attributes.size(); ++bit) {
      if (!ConfigContains(mask, bit)) continue;
      ConfigNode child;
      child.mask = ConfigWithout(mask, bit);
      child.parent = current;
      child.depth = depth + 1;
      tree.nodes[current].children.push_back(
          static_cast<int>(tree.nodes.size()));
      tree.nodes.push_back(child);
    }

    if (ConfigSize(mask) == 2) break;  // Children are singletons; done.

    // Pick the child to expand: default excludes the min-e-score attribute;
    // FindLongAttr may override (Example 3.3).
    int exclude_bit = MinEScoreBit(mask, attributes);
    MC_CHECK_GE(exclude_bit, 0);
    ConfigMask default_child =
        ConfigWithout(mask, static_cast<size_t>(exclude_bit));
    ConfigMask chosen = default_child;
    if (options.handle_long_attributes) {
      int long_bit = FindLongAttr(default_child, attributes, options.delta);
      if (long_bit >= 0) chosen = ConfigWithout(mask, long_bit);
    }

    // Find the child node with the chosen mask.
    int next = -1;
    for (int child = first_child;
         child < static_cast<int>(tree.nodes.size()); ++child) {
      if (tree.nodes[child].mask == chosen) {
        next = child;
        break;
      }
    }
    MC_CHECK_GE(next, 0);
    current = next;
  }
  return tree;
}

}  // namespace mc
