#include "mem/arena_stats.h"

namespace mc {
namespace mem {

ArenaStatsRegistry& ArenaStatsRegistry::Instance() {
  static ArenaStatsRegistry* registry = new ArenaStatsRegistry();
  return *registry;
}

void ArenaStatsRegistry::OnReserve(int node, size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  nodes_[node].reserved_bytes += bytes;
}

void ArenaStatsRegistry::OnRelease(int node, size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  NodeCounters& counters = nodes_[node];
  counters.reserved_bytes =
      counters.reserved_bytes >= bytes ? counters.reserved_bytes - bytes : 0;
}

void ArenaStatsRegistry::OnArenaCreated(int node) {
  std::lock_guard<std::mutex> lock(mutex_);
  nodes_[node].arenas += 1;
}

void ArenaStatsRegistry::OnArenaDestroyed(int node) {
  std::lock_guard<std::mutex> lock(mutex_);
  NodeCounters& counters = nodes_[node];
  if (counters.arenas > 0) counters.arenas -= 1;
}

void ArenaStatsRegistry::RecordTopologyFallback() {
  fallbacks_.fetch_add(1, std::memory_order_relaxed);
}

ArenaStatsSnapshot ArenaStatsRegistry::Snapshot() const {
  ArenaStatsSnapshot snapshot;
  snapshot.topology_fallbacks = fallbacks_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [node, counters] : nodes_) {
    if (counters.reserved_bytes == 0 && counters.arenas == 0) continue;
    ArenaNodeStats stats;
    stats.node = node;
    stats.reserved_bytes = counters.reserved_bytes;
    stats.arenas = counters.arenas;
    snapshot.per_node.push_back(stats);
    snapshot.total_reserved_bytes += counters.reserved_bytes;
    snapshot.total_arenas += counters.arenas;
  }
  return snapshot;
}

}  // namespace mem
}  // namespace mc
