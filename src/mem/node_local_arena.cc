#include "mem/node_local_arena.h"

#include <cstdint>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mc {
namespace mem {

#if defined(__linux__) && defined(SYS_mbind)

namespace {
// From linux/mempolicy.h (not guaranteed present in every sysroot; the
// ABI values are stable).
constexpr int kMpolPreferred = 1;
constexpr unsigned kMpolMfMove = 1u << 1;  // Migrate touched pages.
constexpr size_t kPageSize = 4096;
}  // namespace

bool MemoryBindingAvailable() { return true; }

bool BindMemoryToNode(void* addr, size_t length, int node) {
  if (addr == nullptr || length == 0 || node < 0) return false;
  // mbind wants a page-aligned range; shrink to the contained pages so a
  // mid-page slice never rebinds a neighbour's bytes.
  uintptr_t begin = reinterpret_cast<uintptr_t>(addr);
  uintptr_t end = begin + length;
  begin = (begin + kPageSize - 1) & ~(kPageSize - 1);
  end &= ~(kPageSize - 1);
  if (end <= begin) return true;  // Sub-page range: nothing to place.
  // One-word nodemask supports nodes 0..63 — far beyond any machine this
  // targets; higher nodes degrade to unbound.
  if (node >= 64) return false;
  unsigned long nodemask = 1ul << node;
  const long rc =
      syscall(SYS_mbind, begin, end - begin, kMpolPreferred, &nodemask,
              sizeof(nodemask) * 8, kMpolMfMove);
  return rc == 0;
}

#else  // !__linux__ || !SYS_mbind

bool MemoryBindingAvailable() { return false; }

bool BindMemoryToNode(void* addr, size_t length, int node) {
  (void)addr;
  (void)length;
  (void)node;
  return false;
}

#endif

}  // namespace mem
}  // namespace mc
