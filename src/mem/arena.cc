#include "mem/arena.h"

#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "mem/arena_stats.h"
#include "mem/node_local_arena.h"
#include "util/fault_injection.h"

namespace mc {
namespace mem {
namespace {

constexpr size_t kPageSize = 4096;

size_t PageRound(size_t bytes) {
  return (bytes + kPageSize - 1) & ~(kPageSize - 1);
}

}  // namespace

Arena::Arena(ArenaOptions options) : options_(std::move(options)) {
  ArenaStatsRegistry::Instance().OnArenaCreated(options_.numa_node);
  // A logical node with binding off (fake topology) or unavailable is a
  // placement the machine did not honor: surface it once per arena.
  if (options_.numa_node >= 0 &&
      (!options_.bind || !MemoryBindingAvailable())) {
    fallback_ = true;
    ArenaStatsRegistry::Instance().RecordTopologyFallback();
  }
}

Arena::~Arena() {
  for (Chunk& chunk : chunks_) {
    if (chunk.mmapped) {
#if defined(__linux__)
      ::munmap(chunk.base, chunk.size);
#endif
    } else {
      ::operator delete(chunk.base, std::align_val_t{kAlign});
    }
  }
  if (options_.budget != nullptr && charged_ > 0) {
    options_.budget->Release(charged_);
  }
  ArenaStatsRegistry::Instance().OnRelease(options_.numa_node, reserved_);
  ArenaStatsRegistry::Instance().OnArenaDestroyed(options_.numa_node);
}

bool Arena::ReserveLocked(size_t bytes) {
  if (MC_FAULT_POINT("mem/arena_reserve") != FaultKind::kNone) return false;
  const size_t size = PageRound(bytes);
  if (options_.budget != nullptr && !options_.budget->TryCharge(size)) {
    return false;
  }
  Chunk chunk;
  chunk.size = size;
#if defined(__linux__)
  void* mapped = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mapped != MAP_FAILED) {
    chunk.base = static_cast<std::byte*>(mapped);
    chunk.mmapped = true;
#if defined(MADV_HUGEPAGE)
    if (options_.huge_pages &&
        ::madvise(chunk.base, size, MADV_HUGEPAGE) != 0 && !fallback_) {
      fallback_ = true;
      ArenaStatsRegistry::Instance().RecordTopologyFallback();
    }
#endif
    if (options_.bind && options_.numa_node >= 0 &&
        !BindMemoryToNode(chunk.base, size, options_.numa_node) &&
        !fallback_) {
      fallback_ = true;
      ArenaStatsRegistry::Instance().RecordTopologyFallback();
    }
  }
#endif
  if (chunk.base == nullptr) {
    // mmap unavailable or failed: plain aligned heap pages. Only a
    // *placement* fallback when placement was asked for.
    chunk.base = static_cast<std::byte*>(
        ::operator new(size, std::align_val_t{kAlign}, std::nothrow));
    if (chunk.base == nullptr) {
      if (options_.budget != nullptr) options_.budget->Release(size);
      return false;
    }
    if ((options_.huge_pages ||
         (options_.bind && options_.numa_node >= 0)) &&
        !fallback_) {
      fallback_ = true;
      ArenaStatsRegistry::Instance().RecordTopologyFallback();
    }
  }
  chunks_.push_back(chunk);
  reserved_ += size;
  charged_ += options_.budget != nullptr ? size : 0;
  ArenaStatsRegistry::Instance().OnReserve(options_.numa_node, size);
  return true;
}

bool Arena::Reserve(size_t bytes) {
  if (bytes == 0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  return ReserveLocked(bytes);
}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  if (alignment < kAlign) alignment = kAlign;
  std::lock_guard<std::mutex> lock(mutex_);
  // Bump from the active chunk onward; Reset() rewinds active_ so retained
  // chunks are reused front to back.
  for (size_t c = active_; c < chunks_.size(); ++c) {
    Chunk& chunk = chunks_[c];
    const size_t aligned =
        (chunk.used + alignment - 1) & ~(alignment - 1);
    if (aligned + bytes <= chunk.size) {
      chunk.used = aligned + bytes;
      active_ = c;
      return chunk.base + aligned;
    }
  }
  const size_t need = bytes + alignment;
  if (!ReserveLocked(need > options_.chunk_bytes ? need
                                                 : options_.chunk_bytes)) {
    throw std::bad_alloc();
  }
  Chunk& chunk = chunks_.back();
  const size_t aligned = (chunk.used + alignment - 1) & ~(alignment - 1);
  chunk.used = aligned + bytes;
  active_ = chunks_.size() - 1;
  return chunk.base + aligned;
}

void Arena::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Chunk& chunk : chunks_) chunk.used = 0;
  active_ = 0;
}

size_t Arena::ReservedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reserved_;
}

size_t Arena::UsedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t used = 0;
  for (const Chunk& chunk : chunks_) used += chunk.used;
  return used;
}

bool Arena::used_fallback() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fallback_;
}

}  // namespace mem
}  // namespace mc
