#ifndef MATCHCATCHER_MEM_ARENA_VECTOR_H_
#define MATCHCATCHER_MEM_ARENA_VECTOR_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <vector>

#include "mem/arena.h"

namespace mc {
namespace mem {

/// Standard-allocator adapter over Arena, the bridge that moves the CSR
/// planes off ad-hoc heap vectors without rewriting their fill logic: an
/// ArenaVector<T> *is* a std::vector<T>, it just draws its storage from
/// the owning plane's arena.
///
/// Semantics chosen for how the planes use containers:
///  - Default-constructed (arena == nullptr): plain heap — the graceful
///    fallback for default-constructed/deserialized planes.
///  - Copy *assignment* does NOT propagate the allocator: in the delta
///    path `patched.vec = base.vec` copies the base generation's elements
///    into the *patched* plane's own arena, never chains generations onto
///    one arena.
///  - Move assignment/swap DO propagate: whole-plane moves carry each
///    vector with the arena pointer it was built on (the Arena object is
///    heap-allocated and address-stable behind the plane's unique_ptr).
///  - deallocate is a no-op on arena storage (bump allocation; the arena
///    reclaims everything at once), so plane code must size with
///    reserve()/resize() — geometric push_back growth would strand the
///    doubling copies. The build/delta paths all know their sizes.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept : arena_(nullptr) {}
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(size_t n) {
    const size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(bytes, alignof(T)));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, size_t n) noexcept {
    (void)n;
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ != b.arena_;
  }

 private:
  template <typename U>
  friend class ArenaAllocator;

  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

/// Re-binds every vector in a plane to `arena` — each must be empty (the
/// plane is being built); move-assigning an empty vector with the arena
/// allocator adopts it (POCMA).
template <typename T>
void BindToArena(ArenaVector<T>& vec, Arena* arena) {
  vec = ArenaVector<T>(ArenaAllocator<T>(arena));
}

}  // namespace mem
}  // namespace mc

#endif  // MATCHCATCHER_MEM_ARENA_VECTOR_H_
