#ifndef MATCHCATCHER_MEM_NODE_LOCAL_ARENA_H_
#define MATCHCATCHER_MEM_NODE_LOCAL_ARENA_H_

#include <cstddef>
#include <utility>

#include "mem/arena.h"

namespace mc {
namespace mem {

/// True when this build/kernel can bind memory to a NUMA node at all
/// (Linux with the mbind syscall compiled in). Callers still handle a
/// false return from BindMemoryToNode — the syscall can be refused at
/// runtime (seccomp, cpusets) even where it exists.
bool MemoryBindingAvailable();

/// Binds [addr, addr+length) to `node` with a *preferred* policy (raw
/// mbind syscall, no libnuma dependency): the kernel allocates the range's
/// pages on `node` when it can and falls back silently under pressure.
/// Already-touched pages are migrated best-effort. Page-aligns the range
/// internally. Returns false — memory untouched and still valid — when
/// binding is unavailable or refused; never a fatal error, per the
/// graceful-degradation contract. Does NOT record a topology fallback
/// itself; the owner (Arena, corpus placement) does, with context.
bool BindMemoryToNode(void* addr, size_t length, int node);

/// An Arena whose chunks are bound to one NUMA node: the shard-sliced
/// backing for plane data the executor routes node-local work against.
/// Exactly Arena with numa_node/bind preset — construction never fails for
/// a placement reason (a failed bind records a fallback and keeps plain
/// pages).
class NodeLocalArena : public Arena {
 public:
  /// `bind` is normally !SystemTopology::Get().fake(); fake topologies
  /// route placement decisions without issuing syscalls.
  NodeLocalArena(int node, bool bind, ArenaOptions options = {})
      : Arena(WithNode(std::move(options), node, bind)) {}

 private:
  static ArenaOptions WithNode(ArenaOptions options, int node, bool bind) {
    options.numa_node = node;
    options.bind = bind;
    return options;
  }
};

}  // namespace mem
}  // namespace mc

#endif  // MATCHCATCHER_MEM_NODE_LOCAL_ARENA_H_
