#ifndef MATCHCATCHER_MEM_ARENA_H_
#define MATCHCATCHER_MEM_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/memory_budget.h"

namespace mc {
namespace mem {

/// How an Arena acquires and places its backing memory.
struct ArenaOptions {
  /// Growth granularity: chunks are at least this big (page-rounded).
  /// Callers that know their total size Reserve() it up front and never
  /// grow; the chunk size only matters for open-ended scratch arenas.
  size_t chunk_bytes = size_t{1} << 20;
  /// Logical NUMA node this arena's bytes belong to; -1 = unplaced. The
  /// node is always recorded in ArenaStats (so fake-topology runs report
  /// per-node bytes), but memory is only *bound* when `bind` is set.
  int numa_node = -1;
  /// Issue the mbind syscall for numa_node. Callers pass
  /// !SystemTopology::Get().fake() — a fake topology routes decisions but
  /// must not bind to CPUs/nodes that may not exist. A bind that is
  /// requested but unavailable (non-Linux, container without the syscall)
  /// is recorded as a topology fallback, never an error.
  bool bind = false;
  /// Advise transparent huge pages for each chunk (best effort).
  bool huge_pages = false;
  /// Budget charged exactly ReservedBytes(): every chunk is charged when
  /// reserved and released when the arena dies. nullptr = uncharged.
  MemoryBudget* budget = nullptr;
  /// Stats/debugging label ("text_plane", "corpus", "join_scratch").
  std::string tag = "arena";
};

/// Chunked reserve/commit bump allocator: the backing store for every large
/// CSR plane (token streams, rank/mask arenas, inverted-index scratch).
///
/// Contract with MemoryBudget: the arena charges the budget *exactly* what
/// it reserves, chunk by chunk, and releases exactly that on destruction —
/// `budget->used()` moves by ReservedBytes(), never an estimate. Reserve()
/// returns false when the budget refuses (or the `mem/arena_reserve` fault
/// point fires); the caller degrades (truncated plane, rejected delta).
/// Allocate() grows by a fresh chunk when the reserved space runs out and
/// throws std::bad_alloc if that growth is refused — builders catch it at
/// the same boundary where they handle a refused Reserve.
///
/// Thread-safe for concurrent Allocate; Reset and destruction require
/// external quiescence (no allocation in flight, no live references).
/// Not movable: allocators hold stable Arena pointers, so planes own their
/// arena behind a unique_ptr and move the pointer.
class Arena {
 public:
  explicit Arena(ArenaOptions options = {});
  virtual ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Rounds `bytes` up to the arena's allocation granularity (one cache
  /// line). Callers computing an exact Reserve() total sum AlignedSize over
  /// their planned allocations so the single reserved chunk always fits.
  static constexpr size_t AlignedSize(size_t bytes) {
    return (bytes + kAlign - 1) & ~(kAlign - 1);
  }

  /// Adds one chunk of at least `bytes` (page-rounded), charging the
  /// budget. Returns false — arena unchanged, nothing charged — when the
  /// budget refuses or the "mem/arena_reserve" fault point fires.
  bool Reserve(size_t bytes);

  /// Bump-allocates `bytes` (cache-line aligned), growing by a new chunk
  /// if needed. Throws std::bad_alloc when growth is refused.
  void* Allocate(size_t bytes, size_t alignment = kAlign);

  /// Rewinds every chunk to empty, keeping the memory and its budget
  /// charge — the reuse path for pooled scratch arenas.
  void Reset();

  /// Sum of chunk sizes == bytes charged to the budget.
  size_t ReservedBytes() const;
  /// Bytes handed out since construction/Reset (<= ReservedBytes()).
  size_t UsedBytes() const;

  int numa_node() const { return options_.numa_node; }
  const std::string& tag() const { return options_.tag; }
  /// True when any chunk could not be placed as requested (mmap, mbind, or
  /// huge-page advice failed or was unavailable). The arena still works —
  /// plain heap pages — it just lost its placement.
  bool used_fallback() const;

  static constexpr size_t kAlign = 64;

 private:
  struct Chunk {
    std::byte* base = nullptr;
    size_t size = 0;
    size_t used = 0;
    bool mmapped = false;
  };

  /// Appends a chunk of at least `bytes`. Caller holds mutex_.
  bool ReserveLocked(size_t bytes);

  mutable std::mutex mutex_;
  ArenaOptions options_;
  std::vector<Chunk> chunks_;
  size_t active_ = 0;  // First chunk Allocate bumps from (see Reset).
  size_t reserved_ = 0;
  size_t charged_ = 0;
  bool fallback_ = false;
};

}  // namespace mem
}  // namespace mc

#endif  // MATCHCATCHER_MEM_ARENA_H_
