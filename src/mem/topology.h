#ifndef MATCHCATCHER_MEM_TOPOLOGY_H_
#define MATCHCATCHER_MEM_TOPOLOGY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace mc {
namespace mem {

/// One NUMA node as the placement layer sees it: an id and the CPUs that
/// live on it. On machines (or containers) where the kernel exposes no NUMA
/// information the detector synthesizes a single node 0 owning every CPU.
struct TopologyNode {
  int id = 0;
  std::vector<int> cpus;
};

/// The machine layout the memory and execution planes place against:
/// NUMA nodes and the CPUs on each. Detected once from
/// /sys/devices/system/node (Linux) and cached; everything degrades to one
/// node everywhere else.
///
/// `MC_TOPOLOGY=nodes=N,cores_per_node=M` overrides detection with a *fake*
/// topology: N nodes of M synthetic CPUs each. A fake topology drives all
/// placement *decisions* (arena slicing, shard->node routing, worker
/// grouping) exactly like a real one — that is the point: single-node CI
/// exercises the multi-node code paths deterministically — but no mbind or
/// affinity syscall is issued for it (the synthetic CPU ids need not
/// exist). Placement never changes results, only where bytes and threads
/// land, so a fake topology is safe by the bit-identity contract.
class SystemTopology {
 public:
  /// The cached process-wide topology (detected on first use, or whatever
  /// SetForTest installed). Cheap to call: returns a copy of a few small
  /// vectors.
  static SystemTopology Get();

  /// Runs detection now (env override, then /sys, then single-node
  /// fallback) without touching the cache. Exposed for tests.
  static SystemTopology Detect();

  /// Replaces the cached topology (tests); Get() returns `topology` until
  /// ResetForTest(). Marks the installed topology fake unless it came from
  /// Detect() on this machine.
  static void SetForTest(const SystemTopology& topology);

  /// Drops the cache; the next Get() re-detects.
  static void ResetForTest();

  /// Parses an MC_TOPOLOGY-style spec ("nodes=2,cores_per_node=4").
  /// Returns false (leaving *out untouched) on any malformed input —
  /// detection then falls through to the real machine.
  static bool ParseSpec(const std::string& spec, SystemTopology* out);

  SystemTopology();  // Single node, one CPU: the universal fallback.

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_cpus() const;
  const std::vector<TopologyNode>& nodes() const { return nodes_; }

  /// True when this topology was synthesized (MC_TOPOLOGY or SetForTest)
  /// rather than detected: placement decisions run, placement *syscalls*
  /// (mbind, affinity) do not.
  bool fake() const { return fake_; }

  /// Deterministic owner node for the i-th of `count` equal slices
  /// (contiguous block partition: slice i -> node i * nodes / count).
  size_t NodeOfSlice(size_t i, size_t count) const;

  /// "nodes=2(cpus 0-3|4-7)" style rendering for logs and mcserve.
  std::string ToString() const;

 private:
  std::vector<TopologyNode> nodes_;
  bool fake_ = false;
};

}  // namespace mem
}  // namespace mc

#endif  // MATCHCATCHER_MEM_TOPOLOGY_H_
