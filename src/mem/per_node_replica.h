#ifndef MATCHCATCHER_MEM_PER_NODE_REPLICA_H_
#define MATCHCATCHER_MEM_PER_NODE_REPLICA_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "mem/topology.h"

namespace mc {
namespace mem {

/// N read-only copies of a small hot structure, one per NUMA node, so the
/// join's inner loops read it from local memory instead of hammering one
/// socket's controller (parent seed lists, dictionary heads). Build once
/// with Fill(), then Get(node) from any thread — replicas are immutable
/// after Fill. Single-node topologies collapse to one copy: replication
/// costs nothing where it buys nothing. The copies rely on first-touch
/// placement (Fill runs the copy on the caller; binding small structures
/// is not worth a syscall), so this is an affinity hint, not a guarantee —
/// which is fine: replicas are *identical*, any node may read any copy.
template <typename T>
class PerNodeReplica {
 public:
  PerNodeReplica() = default;

  /// Replaces the replicas with `nodes` copies of `value` (>= 1).
  void Fill(const T& value, size_t nodes) {
    if (nodes == 0) nodes = 1;
    replicas_.clear();
    replicas_.reserve(nodes);
    for (size_t n = 0; n < nodes; ++n) {
      replicas_.push_back(std::make_unique<T>(value));
    }
  }

  bool empty() const { return replicas_.empty(); }
  size_t num_replicas() const { return replicas_.size(); }

  /// The replica for `node` (clamped; always valid after Fill).
  const T& Get(size_t node) const {
    if (node >= replicas_.size()) node = replicas_.size() - 1;
    return *replicas_[node];
  }

 private:
  std::vector<std::unique_ptr<T>> replicas_;
};

}  // namespace mem
}  // namespace mc

#endif  // MATCHCATCHER_MEM_PER_NODE_REPLICA_H_
