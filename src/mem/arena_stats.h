#ifndef MATCHCATCHER_MEM_ARENA_STATS_H_
#define MATCHCATCHER_MEM_ARENA_STATS_H_

#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <vector>

namespace mc {
namespace mem {

/// One node's live arena footprint as the registry sees it.
struct ArenaNodeStats {
  int node = -1;  // -1 aggregates unplaced arenas.
  size_t reserved_bytes = 0;
  size_t arenas = 0;
};

/// Point-in-time view of every live arena plus the process's placement
/// fallback history (mcserve --topology, SessionManager stats).
struct ArenaStatsSnapshot {
  std::vector<ArenaNodeStats> per_node;
  size_t total_reserved_bytes = 0;
  size_t total_arenas = 0;
  size_t topology_fallbacks = 0;
};

/// Process-wide accounting of arena placement: per-node reserved bytes for
/// live arenas, and a monotone counter of *topology fallbacks* — every time
/// a placement action (mbind, huge-page advice, worker pinning) was
/// requested but skipped or failed. Fallbacks are expected and harmless on
/// single-node machines, containers without the syscalls, and fake
/// MC_TOPOLOGY runs; the counter exists so operators can see placement is
/// off instead of wondering where the bandwidth went.
class ArenaStatsRegistry {
 public:
  static ArenaStatsRegistry& Instance();

  /// Arena lifecycle hooks (called by Arena).
  void OnReserve(int node, size_t bytes);
  void OnRelease(int node, size_t bytes);
  void OnArenaCreated(int node);
  void OnArenaDestroyed(int node);

  /// Records one skipped/failed placement action (arena binding, thread
  /// pinning). Callable from any thread.
  void RecordTopologyFallback();

  size_t topology_fallbacks() const {
    return fallbacks_.load(std::memory_order_relaxed);
  }

  ArenaStatsSnapshot Snapshot() const;

  /// Zeroes the fallback counter (tests; byte accounting is driven by live
  /// arenas and is not resettable).
  void ResetFallbacksForTest() {
    fallbacks_.store(0, std::memory_order_relaxed);
  }

 private:
  ArenaStatsRegistry() = default;

  struct NodeCounters {
    size_t reserved_bytes = 0;
    size_t arenas = 0;
  };

  mutable std::mutex mutex_;
  std::map<int, NodeCounters> nodes_;
  std::atomic<size_t> fallbacks_{0};
};

}  // namespace mem
}  // namespace mc

#endif  // MATCHCATCHER_MEM_ARENA_STATS_H_
