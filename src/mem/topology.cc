#include "mem/topology.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

namespace mc {
namespace mem {
namespace {

std::mutex g_cache_mutex;
std::optional<SystemTopology> g_cached;  // Guarded by g_cache_mutex.

// Parses a /sys cpulist ("0-3,8,10-11") into CPU ids. Returns false on any
// token it cannot read — the caller then discards the whole node scan.
bool ParseCpuList(const std::string& list, std::vector<int>* cpus) {
  std::stringstream stream(list);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    const size_t dash = token.find('-');
    char* end = nullptr;
    if (dash == std::string::npos) {
      const long cpu = std::strtol(token.c_str(), &end, 10);
      if (end == token.c_str() || cpu < 0) return false;
      cpus->push_back(static_cast<int>(cpu));
    } else {
      const long lo = std::strtol(token.c_str(), &end, 10);
      if (end != token.c_str() + dash || lo < 0) return false;
      const char* hi_str = token.c_str() + dash + 1;
      const long hi = std::strtol(hi_str, &end, 10);
      if (end == hi_str || hi < lo) return false;
      for (long cpu = lo; cpu <= hi; ++cpu) {
        cpus->push_back(static_cast<int>(cpu));
      }
    }
  }
  return !cpus->empty();
}

// Scans /sys/devices/system/node/node<N>/cpulist. Returns nodes that have
// CPUs; an empty result means the kernel exposed nothing usable.
std::vector<TopologyNode> ScanSysfsNodes() {
  std::vector<TopologyNode> nodes;
#if defined(__linux__)
  for (int id = 0;; ++id) {
    const std::string path = "/sys/devices/system/node/node" +
                             std::to_string(id) + "/cpulist";
    std::ifstream file(path);
    if (!file.is_open()) break;
    std::string list;
    std::getline(file, list);
    TopologyNode node;
    node.id = id;
    if (ParseCpuList(list, &node.cpus)) nodes.push_back(std::move(node));
  }
#endif
  return nodes;
}

}  // namespace

SystemTopology::SystemTopology() {
  TopologyNode node;
  node.id = 0;
  node.cpus = {0};
  nodes_.push_back(std::move(node));
}

size_t SystemTopology::num_cpus() const {
  size_t total = 0;
  for (const TopologyNode& node : nodes_) total += node.cpus.size();
  return total;
}

size_t SystemTopology::NodeOfSlice(size_t i, size_t count) const {
  if (count == 0 || nodes_.empty()) return 0;
  if (i >= count) i = count - 1;
  return i * nodes_.size() / count;
}

std::string SystemTopology::ToString() const {
  std::ostringstream out;
  out << "nodes=" << nodes_.size() << (fake_ ? " (fake)" : "") << " [";
  for (size_t n = 0; n < nodes_.size(); ++n) {
    if (n > 0) out << " | ";
    out << "node" << nodes_[n].id << ": " << nodes_[n].cpus.size()
        << " cpus";
  }
  out << "]";
  return out.str();
}

bool SystemTopology::ParseSpec(const std::string& spec,
                               SystemTopology* out) {
  long nodes = -1, cores = -1;
  std::stringstream stream(spec);
  std::string field;
  while (std::getline(stream, field, ',')) {
    const size_t eq = field.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = field.substr(0, eq);
    const std::string value_str = field.substr(eq + 1);
    char* end = nullptr;
    const long value = std::strtol(value_str.c_str(), &end, 10);
    if (end == value_str.c_str() || *end != '\0' || value <= 0) return false;
    if (key == "nodes") {
      nodes = value;
    } else if (key == "cores_per_node") {
      cores = value;
    } else {
      return false;
    }
  }
  if (nodes <= 0 || cores <= 0 || nodes > 1024 || cores > 4096) return false;
  SystemTopology parsed;
  parsed.nodes_.clear();
  for (long n = 0; n < nodes; ++n) {
    TopologyNode node;
    node.id = static_cast<int>(n);
    for (long c = 0; c < cores; ++c) {
      node.cpus.push_back(static_cast<int>(n * cores + c));
    }
    parsed.nodes_.push_back(std::move(node));
  }
  parsed.fake_ = true;
  *out = parsed;
  return true;
}

SystemTopology SystemTopology::Detect() {
  const char* spec = std::getenv("MC_TOPOLOGY");
  if (spec != nullptr && *spec != '\0') {
    SystemTopology faked;
    if (ParseSpec(spec, &faked)) return faked;
    // Malformed spec: fall through to the machine, never fail detection.
  }
  std::vector<TopologyNode> nodes = ScanSysfsNodes();
  SystemTopology detected;
  if (!nodes.empty()) {
    detected.nodes_ = std::move(nodes);
    return detected;
  }
  // No NUMA information exposed: one node owning every hardware thread.
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  detected.nodes_.clear();
  TopologyNode node;
  node.id = 0;
  for (unsigned cpu = 0; cpu < hw; ++cpu) {
    node.cpus.push_back(static_cast<int>(cpu));
  }
  detected.nodes_.push_back(std::move(node));
  return detected;
}

SystemTopology SystemTopology::Get() {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  if (!g_cached.has_value()) g_cached = Detect();
  return *g_cached;
}

void SystemTopology::SetForTest(const SystemTopology& topology) {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  SystemTopology installed = topology;
  installed.fake_ = true;
  g_cached = installed;
}

void SystemTopology::ResetForTest() {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  g_cached.reset();
}

}  // namespace mem
}  // namespace mc
