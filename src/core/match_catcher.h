#ifndef MATCHCATCHER_CORE_MATCH_CATCHER_H_
#define MATCHCATCHER_CORE_MATCH_CATCHER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "blocking/candidate_set.h"
#include "config/config_generator.h"
#include "explain/summary.h"
#include "joint/joint_executor.h"
#include "joint/joint_repair.h"
#include "learn/features.h"
#include "ssj/corpus.h"
#include "table/table.h"
#include "table/tokenized_table.h"
#include "util/memory_budget.h"
#include "util/status.h"
#include "verifier/match_verifier.h"
#include "verifier/user_oracle.h"

namespace mc {

/// A memoized Config Generator outcome: the promising attributes and the
/// config tree generated from them. Both are deterministic functions of the
/// input tables and the generator knobs, so the service caches them next to
/// the joint plan (same key, same invalidation) and warm sessions skip the
/// per-attribute e-score/value-set scan entirely.
struct CachedConfigPick {
  PromisingAttributes attributes;
  ConfigTree tree;
};

/// Top-level options for a MatchCatcher debugging session.
struct MatchCatcherOptions {
  ConfigGeneratorOptions config;
  /// Joint top-k execution; `joint.exclude` is set internally to the
  /// blocker output, any caller value is ignored.
  JointOptions joint;
  VerifierOptions verifier;
  /// Run rule-based attribute type inference on the inputs (recommended for
  /// freshly loaded CSVs whose schema types are all kString).
  bool infer_types = true;
  /// Which text data path the session runs on. kTokenized builds the
  /// tokenize-once TokenizedTable up front (unless the caller already
  /// attached one to both inputs) and every stage — profiling, corpus build,
  /// features, repair — reads spans from it. kLegacy detaches any plane and
  /// re-tokenizes strings per call; outputs are bit-identical either way
  /// (tests/text_plane_equivalence_test.cc), so kLegacy exists for
  /// before/after benchmarking and ablation.
  TextPlane text_plane = TextPlane::kTokenized;
  /// Cooperative cancellation/deadline for the whole Create() pipeline,
  /// propagated into config generation and the joint executor (overrides
  /// any context set on `config`/`joint`). Expiry during config generation
  /// fails Create() with kDeadlineExceeded (no partial result exists yet);
  /// expiry during the joint top-k phase still yields a session whose
  /// best-so-far lists are flagged via truncated() — see docs/robustness.md.
  RunContext run_context;

  // --- Service integration (src/service/session_manager.h) --------------
  /// Pre-built corpus to reuse instead of building one. Used only when
  /// `shared_corpus_columns` matches the promising attribute columns this
  /// session selects (a mismatch silently falls back to a fresh build —
  /// column selection is data-dependent, so the service's cached corpus is
  /// a guess until the first session on a pair confirms it). The corpus
  /// must have been built over these exact tables; the session keeps a
  /// reference for the joint phase only.
  std::shared_ptr<const SsjCorpus> shared_corpus;
  std::vector<size_t> shared_corpus_columns;
  /// Called with each freshly built non-truncated corpus and the columns it
  /// covers — the service's hook for populating its corpus cache so later
  /// sessions on the same table pair skip the build entirely.
  std::function<void(std::shared_ptr<const SsjCorpus>,
                     const std::vector<size_t>&)>
      corpus_sink;
  /// Called once after an *un-truncated* joint phase with the per-config
  /// lists and their seeding lineage — the service's hook for caching
  /// repairable top-k state, so a later table delta patches the lists
  /// (joint/joint_repair.h) instead of rerunning the joins. Truncated
  /// executions are never snapshotted: their lists are best-so-far, not
  /// canonical, and cannot anchor an exact repair.
  std::function<void(const JointListsSnapshot&)> joint_sink;
  /// Cached execution plan for the joint phase (the service's cross-session
  /// plan cache). When set and the joint phase would run the cost planner
  /// (joint.q == 0 under QSelection::kPlanner), the sampling probes are
  /// skipped and this plan executes directly — bit-identical output to
  /// planning fresh, because the planner is deterministic for a fixed
  /// (seed, corpus generation, weights) and every plan executes to the same
  /// canonical lists. The caller owns the invariant that the plan was
  /// computed on the same corpus generation and session configuration
  /// (SessionManager keys its cache by exactly that).
  std::shared_ptr<const JoinPlan> cached_plan;
  /// Called once with each freshly computed plan — planner ran, not served
  /// from `cached_plan`, and neither the plan nor the joint phase was
  /// truncated — the service's hook for populating its plan cache so later
  /// sessions on the same pair skip the probe joins entirely.
  std::function<void(const JoinPlan&)> plan_sink;
  /// Memoized Config Generator outcome to reuse instead of re-running
  /// attribute selection and tree generation. Same ownership contract as
  /// `cached_plan`: the caller guarantees it was computed on these exact
  /// tables under these exact generator knobs (SessionManager keys its
  /// cache by the config-affecting options and invalidates on every table
  /// delta), so reuse is bit-identical to recomputing.
  std::shared_ptr<const CachedConfigPick> cached_config;
  /// Called once with each freshly computed config pick (selection ran, not
  /// served from `cached_config`) — the companion of `plan_sink` for the
  /// config half of the memoized session plan.
  std::function<void(const CachedConfigPick&)> config_sink;
  /// Service-wide memory ceiling, threaded into the text-plane and corpus
  /// builds (see CorpusBuildOptions::memory_budget for the degradation
  /// contract). Must outlive the session.
  MemoryBudget* memory_budget = nullptr;
};

/// A MatchCatcher debugging session: given tables A, B and the output C of
/// some blocker (MatchCatcher never sees the blocker itself — it is blocker
/// independent), Create() runs the Config Generator and the joint top-k SSJs
/// to produce the candidate set E of plausible killed-off matches; the
/// verifier API then drives the interactive identification loop.
///
/// The session owns private copies of the tables, so the caller's tables may
/// be discarded after Create(). The shared_ptr overload shares immutable
/// tables instead — the zero-copy path the session service rides.
class DebugSession {
 public:
  static Result<DebugSession> Create(const Table& table_a,
                                     const Table& table_b,
                                     const CandidateSet& blocker_output,
                                     const MatchCatcherOptions& options = {});

  /// Zero-copy construction: the session shares `table_a`/`table_b` rather
  /// than copying them, so N sessions over one pair pay zero per-session
  /// table copies. The tables are only copied when this session must edit
  /// its view of them — TextPlane::kLegacy (detaches the plane),
  /// infer_types (rewrites the schema), or a missing text plane (built and
  /// attached here). The caller must not mutate the tables afterwards;
  /// replace-and-republish (the service's delta pattern) is fine because
  /// the session keeps its own references.
  static Result<DebugSession> Create(std::shared_ptr<const Table> table_a,
                                     std::shared_ptr<const Table> table_b,
                                     const CandidateSet& blocker_output,
                                     const MatchCatcherOptions& options = {});

  DebugSession(DebugSession&&) = default;
  DebugSession& operator=(DebugSession&&) = default;

  const Table& table_a() const { return *table_a_; }
  const Table& table_b() const { return *table_b_; }
  const PromisingAttributes& attributes() const { return attributes_; }
  const ConfigTree& config_tree() const { return tree_; }
  const JointResult& joint_result() const { return joint_; }
  const PairFeatureExtractor& extractor() const { return *extractor_; }

  /// Per-config top-k lists (sorted by score descending), in tree order.
  std::vector<std::vector<ScoredPair>> TopKLists() const;

  /// E: the distinct pairs across all top-k lists.
  std::vector<PairId> CandidatePairs() const;

  /// True when the joint top-k phase was cut short by the run context: the
  /// per-config lists are best-so-far (exact scores, possibly fewer than k
  /// pairs) rather than the full top-k. They remain valid verifier input.
  bool truncated() const { return joint_.truncated; }

  /// Wall-clock seconds of the top-k SSJ module (the paper's §6.4 metric).
  double topk_seconds() const { return joint_.total_seconds; }
  /// Wall-clock seconds of config generation.
  double config_seconds() const { return config_seconds_; }
  /// Wall-clock seconds of the tokenize-once text plane build (0 under
  /// TextPlane::kLegacy or when the caller supplied an attached plane).
  double text_plane_seconds() const { return text_plane_seconds_; }

  /// True when the joint phase ran over MatchCatcherOptions::shared_corpus
  /// instead of a freshly built one (service plane-sharing diagnostics).
  bool used_shared_corpus() const { return used_shared_corpus_; }

  /// Fresh Match Verifier over this session's top-k lists. The verifier
  /// borrows the session's feature extractor; the session must outlive it.
  MatchVerifier MakeVerifier() const;

  /// Runs the full verification loop against `oracle` to the natural stop.
  VerifierResult RunVerification(UserOracle& oracle) const;

  /// Human-readable per-attribute breakdown of a pair — the "Explanations"
  /// output in the paper's architecture (Figure 2): values side by side,
  /// similarity signals, and automatically diagnosed problems (missing
  /// value, misspelling, extra words, un-normalized case, ...). See
  /// explain/diagnosis.h for the classifier.
  std::string ExplainPair(PairId pair) const;

  /// Aggregates the diagnosed problems over `pairs` (typically the
  /// verifier's confirmed matches), sorted by pervasiveness — the §8
  /// "summarize these explanations" extension. Render with
  /// RenderProblemSummary (explain/summary.h).
  std::vector<ProblemGroup> SummarizeProblems(
      const std::vector<PairId>& pairs) const;

 private:
  DebugSession() = default;

  /// `owned` marks tables the implementation may mutate in place (private
  /// copies made by the copying overload); shared tables are copied on the
  /// first mutation instead.
  static Result<DebugSession> CreateShared(std::shared_ptr<const Table> a,
                                           std::shared_ptr<const Table> b,
                                           bool owned,
                                           const CandidateSet& blocker_output,
                                           const MatchCatcherOptions& options);

  std::shared_ptr<const Table> table_a_;
  std::shared_ptr<const Table> table_b_;
  MatchCatcherOptions options_;
  PromisingAttributes attributes_;
  ConfigTree tree_;
  JointResult joint_;
  std::unique_ptr<PairFeatureExtractor> extractor_;
  double config_seconds_ = 0.0;
  double text_plane_seconds_ = 0.0;
  bool used_shared_corpus_ = false;
};

}  // namespace mc

#endif  // MATCHCATCHER_CORE_MATCH_CATCHER_H_
