#ifndef MATCHCATCHER_CORE_SESSION_IO_H_
#define MATCHCATCHER_CORE_SESSION_IO_H_

#include <string>
#include <utility>
#include <vector>

#include "blocking/pair.h"
#include "ssj/topk_list.h"
#include "util/status.h"

namespace mc {

/// Persistence for debugging sessions. Blocker debugging spans sittings —
/// a user labels a few iterations, revises the blocker, comes back later —
/// so the expensive artifacts (per-config top-k lists) and the accumulated
/// labels can be saved and restored:
///
///   SaveTopKLists(session.TopKLists(), "lists.mc");
///   SaveLabeledPairs(labels, "labels.csv");
///   ...
///   MatchVerifier verifier(LoadTopKLists("lists.mc").value(), &extractor,
///                          options);
///   verifier.PreloadLabels(LoadLabeledPairs("labels.csv").value());
///
/// Formats are plain text: labels as "a,b,label" CSV; lists as one
/// "list <index>" header per config followed by "a,b,score" rows.
///
/// Crash safety (docs/robustness.md): saves write to `<path>.tmp` and
/// rename() it into place, so an interrupted save leaves the previous
/// checkpoint intact. Files are framed by a magic header line and a CRC32
/// footer; loads detect truncated or corrupt checkpoints and return a typed
/// kIoError. Legacy files without the framing still load (unverified).
/// Fault points: "session_io/write", "session_io/rename", "session_io/read"
/// (util/fault_injection.h).

Status SaveLabeledPairs(
    const std::vector<std::pair<PairId, bool>>& labels,
    const std::string& path);

Result<std::vector<std::pair<PairId, bool>>> LoadLabeledPairs(
    const std::string& path);

Status SaveTopKLists(const std::vector<std::vector<ScoredPair>>& lists,
                     const std::string& path);

Result<std::vector<std::vector<ScoredPair>>> LoadTopKLists(
    const std::string& path);

/// Checksum over per-config lists: list count, then each list's length and
/// (pair, score-bits) entries in order. Two runs produce equal CRCs iff
/// their lists are bit-identical — what the delta-equivalence suite and
/// bench/micro_delta compare patched vs rebuilt outputs with.
uint32_t TopKListsCrc(const std::vector<std::vector<ScoredPair>>& lists);

}  // namespace mc

#endif  // MATCHCATCHER_CORE_SESSION_IO_H_
