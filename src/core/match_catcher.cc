#include "core/match_catcher.h"

#include <sstream>
#include <unordered_set>

#include "explain/diagnosis.h"
#include "ssj/corpus.h"
#include "table/profile.h"
#include "util/stopwatch.h"

namespace mc {

Result<DebugSession> DebugSession::Create(const Table& table_a,
                                          const Table& table_b,
                                          const CandidateSet& blocker_output,
                                          const MatchCatcherOptions& options) {
  // Private copies up front: this overload's contract is that the caller's
  // tables may be discarded, so every mutation below may edit in place.
  return CreateShared(std::make_shared<Table>(table_a),
                      std::make_shared<Table>(table_b), /*owned=*/true,
                      blocker_output, options);
}

Result<DebugSession> DebugSession::Create(std::shared_ptr<const Table> table_a,
                                          std::shared_ptr<const Table> table_b,
                                          const CandidateSet& blocker_output,
                                          const MatchCatcherOptions& options) {
  return CreateShared(std::move(table_a), std::move(table_b), /*owned=*/false,
                      blocker_output, options);
}

Result<DebugSession> DebugSession::CreateShared(
    std::shared_ptr<const Table> a, std::shared_ptr<const Table> b, bool owned,
    const CandidateSet& blocker_output, const MatchCatcherOptions& options) {
  DebugSession session;
  session.options_ = options;
  if (options.infer_types && !(a->schema() == b->schema())) {
    return Status::InvalidArgument("tables A and B must share one schema");
  }
  const bool build_plane = options.text_plane != TextPlane::kLegacy &&
                           SharedTextPlane(*a, *b) == nullptr;
  const bool needs_mutation = options.text_plane == TextPlane::kLegacy ||
                              build_plane || options.infer_types;
  if (needs_mutation && !owned) {
    // The only table copies on the shared path: this session must edit its
    // view of the tables (plane detach/attach or a schema rewrite), so it
    // takes private ones. The service's warm path — plane already attached,
    // infer_types resolved before registration — stays zero-copy.
    a = std::make_shared<Table>(*a);
    b = std::make_shared<Table>(*b);
    owned = true;
  }
  if (needs_mutation) {
    // Owned tables were allocated mutable (make_shared<Table>); the const
    // view is this function's, not the objects'.
    Table& mutable_a = const_cast<Table&>(*a);
    Table& mutable_b = const_cast<Table&>(*b);
    if (options.text_plane == TextPlane::kLegacy) {
      // Ablation contract: the legacy path never consults a plane, even one
      // the caller attached to the inputs.
      mutable_a.DetachTextPlane();
      mutable_b.DetachTextPlane();
    } else if (build_plane) {
      // Tokenize once, before profiling: type inference, attribute
      // selection, corpus build, features, and repair all read this plane.
      // A truncated build (cancellation mid-plane) is simply not attached;
      // every stage then falls back to per-call string tokenization.
      Stopwatch plane_watch;
      TextPlaneBuildOptions plane_options;
      plane_options.num_threads = options.joint.num_threads;
      plane_options.run_context = options.run_context;
      plane_options.memory_budget = options.memory_budget;
      TokenizedTable::BuildAndAttach(mutable_a, mutable_b, plane_options);
      session.text_plane_seconds_ = plane_watch.ElapsedSeconds();
    }
    if (options.infer_types) {
      mutable_a.SetSchema(InferAttributeTypes(mutable_a));
      mutable_b.SetSchema(mutable_a.schema());
    }
  }
  session.table_a_ = std::move(a);
  session.table_b_ = std::move(b);

  Stopwatch config_watch;
  ConfigGeneratorOptions config_options = options.config;
  config_options.run_context = options.run_context;
  if (options.cached_config != nullptr) {
    // Served from the service's memoized session plan: selection and tree
    // generation are deterministic for fixed tables and knobs, so this is
    // the exact pick a fresh run would compute.
    session.attributes_ = options.cached_config->attributes;
    session.tree_ = options.cached_config->tree;
  } else {
    MC_ASSIGN_OR_RETURN(
        session.attributes_,
        SelectPromisingAttributes(*session.table_a_, *session.table_b_,
                                  config_options));
    session.tree_ = GenerateConfigTree(session.attributes_, config_options);
    if (options.config_sink != nullptr) {
      options.config_sink(
          CachedConfigPick{session.attributes_, session.tree_});
    }
  }
  session.config_seconds_ = config_watch.ElapsedSeconds();

  if (options.run_context.Cancelled()) {
    return Status::DeadlineExceeded(
        "session creation cancelled before the joint top-k phase");
  }
  // Corpus sharing: when the service supplies a pre-built corpus for
  // exactly the columns this session selected, reuse it — MakeConfigView is
  // const and thread-safe, so N concurrent sessions on one table pair pay
  // one build. Anything else (no shared corpus, or the cached columns
  // guessed wrong) builds fresh and, when a sink is registered, publishes
  // the result for the next session.
  std::shared_ptr<const SsjCorpus> corpus;
  if (options.shared_corpus != nullptr &&
      options.shared_corpus_columns == session.attributes_.columns) {
    corpus = options.shared_corpus;
    session.used_shared_corpus_ = true;
  } else {
    CorpusBuildOptions build_options;
    build_options.num_threads = options.joint.num_threads;
    build_options.run_context = options.run_context;
    build_options.memory_budget = options.memory_budget;
    auto built = std::make_shared<SsjCorpus>(
        SsjCorpus::Build(*session.table_a_, *session.table_b_,
                         session.attributes_.columns, build_options));
    if (options.corpus_sink != nullptr && !built->truncated()) {
      options.corpus_sink(built, session.attributes_.columns);
    }
    corpus = std::move(built);
  }
  JointOptions joint_options = options.joint;
  joint_options.exclude = &blocker_output;
  joint_options.run_context = options.run_context;
  if (options.cached_plan != nullptr) {
    joint_options.cached_plan = options.cached_plan.get();
  }
  session.joint_ = RunJointTopKJoins(*corpus, session.tree_, joint_options);
  if (!session.joint_.task_error.ok()) return session.joint_.task_error;

  // Publish a freshly computed plan for cross-session reuse. Cache-served
  // and truncated plans never publish: the former is already cached, the
  // latter is the conservative fallback, not a modeled decision.
  if (options.plan_sink != nullptr && session.joint_.planner_used &&
      !session.joint_.plan_from_cache && !session.joint_.plan.truncated &&
      !session.joint_.truncated) {
    options.plan_sink(session.joint_.plan);
  }

  // Snapshot the finished lists with their seeding lineage for delta
  // repair. Only exact (un-truncated) executions qualify: repair replays
  // the seeding decisions against these lists, so they must be canonical.
  if (options.joint_sink != nullptr && !session.joint_.truncated) {
    JointListsSnapshot snapshot;
    const size_t n = session.tree_.nodes.size();
    snapshot.configs.reserve(n);
    snapshot.parents.reserve(n);
    snapshot.seeded.reserve(n);
    snapshot.lists.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      snapshot.configs.push_back(session.tree_.nodes[i].mask);
      snapshot.parents.push_back(session.tree_.nodes[i].parent);
      snapshot.seeded.push_back(
          session.joint_.per_config[i].seeded_from_parent ? 1 : 0);
      snapshot.lists.push_back(session.joint_.per_config[i].topk);
    }
    snapshot.k = options.joint.k;
    snapshot.measure = options.joint.measure;
    snapshot.q_used = session.joint_.q_used;
    options.joint_sink(snapshot);
  }

  session.extractor_ = std::make_unique<PairFeatureExtractor>(
      session.table_a_.get(), session.table_b_.get());
  return session;
}

std::vector<std::vector<ScoredPair>> DebugSession::TopKLists() const {
  std::vector<std::vector<ScoredPair>> lists;
  lists.reserve(joint_.per_config.size());
  for (const ConfigJoinResult& result : joint_.per_config) {
    lists.push_back(result.topk);
  }
  return lists;
}

std::vector<PairId> DebugSession::CandidatePairs() const {
  std::vector<PairId> pairs;
  std::unordered_set<PairId, PairIdHash> seen;
  for (const ConfigJoinResult& result : joint_.per_config) {
    for (const ScoredPair& entry : result.topk) {
      if (seen.insert(entry.pair).second) pairs.push_back(entry.pair);
    }
  }
  return pairs;
}

MatchVerifier DebugSession::MakeVerifier() const {
  return MatchVerifier(TopKLists(), extractor_.get(), options_.verifier);
}

VerifierResult DebugSession::RunVerification(UserOracle& oracle) const {
  MatchVerifier verifier = MakeVerifier();
  return verifier.Run(oracle);
}

std::string DebugSession::ExplainPair(PairId pair) const {
  return RenderDiagnosis(*table_a_, *table_b_, pair,
                         DiagnosePair(*table_a_, *table_b_, pair));
}

std::vector<ProblemGroup> DebugSession::SummarizeProblems(
    const std::vector<PairId>& pairs) const {
  return mc::SummarizeProblems(*table_a_, *table_b_, pairs);
}

}  // namespace mc
