#include "core/session_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mc {

namespace {

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path);
  out << content;
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Result<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

}  // namespace

Status SaveLabeledPairs(
    const std::vector<std::pair<PairId, bool>>& labels,
    const std::string& path) {
  std::ostringstream out;
  out << "a,b,label\n";
  for (const auto& [pair, is_match] : labels) {
    out << PairRowA(pair) << "," << PairRowB(pair) << ","
        << (is_match ? 1 : 0) << "\n";
  }
  return WriteTextFile(path, out.str());
}

Result<std::vector<std::pair<PairId, bool>>> LoadLabeledPairs(
    const std::string& path) {
  Result<std::vector<std::string>> lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  std::vector<std::pair<PairId, bool>> labels;
  for (size_t i = 1; i < lines->size(); ++i) {  // Skip header.
    const std::string& line = (*lines)[i];
    if (line.empty()) continue;
    uint32_t a = 0, b = 0;
    int label = 0;
    if (std::sscanf(line.c_str(), "%" SCNu32 ",%" SCNu32 ",%d", &a, &b,
                    &label) != 3 ||
        (label != 0 && label != 1)) {
      return Status::InvalidArgument(path + ": bad label line " +
                                     std::to_string(i + 1));
    }
    labels.emplace_back(MakePairId(a, b), label == 1);
  }
  return labels;
}

Status SaveTopKLists(const std::vector<std::vector<ScoredPair>>& lists,
                     const std::string& path) {
  std::ostringstream out;
  out << "topk_lists " << lists.size() << "\n";
  for (size_t i = 0; i < lists.size(); ++i) {
    out << "list " << i << " " << lists[i].size() << "\n";
    for (const ScoredPair& entry : lists[i]) {
      char buffer[80];
      std::snprintf(buffer, sizeof(buffer), "%u,%u,%.17g\n",
                    PairRowA(entry.pair), PairRowB(entry.pair), entry.score);
      out << buffer;
    }
  }
  return WriteTextFile(path, out.str());
}

Result<std::vector<std::vector<ScoredPair>>> LoadTopKLists(
    const std::string& path) {
  Result<std::vector<std::string>> lines = ReadLines(path);
  if (!lines.ok()) return lines.status();
  if (lines->empty()) return Status::InvalidArgument(path + ": empty file");

  size_t num_lists = 0;
  if (std::sscanf((*lines)[0].c_str(), "topk_lists %zu", &num_lists) != 1) {
    return Status::InvalidArgument(path + ": bad header");
  }
  std::vector<std::vector<ScoredPair>> lists;
  lists.reserve(num_lists);
  size_t row = 1;
  for (size_t i = 0; i < num_lists; ++i) {
    if (row >= lines->size()) {
      return Status::InvalidArgument(path + ": truncated file");
    }
    size_t index = 0, count = 0;
    if (std::sscanf((*lines)[row].c_str(), "list %zu %zu", &index,
                    &count) != 2 ||
        index != i) {
      return Status::InvalidArgument(path + ": bad list header at line " +
                                     std::to_string(row + 1));
    }
    ++row;
    std::vector<ScoredPair> list;
    list.reserve(count);
    for (size_t e = 0; e < count; ++e, ++row) {
      if (row >= lines->size()) {
        return Status::InvalidArgument(path + ": truncated list " +
                                       std::to_string(i));
      }
      uint32_t a = 0, b = 0;
      double score = 0.0;
      if (std::sscanf((*lines)[row].c_str(), "%" SCNu32 ",%" SCNu32 ",%lg",
                      &a, &b, &score) != 3) {
        return Status::InvalidArgument(path + ": bad entry at line " +
                                       std::to_string(row + 1));
      }
      list.push_back(ScoredPair{MakePairId(a, b), score});
    }
    lists.push_back(std::move(list));
  }
  return lists;
}

}  // namespace mc
