#include "core/session_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#ifdef __unix__
#include <unistd.h>
#endif

#include "util/crc32.h"
#include "util/fault_injection.h"

namespace mc {

namespace {

// Checkpoint framing (docs/robustness.md): new-format files carry a magic
// header line and a CRC32 footer over the payload bytes between them.
// Legacy (pre-framing) files have neither and load without verification.
constexpr char kCheckpointMagic[] = "# mc-checkpoint v1\n";
constexpr char kFooterPrefix[] = "# mc-crc32 ";

std::string MakeFooter(const std::string& payload) {
  char footer[64];
  std::snprintf(footer, sizeof(footer), "%s%08x %zu\n", kFooterPrefix,
                Crc32(payload), payload.size());
  return footer;
}

// Writes `<magic><payload><footer>` to `path` via `<path>.tmp` + rename(),
// so a crash at any point leaves either the previous file or the complete
// new one — never a torn target. The .tmp is fsync'd before the rename
// where the platform allows it.
Status WriteCheckpointAtomic(const std::string& path,
                             const std::string& payload) {
  switch (MC_FAULT_POINT("session_io/write")) {
    case FaultKind::kNone:
      break;
    case FaultKind::kThrow:
      throw std::runtime_error("injected fault: session_io/write " + path);
    case FaultKind::kError:
      return Status::IoError("injected write fault for " + path);
    case FaultKind::kPartialWrite: {
      // Simulate a crash mid-write: leave a torn .tmp, never touch `path`.
      std::string full = kCheckpointMagic + payload + MakeFooter(payload);
      std::ofstream torn(path + ".tmp", std::ios::binary);
      torn.write(full.data(),
                 static_cast<std::streamsize>(full.size() / 2));
      return Status::IoError("injected mid-write crash for " + path);
    }
  }

  const std::string tmp_path = path + ".tmp";
  {
    std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
    if (out == nullptr) return Status::IoError("cannot open " + tmp_path);
    const std::string footer = MakeFooter(payload);
    bool written =
        std::fwrite(kCheckpointMagic, 1, sizeof(kCheckpointMagic) - 1,
                    out) == sizeof(kCheckpointMagic) - 1 &&
        std::fwrite(payload.data(), 1, payload.size(), out) ==
            payload.size() &&
        std::fwrite(footer.data(), 1, footer.size(), out) == footer.size() &&
        std::fflush(out) == 0;
#ifdef __unix__
    written = written && fsync(fileno(out)) == 0;
#endif
    written = (std::fclose(out) == 0) && written;
    if (!written) {
      std::remove(tmp_path.c_str());
      return Status::IoError("write failed for " + tmp_path);
    }
  }

  if (MC_FAULT_POINT("session_io/rename") == FaultKind::kError) {
    // Simulate a crash between write and rename: complete .tmp left behind,
    // target untouched.
    return Status::IoError("injected rename fault for " + path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("rename failed for " + path);
  }
  return Status::Ok();
}

// Reads `path` and strips/verifies checkpoint framing. New-format files
// (magic header) must carry an intact footer: a missing or malformed footer
// means the tail was lost (truncation), a byte-count or CRC mismatch means
// corruption — both are typed kIoError. Files without the magic are legacy
// and returned unverified.
Result<std::string> ReadCheckpointPayload(const std::string& path) {
  if (MC_FAULT_POINT("session_io/read") == FaultKind::kError) {
    return Status::IoError("injected read fault for " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed for " + path);
  std::string content = std::move(buffer).str();

  constexpr size_t kMagicLen = sizeof(kCheckpointMagic) - 1;
  if (content.compare(0, kMagicLen, kCheckpointMagic) != 0) {
    return content;  // Legacy checksum-less file; parse as-is.
  }

  // Locate the footer: the last newline-terminated line.
  std::string body = content.substr(kMagicLen);
  size_t footer_start = std::string::npos;
  if (!body.empty() && body.back() == '\n' && body.size() >= 2) {
    footer_start = body.rfind('\n', body.size() - 2);
    footer_start = footer_start == std::string::npos ? 0 : footer_start + 1;
  }
  uint32_t stored_crc = 0;
  size_t stored_bytes = 0;
  if (footer_start == std::string::npos ||
      std::sscanf(body.c_str() + footer_start, "# mc-crc32 %" SCNx32 " %zu",
                  &stored_crc, &stored_bytes) != 2) {
    return Status::IoError(path +
                           ": truncated checkpoint (footer missing; the "
                           "file lost its tail)");
  }
  std::string payload = body.substr(0, footer_start);
  if (payload.size() != stored_bytes) {
    return Status::IoError(
        path + ": truncated checkpoint (payload is " +
        std::to_string(payload.size()) + " bytes, footer declares " +
        std::to_string(stored_bytes) + ")");
  }
  if (Crc32(payload) != stored_crc) {
    return Status::IoError(path +
                           ": checksum mismatch (corrupt checkpoint)");
  }
  return payload;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

}  // namespace

Status SaveLabeledPairs(
    const std::vector<std::pair<PairId, bool>>& labels,
    const std::string& path) {
  std::ostringstream out;
  out << "a,b,label\n";
  for (const auto& [pair, is_match] : labels) {
    out << PairRowA(pair) << "," << PairRowB(pair) << ","
        << (is_match ? 1 : 0) << "\n";
  }
  return WriteCheckpointAtomic(path, out.str());
}

Result<std::vector<std::pair<PairId, bool>>> LoadLabeledPairs(
    const std::string& path) {
  MC_ASSIGN_OR_RETURN(std::string payload, ReadCheckpointPayload(path));
  std::vector<std::string> lines = SplitLines(payload);
  std::vector<std::pair<PairId, bool>> labels;
  for (size_t i = 1; i < lines.size(); ++i) {  // Skip header.
    const std::string& line = lines[i];
    if (line.empty()) continue;
    uint32_t a = 0, b = 0;
    int label = 0;
    if (std::sscanf(line.c_str(), "%" SCNu32 ",%" SCNu32 ",%d", &a, &b,
                    &label) != 3 ||
        (label != 0 && label != 1)) {
      return Status::InvalidArgument(path + ": bad label line " +
                                     std::to_string(i + 1));
    }
    labels.emplace_back(MakePairId(a, b), label == 1);
  }
  return labels;
}

Status SaveTopKLists(const std::vector<std::vector<ScoredPair>>& lists,
                     const std::string& path) {
  std::ostringstream out;
  out << "topk_lists " << lists.size() << "\n";
  for (size_t i = 0; i < lists.size(); ++i) {
    out << "list " << i << " " << lists[i].size() << "\n";
    for (const ScoredPair& entry : lists[i]) {
      char buffer[80];
      std::snprintf(buffer, sizeof(buffer), "%u,%u,%.17g\n",
                    PairRowA(entry.pair), PairRowB(entry.pair), entry.score);
      out << buffer;
    }
  }
  return WriteCheckpointAtomic(path, out.str());
}

Result<std::vector<std::vector<ScoredPair>>> LoadTopKLists(
    const std::string& path) {
  MC_ASSIGN_OR_RETURN(std::string payload, ReadCheckpointPayload(path));
  std::vector<std::string> lines = SplitLines(payload);
  if (lines.empty()) return Status::InvalidArgument(path + ": empty file");

  size_t num_lists = 0;
  if (std::sscanf(lines[0].c_str(), "topk_lists %zu", &num_lists) != 1) {
    return Status::InvalidArgument(path + ": bad header");
  }
  std::vector<std::vector<ScoredPair>> lists;
  lists.reserve(num_lists);
  size_t row = 1;
  for (size_t i = 0; i < num_lists; ++i) {
    if (row >= lines.size()) {
      return Status::InvalidArgument(path + ": truncated file");
    }
    size_t index = 0, count = 0;
    if (std::sscanf(lines[row].c_str(), "list %zu %zu", &index,
                    &count) != 2 ||
        index != i) {
      return Status::InvalidArgument(path + ": bad list header at line " +
                                     std::to_string(row + 1));
    }
    ++row;
    std::vector<ScoredPair> list;
    list.reserve(count);
    for (size_t e = 0; e < count; ++e, ++row) {
      if (row >= lines.size()) {
        return Status::InvalidArgument(path + ": truncated list " +
                                       std::to_string(i));
      }
      uint32_t a = 0, b = 0;
      double score = 0.0;
      if (std::sscanf(lines[row].c_str(), "%" SCNu32 ",%" SCNu32 ",%lg",
                      &a, &b, &score) != 3) {
        return Status::InvalidArgument(path + ": bad entry at line " +
                                       std::to_string(row + 1));
      }
      list.push_back(ScoredPair{MakePairId(a, b), score});
    }
    lists.push_back(std::move(list));
  }
  return lists;
}

uint32_t TopKListsCrc(const std::vector<std::vector<ScoredPair>>& lists) {
  uint32_t crc = 0;
  auto hash_u64 = [&crc](uint64_t value) {
    crc = Crc32(&value, sizeof(value), crc);
  };
  hash_u64(lists.size());
  for (const std::vector<ScoredPair>& list : lists) {
    hash_u64(list.size());
    for (const ScoredPair& entry : list) {
      hash_u64(entry.pair);
      // Score bits, not a textual rendering: bit-identity is the contract.
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(entry.score));
      std::memcpy(&bits, &entry.score, sizeof(bits));
      hash_u64(bits);
    }
  }
  return crc;
}

}  // namespace mc
