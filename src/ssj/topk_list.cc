#include "ssj/topk_list.h"

#include <algorithm>

#include "util/check.h"

namespace mc {

TopKList::TopKList(size_t k) : k_(k), positions_(k) {
  MC_CHECK_GT(k, 0u);
  heap_.reserve(k);
}

bool TopKList::WorseThan(const ScoredPair& x, const ScoredPair& y) const {
  if (x.score != y.score) return x.score < y.score;
  return x.pair > y.pair;  // Larger pair id loses ties.
}

void TopKList::SiftUp(size_t index) {
  while (index > 0) {
    size_t parent = (index - 1) / 2;
    if (!WorseThan(heap_[index], heap_[parent])) break;
    std::swap(heap_[index], heap_[parent]);
    *positions_.Find(heap_[index].pair) = index;
    *positions_.Find(heap_[parent].pair) = parent;
    index = parent;
  }
}

void TopKList::SiftDown(size_t index) {
  const size_t n = heap_.size();
  while (true) {
    size_t left = 2 * index + 1;
    size_t right = left + 1;
    size_t worst = index;
    if (left < n && WorseThan(heap_[left], heap_[worst])) worst = left;
    if (right < n && WorseThan(heap_[right], heap_[worst])) worst = right;
    if (worst == index) break;
    std::swap(heap_[index], heap_[worst]);
    *positions_.Find(heap_[index].pair) = index;
    *positions_.Find(heap_[worst].pair) = worst;
    index = worst;
  }
}

bool TopKList::Add(PairId pair, double score) {
  // A re-offered pair updates its stored score in place. The duplicate
  // check must run before any score-based rejection: a downward correction
  // of a kept pair's score would otherwise be fast-rejected, leaving the
  // stale (too-high) score in the list.
  if (size_t* found = positions_.Find(pair)) {
    size_t index = *found;
    if (heap_[index].score == score) return true;
    heap_[index].score = score;
    SiftUp(index);
    SiftDown(*positions_.Find(pair));
    return true;
  }
  if (full() && score < heap_[0].score) return false;
  ScoredPair entry{pair, score};
  if (heap_.size() < k_) {
    heap_.push_back(entry);
    positions_.Insert(pair, heap_.size() - 1);
    SiftUp(heap_.size() - 1);
    return true;
  }
  if (!WorseThan(heap_[0], entry)) return false;  // Not better than k-th.
  positions_.Erase(heap_[0].pair);
  heap_[0] = entry;
  positions_.Insert(pair, 0);
  SiftDown(0);
  return true;
}

void TopKList::MergeFrom(const std::vector<ScoredPair>& other) {
  for (const ScoredPair& entry : other) Add(entry.pair, entry.score);
}

std::vector<ScoredPair> TopKList::SortedDescending() const {
  std::vector<ScoredPair> result = heap_;
  std::sort(result.begin(), result.end(),
            [](const ScoredPair& x, const ScoredPair& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.pair < y.pair;
            });
  return result;
}

}  // namespace mc
