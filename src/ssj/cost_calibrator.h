#ifndef MATCHCATCHER_SSJ_COST_CALIBRATOR_H_
#define MATCHCATCHER_SSJ_COST_CALIBRATOR_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "ssj/join_planner.h"

namespace mc {

/// One executed join's observed effort: the engine's operation counters
/// (the same quantities the cost model prices) plus the measured wall time.
/// The joint executor reports one observation per completed config node.
struct CostObservation {
  uint64_t events = 0;
  uint64_t probes = 0;  // pruned + scored: every probe pays the bound check.
  uint64_t scored = 0;
  /// Mean token-span length of the joined view (the scoring-merge length
  /// scale, matching the planner's mean_len term).
  double mean_tokens = 0.0;
  /// Observed wall time of the join, in seconds.
  double seconds = 0.0;
};

/// Online cost-model calibration: refits the planner's per-operation
/// weights (CostWeights) from observed executions, so plan quality improves
/// as the process runs. The fit is a ridge-regularized least squares of
/// observed seconds against the four operation-count features
/// (events, probes, scored, scored x mean_tokens), biased toward the
/// shipped default weights and rescaled so the event weight stays pinned at
/// 1.0 (the model only needs to *rank* plans; it is scale-free).
///
/// Deterministic given the same observation sequence: observations
/// accumulate in arrival order into fixed-order normal equations solved by
/// Gaussian elimination — no wall-clock, no RNG — so two processes fed the
/// same joins in the same order hold the same weights after every Record.
/// (Wall times differ across machines, so *cross-machine* weights differ;
/// within a test, feeding synthetic observations makes the fit exactly
/// reproducible.) Refits run every kRefitPeriod observations; between
/// refits weights() returns the last accepted fit. Degenerate fits —
/// non-finite, non-positive, or wildly off the defaults (ill-conditioned
/// feature matrices happen when every observed join has the same shape) —
/// are rejected and the previous weights kept.
///
/// Thread-safe; the service shares one instance per process (Process())
/// unless MC_PLANNER_CALIBRATE=0 disables the feedback loop (the ablation:
/// planning then uses the default weights forever).
class CostModelCalibrator {
 public:
  CostModelCalibrator() = default;

  /// The per-process shared instance the service feeds and reads.
  static CostModelCalibrator& Process();

  /// Folds one executed join into the model; refits every kRefitPeriod
  /// observations. Observations with zero events or non-positive wall time
  /// carry no signal and are dropped.
  void Record(const CostObservation& observation);

  /// Current weight vector (the defaults until the first accepted refit).
  CostWeights weights() const;

  /// Observations accepted so far / refits that produced an accepted fit.
  size_t observations() const;
  size_t refits() const;

  /// Drops all state back to the defaults. Tests use this to isolate
  /// observation sequences; the service never resets.
  void Reset();

  /// Refit cadence, exposed for tests.
  static constexpr size_t kRefitPeriod = 16;

 private:
  void RefitLocked();

  mutable std::mutex mutex_;
  std::vector<CostObservation> window_;
  CostWeights weights_;
  size_t observations_ = 0;
  size_t refits_ = 0;
};

}  // namespace mc

#endif  // MATCHCATCHER_SSJ_COST_CALIBRATOR_H_
