#include "ssj/corpus.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "text/tokenize.h"
#include "util/check.h"

namespace mc {

namespace {

// Per-row (raw token id, attribute mask) entries of one table; ids are
// converted to global ranks once the dictionary is finalized.
using RowEntries = std::vector<std::pair<uint32_t, uint32_t>>;

std::vector<RowEntries> TokenizeTable(const Table& table,
                                      const std::vector<size_t>& columns,
                                      TokenDictionary& dictionary) {
  std::vector<RowEntries> rows(table.num_rows());
  std::unordered_map<TokenId, uint32_t> tuple_masks;
  std::vector<TokenId> distinct_ids;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    tuple_masks.clear();
    for (size_t bit = 0; bit < columns.size(); ++bit) {
      if (table.IsMissing(row, columns[bit])) continue;
      for (const std::string& token :
           DistinctWordTokens(table.Value(row, columns[bit]))) {
        TokenId id = dictionary.Intern(token);
        tuple_masks[id] |= (uint32_t{1} << bit);
      }
    }
    RowEntries& entries = rows[row];
    entries.reserve(tuple_masks.size());
    distinct_ids.clear();
    for (const auto& [id, mask] : tuple_masks) {
      entries.emplace_back(id, mask);
      distinct_ids.push_back(id);
    }
    dictionary.AddDocument(distinct_ids);
  }
  return rows;
}

// Converts raw token ids into global ranks, sorts each row by rank, and
// appends the rows to the CSR arenas.
void FlattenIntoArenas(const std::vector<RowEntries>& rows,
                       const TokenDictionary& dictionary,
                       std::vector<uint32_t>& ranks,
                       std::vector<uint32_t>& masks,
                       std::vector<uint64_t>& offsets) {
  offsets.reserve(rows.size() + 1);
  offsets.push_back(ranks.size());
  RowEntries entries;
  for (const RowEntries& row : rows) {
    entries.clear();
    entries.reserve(row.size());
    for (const auto& [id, mask] : row) {
      entries.emplace_back(dictionary.RankOf(id), mask);
    }
    std::sort(entries.begin(), entries.end());
    for (const auto& [rank, mask] : entries) {
      ranks.push_back(rank);
      masks.push_back(mask);
    }
    offsets.push_back(ranks.size());
  }
}

}  // namespace

SsjCorpus SsjCorpus::Build(const Table& table_a, const Table& table_b,
                           const std::vector<size_t>& columns) {
  MC_CHECK_GT(columns.size(), 0u);
  MC_CHECK_LE(columns.size(), 32u);
  SsjCorpus corpus;
  corpus.num_attributes_ = columns.size();
  std::vector<RowEntries> rows_a =
      TokenizeTable(table_a, columns, corpus.dictionary_);
  std::vector<RowEntries> rows_b =
      TokenizeTable(table_b, columns, corpus.dictionary_);
  corpus.dictionary_.FinalizeRanks();

  size_t total_entries = 0;
  for (const RowEntries& row : rows_a) total_entries += row.size();
  for (const RowEntries& row : rows_b) total_entries += row.size();
  corpus.ranks_.reserve(total_entries);
  corpus.masks_.reserve(total_entries);
  FlattenIntoArenas(rows_a, corpus.dictionary_, corpus.ranks_, corpus.masks_,
                    corpus.offsets_a_);
  FlattenIntoArenas(rows_b, corpus.dictionary_, corpus.ranks_, corpus.masks_,
                    corpus.offsets_b_);
  return corpus;
}

ConfigView SsjCorpus::MakeConfigView(ConfigMask config) const {
  ConfigView view;
  view.rank_limit_ = static_cast<uint32_t>(dictionary_.size());

  // Pass 1: per-row selected-token counts -> offsets (and the arena size).
  auto count_side = [&](const std::vector<uint64_t>& offsets,
                        std::vector<uint64_t>& out, uint64_t base) {
    size_t rows = ConfigView::NumRows(offsets);
    out.reserve(rows + 1);
    uint64_t position = base;
    out.push_back(position);
    for (size_t row = 0; row < rows; ++row) {
      for (uint64_t i = offsets[row]; i < offsets[row + 1]; ++i) {
        if (masks_[i] & config) ++position;
      }
      out.push_back(position);
    }
    return position;
  };
  uint64_t after_a = count_side(offsets_a_, view.offsets_a_, 0);
  uint64_t total = count_side(offsets_b_, view.offsets_b_, after_a);

  // Pass 2: fill the arena.
  view.arena_.resize(total);
  uint64_t write = 0;
  auto fill_side = [&](const std::vector<uint64_t>& offsets) {
    size_t rows = ConfigView::NumRows(offsets);
    for (size_t row = 0; row < rows; ++row) {
      for (uint64_t i = offsets[row]; i < offsets[row + 1]; ++i) {
        if (masks_[i] & config) view.arena_[write++] = ranks_[i];
      }
    }
  };
  fill_side(offsets_a_);
  fill_side(offsets_b_);
  MC_CHECK_EQ(write, total);

  size_t total_tuples = rows_a() + rows_b();
  view.average_tokens_ =
      total_tuples == 0
          ? 0.0
          : static_cast<double>(total) / static_cast<double>(total_tuples);
  return view;
}

size_t SsjCorpus::ConfigLength(const TupleTokens& tuple, ConfigMask config) {
  size_t length = 0;
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple.masks[i] & config) ++length;
  }
  return length;
}

size_t SsjCorpus::ConfigOverlap(const TupleTokens& a, const TupleTokens& b,
                                ConfigMask config) {
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a.ranks[i] == b.ranks[j]) {
      if ((a.masks[i] & config) && (b.masks[j] & config)) ++overlap;
      ++i;
      ++j;
    } else if (a.ranks[i] < b.ranks[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

}  // namespace mc
