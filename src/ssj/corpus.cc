#include "ssj/corpus.h"

#include <algorithm>
#include <unordered_map>

#include "text/tokenize.h"
#include "util/check.h"

namespace mc {

namespace {

// Tokenizes one table: per tuple, distinct tokens with attribute masks,
// still keyed by raw TokenId (ranks assigned later).
std::vector<TupleTokens> TokenizeTable(const Table& table,
                                       const std::vector<size_t>& columns,
                                       TokenDictionary& dictionary) {
  std::vector<TupleTokens> tuples(table.num_rows());
  std::unordered_map<TokenId, uint32_t> tuple_masks;
  std::vector<TokenId> distinct_ids;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    tuple_masks.clear();
    for (size_t bit = 0; bit < columns.size(); ++bit) {
      if (table.IsMissing(row, columns[bit])) continue;
      for (const std::string& token :
           DistinctWordTokens(table.Value(row, columns[bit]))) {
        TokenId id = dictionary.Intern(token);
        tuple_masks[id] |= (uint32_t{1} << bit);
      }
    }
    TupleTokens& tuple = tuples[row];
    tuple.ranks.reserve(tuple_masks.size());
    tuple.masks.reserve(tuple_masks.size());
    distinct_ids.clear();
    for (const auto& [id, mask] : tuple_masks) {
      tuple.ranks.push_back(id);  // Raw id; converted to rank later.
      tuple.masks.push_back(mask);
      distinct_ids.push_back(id);
    }
    dictionary.AddDocument(distinct_ids);
  }
  return tuples;
}

// Converts raw token ids into global ranks and sorts each tuple's entries.
void RankAndSort(std::vector<TupleTokens>& tuples,
                 const TokenDictionary& dictionary) {
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  for (TupleTokens& tuple : tuples) {
    entries.clear();
    entries.reserve(tuple.size());
    for (size_t i = 0; i < tuple.size(); ++i) {
      entries.emplace_back(dictionary.RankOf(tuple.ranks[i]),
                           tuple.masks[i]);
    }
    std::sort(entries.begin(), entries.end());
    for (size_t i = 0; i < entries.size(); ++i) {
      tuple.ranks[i] = entries[i].first;
      tuple.masks[i] = entries[i].second;
    }
  }
}

}  // namespace

SsjCorpus SsjCorpus::Build(const Table& table_a, const Table& table_b,
                           const std::vector<size_t>& columns) {
  MC_CHECK_GT(columns.size(), 0u);
  MC_CHECK_LE(columns.size(), 32u);
  SsjCorpus corpus;
  corpus.num_attributes_ = columns.size();
  corpus.tuples_a_ = TokenizeTable(table_a, columns, corpus.dictionary_);
  corpus.tuples_b_ = TokenizeTable(table_b, columns, corpus.dictionary_);
  corpus.dictionary_.FinalizeRanks();
  RankAndSort(corpus.tuples_a_, corpus.dictionary_);
  RankAndSort(corpus.tuples_b_, corpus.dictionary_);
  return corpus;
}

ConfigView SsjCorpus::MakeConfigView(ConfigMask config) const {
  ConfigView view;
  size_t total_tokens = 0;
  auto materialize = [&](const std::vector<TupleTokens>& tuples,
                         std::vector<std::vector<uint32_t>>& out) {
    out.resize(tuples.size());
    for (size_t row = 0; row < tuples.size(); ++row) {
      const TupleTokens& tuple = tuples[row];
      std::vector<uint32_t>& tokens = out[row];
      tokens.clear();
      for (size_t i = 0; i < tuple.size(); ++i) {
        if (tuple.masks[i] & config) tokens.push_back(tuple.ranks[i]);
      }
      total_tokens += tokens.size();
    }
  };
  materialize(tuples_a_, view.tokens_a);
  materialize(tuples_b_, view.tokens_b);
  size_t total_tuples = tuples_a_.size() + tuples_b_.size();
  view.average_tokens =
      total_tuples == 0
          ? 0.0
          : static_cast<double>(total_tokens) / static_cast<double>(total_tuples);
  return view;
}

size_t SsjCorpus::ConfigLength(const TupleTokens& tuple, ConfigMask config) {
  size_t length = 0;
  for (uint32_t mask : tuple.masks) {
    if (mask & config) ++length;
  }
  return length;
}

size_t SsjCorpus::ConfigOverlap(const TupleTokens& a, const TupleTokens& b,
                                ConfigMask config) {
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a.ranks[i] == b.ranks[j]) {
      if ((a.masks[i] & config) && (b.masks[j] & config)) ++overlap;
      ++i;
      ++j;
    } else if (a.ranks[i] < b.ranks[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

}  // namespace mc
