#include "ssj/corpus.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>

#include "mem/arena_stats.h"
#include "mem/node_local_arena.h"
#include "mem/topology.h"
#include "table/tokenized_table.h"
#include "text/similarity.h"
#include "text/tokenize.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mc {

ViewArenaPool::ViewArenaPool()
    : arena_(std::make_unique<mem::Arena>(
          mem::ArenaOptions{.tag = "view_scratch"})) {}

mem::ArenaVector<uint32_t> ViewArenaPool::Acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (buffers_.empty()) {
    return mem::ArenaVector<uint32_t>(
        mem::ArenaAllocator<uint32_t>(arena_.get()));
  }
  mem::ArenaVector<uint32_t> buffer = std::move(buffers_.back());
  buffers_.pop_back();
  return buffer;
}

void ViewArenaPool::Release(mem::ArenaVector<uint32_t> buffer) {
  buffer.clear();  // Keeps capacity; the next Acquire reuses it.
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::move(buffer));
}

size_t ViewArenaPool::idle_buffers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffers_.size();
}

ConfigView::~ConfigView() { ReleaseScratch(); }

void ConfigView::ReleaseScratch() {
  if (pool_ != nullptr) {
    pool_->Release(std::move(scratch_));
    pool_ = nullptr;
  }
}

ConfigView::ConfigView(ConfigView&& other) noexcept
    : spans_a_(std::move(other.spans_a_)),
      spans_b_(std::move(other.spans_b_)),
      scratch_(std::move(other.scratch_)),
      pool_(other.pool_),
      rank_limit_(other.rank_limit_),
      average_tokens_(other.average_tokens_),
      zero_copy_rows_(other.zero_copy_rows_),
      materialized_rows_(other.materialized_rows_) {
  other.pool_ = nullptr;
}

ConfigView& ConfigView::operator=(ConfigView&& other) noexcept {
  if (this != &other) {
    ReleaseScratch();
    spans_a_ = std::move(other.spans_a_);
    spans_b_ = std::move(other.spans_b_);
    scratch_ = std::move(other.scratch_);
    pool_ = other.pool_;
    rank_limit_ = other.rank_limit_;
    average_tokens_ = other.average_tokens_;
    zero_copy_rows_ = other.zero_copy_rows_;
    materialized_rows_ = other.materialized_rows_;
    other.pool_ = nullptr;
  }
  return *this;
}

namespace {

// Product of tokenizing one block of rows with a thread-local dictionary.
// Local token ids are assigned in first-occurrence order within the block;
// the sequential block-order merge then reproduces the global stream-order
// ids a single-threaded build would have assigned (a token's first global
// occurrence lies in the earliest block containing it), which is what makes
// the built corpus bit-identical for every thread count.
struct TokenizedBlock {
  size_t begin_row = 0;
  size_t num_rows = 0;
  std::vector<std::string> tokens;  // Local id -> token string (string path).
  // Local id -> plane token id (text-plane path; tokens stays empty). The
  // merge resolves strings through the plane's dictionary instead.
  std::vector<uint32_t> plane_ids;
  std::vector<uint32_t> local_df;   // Document frequency within the block.
  // Per-row (local id, attribute mask) entries, rows concatenated in order;
  // row r of the block owns row_sizes[r] consecutive entries.
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  std::vector<uint32_t> row_sizes;
  std::vector<TokenId> id_map;  // Local id -> global id (set by the merge).
  // Cancelled or fault-injected: rows stay empty, corpus marked truncated.
  bool dropped = false;
};

void TokenizeBlock(const Table& table, const std::vector<size_t>& columns,
                   TokenizedBlock& block) {
  std::unordered_map<std::string, uint32_t> local_ids;
  std::unordered_map<uint32_t, uint32_t> tuple_masks;  // local id -> mask.
  block.row_sizes.reserve(block.num_rows);
  for (size_t row = block.begin_row; row < block.begin_row + block.num_rows;
       ++row) {
    tuple_masks.clear();
    for (size_t bit = 0; bit < columns.size(); ++bit) {
      if (table.IsMissing(row, columns[bit])) continue;
      for (const std::string& token :
           DistinctWordTokens(table.Value(row, columns[bit]))) {
        auto [it, inserted] = local_ids.emplace(
            token, static_cast<uint32_t>(block.tokens.size()));
        if (inserted) {
          block.tokens.push_back(token);
          block.local_df.push_back(0);
        }
        tuple_masks[it->second] |= uint32_t{1} << bit;
      }
    }
    for (const auto& [id, mask] : tuple_masks) {
      block.entries.emplace_back(id, mask);
      ++block.local_df[id];
    }
    block.row_sizes.push_back(static_cast<uint32_t>(tuple_masks.size()));
  }
}

// Text-plane variant of TokenizeBlock: reads each cell's distinct token
// stream (interned ids, first-appearance order — exactly the
// DistinctWordTokens sequence) instead of re-tokenizing strings. Local ids
// are assigned by plane-id first occurrence over the same traversal order
// as the string path assigns them by token-string first occurrence, so the
// block-order merge produces an identical global dictionary and corpus.
void TokenizeBlockFromPlane(const TokenizedTable& plane, size_t side,
                            const std::vector<size_t>& columns,
                            TokenizedBlock& block) {
  std::unordered_map<uint32_t, uint32_t> local_ids;  // plane id -> local id.
  std::unordered_map<uint32_t, uint32_t> tuple_masks;  // local id -> mask.
  block.row_sizes.reserve(block.num_rows);
  for (size_t row = block.begin_row; row < block.begin_row + block.num_rows;
       ++row) {
    tuple_masks.clear();
    for (size_t bit = 0; bit < columns.size(); ++bit) {
      if (plane.missing(side, row, columns[bit])) continue;
      for (uint32_t entry : plane.TokenStream(side, row, columns[bit])) {
        if (entry & kTextRepeatBit) continue;
        auto [it, inserted] = local_ids.emplace(
            entry, static_cast<uint32_t>(block.plane_ids.size()));
        if (inserted) {
          block.plane_ids.push_back(entry);
          block.local_df.push_back(0);
        }
        tuple_masks[it->second] |= uint32_t{1} << bit;
      }
    }
    for (const auto& [id, mask] : tuple_masks) {
      block.entries.emplace_back(id, mask);
      ++block.local_df[id];
    }
    block.row_sizes.push_back(static_cast<uint32_t>(tuple_masks.size()));
  }
}

// Rank-sorted rows of one block plus their distinct-mask summaries, ready
// for sequential concatenation into the corpus CSR arenas.
struct FlattenedBlock {
  std::vector<uint32_t> row_masks;
  std::vector<uint32_t> row_mask_counts;
  std::vector<uint32_t> row_mask_sizes;  // Distinct masks per row.
};

}  // namespace

SsjCorpus SsjCorpus::Build(const Table& table_a, const Table& table_b,
                           const std::vector<size_t>& columns) {
  return Build(table_a, table_b, columns, CorpusBuildOptions{});
}

SsjCorpus SsjCorpus::Build(const Table& table_a, const Table& table_b,
                           const std::vector<size_t>& columns,
                           const CorpusBuildOptions& options,
                           CorpusBuildStats* stats) {
  MC_CHECK_GT(columns.size(), 0u);
  MC_CHECK_LE(columns.size(), 32u);
  MC_CHECK_GE(options.block_rows, 1u);
  SsjCorpus corpus;
  corpus.num_attributes_ = columns.size();

  // Tokenize-once fast path: when both tables share an attached text plane,
  // phase 1 projects its per-cell spans instead of re-tokenizing strings.
  const TokenizedTable* plane =
      options.use_text_plane ? SharedTextPlane(table_a, table_b) : nullptr;
  const size_t plane_side_a = table_a.text_plane_side();
  const size_t plane_side_b = table_b.text_plane_side();

  // Carve both tables into fixed-size row blocks (A blocks then B blocks).
  // The decomposition depends only on block_rows, never on the thread
  // count, so every thread count produces the same blocks — and therefore
  // the same corpus.
  std::vector<TokenizedBlock> blocks;
  size_t blocks_a = 0;
  auto plan_table = [&](const Table& table) {
    size_t planned = 0;
    for (size_t begin = 0; begin < table.num_rows();
         begin += options.block_rows) {
      TokenizedBlock block;
      block.begin_row = begin;
      block.num_rows = std::min(options.block_rows, table.num_rows() - begin);
      blocks.push_back(std::move(block));
      ++planned;
    }
    return planned;
  };
  blocks_a = plan_table(table_a);
  plan_table(table_b);

  const size_t threads =
      std::min(blocks.empty() ? size_t{1} : blocks.size(),
               options.num_threads != 0
                   ? options.num_threads
                   : std::max<size_t>(1, std::thread::hardware_concurrency()));
  corpus.build_stats_.blocks = blocks.size();
  corpus.build_stats_.threads = threads;

  // Phase 1 (parallel): tokenize blocks with thread-local dictionaries.
  // Cancellation and the corpus/build_block fault point are checked once
  // per block; a dropped block leaves its rows empty and marks the corpus
  // truncated (best-so-far contract, docs/robustness.md).
  Stopwatch tokenize_watch;
  auto tokenize_one = [&](TokenizedBlock& block, bool is_a) {
    if (options.run_context.Cancelled()) {
      block.dropped = true;
      return;
    }
    const FaultKind kind = MC_FAULT_POINT("corpus/build_block");
    if (kind == FaultKind::kThrow) {
      block.dropped = true;
      throw std::runtime_error("injected fault: corpus/build_block");
    }
    if (kind != FaultKind::kNone) {
      block.dropped = true;
      return;
    }
    if (plane != nullptr) {
      TokenizeBlockFromPlane(*plane, is_a ? plane_side_a : plane_side_b,
                             columns, block);
    } else {
      TokenizeBlock(is_a ? table_a : table_b, columns, block);
    }
  };
  if (threads == 1) {
    for (size_t i = 0; i < blocks.size(); ++i) {
      try {
        tokenize_one(blocks[i], i < blocks_a);
      } catch (const std::exception&) {
        // Injected fault: the block is already marked dropped.
      }
    }
  } else {
    ThreadPool pool(threads, "mc-corpus");
    for (size_t i = 0; i < blocks.size(); ++i) {
      pool.Submit([&, i] { tokenize_one(blocks[i], i < blocks_a); });
    }
    // A throwing block (injected fault) is already marked dropped; the
    // pool's captured Status carries no extra information.
    pool.Wait();
  }
  corpus.build_stats_.tokenize_seconds = tokenize_watch.ElapsedSeconds();

  // Phase 2 (sequential, block order): merge the thread-local dictionaries
  // into the global one. Interning block-by-block in local first-occurrence
  // order assigns exactly the ids a sequential pass over all rows would
  // have assigned; per-token document frequencies merge additively.
  Stopwatch merge_watch;
  for (TokenizedBlock& block : blocks) {
    if (block.dropped) {
      corpus.truncated_ = true;
      ++corpus.build_stats_.dropped_blocks;
      continue;
    }
    const size_t local_count =
        plane != nullptr ? block.plane_ids.size() : block.tokens.size();
    block.id_map.resize(local_count);
    for (size_t local = 0; local < local_count; ++local) {
      // Plane path: the token string is resolved from the plane's
      // dictionary (one interning per distinct block token, no
      // re-tokenization); same merge order, same global ids.
      block.id_map[local] = corpus.dictionary_.Intern(
          plane != nullptr
              ? plane->word_dictionary().TokenOf(block.plane_ids[local])
              : block.tokens[local]);
    }
    for (size_t local = 0; local < local_count; ++local) {
      corpus.dictionary_.AddDocumentFrequency(block.id_map[local],
                                              block.local_df[local]);
    }
  }
  corpus.dictionary_.FinalizeRanks();
  corpus.build_stats_.merge_seconds = merge_watch.ElapsedSeconds();

  // Memory plane: one arena backs every CSR vector of the corpus, charged
  // against the budget exactly what it reserves. The offset tables' sizes
  // are known now (row counts); a refused metadata reservation drops every
  // block up front — the corpus degrades to an all-empty truncated one with
  // heap-bound (tiny, uncharged) vectors, charge == reservation == 0.
  const size_t meta_rows_a = table_a.num_rows();
  const size_t meta_rows_b = table_b.num_rows();
  corpus.arena_ = std::make_unique<mem::Arena>(mem::ArenaOptions{
      .budget = options.memory_budget, .tag = "corpus"});
  const size_t meta_bytes =
      mem::Arena::AlignedSize((meta_rows_a + 1) * sizeof(uint64_t)) +
      mem::Arena::AlignedSize((meta_rows_b + 1) * sizeof(uint64_t)) +
      mem::Arena::AlignedSize((meta_rows_a + meta_rows_b + 1) *
                              sizeof(uint64_t));
  const bool arena_ok = corpus.arena_->Reserve(meta_bytes);
  if (arena_ok) {
    corpus.BindVectorsToArena(corpus.arena_.get());
  } else {
    corpus.arena_ = nullptr;
    for (TokenizedBlock& block : blocks) {
      if (!block.dropped) {
        block.dropped = true;
        ++corpus.build_stats_.dropped_blocks;
      }
    }
    corpus.truncated_ = true;
  }

  // Phase 3 (sequential): row offsets for both CSR arenas.
  Stopwatch flatten_watch;
  auto fill_offsets = [&](size_t first_block, size_t block_count,
                          mem::ArenaVector<uint64_t>& offsets,
                          uint64_t base) {
    size_t rows = 0;
    for (size_t b = first_block; b < first_block + block_count; ++b) {
      rows += blocks[b].num_rows;
    }
    offsets.clear();
    offsets.reserve(rows + 1);
    uint64_t position = base;
    offsets.push_back(position);
    for (size_t b = first_block; b < first_block + block_count; ++b) {
      const TokenizedBlock& block = blocks[b];
      for (size_t r = 0; r < block.num_rows; ++r) {
        position += block.dropped ? 0 : block.row_sizes[r];
        offsets.push_back(position);
      }
    }
    return position;
  };
  const size_t blocks_b = blocks.size() - blocks_a;
  uint64_t after_a = fill_offsets(0, blocks_a, corpus.offsets_a_, 0);
  uint64_t total = fill_offsets(blocks_a, blocks_b, corpus.offsets_b_,
                                after_a);

  // Memory admission: the rank/mask arenas dominate the corpus footprint.
  // Reserve them before allocating; a refusal drops every block — the
  // offsets recompute to an all-empty (truncated) corpus — instead of
  // blowing through the service's ceiling. Joins over it still terminate
  // with best-so-far (empty) lists, same contract as cancellation.
  const size_t cell_bytes =
      2 * mem::Arena::AlignedSize(static_cast<size_t>(total) *
                                  sizeof(uint32_t));
  if (arena_ok && total > 0 && !corpus.arena_->Reserve(cell_bytes)) {
    for (TokenizedBlock& block : blocks) {
      if (!block.dropped) {
        block.dropped = true;
        ++corpus.build_stats_.dropped_blocks;
      }
    }
    corpus.truncated_ = true;
    after_a = fill_offsets(0, blocks_a, corpus.offsets_a_, 0);
    total = fill_offsets(blocks_a, blocks_b, corpus.offsets_b_, after_a);
  }
  corpus.ranks_.resize(total);
  corpus.masks_.resize(total);

  // Phase 4 (parallel): convert local ids to global ranks, sort each row,
  // and write it into its precomputed arena slice; derive each row's
  // distinct-mask summary (in rank order — deterministic) on the way.
  std::vector<FlattenedBlock> flattened(blocks.size());
  auto flatten_one = [&](size_t block_index) {
    TokenizedBlock& block = blocks[block_index];
    if (block.dropped) return;
    FlattenedBlock& out = flattened[block_index];
    out.row_mask_sizes.reserve(block.num_rows);
    const bool is_a = block_index < blocks_a;
    const mem::ArenaVector<uint64_t>& offsets =
        is_a ? corpus.offsets_a_ : corpus.offsets_b_;
    std::vector<std::pair<uint32_t, uint32_t>> row_buf;
    size_t entry_pos = 0;
    for (size_t r = 0; r < block.num_rows; ++r) {
      const size_t n = block.row_sizes[r];
      row_buf.clear();
      row_buf.reserve(n);
      for (size_t e = entry_pos; e < entry_pos + n; ++e) {
        const auto& [local_id, mask] = block.entries[e];
        row_buf.emplace_back(
            corpus.dictionary_.RankOf(block.id_map[local_id]), mask);
      }
      entry_pos += n;
      std::sort(row_buf.begin(), row_buf.end());
      uint64_t write = offsets[block.begin_row + r];
      const size_t masks_before = out.row_masks.size();
      for (const auto& [rank, mask] : row_buf) {
        corpus.ranks_[write] = rank;
        corpus.masks_[write] = mask;
        ++write;
        // Distinct-mask summary: rows carry a handful of distinct masks,
        // so a linear scan beats any map.
        bool found = false;
        for (size_t m = masks_before; m < out.row_masks.size(); ++m) {
          if (out.row_masks[m] == mask) {
            ++out.row_mask_counts[m];
            found = true;
            break;
          }
        }
        if (!found) {
          out.row_masks.push_back(mask);
          out.row_mask_counts.push_back(1);
        }
      }
      out.row_mask_sizes.push_back(
          static_cast<uint32_t>(out.row_masks.size() - masks_before));
    }
  };
  if (threads == 1) {
    for (size_t i = 0; i < blocks.size(); ++i) flatten_one(i);
  } else {
    ThreadPool pool(threads, "mc-corpus");
    for (size_t i = 0; i < blocks.size(); ++i) {
      pool.Submit([&, i] { flatten_one(i); });
    }
    Status status = pool.Wait();
    MC_CHECK(status.ok()) << status.message();
  }

  // The distinct-mask summaries are sized only now (their totals come out
  // of the flatten). Reserve them before concatenating; a refusal at this
  // late stage still degrades to the all-empty truncated corpus — the
  // already-filled cells are abandoned in place (their chunk stays charged;
  // charge == reservation holds) but no offset references them.
  uint64_t planned_mask_total = 0;
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (blocks[b].dropped) continue;
    for (uint32_t sizes : flattened[b].row_mask_sizes) {
      planned_mask_total += sizes;
    }
  }
  const size_t mask_bytes =
      2 * mem::Arena::AlignedSize(static_cast<size_t>(planned_mask_total) *
                                  sizeof(uint32_t));
  if (arena_ok && planned_mask_total > 0 &&
      !corpus.arena_->Reserve(mask_bytes)) {
    for (TokenizedBlock& block : blocks) {
      if (!block.dropped) {
        block.dropped = true;
        ++corpus.build_stats_.dropped_blocks;
      }
    }
    corpus.truncated_ = true;
    after_a = fill_offsets(0, blocks_a, corpus.offsets_a_, 0);
    total = fill_offsets(blocks_a, blocks_b, corpus.offsets_b_, after_a);
    corpus.ranks_.resize(total);
    corpus.masks_.resize(total);
  }

  // Sequential concatenation of the per-block distinct-mask summaries into
  // the corpus CSR (cheap: a fraction of the token arena size).
  const size_t total_rows = corpus.rows_a() + corpus.rows_b();
  corpus.mask_offsets_.reserve(total_rows + 1);
  corpus.mask_offsets_.push_back(0);
  uint64_t mask_total = 0;
  for (size_t b = 0; b < blocks.size(); ++b) {
    const TokenizedBlock& block = blocks[b];
    const FlattenedBlock& out = flattened[b];
    for (size_t r = 0; r < block.num_rows; ++r) {
      mask_total += block.dropped ? 0 : out.row_mask_sizes[r];
      corpus.mask_offsets_.push_back(mask_total);
    }
  }
  corpus.row_masks_.reserve(mask_total);
  corpus.row_mask_counts_.reserve(mask_total);
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (blocks[b].dropped) continue;
    const FlattenedBlock& out = flattened[b];
    corpus.row_masks_.insert(corpus.row_masks_.end(), out.row_masks.begin(),
                             out.row_masks.end());
    corpus.row_mask_counts_.insert(corpus.row_mask_counts_.end(),
                                   out.row_mask_counts.begin(),
                                   out.row_mask_counts.end());
  }
  corpus.build_stats_.flatten_seconds = flatten_watch.ElapsedSeconds();

  if (stats != nullptr) *stats = corpus.build_stats_;
  return corpus;
}

std::optional<SsjCorpus> SsjCorpus::ApplyDelta(
    const SsjCorpus& base, const Table& table_a, const Table& table_b,
    const std::vector<size_t>& columns, const RowsDelta& delta,
    const CorpusBuildOptions& options) {
  if (base.truncated() || delta.side > 1 ||
      columns.size() != base.num_attributes_) {
    return std::nullopt;
  }
  const size_t side = delta.side;
  const Table& delta_table = side == 0 ? table_a : table_b;
  const Table& other_table = side == 0 ? table_b : table_a;
  const size_t base_side_rows = side == 0 ? base.rows_a() : base.rows_b();
  const size_t base_other_rows = side == 0 ? base.rows_b() : base.rows_a();
  const size_t new_side_rows = delta.base_rows + delta.appended;
  if (base_side_rows != delta.base_rows ||
      delta_table.num_rows() != new_side_rows ||
      other_table.num_rows() != base_other_rows) {
    return std::nullopt;
  }
  if (MC_FAULT_POINT("corpus/apply_delta") != FaultKind::kNone) {
    return std::nullopt;
  }

  SsjCorpus out;
  out.num_attributes_ = base.num_attributes_;
  out.dictionary_ = base.dictionary_;
  out.build_stats_ = base.build_stats_;
  // The patch is a new content generation: per-generation caches (planner
  // statistics) on the patched corpus start empty and re-stamp themselves,
  // so a patched corpus never plans from the base's skew/length stats.
  out.generation_ = base.generation_ + 1;

  // Retire each touched row's old entries: corpus entries are distinct per
  // row, so one df decrement per entry. Entries are ranks; recover ids
  // through the inverse of the base ranking.
  std::vector<TokenId> id_of_rank(base.dictionary_.size());
  for (TokenId id = 0; id < id_of_rank.size(); ++id) {
    id_of_rank[base.dictionary_.RankOf(id)] = id;
  }
  auto base_tuple = [&](size_t row) {
    return side == 0 ? base.tuple_a(row) : base.tuple_b(row);
  };
  for (uint32_t row : delta.touched) {
    const TupleTokens tuple = base_tuple(row);
    for (size_t e = 0; e < tuple.size(); ++e) {
      out.dictionary_.SubtractDocumentFrequency(id_of_rank[tuple.ranks[e]], 1);
    }
  }

  // Re-tokenize only the touched + appended rows from the mutated table,
  // interning directly into the published dictionary (new tokens take ids
  // past the base's; ranks are re-derived below). Mirrors TokenizeBlock.
  std::unordered_map<size_t, std::vector<std::pair<TokenId, uint32_t>>> fresh;
  std::unordered_map<TokenId, uint32_t> tuple_masks;  // Global id -> mask.
  auto tokenize_row = [&](size_t row) {
    tuple_masks.clear();
    for (size_t bit = 0; bit < columns.size(); ++bit) {
      if (delta_table.IsMissing(row, columns[bit])) continue;
      for (const std::string& token :
           DistinctWordTokens(delta_table.Value(row, columns[bit]))) {
        tuple_masks[out.dictionary_.Intern(token)] |= uint32_t{1} << bit;
      }
    }
    std::vector<std::pair<TokenId, uint32_t>>& entries = fresh[row];
    entries.reserve(tuple_masks.size());
    for (const auto& [id, mask] : tuple_masks) {
      entries.emplace_back(id, mask);
      out.dictionary_.AddDocumentFrequency(id, 1);
    }
  };
  for (uint32_t row : delta.touched) tokenize_row(row);
  for (size_t row = delta.base_rows; row < new_side_rows; ++row) {
    tokenize_row(row);
  }
  out.dictionary_.FinalizeRanks();
  out.dead_tokens_ = out.dictionary_.DeadTokenCount();

  // Old rank -> new rank (every base id survives; dead tokens rank last).
  std::vector<uint32_t> rank_map(base.dictionary_.size());
  for (TokenId id = 0; id < rank_map.size(); ++id) {
    rank_map[base.dictionary_.RankOf(id)] = out.dictionary_.RankOf(id);
  }

  // Arena sizes: untouched rows keep their entry counts, patched rows take
  // their fresh counts. A rows precede B rows in the arena, so the
  // delta-side totals shift the other side's offsets when side == 0.
  const size_t out_rows_a = side == 0 ? new_side_rows : base.rows_a();
  const size_t out_rows_b = side == 0 ? base.rows_b() : new_side_rows;
  auto row_entries = [&](size_t out_side, size_t row) -> size_t {
    if (out_side == side) {
      if (row >= delta.base_rows || delta.Touches(static_cast<uint32_t>(row))) {
        return fresh.at(row).size();
      }
      return base_tuple(row).size();
    }
    return (out_side == 0 ? base.tuple_a(row) : base.tuple_b(row)).size();
  };

  // Memory plane, mirroring Build: one arena backs the patched corpus's
  // CSR vectors; a refused reservation rejects the delta (base untouched)
  // instead of overshooting the budget. Metadata first — the offset-table
  // sizes are already known.
  out.arena_ = std::make_unique<mem::Arena>(mem::ArenaOptions{
      .budget = options.memory_budget, .tag = "corpus"});
  const size_t meta_bytes =
      mem::Arena::AlignedSize((out_rows_a + 1) * sizeof(uint64_t)) +
      mem::Arena::AlignedSize((out_rows_b + 1) * sizeof(uint64_t)) +
      mem::Arena::AlignedSize((out_rows_a + out_rows_b + 1) *
                              sizeof(uint64_t));
  if (!out.arena_->Reserve(meta_bytes)) {
    return std::nullopt;
  }
  out.BindVectorsToArena(out.arena_.get());

  uint64_t total = 0;
  out.offsets_a_.reserve(out_rows_a + 1);
  out.offsets_a_.push_back(0);
  for (size_t row = 0; row < out_rows_a; ++row) {
    total += row_entries(0, row);
    out.offsets_a_.push_back(total);
  }
  out.offsets_b_.reserve(out_rows_b + 1);
  out.offsets_b_.push_back(total);
  for (size_t row = 0; row < out_rows_b; ++row) {
    total += row_entries(1, row);
    out.offsets_b_.push_back(total);
  }

  // Memory admission before the big allocations, mirroring Build.
  const size_t cell_bytes =
      2 * mem::Arena::AlignedSize(static_cast<size_t>(total) *
                                  sizeof(uint32_t));
  if (total > 0 && !out.arena_->Reserve(cell_bytes)) {
    return std::nullopt;
  }
  out.ranks_.resize(total);
  out.masks_.resize(total);

  // Fill both arenas and the distinct-mask row summaries in one sequential
  // pass (row order A then B — the order Build writes). Untouched rows go
  // through rank_map and re-sort: document-frequency changes can reorder
  // live tokens, so the old sort order does not survive the patch. The
  // summary derivation matches Build's flatten phase (distinct masks in
  // rank order of the sorted row).
  const size_t total_rows = out_rows_a + out_rows_b;
  out.mask_offsets_.reserve(total_rows + 1);
  out.mask_offsets_.push_back(0);
  // The summary totals are only known after the fill, and open-ended
  // push_back growth on a bump arena would strand every doubling copy —
  // accumulate in transient heap buffers, then copy into the arena with an
  // exact reservation below.
  std::vector<uint32_t> tmp_row_masks;
  std::vector<uint32_t> tmp_row_mask_counts;
  std::vector<std::pair<uint32_t, uint32_t>> row_buf;
  auto write_row = [&](size_t out_side, size_t row, uint64_t write) {
    row_buf.clear();
    if (out_side == side &&
        (row >= delta.base_rows ||
         delta.Touches(static_cast<uint32_t>(row)))) {
      for (const auto& [id, mask] : fresh.at(row)) {
        row_buf.emplace_back(out.dictionary_.RankOf(id), mask);
      }
    } else {
      const TupleTokens tuple =
          out_side == 0 ? base.tuple_a(row) : base.tuple_b(row);
      for (size_t e = 0; e < tuple.size(); ++e) {
        row_buf.emplace_back(rank_map[tuple.ranks[e]], tuple.masks[e]);
      }
    }
    std::sort(row_buf.begin(), row_buf.end());
    const size_t masks_before = tmp_row_masks.size();
    for (const auto& [rank, mask] : row_buf) {
      out.ranks_[write] = rank;
      out.masks_[write] = mask;
      ++write;
      bool found = false;
      for (size_t m = masks_before; m < tmp_row_masks.size(); ++m) {
        if (tmp_row_masks[m] == mask) {
          ++tmp_row_mask_counts[m];
          found = true;
          break;
        }
      }
      if (!found) {
        tmp_row_masks.push_back(mask);
        tmp_row_mask_counts.push_back(1);
      }
    }
    out.mask_offsets_.push_back(tmp_row_masks.size());
  };
  for (size_t row = 0; row < out_rows_a; ++row) {
    write_row(0, row, out.offsets_a_[row]);
  }
  for (size_t row = 0; row < out_rows_b; ++row) {
    write_row(1, row, out.offsets_b_[row]);
  }

  // Exact-size copy of the summaries into the arena. A refusal at this
  // point still rejects the whole delta — `out` (and its arena charges)
  // unwinds on return.
  const size_t mask_bytes =
      2 * mem::Arena::AlignedSize(tmp_row_masks.size() * sizeof(uint32_t));
  if (!tmp_row_masks.empty() && !out.arena_->Reserve(mask_bytes)) {
    return std::nullopt;
  }
  out.row_masks_.reserve(tmp_row_masks.size());
  out.row_masks_.assign(tmp_row_masks.begin(), tmp_row_masks.end());
  out.row_mask_counts_.reserve(tmp_row_mask_counts.size());
  out.row_mask_counts_.assign(tmp_row_mask_counts.begin(),
                              tmp_row_mask_counts.end());
  return out;
}

void SsjCorpus::PlaceForTopology() const {
  const mem::SystemTopology& topo = mem::SystemTopology::Get();
  const size_t nodes = topo.num_nodes();
  if (nodes <= 1 || ranks_.empty()) return;
  if (topo.fake() || !mem::MemoryBindingAvailable()) {
    // The topology still routes decisions (node slices, shard windows) but
    // the bytes stay where first touch put them — a recorded fallback, not
    // an error.
    mem::ArenaStatsRegistry::Instance().RecordTopologyFallback();
    return;
  }
  const size_t na = rows_a();
  bool any_failed = false;
  auto bind_cells = [&](const uint32_t* base, uint64_t begin_entry,
                        uint64_t end_entry, int node) {
    if (end_entry <= begin_entry) return;
    void* begin =
        const_cast<uint32_t*>(base + static_cast<size_t>(begin_entry));
    const size_t bytes =
        static_cast<size_t>(end_entry - begin_entry) * sizeof(uint32_t);
    if (!mem::BindMemoryToNode(begin, bytes, node)) any_failed = true;
  };
  for (size_t n = 0; n < nodes; ++n) {
    const size_t lo = n * na / nodes;
    const size_t hi = (n + 1) * na / nodes;
    bind_cells(ranks_.data(), offsets_a_[lo], offsets_a_[hi],
               static_cast<int>(n));
    bind_cells(masks_.data(), offsets_a_[lo], offsets_a_[hi],
               static_cast<int>(n));
  }
  if (any_failed) {
    mem::ArenaStatsRegistry::Instance().RecordTopologyFallback();
  }
}

uint32_t SsjCorpus::ContentCrc() const {
  uint32_t crc = 0;
  auto hash_u64 = [&crc](uint64_t value) {
    crc = Crc32(&value, sizeof(value), crc);
  };
  hash_u64(num_attributes_);
  hash_u64(rows_a());
  hash_u64(rows_b());
  auto hash_side = [&](const mem::ArenaVector<uint64_t>& offsets) {
    for (size_t row = 0; row + 1 < offsets.size(); ++row) {
      const uint64_t begin = offsets[row];
      const uint64_t end = offsets[row + 1];
      hash_u64(end - begin);
      if (end > begin) {
        // Ranks are canonical (live ranks of a patched dictionary equal a
        // rebuild's); ids are not, and are deliberately excluded.
        crc = Crc32(ranks_.data() + begin, (end - begin) * sizeof(uint32_t),
                    crc);
        crc = Crc32(masks_.data() + begin, (end - begin) * sizeof(uint32_t),
                    crc);
      }
    }
  };
  hash_side(offsets_a_);
  hash_side(offsets_b_);
  return crc;
}

namespace {

// Smallest overlap whose similarity under `measure` reaches `threshold` for
// tuples of the given sizes (min + 1 when even full overlap falls short).
// Linear scan: the stats evaluate it four times per generation, so
// simplicity beats the analytic seed of the join engine's templated twin.
size_t RequiredOverlapForStats(SetMeasure measure, size_t size_a,
                               size_t size_b, double threshold) {
  const size_t max_overlap = std::min(size_a, size_b);
  for (size_t o = 0; o <= max_overlap; ++o) {
    if (SetSimilarityFromCounts(measure, size_a, size_b, o) >= threshold) {
      return o;
    }
  }
  return max_overlap + 1;
}

}  // namespace

const CorpusPlannerStats& SsjCorpus::PlannerStats() const {
  PlannerStatsCache& cache = *planner_stats_cache_;
  std::lock_guard<std::mutex> lock(cache.mutex);
  if (cache.valid && cache.stats.generation == generation_) {
    return cache.stats;
  }

  CorpusPlannerStats s;
  s.generation = generation_;
  s.dictionary_tokens = dictionary_.size();
  s.dead_tokens = dead_tokens_;

  const size_t na = rows_a();
  const size_t nb = rows_b();
  uint64_t total_a = 0;
  size_t q_counts[4] = {0, 0, 0, 0};
  for (size_t row = 0; row < na; ++row) {
    const size_t len = tuple_a(row).size();
    total_a += len;
    s.max_tokens_a = std::max(s.max_tokens_a, len);
    for (size_t q = 1; q <= 4; ++q) q_counts[q - 1] += (len >= q ? 1 : 0);
  }
  uint64_t total_b = 0;
  for (size_t row = 0; row < nb; ++row) {
    const size_t len = tuple_b(row).size();
    total_b += len;
    s.max_tokens_b = std::max(s.max_tokens_b, len);
  }
  s.mean_tokens_a =
      na == 0 ? 0.0 : static_cast<double>(total_a) / static_cast<double>(na);
  s.mean_tokens_b =
      nb == 0 ? 0.0 : static_cast<double>(total_b) / static_cast<double>(nb);
  for (size_t q = 1; q <= 4; ++q) {
    s.q_coverage_a[q - 1] =
        na == 0 ? 0.0
                : static_cast<double>(q_counts[q - 1]) / static_cast<double>(na);
  }

  // Frequency skew over the live dictionary: top-1% mass after sorting
  // document frequencies descending; tail mass counts df == 1 occurrences.
  std::vector<uint32_t> dfs;
  dfs.reserve(dictionary_.size());
  uint64_t occurrences = 0;
  uint64_t singleton_mass = 0;
  for (size_t id = 0; id < dictionary_.size(); ++id) {
    const uint32_t df = dictionary_.DocumentFrequency(static_cast<TokenId>(id));
    if (df == 0) continue;
    dfs.push_back(df);
    occurrences += df;
    if (df == 1) ++singleton_mass;
  }
  if (!dfs.empty() && occurrences > 0) {
    std::sort(dfs.begin(), dfs.end(), std::greater<uint32_t>());
    const size_t head = std::max<size_t>(1, dfs.size() / 100);
    uint64_t head_mass = 0;
    for (size_t i = 0; i < head; ++i) head_mass += dfs[i];
    s.head_mass =
        static_cast<double>(head_mass) / static_cast<double>(occurrences);
    s.tail_mass =
        static_cast<double>(singleton_mass) / static_cast<double>(occurrences);
  }

  const size_t mean_a = std::max<size_t>(
      1, static_cast<size_t>(std::llround(s.mean_tokens_a)));
  const size_t mean_b = std::max<size_t>(
      1, static_cast<size_t>(std::llround(s.mean_tokens_b)));
  const SetMeasure measures[4] = {
      SetMeasure::kJaccard, SetMeasure::kCosine, SetMeasure::kDice,
      SetMeasure::kOverlapCoefficient};
  const double shorter = static_cast<double>(std::min(mean_a, mean_b));
  for (size_t m = 0; m < 4; ++m) {
    s.required_overlap_frac[m] =
        static_cast<double>(
            RequiredOverlapForStats(measures[m], mean_a, mean_b, 0.8)) /
        shorter;
  }

  cache.stats = s;
  cache.valid = true;
  return cache.stats;
}

ConfigView SsjCorpus::MakeConfigView(ConfigMask config, ViewMode mode) const {
  ConfigView view;
  view.rank_limit_ = static_cast<uint32_t>(dictionary_.size());
  const size_t na = rows_a();
  const size_t nb = rows_b();
  view.spans_a_.resize(na);
  view.spans_b_.resize(nb);

  // Pass 1 — O(distinct masks) per row: classify each row as fully covered
  // (every distinct mask intersects the config: serve the whole row
  // zero-copy from the corpus arena) or filtered (count the surviving
  // tokens; materialize in pass 2). Note the per-mask test must be "each
  // mask intersects g", not "the AND of masks intersects g": masks {01,10}
  // are both covered by g=11 though their AND is 0.
  uint64_t selected_total = 0;
  uint64_t scratch_needed = 0;
  std::vector<std::pair<uint8_t, uint32_t>> filtered_rows;  // (side, row).
  auto classify_side = [&](uint8_t side, size_t rows,
                           const mem::ArenaVector<uint64_t>& offsets,
                           size_t global_base,
                           std::vector<TokenSpan>& spans) {
    for (size_t row = 0; row < rows; ++row) {
      const size_t g = global_base + row;
      bool covered = mode == ViewMode::kAuto;
      uint64_t selected = 0;
      for (uint64_t m = mask_offsets_[g]; m < mask_offsets_[g + 1]; ++m) {
        if (row_masks_[m] & config) {
          selected += row_mask_counts_[m];
        } else {
          covered = false;
        }
      }
      selected_total += selected;
      if (covered) {
        spans[row] = TokenSpan{ranks_.data() + offsets[row],
                               static_cast<uint32_t>(selected)};
        ++view.zero_copy_rows_;
      } else {
        spans[row].length = static_cast<uint32_t>(selected);
        scratch_needed += selected;
        filtered_rows.emplace_back(side, static_cast<uint32_t>(row));
        ++view.materialized_rows_;
      }
    }
  };
  classify_side(0, na, offsets_a_, 0, view.spans_a_);
  classify_side(1, nb, offsets_b_, na, view.spans_b_);

  // Pass 2 — materialize only the filtered rows, into a pooled scratch
  // buffer sized exactly up front (spans point into it; it must never
  // reallocate).
  if (!filtered_rows.empty()) {
    view.scratch_ = view_pool_->Acquire();
    view.pool_ = view_pool_.get();
    view.scratch_.resize(scratch_needed);
    uint64_t write = 0;
    for (const auto& [side, row] : filtered_rows) {
      const mem::ArenaVector<uint64_t>& offsets =
          side == 0 ? offsets_a_ : offsets_b_;
      TokenSpan& span = side == 0 ? view.spans_a_[row] : view.spans_b_[row];
      span.data = view.scratch_.data() + write;
      for (uint64_t i = offsets[row]; i < offsets[row + 1]; ++i) {
        if (masks_[i] & config) view.scratch_[write++] = ranks_[i];
      }
    }
    MC_CHECK_EQ(write, scratch_needed);
  }

  const size_t total_tuples = na + nb;
  view.average_tokens_ =
      total_tuples == 0 ? 0.0
                        : static_cast<double>(selected_total) /
                              static_cast<double>(total_tuples);
  return view;
}

size_t SsjCorpus::ConfigLength(const TupleTokens& tuple, ConfigMask config) {
  size_t length = 0;
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple.masks[i] & config) ++length;
  }
  return length;
}

size_t SsjCorpus::ConfigOverlap(const TupleTokens& a, const TupleTokens& b,
                                ConfigMask config) {
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a.ranks[i] == b.ranks[j]) {
      if ((a.masks[i] & config) && (b.masks[j] & config)) ++overlap;
      ++i;
      ++j;
    } else if (a.ranks[i] < b.ranks[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

}  // namespace mc
