#ifndef MATCHCATCHER_SSJ_TOPK_JOIN_H_
#define MATCHCATCHER_SSJ_TOPK_JOIN_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "blocking/candidate_set.h"
#include "ssj/corpus.h"
#include "ssj/topk_list.h"
#include "text/similarity.h"
#include "util/run_context.h"

namespace mc {

/// Computes the exact similarity score of a pair under the active config.
/// The default (DirectPairScorer) merges the pair's token arrays; the joint
/// executor substitutes a caching scorer that reuses overlap computations
/// across configs (paper §4.2).
class PairScorer {
 public:
  virtual ~PairScorer() = default;
  virtual double Score(RowId row_a, RowId row_b) = 0;

  /// Bounded scoring: may return false as soon as the pair provably scores
  /// strictly below `threshold` (the caller's current k-th score), in which
  /// case *score is unspecified — the join engine treats false exactly as
  /// "TopKList::Add would have rejected this pair". Pairs that reach or tie
  /// the threshold must be scored exactly (return true with the exact
  /// score), because a tie can still displace a larger pair id. The default
  /// always scores in full, so plain scorers stay correct; scorers over
  /// sorted token spans override this to abandon merges early, matching the
  /// engine's inline fast path.
  virtual bool ScoreAbove(RowId row_a, RowId row_b, double threshold,
                          double* score) {
    (void)threshold;
    *score = Score(row_a, row_b);
    return true;
  }

  /// Called when (row_a, row_b) entered the top-k list. Caching scorers use
  /// this to persist overlap structure for *kept* pairs only — the pairs
  /// that parent-to-child top-k reuse will re-score — rather than for every
  /// scored pair (millions of allocations on large joins).
  virtual void NoteKept(RowId row_a, RowId row_b) {
    (void)row_a;
    (void)row_b;
  }
};

/// Merge-scores from the config view's CSR token arena. Stateless per call:
/// safe to share across shard threads.
class DirectPairScorer : public PairScorer {
 public:
  DirectPairScorer(const ConfigView* view, SetMeasure measure)
      : view_(view), measure_(measure) {}

  double Score(RowId row_a, RowId row_b) override;

 private:
  const ConfigView* view_;
  SetMeasure measure_;
};

/// Lets a running join absorb a parent config's (re-adjusted) top-k list as
/// soon as it becomes available (paper §4.2: "When config g finishes, it
/// sends its top-k list to h. Config h merges ... then continues"). TryFetch
/// is polled periodically; it must return a value at most once.
class MergeSource {
 public:
  virtual ~MergeSource() = default;
  virtual std::optional<std::vector<ScoredPair>> TryFetch() = 0;
};

struct TopKJoinOptions {
  /// Number of pairs to retain.
  size_t k = 1000;
  /// Set similarity measure (Theorem 4.2: Jaccard, cosine, Dice, overlap).
  SetMeasure measure = SetMeasure::kJaccard;
  /// QJoin parameter: a pair's score is computed only once its discovered
  /// shared-prefix-token count reaches q. q = 1 reproduces TopKJoin [34]
  /// exactly; q > 1 is the paper's deferred-scoring heuristic.
  size_t q = 1;
  /// Pairs to skip — the blocker output C (killed-off search, Def. 2.2).
  const CandidateSet* exclude = nullptr;
  /// How often (in popped prefix-extension events) to poll merge_source.
  /// Cancellation (run_context) is checked at the same cadence.
  size_t merge_poll_period = 1024;
  /// Cooperative cancellation/deadline. When it fires mid-run the join
  /// stops at the next poll, returns its best-so-far list, and sets
  /// TopKJoinStats::truncated. The default inert context never fires and
  /// leaves the join byte-identical to an uncancellable run.
  RunContext run_context;
  /// Intra-config parallelism: number of table-A shards. 1 (the default)
  /// runs the sequential engine. With n > 1 the table-A event stream is
  /// split into n independent sub-joins (shard s owns rows with
  /// row % n == s, each joined against all of table B) executed on a
  /// ThreadPool of min(n, hardware_concurrency()) workers; the per-shard
  /// top-k lists are merged into the final list at the end. The merged
  /// result is *bit-identical* to the sequential run — every shard returns
  /// the canonical top-k of its sub-space under (score desc, pair asc), so
  /// the merge reproduces the canonical global list for any shard count
  /// and any thread scheduling. A custom `scorer` must tolerate concurrent
  /// Score/NoteKept calls when shards > 1 (DirectPairScorer does);
  /// `merge_source`, if any, is polled exactly once on the calling thread
  /// after the shard joins complete.
  size_t shards = 1;
  /// Hybrid threshold/top-k execution (TT-join style, driven by the cost
  /// planner of src/ssj/join_planner.h). < 0 (the default) is off: behavior
  /// is byte-identical to the classic engine. >= 0 runs a *pre-filter
  /// phase*: the event engine executes with pruning bound
  /// max(k-th score, prefilter_threshold), so pairs provably scoring below
  /// the threshold are skipped even while the list is still filling — the
  /// expensive low-bound warm-up is cut. If the phase ends with a full list
  /// whose k-th score reaches the threshold, its list is provably the
  /// canonical result (every skipped pair scores strictly below the final
  /// k-th score, so it cannot even tie into the list) and is returned
  /// as-is. Otherwise the threshold was too optimistic: the engine restarts
  /// without it, seeded with the phase's survivors (all exactly scored and
  /// q-eligible), which reproduces the non-hybrid result. Either way the
  /// output is *bit-identical* to the same options without the prefilter —
  /// the threshold moves work, never results (TopKJoinStats counts
  /// restarts). Ignored when a merge_source is supplied (its one-shot
  /// polling contract does not compose with the restart).
  double prefilter_threshold = -1.0;
};

/// Counters exposing where the join spends its effort; drives the QJoin-vs-
/// TopKJoin benchmarks. In sharded mode the counters are summed across
/// shards.
struct TopKJoinStats {
  size_t events_popped = 0;
  size_t pairs_discovered = 0;
  size_t pairs_scored = 0;
  /// Probes discarded by the positional upper bound before any pair-state
  /// bookkeeping (a pair may be counted once per shared token here).
  size_t pairs_pruned = 0;
  size_t tokens_indexed = 0;
  size_t merges_applied = 0;
  /// Hybrid prefilter phases whose threshold proved too optimistic (the
  /// engine restarted without it; see TopKJoinOptions::prefilter_threshold).
  /// Always 0 with the prefilter off. A well-chosen threshold — the
  /// planner's sampled k-th score is a lower bound on the true k-th — keeps
  /// this at 0.
  size_t prefilter_restarts = 0;
  /// True when the join was cancelled (run_context) before draining its
  /// event heap: the returned list is best-so-far, not the exact top-k.
  bool truncated = false;
};

/// Runs the prefix-event top-k string similarity join over a config view.
///
/// `seed` (optional) holds already-scored pairs — a parent config's top-k
/// list with scores re-adjusted to this config — which initialize the list.
/// The engine may later re-derive and re-score a seeded pair; scoring is
/// deterministic and TopKList::Add updates in place, so the list is
/// unchanged. `merge_source` (optional) is polled during the run for a late
/// parent list. `scorer` may be null (DirectPairScorer is used). `stats`
/// may be null.
///
/// With q = 1 the result is exact and *canonical*: the returned list is the
/// unique k-minimum of D = A x B - C under the total order
/// (score desc, pair asc) — equal-score ties at the boundary are broken by
/// pair id, so the list is a pure function of the searched pair space,
/// independent of discovery order, shard count, and thread scheduling
/// (BruteForceTopK returns the same list). With q > 1 the result is the
/// canonical top-k restricted to pairs sharing at least q tokens (the
/// deferred-scoring heuristic never scores a pair whose overlap is below
/// q), unioned with any seeded/merged pairs — pinned against brute force by
/// the SsjEquivalenceTest harness.
TopKList RunTopKJoin(const ConfigView& view, const TopKJoinOptions& options,
                     PairScorer* scorer = nullptr,
                     const std::vector<ScoredPair>* seed = nullptr,
                     MergeSource* merge_source = nullptr,
                     TopKJoinStats* stats = nullptr);

/// Runs a single table-A shard sub-join (shard `shard` of `shard_count`:
/// rows with row % shard_count == shard joined against all of table B) on
/// the calling thread and returns its canonical top-k list. This is the
/// building block the joint executor's two-level scheduler uses to run one
/// config's shards as independent pool tasks: merging the shard lists of
/// shards 0..shard_count-1 (in any order) through TopKList::Add yields
/// exactly RunTopKJoin's list for the same options/seed.
/// `options.shards` is ignored; `seed` is offered to the shard like
/// RunTopKJoin's seed; there is no merge source (the scheduler seeds
/// children directly from finished parents instead of polling).
///
/// `b_shard`/`b_shard_count` optionally decompose the table-B event stream
/// the same way (rows with row % b_shard_count == b_shard), making the call
/// a 2-D shard over (A-residue x B-residue). Production shard merges keep
/// the default (full B: every shard sees the whole pair space it owns); the
/// planner's sampling probes pass a real decomposition so a probe's event
/// cost shrinks on *both* sides — without it, every probe still walks
/// table B's full event stream and costs as much as a full join.
///
/// `a_begin`/`a_end` confine the shard to a contiguous window of table-A
/// rows before the residue split: the shard owns rows a_begin + shard,
/// a_begin + shard + shard_count, … below min(a_end, rows_a). The default
/// window is all of A. The topology-aware executor uses this to keep every
/// shard task inside the A-row slice owned by one NUMA node — and because
/// each call still returns the canonical top-k of the exact pair sub-space
/// it owns, merging any disjoint decomposition (windows × residues)
/// reproduces the sequential list bit for bit.
TopKList RunTopKJoinShard(const ConfigView& view,
                          const TopKJoinOptions& options, size_t shard,
                          size_t shard_count, PairScorer* scorer = nullptr,
                          const std::vector<ScoredPair>* seed = nullptr,
                          TopKJoinStats* stats = nullptr, size_t b_shard = 0,
                          size_t b_shard_count = 1, size_t a_begin = 0,
                          size_t a_end = static_cast<size_t>(-1));

/// Runs the threshold-join (TT-join) driver: a heap-free fixed-bound pass
/// that exploits `options.prefilter_threshold` (required: >= 0) end-to-end.
/// Table A's prefixes are truncated up front to the positions whose
/// extension cap reaches the threshold and indexed in one sequential sweep;
/// table B's truncated prefixes then stream against that index with the
/// positional and required-overlap bounds evaluated at the *fixed*
/// threshold — the required-overlap table is computed once per probe row
/// and never invalidated by k-th-score churn, and no event heap exists at
/// all (the classic engine's dominant bookkeeping). Discovered pairs are
/// scored with the early-abandon bound max(threshold, k-th score) and
/// collected into a top-k list.
///
/// The result contract matches the hybrid prefilter
/// (TopKJoinOptions::prefilter_threshold): if the pass ends with a full
/// list whose k-th score reaches the threshold, that list is provably the
/// canonical top-k (every skipped pair scores strictly below the
/// threshold, hence below the boundary — it cannot even tie). Otherwise
/// the threshold overshot the true k-th and the classic engine re-runs
/// without it, seeded with the pass's survivors (all exactly scored and
/// q-eligible). Either way the returned list is *bit-identical* to
/// RunTopKJoin with the same options and prefilter off
/// (TopKJoinStats::prefilter_restarts counts the repair path).
///
/// `options.shards` > 1 splits table B into that many contiguous row
/// blocks probed in parallel against the shared read-only table-A index
/// (each block returns the canonical top-k of its sub-space, so the merge
/// is canonical for any block count and scheduling); as with RunTopKJoin,
/// a custom `scorer` must tolerate concurrent calls when shards > 1.
/// There is no merge-source parameter — the fixed bound does not compose
/// with a late parent list (the classic engine handles that path).
TopKList RunThresholdJoin(const ConfigView& view,
                          const TopKJoinOptions& options,
                          PairScorer* scorer = nullptr,
                          const std::vector<ScoredPair>* seed = nullptr,
                          TopKJoinStats* stats = nullptr);

/// Number of prefix positions of a row of `len` tokens whose extension cap
/// under (measure, q) reaches `threshold` — the truncated prefix length the
/// threshold driver indexes and probes. Exposed for the planner's
/// mode-selection estimate (the truncated-token fraction) and for tests.
size_t ThresholdPrefixLength(SetMeasure measure, size_t len, size_t q,
                             double threshold);

/// Reference implementation: scores every non-excluded pair whose token
/// overlap is at least `min_overlap` (0 admits even disjoint pairs, the
/// historical behavior; pass q to mirror RunTopKJoin's q-restricted
/// semantics). Quadratic; used by tests and tiny inputs only.
TopKList BruteForceTopK(const ConfigView& view, size_t k, SetMeasure measure,
                        const CandidateSet* exclude = nullptr,
                        size_t min_overlap = 0);

/// Selects the QJoin q value empirically (paper §4.1): races candidate q
/// values, each computing a top-`probe_k` list, and returns the q with the
/// fastest run. The race executes on a ThreadPool of
/// min(max_q, hardware_concurrency()) workers so candidate runs do not
/// oversubscribe the machine and distort each other's timings. A run cut
/// short by `run_context` (deadline/cancellation) finishes early without
/// doing its full work, so truncated runs are disqualified; if every run
/// was truncated the conservative default q = 1 (exact TopKJoin semantics)
/// is returned.
size_t SelectQByRace(const ConfigView& view, SetMeasure measure,
                     const CandidateSet* exclude, size_t max_q = 4,
                     size_t probe_k = 50,
                     const RunContext& run_context = {});

}  // namespace mc

#endif  // MATCHCATCHER_SSJ_TOPK_JOIN_H_
