#include "ssj/cost_calibrator.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace mc {

namespace {

// Sliding observation window. Bounded so a long-lived service refits from
// recent workload shape, not its entire history; large enough that one
// refit period never evicts the observations it is about to fit.
constexpr size_t kMaxWindow = 1024;

// Ridge strength, relative to each feature's own scale (the regularizer is
// lambda * diag(X^T X), so the bias toward the defaults is unit-free).
constexpr double kRidge = 1e-2;

// Accepted fits must stay within this factor of the default weights in
// either direction. A feature matrix built from near-identical joins is
// rank-deficient; the ridge keeps the solve finite but the solution
// meaningless, and the clamp-reject keeps such fits from steering plans.
constexpr double kMaxDrift = 16.0;

}  // namespace

CostModelCalibrator& CostModelCalibrator::Process() {
  static CostModelCalibrator* instance = new CostModelCalibrator();
  return *instance;
}

void CostModelCalibrator::Record(const CostObservation& observation) {
  if (observation.events == 0 || !(observation.seconds > 0.0)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (window_.size() >= kMaxWindow) {
    window_.erase(window_.begin());
  }
  window_.push_back(observation);
  ++observations_;
  if (observations_ % kRefitPeriod == 0) RefitLocked();
}

CostWeights CostModelCalibrator::weights() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return weights_;
}

size_t CostModelCalibrator::observations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return observations_;
}

size_t CostModelCalibrator::refits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return refits_;
}

void CostModelCalibrator::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  window_.clear();
  weights_ = CostWeights{};
  observations_ = 0;
  refits_ = 0;
}

void CostModelCalibrator::RefitLocked() {
  // Features per observation, in the cost model's own terms:
  //   x = (events, probes, scored, scored * mean_tokens),  y = seconds.
  // Solve (X^T X + lambda D) w = X^T y + lambda D w0, where D is the
  // diagonal of X^T X (scale-free ridge) and w0 the default weights scaled
  // by the best scalar fit of the default model to the data — so with weak
  // evidence the fit collapses to "the defaults, in this machine's
  // seconds-per-op unit" instead of to zero. Accumulation order is the
  // window's arrival order and the elimination pivots are fixed, so the
  // solve is bit-deterministic for a given observation sequence.
  const CostWeights defaults;
  std::array<std::array<double, 4>, 4> xtx{};
  std::array<double, 4> xty{};
  double default_num = 0.0;
  double default_den = 0.0;
  for (const CostObservation& o : window_) {
    const std::array<double, 4> x = {
        static_cast<double>(o.events), static_cast<double>(o.probes),
        static_cast<double>(o.scored),
        static_cast<double>(o.scored) * o.mean_tokens};
    for (size_t i = 0; i < 4; ++i) {
      for (size_t j = 0; j < 4; ++j) xtx[i][j] += x[i] * x[j];
      xty[i] += x[i] * o.seconds;
    }
    const double predicted = x[0] * defaults.event + x[1] * defaults.probe +
                             x[2] * defaults.score_base +
                             x[3] * defaults.score_token;
    default_num += predicted * o.seconds;
    default_den += predicted * predicted;
  }
  if (!(default_den > 0.0)) return;
  const double unit = default_num / default_den;  // seconds per abstract op.
  if (!(unit > 0.0) || !std::isfinite(unit)) return;
  const std::array<double, 4> prior = {
      defaults.event * unit, defaults.probe * unit, defaults.score_base * unit,
      defaults.score_token * unit};
  std::array<std::array<double, 5>, 4> m{};
  for (size_t i = 0; i < 4; ++i) {
    const double ridge = kRidge * std::max(xtx[i][i], 1e-30);
    for (size_t j = 0; j < 4; ++j) m[i][j] = xtx[i][j];
    m[i][i] += ridge;
    m[i][4] = xty[i] + ridge * prior[i];
  }
  // Gaussian elimination with partial pivoting (deterministic: pivot choice
  // depends only on the accumulated values).
  for (size_t col = 0; col < 4; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < 4; ++row) {
      if (std::abs(m[row][col]) > std::abs(m[pivot][col])) pivot = row;
    }
    if (std::abs(m[pivot][col]) < 1e-30) return;
    std::swap(m[col], m[pivot]);
    for (size_t row = col + 1; row < 4; ++row) {
      const double factor = m[row][col] / m[col][col];
      for (size_t j = col; j < 5; ++j) m[row][j] -= factor * m[col][j];
    }
  }
  std::array<double, 4> solution{};
  for (size_t i = 4; i-- > 0;) {
    double value = m[i][4];
    for (size_t j = i + 1; j < 4; ++j) value -= m[i][j] * solution[j];
    solution[i] = value / m[i][i];
  }
  // Rescale so the event weight stays pinned at 1.0, then reject degenerate
  // fits: every component must be finite, positive, and within kMaxDrift of
  // its default.
  if (!(solution[0] > 0.0) || !std::isfinite(solution[0])) return;
  CostWeights fitted;
  fitted.event = 1.0;
  fitted.probe = solution[1] / solution[0];
  fitted.score_base = solution[2] / solution[0];
  fitted.score_token = solution[3] / solution[0];
  const std::array<std::array<double, 2>, 4> bounds = {{
      {fitted.event, defaults.event},
      {fitted.probe, defaults.probe},
      {fitted.score_base, defaults.score_base},
      {fitted.score_token, defaults.score_token},
  }};
  for (const auto& [value, reference] : bounds) {
    if (!std::isfinite(value) || value <= 0.0 ||
        value < reference / kMaxDrift || value > reference * kMaxDrift) {
      return;
    }
  }
  weights_ = fitted;
  ++refits_;
}

}  // namespace mc
