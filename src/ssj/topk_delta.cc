#include "ssj/topk_delta.h"

#include <algorithm>

#include "simd/kernels.h"
#include "ssj/topk_join.h"

namespace mc {

namespace {

// Canonical order: (score desc, pair asc). True when x sorts after y —
// i.e. x is the worse of the two.
bool CanonicallyAfter(const ScoredPair& x, const ScoredPair& y) {
  if (x.score != y.score) return x.score < y.score;
  return x.pair > y.pair;
}

simd::RankSpan AsRankSpan(TokenSpan span) {
  return simd::RankSpan{span.data, span.length};
}

}  // namespace

TopKList RepairTopKList(const ConfigView& view,
                        const std::vector<ScoredPair>& old_list,
                        const std::vector<RowId>& touched_a,
                        const std::vector<RowId>& touched_b,
                        const TopKRepairOptions& options,
                        const std::vector<ScoredPair>* seed,
                        TopKRepairStats* stats) {
  TopKRepairStats local_stats;
  TopKRepairStats& s = stats != nullptr ? *stats : local_stats;
  s = TopKRepairStats{};

  const size_t na = view.rows_a();
  const size_t nb = view.rows_b();
  // The join's candidate space: pairs sharing at least q tokens (a prefix
  // join can never discover a disjoint pair, so the floor is 1 even when
  // q's deferred-scoring heuristic is off).
  const size_t min_overlap = std::max<size_t>(options.q, 1);

  std::vector<uint8_t> touched_flag_a(na, 0);
  std::vector<uint8_t> touched_flag_b(nb, 0);
  for (RowId row : touched_a) {
    if (row < na) touched_flag_a[row] = 1;
  }
  for (RowId row : touched_b) {
    if (row < nb) touched_flag_b[row] = 1;
  }

  TopKList merged(options.k);

  // Source 3 first — the seed mirrors how RunTopKJoin initializes its list
  // from a parent (order does not matter: Add updates in place and the
  // canonical result is order-independent, but seeding early tightens the
  // k-th bound for nothing extra).
  if (seed != nullptr) merged.MergeFrom(*seed);

  // Source 1: old entries over untouched rows carry over verbatim — their
  // spans (and therefore scores) are unchanged. Entries that no longer
  // clear the q gate are dropped: they were only ever legitimate through
  // the seed, and the seed re-adds them when the parent still has them.
  for (const ScoredPair& entry : old_list) {
    const RowId row_a = PairRowA(entry.pair);
    const RowId row_b = PairRowB(entry.pair);
    if (row_a < na && touched_flag_a[row_a] != 0) continue;
    if (row_b < nb && touched_flag_b[row_b] != 0) continue;
    const TokenSpan span_a = view.a(row_a);
    const TokenSpan span_b = view.b(row_b);
    if (simd::OverlapCountCapped(span_a.data, span_a.length, span_b.data,
                                 span_b.length, min_overlap - 1) <
        min_overlap) {
      continue;
    }
    merged.Add(entry.pair, entry.score);
    ++s.pairs_carried;
  }

  // Source 2: every pair with a touched endpoint, overlap-counted in
  // batches (touched_a x B, then (A \ touched_a) x touched_b so the
  // touched-x-touched block is not scored twice). Deleted rows have empty
  // spans and fall out at the overlap gate.
  std::vector<size_t> overlaps(std::max(na, nb));
  std::vector<simd::RankSpan> b_spans;
  if (!touched_a.empty()) {
    b_spans.reserve(nb);
    for (size_t row = 0; row < nb; ++row) {
      b_spans.push_back(AsRankSpan(view.b(row)));
    }
  }
  auto offer = [&](RowId row_a, RowId row_b, size_t size_a, size_t size_b,
                   size_t overlap) {
    if (overlap < min_overlap) return;
    const PairId pair = MakePairId(row_a, row_b);
    if (options.exclude != nullptr && options.exclude->Contains(pair)) return;
    merged.Add(pair,
               SetSimilarityFromCounts(options.measure, size_a, size_b,
                                       overlap));
    ++s.pairs_rescored;
  };
  for (RowId row_a : touched_a) {
    if (row_a >= na) continue;
    const TokenSpan span_a = view.a(row_a);
    simd::OverlapMany(AsRankSpan(span_a), b_spans.data(), nb,
                      overlaps.data());
    s.pairs_examined += nb;
    for (size_t row_b = 0; row_b < nb; ++row_b) {
      offer(row_a, static_cast<RowId>(row_b), span_a.size(),
            b_spans[row_b].size(), overlaps[row_b]);
    }
  }
  if (!touched_b.empty()) {
    std::vector<simd::RankSpan> a_spans;
    a_spans.reserve(na);
    for (size_t row = 0; row < na; ++row) {
      a_spans.push_back(AsRankSpan(view.a(row)));
    }
    for (RowId row_b : touched_b) {
      if (row_b >= nb) continue;
      const TokenSpan span_b = view.b(row_b);
      simd::OverlapMany(AsRankSpan(span_b), a_spans.data(), na,
                        overlaps.data());
      s.pairs_examined += na;
      for (size_t row_a = 0; row_a < na; ++row_a) {
        if (touched_flag_a[row_a] != 0) continue;  // Covered above.
        offer(static_cast<RowId>(row_a), row_b, a_spans[row_a].size(),
              span_b.size(), overlaps[row_a]);
      }
    }
  }

  // Exactness: the only candidates the merge does not see are untouched
  // pairs absent from the old list — all strictly after the old k-th
  // boundary under (score desc, pair asc). They are provably shut out when
  // the old list was not full (the old candidate space was exhausted, so
  // there are no such pairs) or when the merged boundary is not-after the
  // old one.
  bool exact = old_list.size() < options.k;
  if (!exact && merged.full()) {
    const ScoredPair& old_boundary = old_list.back();
    ScoredPair new_boundary = merged.Entries().front();
    for (const ScoredPair& entry : merged.Entries()) {
      if (CanonicallyAfter(entry, new_boundary)) new_boundary = entry;
    }
    exact = !CanonicallyAfter(new_boundary, old_boundary);
  }
  if (exact) return merged;

  // Fallback: a full join over the patched view — exact by construction,
  // and seeded exactly as a from-scratch joint execution would seed it.
  s.fell_back = true;
  TopKJoinOptions join_options;
  join_options.k = options.k;
  join_options.measure = options.measure;
  join_options.q = options.q;
  join_options.exclude = options.exclude;
  join_options.run_context = options.run_context;
  return RunTopKJoin(view, join_options, nullptr, seed);
}

}  // namespace mc
