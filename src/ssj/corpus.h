#ifndef MATCHCATCHER_SSJ_CORPUS_H_
#define MATCHCATCHER_SSJ_CORPUS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "config/config.h"
#include "mem/arena.h"
#include "mem/arena_vector.h"
#include "table/table.h"
#include "table/table_delta.h"
#include "text/token_dictionary.h"
#include "util/memory_budget.h"
#include "util/run_context.h"

namespace mc {

/// Non-owning view of one tuple's sorted token ranks — a slice of a CSR
/// arena (see docs/algorithms.md §"CSR token arenas"). Cheap to copy; valid
/// as long as the owning SsjCorpus/ConfigView is alive.
struct TokenSpan {
  const uint32_t* data = nullptr;
  uint32_t length = 0;

  size_t size() const { return length; }
  bool empty() const { return length == 0; }
  uint32_t operator[](size_t i) const { return data[i]; }
  const uint32_t* begin() const { return data; }
  const uint32_t* end() const { return data + length; }
};

/// Token content of one tuple over the promising attributes: for each
/// distinct token, its global-order rank and the bitmask of promising
/// attributes in which it appears. From this, the token set of the tuple
/// under *any* config is derivable exactly — the key to reusing work across
/// configs (see DESIGN.md §5): a token belongs to config g iff mask ∧ g ≠ 0.
///
/// Non-owning view into the corpus's CSR arenas; `ranks[i]`/`masks[i]` are
/// parallel arrays of `length` entries, ranks sorted ascending (rarest token
/// first).
struct TupleTokens {
  const uint32_t* ranks = nullptr;
  const uint32_t* masks = nullptr;
  uint32_t length = 0;

  size_t size() const { return length; }
};

/// Pool of reusable scratch buffers backing the materialized rows of
/// ConfigViews. A view that needs scratch (some of its rows are not fully
/// covered by the config, see SsjCorpus::MakeConfigView) borrows one buffer
/// on construction and returns it — capacity intact — on destruction, so a
/// joint execution building one view per config reuses the same few
/// allocations instead of paying a fresh arena per config. Thread-safe.
///
/// Buffers draw their storage from a pool-owned scratch Arena (uncharged:
/// view scratch is transient working memory, not resident plane state), so
/// repeated view construction bump-allocates once per high-water mark
/// instead of round-tripping the heap.
class ViewArenaPool {
 public:
  ViewArenaPool();

  /// Returns a pooled buffer (empty but with its old capacity) or a fresh
  /// empty one bound to the pool's scratch arena.
  mem::ArenaVector<uint32_t> Acquire();

  /// Returns a buffer to the pool for reuse.
  void Release(mem::ArenaVector<uint32_t> buffer);

  /// Buffers currently parked in the pool (for tests).
  size_t idle_buffers() const;

  /// Scratch bytes reserved by the pool's arena (diagnostics).
  size_t ReservedBytes() const { return arena_->ReservedBytes(); }

 private:
  mutable std::mutex mutex_;
  // Address-stable behind unique_ptr: pooled buffers (and views holding
  // them) keep allocator pointers to it across pool moves.
  std::unique_ptr<mem::Arena> arena_;
  std::vector<mem::ArenaVector<uint32_t>> buffers_;
};

/// Per-config token view of both tables: for each tuple, the sorted rank
/// array of its tokens under the config. This is what the top-k joins
/// consume; string content never reappears past corpus construction.
///
/// Storage is a per-row span table. A row whose every token survives the
/// config's attribute filter ("fully covered") is served zero-copy: its
/// span points straight into the corpus's rank arena. Only rows the config
/// actually filters are materialized, into a scratch buffer borrowed from
/// the corpus's ViewArenaPool. Construction is O(rows) plus the tokens of
/// the filtered rows — not O(total tokens) — and the root config (full
/// mask) is always 100% zero-copy.
///
/// Move-only (the scratch buffer returns to the pool exactly once); spans
/// are valid while both this view and the corpus it came from are alive.
class ConfigView {
 public:
  ConfigView() = default;
  ~ConfigView();
  ConfigView(ConfigView&& other) noexcept;
  ConfigView& operator=(ConfigView&& other) noexcept;
  ConfigView(const ConfigView&) = delete;
  ConfigView& operator=(const ConfigView&) = delete;

  size_t rows_a() const { return spans_a_.size(); }
  size_t rows_b() const { return spans_b_.size(); }

  /// Token ranks of one row, sorted ascending.
  TokenSpan a(size_t row) const { return spans_a_[row]; }
  TokenSpan b(size_t row) const { return spans_b_[row]; }

  /// Exclusive upper bound on every token rank in the view (the dictionary
  /// size). Dense token-indexed structures (the join's inverted indexes)
  /// are sized by this.
  uint32_t rank_limit() const { return rank_limit_; }

  /// Average token count per tuple (both tables), used for the reuse
  /// trigger t = 20 of paper §4.2.
  double average_tokens() const { return average_tokens_; }

  /// Rows served straight from the corpus arena vs. copied into scratch
  /// (diagnostics for the zero-copy path; micro_joint reports the split).
  size_t zero_copy_rows() const { return zero_copy_rows_; }
  size_t materialized_rows() const { return materialized_rows_; }

 private:
  friend class SsjCorpus;

  void ReleaseScratch();

  std::vector<TokenSpan> spans_a_;
  std::vector<TokenSpan> spans_b_;
  // Materialized tokens of rows the config filters, drawn from the pool's
  // scratch arena. Spans of those rows point into this buffer; it must
  // never reallocate after construction (MakeConfigView sizes it exactly
  // up front).
  mem::ArenaVector<uint32_t> scratch_;
  ViewArenaPool* pool_ = nullptr;  // Where scratch_ returns on destruction.
  uint32_t rank_limit_ = 0;
  double average_tokens_ = 0.0;
  size_t zero_copy_rows_ = 0;
  size_t materialized_rows_ = 0;
};

/// Options for SsjCorpus::Build.
struct CorpusBuildOptions {
  /// Worker threads for the block-parallel tokenize/flatten phases;
  /// 0 = hardware concurrency. The built corpus is bit-identical for every
  /// thread count (per-block dictionaries merge in block order, which
  /// reproduces the sequential first-occurrence token ids exactly).
  size_t num_threads = 0;
  /// Rows per tokenize block. The block structure (not the thread count)
  /// determines the work decomposition, so it must stay fixed across runs
  /// being compared.
  size_t block_rows = 1024;
  /// When both tables carry the same attached, non-truncated TokenizedTable
  /// (table/tokenized_table.h), phase 1 projects per-cell token spans out of
  /// the plane instead of re-tokenizing cell strings. The built corpus is
  /// bit-identical to the string path (the plane's distinct streams are the
  /// DistinctWordTokens sequences); disable to force the legacy path.
  bool use_text_plane = true;
  /// Cooperative cancellation/deadline. When it fires mid-build, remaining
  /// blocks are skipped: their rows get empty token lists and the corpus is
  /// marked truncated() — joins over it return best-so-far results, and
  /// RunJointTopKJoins propagates the flag into JointResult::truncated.
  RunContext run_context;
  /// Optional service-wide memory ceiling. The CSR token arenas (the
  /// corpus's dominant footprint) are charged against it once their exact
  /// size is known, before allocation; a refused charge degrades the build
  /// to an empty truncated corpus instead of overshooting the ceiling. The
  /// budget must outlive the corpus (the charge releases on destruction).
  MemoryBudget* memory_budget = nullptr;
};

/// Cheap corpus-level statistics the join planner's cost model starts from
/// (src/ssj/join_planner.h): dictionary shape, per-side record-length
/// distribution, token-frequency skew, and required-overlap tightness.
/// Computed lazily, once per corpus *generation* (SsjCorpus::generation()),
/// and cached on the corpus — a patched corpus (ApplyDelta) carries a new
/// generation and therefore never serves stale skew/length stats.
struct CorpusPlannerStats {
  /// Generation of the corpus these stats describe (stale entries are
  /// recomputed, never served).
  uint64_t generation = 0;
  size_t dictionary_tokens = 0;  ///< Dictionary entries, live + dead.
  size_t dead_tokens = 0;        ///< Entries with document frequency 0.
  double mean_tokens_a = 0.0;    ///< Mean entries per table-A tuple.
  double mean_tokens_b = 0.0;
  size_t max_tokens_a = 0;  ///< Longest table-A tuple, in entries.
  size_t max_tokens_b = 0;
  /// Token-frequency skew: fraction of all document occurrences carried by
  /// the most frequent 1% of live tokens. Large values mean the postings of
  /// a few hot tokens dominate prefix-join probe cost.
  double head_mass = 0.0;
  /// Fraction of occurrences carried by tokens with document frequency 1 —
  /// tokens that can never produce a candidate pair on their own.
  double tail_mass = 0.0;
  /// Fraction of table-A tuples with at least q tokens, for q = 1..4
  /// (index q - 1). A q most rows cannot reach answers a much smaller
  /// query space; the planner caps its candidate q values by this.
  double q_coverage_a[4] = {0.0, 0.0, 0.0, 0.0};
  /// Required-overlap tightness per measure (SetMeasure order: Jaccard,
  /// cosine, Dice, overlap coefficient): the smallest overlap a pair of
  /// mean-length tuples needs to reach similarity 0.8, as a fraction of the
  /// shorter mean length. Near 1.0 the positional bound prunes aggressively.
  double required_overlap_frac[4] = {0.0, 0.0, 0.0, 0.0};
};

/// Where SsjCorpus::Build spent its time (surfaced by bench/micro_joint).
struct CorpusBuildStats {
  double tokenize_seconds = 0.0;  // Parallel per-block tokenization.
  double merge_seconds = 0.0;     // Block-order dictionary/frequency merge.
  double flatten_seconds = 0.0;   // Rank conversion + CSR arena fill.
  size_t blocks = 0;
  size_t dropped_blocks = 0;  // Cancelled or fault-injected blocks.
  size_t threads = 0;
};

/// Tokenized form of tables A and B over the promising attributes, with a
/// shared dictionary and global token order (ascending document frequency).
/// Tuple entries live in CSR arenas (parallel rank/mask buffers plus
/// per-side offsets).
class SsjCorpus {
 public:
  /// How MakeConfigView builds the view.
  enum class ViewMode {
    /// Zero-copy spans for fully covered rows, pooled scratch for the rest.
    kAuto,
    /// Copy every row into scratch — the pre-zero-copy cost model, kept for
    /// the micro_joint before/after ablation and as a fallback when callers
    /// want the view independent of the corpus arenas' cache footprint.
    kMaterialize,
  };

  /// Tokenizes both tables. `columns` lists the table columns that form the
  /// promising attributes, in bit order (at most 32).
  static SsjCorpus Build(const Table& table_a, const Table& table_b,
                         const std::vector<size_t>& columns);

  /// As above with explicit build options (parallelism, cancellation).
  /// `stats`, if non-null, receives the stage timings.
  static SsjCorpus Build(const Table& table_a, const Table& table_b,
                         const std::vector<size_t>& columns,
                         const CorpusBuildOptions& options,
                         CorpusBuildStats* stats = nullptr);

  /// Patches `base` with a row delta instead of rebuilding: only the
  /// touched and appended rows of the delta side are re-tokenized (their
  /// old entries retire by document-frequency subtraction; new tokens are
  /// interned past the published dictionary and retired tokens keep their
  /// ids with df 0, ranking after every live token), and both sides' CSR
  /// rank/mask arenas are rewritten through an old-rank -> new-rank map —
  /// an integer transform, no string work for untouched rows.
  ///
  /// `table_a`/`table_b` must already hold the post-delta contents and
  /// `columns` must be the column set the base corpus was built with. The
  /// result is content-identical to Build() on the mutated tables
  /// (ContentCrc matches bit for bit: live token ranks of a patched
  /// dictionary equal the rebuild's ranks exactly).
  ///
  /// Returns nullopt — base untouched — when the delta does not match the
  /// corpus's dimensions, the memory budget refuses the patched arenas, or
  /// the "corpus/apply_delta" fault point fires.
  static std::optional<SsjCorpus> ApplyDelta(
      const SsjCorpus& base, const Table& table_a, const Table& table_b,
      const std::vector<size_t>& columns, const RowsDelta& delta,
      const CorpusBuildOptions& options = {});

  size_t rows_a() const { return NumRows(offsets_a_); }
  size_t rows_b() const { return NumRows(offsets_b_); }

  /// Rank/mask entries of one tuple (view into the CSR arenas).
  TupleTokens tuple_a(size_t row) const { return Tuple(offsets_a_, row); }
  TupleTokens tuple_b(size_t row) const { return Tuple(offsets_b_, row); }

  const TokenDictionary& dictionary() const { return dictionary_; }
  size_t num_attributes() const { return num_attributes_; }

  /// True when the build was cut short (CorpusBuildOptions::run_context or
  /// an injected fault): some rows have empty token lists and any join over
  /// the corpus is best-so-far, not exact.
  bool truncated() const { return truncated_; }

  /// Stage timings of the build that produced this corpus.
  const CorpusBuildStats& build_stats() const { return build_stats_; }

  /// Content generation of this corpus: 1 for a fresh Build, and the base's
  /// generation + 1 for an ApplyDelta patch — mirroring the service layer's
  /// shared-plane generation numbers, so planner statistics (and any other
  /// per-corpus cache) can be stamped and invalidated per content version.
  uint64_t generation() const { return generation_; }

  /// Corpus-level planner statistics (see CorpusPlannerStats). Lazy: the
  /// first call computes and caches them; later calls are a stamp check.
  /// Thread-safe; the returned reference is valid for the corpus lifetime.
  /// The cache is keyed to generation(), so a patched corpus never plans
  /// from its base's stats.
  const CorpusPlannerStats& PlannerStats() const;

  /// Dictionary entries whose document frequency dropped to zero through
  /// deltas (always 0 on freshly built corpora). Dead tokens rank after all
  /// live tokens, so content equality with a rebuild holds; once they
  /// dominate, the service compacts by rebuilding from scratch.
  size_t dead_tokens() const { return dead_tokens_; }
  double dead_token_fraction() const {
    return dictionary_.size() == 0
               ? 0.0
               : static_cast<double>(dead_tokens_) /
                     static_cast<double>(dictionary_.size());
  }

  /// Canonical content checksum: attribute count, row counts, and every
  /// row's sorted (rank, mask) entries. Token ids are build-order artifacts
  /// and are excluded; ranks are canonical, so a patched corpus and a
  /// from-scratch rebuild of the same mutated tables produce the same CRC —
  /// the delta-equivalence contract.
  uint32_t ContentCrc() const;

  /// Resident footprint of the CSR arenas and offset tables — exactly the
  /// bytes the backing mem::Arena reserved, which is exactly what it
  /// charged the memory budget (charge == reservation by construction).
  /// The sizing signal for the service's shared-plane LRU cache. Excludes
  /// the dictionary's string storage (small next to the arenas).
  size_t MemoryBytes() const {
    return arena_ != nullptr ? arena_->ReservedBytes() : 0;
  }

  /// Topology-aware placement: binds each NUMA node's contiguous slice of
  /// the table-A CSR cells (rows n·rows_a/N .. (n+1)·rows_a/N of ranks_ and
  /// masks_) to that node, so the executor's node-routed shard tasks read
  /// their rows from local memory. Purely physical — never changes content
  /// or results. Best effort and idempotent: a single-node topology is a
  /// no-op, and a fake (MC_TOPOLOGY) or bind-less environment records a
  /// topology fallback instead of touching any syscall. Safe to call
  /// concurrently with readers (mbind with MPOL_MF_MOVE migrates pages
  /// without changing their contents).
  void PlaceForTopology() const;

  /// Builds the token view of a config. Thread-safe (concurrent calls from
  /// scheduler tasks share the scratch pool under its mutex). The returned
  /// view holds spans into this corpus: the corpus must outlive it.
  ConfigView MakeConfigView(ConfigMask config,
                            ViewMode mode = ViewMode::kAuto) const;

  /// Token count of one tuple under `config`.
  static size_t ConfigLength(const TupleTokens& tuple, ConfigMask config);

  /// Exact token overlap of a pair under `config`, computed by merging the
  /// tuples' full token arrays and filtering by mask (the slow path the
  /// overlap cache avoids).
  static size_t ConfigOverlap(const TupleTokens& a, const TupleTokens& b,
                              ConfigMask config);

 private:
  /// Re-binds every (empty) CSR vector to `arena` — called once by
  /// Build/ApplyDelta right after the metadata reservation succeeds.
  void BindVectorsToArena(mem::Arena* arena) {
    mem::BindToArena(ranks_, arena);
    mem::BindToArena(masks_, arena);
    mem::BindToArena(offsets_a_, arena);
    mem::BindToArena(offsets_b_, arena);
    mem::BindToArena(row_masks_, arena);
    mem::BindToArena(row_mask_counts_, arena);
    mem::BindToArena(mask_offsets_, arena);
  }

  static size_t NumRows(const mem::ArenaVector<uint64_t>& offsets) {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  TupleTokens Tuple(const mem::ArenaVector<uint64_t>& offsets,
                    size_t row) const {
    return TupleTokens{ranks_.data() + offsets[row],
                       masks_.data() + offsets[row],
                       static_cast<uint32_t>(offsets[row + 1] - offsets[row])};
  }

  // Backing store for every CSR vector below: one chunked arena, charged
  // against the build's MemoryBudget exactly ReservedBytes(). nullptr on a
  // default-constructed corpus or when the metadata reservation was refused
  // (the vectors then stay on the plain heap, empty, corpus truncated).
  // Owned behind unique_ptr so the corpus stays movable while allocators
  // keep a stable Arena address.
  std::unique_ptr<mem::Arena> arena_;
  // CSR arena: rows of A, then rows of B.
  mem::ArenaVector<uint32_t> ranks_;
  mem::ArenaVector<uint32_t> masks_;      // Parallel to ranks_.
  mem::ArenaVector<uint64_t> offsets_a_;  // rows_a + 1 entries.
  mem::ArenaVector<uint64_t> offsets_b_;  // rows_b + 1 entries.
  // Distinct attribute-mask summary per row (A rows then B rows), CSR:
  // row r's distinct masks are row_masks_[mask_offsets_[r]..[r+1]) with
  // parallel token counts in row_mask_counts_. A row is fully covered by
  // config g iff every one of its distinct masks intersects g — the O(#
  // distinct masks) test that makes zero-copy views O(rows). Rows carry a
  // handful of distinct masks (one per attribute combination that actually
  // occurs), so this is a fraction of the token arenas.
  mem::ArenaVector<uint32_t> row_masks_;
  mem::ArenaVector<uint32_t> row_mask_counts_;
  // rows_a + rows_b + 1 entries.
  mem::ArenaVector<uint64_t> mask_offsets_;
  TokenDictionary dictionary_;
  size_t num_attributes_ = 0;
  size_t dead_tokens_ = 0;
  uint64_t generation_ = 1;
  bool truncated_ = false;
  CorpusBuildStats build_stats_;
  // Lazily computed planner statistics, stamped with the generation they
  // describe. unique_ptr for the same reason as view_pool_: the cache owns
  // a mutex, and the indirection keeps SsjCorpus movable with the cache
  // address stable.
  struct PlannerStatsCache {
    std::mutex mutex;
    bool valid = false;
    CorpusPlannerStats stats;
  };
  std::unique_ptr<PlannerStatsCache> planner_stats_cache_ =
      std::make_unique<PlannerStatsCache>();
  // unique_ptr: keeps the pool's address stable across corpus moves (live
  // ConfigViews hold a pointer to it) and keeps SsjCorpus movable (the pool
  // owns a mutex).
  std::unique_ptr<ViewArenaPool> view_pool_ =
      std::make_unique<ViewArenaPool>();
};

}  // namespace mc

#endif  // MATCHCATCHER_SSJ_CORPUS_H_
