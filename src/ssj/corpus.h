#ifndef MATCHCATCHER_SSJ_CORPUS_H_
#define MATCHCATCHER_SSJ_CORPUS_H_

#include <cstdint>
#include <vector>

#include "config/config.h"
#include "table/table.h"
#include "text/token_dictionary.h"

namespace mc {

/// Token content of one tuple over the promising attributes: for each
/// distinct token, its global-order rank and the bitmask of promising
/// attributes in which it appears. From this, the token set of the tuple
/// under *any* config is derivable exactly — the key to reusing work across
/// configs (see DESIGN.md §5): a token belongs to config g iff mask ∧ g ≠ 0.
struct TupleTokens {
  /// Global-order ranks, sorted ascending (rarest token first).
  std::vector<uint32_t> ranks;
  /// masks[i] = attribute bitmask of ranks[i].
  std::vector<uint32_t> masks;

  size_t size() const { return ranks.size(); }
};

/// Per-config token view of both tables: for each tuple, the sorted rank
/// array of its tokens under the config. This is what the top-k joins
/// consume; string content never reappears past corpus construction.
struct ConfigView {
  std::vector<std::vector<uint32_t>> tokens_a;
  std::vector<std::vector<uint32_t>> tokens_b;

  /// Average token count per tuple (both tables), used for the reuse
  /// trigger t = 20 of paper §4.2.
  double average_tokens = 0.0;
};

/// Tokenized form of tables A and B over the promising attributes, with a
/// shared dictionary and global token order (ascending document frequency).
class SsjCorpus {
 public:
  /// Tokenizes both tables. `columns` lists the table columns that form the
  /// promising attributes, in bit order (at most 32).
  static SsjCorpus Build(const Table& table_a, const Table& table_b,
                         const std::vector<size_t>& columns);

  const std::vector<TupleTokens>& tuples_a() const { return tuples_a_; }
  const std::vector<TupleTokens>& tuples_b() const { return tuples_b_; }
  const TokenDictionary& dictionary() const { return dictionary_; }
  size_t num_attributes() const { return num_attributes_; }

  /// Materializes the token view of a config.
  ConfigView MakeConfigView(ConfigMask config) const;

  /// Token count of one tuple under `config`.
  static size_t ConfigLength(const TupleTokens& tuple, ConfigMask config);

  /// Exact token overlap of a pair under `config`, computed by merging the
  /// tuples' full token arrays and filtering by mask (the slow path the
  /// overlap cache avoids).
  static size_t ConfigOverlap(const TupleTokens& a, const TupleTokens& b,
                              ConfigMask config);

 private:
  std::vector<TupleTokens> tuples_a_;
  std::vector<TupleTokens> tuples_b_;
  TokenDictionary dictionary_;
  size_t num_attributes_ = 0;
};

}  // namespace mc

#endif  // MATCHCATCHER_SSJ_CORPUS_H_
