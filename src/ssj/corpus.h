#ifndef MATCHCATCHER_SSJ_CORPUS_H_
#define MATCHCATCHER_SSJ_CORPUS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "config/config.h"
#include "table/table.h"
#include "text/token_dictionary.h"

namespace mc {

/// Non-owning view of one tuple's sorted token ranks — a slice of a CSR
/// arena (see docs/algorithms.md §"CSR token arenas"). Cheap to copy; valid
/// as long as the owning SsjCorpus/ConfigView is alive.
struct TokenSpan {
  const uint32_t* data = nullptr;
  uint32_t length = 0;

  size_t size() const { return length; }
  bool empty() const { return length == 0; }
  uint32_t operator[](size_t i) const { return data[i]; }
  const uint32_t* begin() const { return data; }
  const uint32_t* end() const { return data + length; }
};

/// Token content of one tuple over the promising attributes: for each
/// distinct token, its global-order rank and the bitmask of promising
/// attributes in which it appears. From this, the token set of the tuple
/// under *any* config is derivable exactly — the key to reusing work across
/// configs (see DESIGN.md §5): a token belongs to config g iff mask ∧ g ≠ 0.
///
/// Non-owning view into the corpus's CSR arenas; `ranks[i]`/`masks[i]` are
/// parallel arrays of `length` entries, ranks sorted ascending (rarest token
/// first).
struct TupleTokens {
  const uint32_t* ranks = nullptr;
  const uint32_t* masks = nullptr;
  uint32_t length = 0;

  size_t size() const { return length; }
};

/// Per-config token view of both tables: for each tuple, the sorted rank
/// array of its tokens under the config. This is what the top-k joins
/// consume; string content never reappears past corpus construction.
///
/// Storage is a single contiguous CSR arena (rows of A, then rows of B)
/// plus per-side offset arrays — one allocation instead of one vector per
/// row, so the join's sequential sweeps stay in cache and a row access is
/// two loads with no pointer chase.
class ConfigView {
 public:
  ConfigView() = default;

  size_t rows_a() const { return NumRows(offsets_a_); }
  size_t rows_b() const { return NumRows(offsets_b_); }

  /// Token ranks of one row, sorted ascending.
  TokenSpan a(size_t row) const { return Span(offsets_a_, row); }
  TokenSpan b(size_t row) const { return Span(offsets_b_, row); }

  /// Exclusive upper bound on every token rank in the view (the dictionary
  /// size). Dense token-indexed structures (the join's inverted indexes)
  /// are sized by this.
  uint32_t rank_limit() const { return rank_limit_; }

  /// Average token count per tuple (both tables), used for the reuse
  /// trigger t = 20 of paper §4.2.
  double average_tokens() const { return average_tokens_; }

 private:
  friend class SsjCorpus;

  static size_t NumRows(const std::vector<uint64_t>& offsets) {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  TokenSpan Span(const std::vector<uint64_t>& offsets, size_t row) const {
    return TokenSpan{arena_.data() + offsets[row],
                     static_cast<uint32_t>(offsets[row + 1] - offsets[row])};
  }

  std::vector<uint32_t> arena_;
  std::vector<uint64_t> offsets_a_;  // rows_a + 1 entries into arena_.
  std::vector<uint64_t> offsets_b_;  // rows_b + 1 entries into arena_.
  uint32_t rank_limit_ = 0;
  double average_tokens_ = 0.0;
};

/// Tokenized form of tables A and B over the promising attributes, with a
/// shared dictionary and global token order (ascending document frequency).
/// Tuple entries live in CSR arenas (parallel rank/mask buffers plus
/// per-side offsets), mirroring ConfigView's layout.
class SsjCorpus {
 public:
  /// Tokenizes both tables. `columns` lists the table columns that form the
  /// promising attributes, in bit order (at most 32).
  static SsjCorpus Build(const Table& table_a, const Table& table_b,
                         const std::vector<size_t>& columns);

  size_t rows_a() const { return ConfigView::NumRows(offsets_a_); }
  size_t rows_b() const { return ConfigView::NumRows(offsets_b_); }

  /// Rank/mask entries of one tuple (view into the CSR arenas).
  TupleTokens tuple_a(size_t row) const { return Tuple(offsets_a_, row); }
  TupleTokens tuple_b(size_t row) const { return Tuple(offsets_b_, row); }

  const TokenDictionary& dictionary() const { return dictionary_; }
  size_t num_attributes() const { return num_attributes_; }

  /// Materializes the token view of a config.
  ConfigView MakeConfigView(ConfigMask config) const;

  /// Token count of one tuple under `config`.
  static size_t ConfigLength(const TupleTokens& tuple, ConfigMask config);

  /// Exact token overlap of a pair under `config`, computed by merging the
  /// tuples' full token arrays and filtering by mask (the slow path the
  /// overlap cache avoids).
  static size_t ConfigOverlap(const TupleTokens& a, const TupleTokens& b,
                              ConfigMask config);

 private:
  TupleTokens Tuple(const std::vector<uint64_t>& offsets, size_t row) const {
    return TupleTokens{ranks_.data() + offsets[row],
                       masks_.data() + offsets[row],
                       static_cast<uint32_t>(offsets[row + 1] - offsets[row])};
  }

  std::vector<uint32_t> ranks_;      // CSR arena: rows of A, then rows of B.
  std::vector<uint32_t> masks_;      // Parallel to ranks_.
  std::vector<uint64_t> offsets_a_;  // rows_a + 1 entries.
  std::vector<uint64_t> offsets_b_;  // rows_b + 1 entries.
  TokenDictionary dictionary_;
  size_t num_attributes_ = 0;
};

}  // namespace mc

#endif  // MATCHCATCHER_SSJ_CORPUS_H_
