#ifndef MATCHCATCHER_SSJ_JOIN_PLANNER_H_
#define MATCHCATCHER_SSJ_JOIN_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "blocking/candidate_set.h"
#include "ssj/corpus.h"
#include "text/similarity.h"
#include "util/run_context.h"

namespace mc {

/// How a planned join executes. Every mode returns a bit-identical list —
/// the mode moves work, never results (TopKJoinOptions::prefilter_threshold
/// and RunThresholdJoin contracts).
enum class JoinExecMode {
  /// Classic prefix-event top-k engine (RunTopKJoin, no prefilter).
  kTopK,
  /// Classic engine with every pruning bound tightened to
  /// max(k-th, sampled threshold); restarts if the threshold overshot.
  kHybridPrefilter,
  /// Heap-free threshold-join driver (RunThresholdJoin): prefixes truncated
  /// at the sampled threshold up front, required-overlap bounds fixed for
  /// the whole pass; restarts into the classic engine if the threshold
  /// overshot.
  kThreshold,
};

/// Short stable name for a JoinExecMode ("topk", "hybrid", "threshold") —
/// used by --explain-plans and the bench records.
const char* JoinExecModeName(JoinExecMode mode);

/// Per-operation weights of the planner's cost model, in abstract units.
/// The defaults are the hand-tuned constants the planner shipped with; the
/// online calibrator (ssj/cost_calibrator.h) refits them from observed
/// executions. They need only rank plans correctly, not predict wall time,
/// and the event weight is pinned to 1.0 (the model is scale-free).
struct CostWeights {
  /// Heap pop + index append, per prefix-extension event.
  double event = 1.0;
  /// Positional bound + short prefix merge, per probe.
  double probe = 0.5;
  /// Fixed part of a full-span scoring merge.
  double score_base = 4.0;
  /// Per-token part of a scoring merge (multiplied by the mean length).
  double score_token = 0.25;
};

/// Inputs to the cost-based join planner (ShallowBlocker-style: sampled
/// cost model + hybrid threshold/top-k execution).
struct PlannerOptions {
  /// Top-k size of the join being planned.
  size_t k = 1000;
  SetMeasure measure = SetMeasure::kJaccard;
  /// Blocker output C — the same exclusion the planned join will run with,
  /// so sampled counts see the same pair space.
  const CandidateSet* exclude = nullptr;
  /// Largest candidate q (the race's historical cap). The planner further
  /// caps candidates by the corpus length distribution: a q most table-A
  /// rows cannot reach answers a much smaller query space and would win
  /// the cost comparison by doing less useful work.
  size_t max_q = 4;
  /// Systematic sample rate N: the probe joins run over the table-A rows
  /// congruent to (seed mod N). 0 = auto, sized so the sample holds a few
  /// hundred rows.
  size_t sample_rate = 0;
  /// Sample-offset seed. 0 reads MC_PLANNER_SEED from the environment
  /// (fixed default when unset). Plans are deterministic for a fixed seed:
  /// the cost model compares extrapolated *operation counts* under fixed
  /// weights, never wall-clock timings.
  uint64_t seed = 0;
  /// Upper bound for the shard-count hint; 0 = hardware concurrency.
  size_t max_shards = 0;
  /// Allow the hybrid threshold/top-k prefilter decision. Off forces
  /// JoinPlan::prefilter_threshold < 0 (classic execution); the join output
  /// is identical either way.
  bool enable_hybrid = true;
  /// Allow promoting a hybrid-eligible plan to the threshold-join driver
  /// (JoinExecMode::kThreshold) when the truncated-prefix estimate says the
  /// fixed bound removes enough work. Off caps the plan at
  /// kHybridPrefilter; the join output is identical either way.
  bool enable_threshold = true;
  /// Cost-model weights. Defaults to the hand-tuned constants; the service
  /// substitutes the online calibrator's current fit (MC_PLANNER_CALIBRATE).
  /// The fit steers only output-neutral plan knobs (the shard hint): the q
  /// ladder is always priced with the pinned defaults, because q changes
  /// which pairs are eligible at all and a fit that drifts with observed
  /// wall times must never change the joined bytes.
  CostWeights weights;
  /// Cooperative cancellation for the sampling probes. A cancelled planner
  /// returns the conservative plan (q = 1, one shard, no hybrid) with
  /// JoinPlan::truncated set, mirroring the race's all-truncated fallback.
  RunContext run_context;
};

/// The planner's decision plus the evidence behind it. Only q,
/// prefilter_threshold, and shards change *how* the join runs; none of them
/// change what any given plan returns (bit-identity contract of
/// TopKJoinOptions::prefilter_threshold and the canonical shard merge).
struct JoinPlan {
  /// Chosen QJoin deferred-scoring parameter (argmin of the cost model).
  size_t q = 1;
  /// Shard-count hint for the root config, derived from the extrapolated
  /// event volume (more shards than events can fill only add B-side
  /// re-walk overhead).
  size_t shards = 1;
  /// Hybrid prefilter threshold for TopKJoinOptions::prefilter_threshold;
  /// < 0 when the hybrid mode is off for this plan.
  double prefilter_threshold = -1.0;
  /// True when the sampled k-th estimate stabilized across nested samples
  /// and seeds the hybrid threshold pass (prefilter_threshold then holds
  /// min(sampled_kth, half_sample_kth); an overshoot of the true k-th is
  /// absorbed by the engine's restart path, never the output).
  bool hybrid = false;
  /// Execution mode the plan selects. kHybridPrefilter and kThreshold imply
  /// hybrid (a stabilized sampled k-th seeds prefilter_threshold); the
  /// threshold driver is chosen when the truncated-prefix token fraction
  /// says the fixed bound strips enough of the event stream to beat the
  /// heap-driven prefilter pass.
  JoinExecMode mode = JoinExecMode::kTopK;

  // --- evidence / diagnostics ---
  /// Fraction of both tables' tokens that survive prefix truncation at the
  /// hybrid threshold (1.0 when no hybrid threshold was seeded) — the
  /// evidence behind the kThreshold promotion.
  double threshold_prefix_fraction = 1.0;
  /// Systematic sample rate actually used and the rows it selected.
  size_t sample_rate = 0;
  size_t sample_rows = 0;
  /// Rank-scaled k-th estimates at the chosen q: the ceil(k/N)-th score of
  /// the 1-in-N sample probe and of the nested half sample (-1 when the
  /// probe could not fill that many pairs).
  double sampled_kth = -1.0;
  double half_sample_kth = -1.0;
  /// Generation of the corpus statistics the plan was computed from.
  uint64_t stats_generation = 0;
  /// Resolved seed (options, environment, or default).
  uint64_t seed = 0;
  /// Modeled cost per candidate q (index q - 1; trailing candidates the
  /// length-coverage cap excluded are absent).
  std::vector<double> cost_per_q;
  /// Extrapolated full-run volumes at the chosen q.
  uint64_t est_events = 0;
  uint64_t est_scored = 0;
  /// True when sampling was cut short (run_context): the plan is the
  /// conservative default, not a modeled decision.
  bool truncated = false;
};

/// Resolves the planner seed: MC_PLANNER_SEED when set and parseable, else
/// a fixed default. Exposed for tests and tools.
uint64_t PlannerSeedFromEnv();

/// Plans the top-k join of `view` (a view of `corpus`): collects the
/// per-generation corpus statistics, runs one seeded systematic-sample
/// probe join per candidate q — the probe *is* a shard sub-join, so its
/// engine, bounds, and counters match real execution exactly — extrapolates
/// the operation counts to the full table, and picks the cheapest plan
/// under fixed per-operation weights. Deterministic for a fixed seed on a
/// fixed corpus generation. See docs/algorithms.md §"Cost-based join
/// planner".
JoinPlan PlanTopKJoin(const SsjCorpus& corpus, const ConfigView& view,
                      const PlannerOptions& options);

}  // namespace mc

#endif  // MATCHCATCHER_SSJ_JOIN_PLANNER_H_
