#include "ssj/topk_join.h"

#include <algorithm>
#include <queue>
#include <thread>
#include <unordered_map>

#include "util/check.h"
#include "util/flat_hash.h"
#include "util/stopwatch.h"

namespace mc {

double DirectPairScorer::Score(RowId row_a, RowId row_b) {
  const std::vector<uint32_t>& a = view_->tokens_a[row_a];
  const std::vector<uint32_t>& b = view_->tokens_b[row_b];
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return SetSimilarityFromCounts(measure_, a.size(), b.size(), overlap);
}

namespace {

// One pending prefix extension: string `row` on side `side` is about to
// reveal the token at `position`; any *new* pair formed through that token
// scores at most `cap`.
struct Event {
  double cap;
  uint8_t side;  // 0 = table A, 1 = table B.
  RowId row;
  uint32_t position;
};

struct EventLess {
  bool operator()(const Event& x, const Event& y) const {
    if (x.cap != y.cap) return x.cap < y.cap;
    if (x.side != y.side) return x.side > y.side;
    if (x.row != y.row) return x.row > y.row;
    return x.position > y.position;
  }
};

constexpr uint32_t kScored = 0xFFFFFFFFu;

}  // namespace

TopKList RunTopKJoin(const ConfigView& view, const TopKJoinOptions& options,
                     PairScorer* scorer, const std::vector<ScoredPair>* seed,
                     MergeSource* merge_source, TopKJoinStats* stats) {
  MC_CHECK_GE(options.q, 1u);
  MC_CHECK_GE(options.merge_poll_period, 1u);
  DirectPairScorer direct(&view, options.measure);
  if (scorer == nullptr) scorer = &direct;
  TopKJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  TopKList topk(options.k);
  // Shared-prefix-token count per discovered pair; kScored once computed
  // (or proven hopeless). Flat map: this is the join's hottest structure.
  PairFlatMap<uint32_t> pair_state(4096);

  auto mark_scored = [&](PairId pair) {
    bool inserted = false;
    *pair_state.FindOrInsert(pair, kScored, &inserted) = kScored;
  };

  if (seed != nullptr) {
    for (const ScoredPair& entry : *seed) {
      mark_scored(entry.pair);
      topk.Add(entry.pair, entry.score);
    }
  }

  // Inverted indexes over the *extended* prefixes, one per side. Each entry
  // records the position of the token within its string, enabling the
  // positional upper bound below.
  struct IndexEntry {
    RowId row;
    uint32_t position;
  };
  std::unordered_map<uint32_t, std::vector<IndexEntry>> index_a;
  std::unordered_map<uint32_t, std::vector<IndexEntry>> index_b;

  std::priority_queue<Event, std::vector<Event>, EventLess> events;
  auto push_initial = [&](const std::vector<std::vector<uint32_t>>& tokens,
                          uint8_t side) {
    for (size_t row = 0; row < tokens.size(); ++row) {
      if (tokens[row].empty()) continue;
      events.push(Event{
          SetSimilarityCap(options.measure, tokens[row].size(), 0), side,
          static_cast<RowId>(row), 0});
    }
  };
  push_initial(view.tokens_a, 0);
  push_initial(view.tokens_b, 1);

  // The exclusion filter (blocker output C) runs at scoring time, not at
  // discovery time: hopeless pairs die via the positional bound without the
  // hash lookup, so only the few pairs that could enter the top-k pay it.
  auto score_pair = [&](PairId pair) {
    if (options.exclude != nullptr && options.exclude->Contains(pair)) {
      return;
    }
    ++stats->pairs_scored;
    RowId row_a = PairRowA(pair);
    RowId row_b = PairRowB(pair);
    double score = scorer->Score(row_a, row_b);
    if (topk.Add(pair, score)) scorer->NoteKept(row_a, row_b);
  };

  // Cancellation: checked before the loop and every merge_poll_period
  // events. On expiry the partially filled list is still returned (the
  // best-so-far contract, docs/robustness.md).
  if (options.run_context.Cancelled()) {
    stats->truncated = true;
    return topk;
  }

  bool merge_pending = merge_source != nullptr;
  auto poll_merge = [&] {
    if (!merge_pending) return;
    std::optional<std::vector<ScoredPair>> merged = merge_source->TryFetch();
    if (!merged.has_value()) return;
    merge_pending = false;
    ++stats->merges_applied;
    for (const ScoredPair& entry : *merged) {
      // A pair the parent already scored must not be re-scored here; the
      // re-adjusted score is exact for this config.
      mark_scored(entry.pair);
      topk.Add(entry.pair, entry.score);
    }
  };
  poll_merge();

  while (!events.empty()) {
    Event event = events.top();
    // Termination: no pending extension can create a pair beating the k-th
    // score. (KthScore() is -1 until the list fills, so we never stop
    // early with fewer than k results while extensions remain.)
    if (event.cap <= topk.KthScore()) break;
    events.pop();
    ++stats->events_popped;
    if ((stats->events_popped % options.merge_poll_period) == 0) {
      poll_merge();
      if (options.run_context.Cancelled()) {
        stats->truncated = true;
        break;
      }
    }

    const bool from_a = event.side == 0;
    const std::vector<uint32_t>& tokens =
        from_a ? view.tokens_a[event.row] : view.tokens_b[event.row];
    const uint32_t token = tokens[event.position];
    auto& own_index = from_a ? index_a : index_b;
    auto& other_index = from_a ? index_b : index_a;

    // Probe partners whose prefix already covers `token`.
    auto it = other_index.find(token);
    if (it != other_index.end()) {
      const size_t own_len = tokens.size();
      const size_t own_remaining = own_len - 1 - event.position;
      for (const IndexEntry& entry : it->second) {
        RowId partner = entry.row;

        // Positional upper bound, computed from positions alone — no pair
        // state needed. Shared tokens ranked before the current one sit in
        // both prefixes (at most min(i, j), since the token streams are
        // sorted by global rank); shared tokens ranked after it sit in both
        // suffixes (at most min of the remainders). So
        //   overlap <= min(i, j) + 1 + min(own_rem, partner_rem).
        // If that cannot beat the current k-th score, skip this probe
        // without touching the pair map: the same bound (or a tighter one)
        // re-fires at every later shared token, and any pair whose true
        // score exceeds the final k-th always passes (score <= bound).
        const size_t partner_len =
            from_a ? view.tokens_b[partner].size()
                   : view.tokens_a[partner].size();
        const size_t partner_remaining = partner_len - 1 - entry.position;
        const size_t prefix_overlap =
            std::min(static_cast<size_t>(event.position),
                     static_cast<size_t>(entry.position)) +
            1;
        size_t max_overlap =
            std::min(prefix_overlap +
                         std::min(own_remaining, partner_remaining),
                     std::min(own_len, partner_len));
        double upper_bound = SetSimilarityFromCounts(
            options.measure, own_len, partner_len, max_overlap);
        if (upper_bound <= topk.KthScore()) {
          ++stats->pairs_pruned;
          continue;
        }

        PairId pair = from_a ? MakePairId(event.row, partner)
                             : MakePairId(partner, event.row);
        bool inserted = false;
        uint32_t* state = pair_state.FindOrInsert(pair, 0u, &inserted);
        if (*state == kScored) continue;
        if (inserted) ++stats->pairs_discovered;
        ++*state;

        // Tighter count-based bound with permanent dead-marking: shared
        // tokens not yet counted lie in both suffixes (see above), so
        //   overlap <= count + min(own_rem, partner_rem).
        // (If an earlier probe of this pair was pre-skipped, the count may
        // undercount — but a pre-skip already proved the pair can never
        // beat the final k-th, so marking it dead stays correct.)
        size_t count_overlap =
            std::min(static_cast<size_t>(*state) +
                         std::min(own_remaining, partner_remaining),
                     std::min(own_len, partner_len));
        double count_bound = SetSimilarityFromCounts(
            options.measure, own_len, partner_len, count_overlap);
        if (count_bound <= topk.KthScore()) {
          *state = kScored;  // Dead: provably below the k-th, forever.
          ++stats->pairs_pruned;
          continue;
        }
        if (*state >= options.q) {
          *state = kScored;
          score_pair(pair);
        }
      }
    }

    // Reveal the token in this side's index.
    own_index[token].push_back(IndexEntry{event.row, event.position});
    ++stats->tokens_indexed;

    // Schedule the next extension unless it provably cannot matter.
    uint32_t next = event.position + 1;
    if (next < tokens.size()) {
      double cap = SetSimilarityCap(options.measure, tokens.size(), next);
      if (cap > topk.KthScore()) {
        events.push(Event{cap, event.side, event.row, next});
      }
    }
  }
  // A late parent list may still be pending (e.g. the join drained early);
  // apply it so reuse never loses pairs.
  poll_merge();
  return topk;
}

TopKList BruteForceTopK(const ConfigView& view, size_t k, SetMeasure measure,
                        const CandidateSet* exclude) {
  TopKList topk(k);
  DirectPairScorer scorer(&view, measure);
  for (size_t a = 0; a < view.tokens_a.size(); ++a) {
    if (view.tokens_a[a].empty()) continue;
    for (size_t b = 0; b < view.tokens_b.size(); ++b) {
      if (view.tokens_b[b].empty()) continue;
      PairId pair = MakePairId(static_cast<RowId>(a), static_cast<RowId>(b));
      if (exclude != nullptr && exclude->Contains(pair)) continue;
      topk.Add(pair, scorer.Score(static_cast<RowId>(a),
                                  static_cast<RowId>(b)));
    }
  }
  return topk;
}

size_t SelectQByRace(const ConfigView& view, SetMeasure measure,
                     const CandidateSet* exclude, size_t max_q,
                     size_t probe_k, const RunContext& run_context) {
  MC_CHECK_GE(max_q, 1u);
  // Race each q on its own thread for a top-probe_k list (paper §4.1: "one
  // q value for each core, for k = 50"); the first finisher wins. We time
  // the runs and pick the minimum, which selects the same winner without
  // having to kill losing threads.
  std::vector<double> elapsed(max_q, 0.0);
  std::vector<std::thread> threads;
  threads.reserve(max_q);
  for (size_t q = 1; q <= max_q; ++q) {
    threads.emplace_back([&, q] {
      Stopwatch watch;
      TopKJoinOptions options;
      options.k = probe_k;
      options.measure = measure;
      options.q = q;
      options.exclude = exclude;
      options.run_context = run_context;
      RunTopKJoin(view, options);
      elapsed[q - 1] = watch.ElapsedSeconds();
    });
  }
  for (auto& thread : threads) thread.join();
  size_t best_q = 1;
  for (size_t q = 2; q <= max_q; ++q) {
    if (elapsed[q - 1] < elapsed[best_q - 1]) best_q = q;
  }
  return best_q;
}

}  // namespace mc
