#include "ssj/topk_join.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <type_traits>

#include "mem/arena.h"
#include "mem/arena_vector.h"
#include "simd/kernels.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mc {

double DirectPairScorer::Score(RowId row_a, RowId row_b) {
  const TokenSpan a = view_->a(row_a);
  const TokenSpan b = view_->b(row_b);
  const size_t overlap = simd::OverlapCount(a.data, a.size(), b.data, b.size());
  return SetSimilarityFromCounts(measure_, a.size(), b.size(), overlap);
}

namespace {

// One pending prefix extension: string `row` on side `side` is about to
// reveal the token at `position`; any *new* pair formed through that token
// scores at most `cap`.
struct Event {
  double cap;
  uint8_t side;  // 0 = table A, 1 = table B.
  RowId row;
  uint32_t position;
};

struct EventLess {
  bool operator()(const Event& x, const Event& y) const {
    if (x.cap != y.cap) return x.cap < y.cap;
    if (x.side != y.side) return x.side > y.side;
    if (x.row != y.row) return x.row > y.row;
    return x.position > y.position;
  }
};

// One posting of the prefix inverted index: `row` has revealed the token at
// `position`.
struct IndexEntry {
  RowId row;
  uint32_t position;
};

// Exact |a[0..len_a) ∩ b[0..len_b)| of two rank-sorted prefixes, stopping
// as soon as the count exceeds `limit` (the caller only needs equality with
// a value <= limit). Counts below or equal to `limit` are exact. The capped
// kernel's contract (exactly limit + 1 once exceeded) keeps the return value
// level-independent.
inline size_t PrefixOverlap(const uint32_t* a, size_t len_a, const uint32_t* b,
                            size_t len_b, size_t limit) {
  return simd::OverlapCountCapped(a, len_a, b, len_b, limit);
}

// Exact similarity of a pair by merging its token spans, with the measure
// fixed at compile time (same arithmetic as DirectPairScorer::Score).
template <SetMeasure kMeasure>
double SpanScore(const ConfigView& view, RowId row_a, RowId row_b) {
  const TokenSpan a = view.a(row_a);
  const TokenSpan b = view.b(row_b);
  const size_t overlap = simd::OverlapCount(a.data, a.size(), b.data, b.size());
  return SetSimilarityFromCounts(kMeasure, a.size(), b.size(), overlap);
}

// Smallest integer overlap whose similarity under kMeasure reaches
// `threshold` (kStrict = false: >= threshold; kStrict = true: strictly
// above it) for spans of the given sizes, or min(size_a, size_b) + 1 when
// even full overlap falls short. Seeded from the analytic inverse of the
// measure and then adjusted with exact SetSimilarityFromCounts evaluations
// (a step or two at most), so the boundary agrees bit for bit with the
// scoring arithmetic — no float-rounding slack in either direction.
// Because the rounded similarity is monotone in the overlap for fixed
// sizes, "similarity above threshold" is exactly "overlap >= required":
// callers can replace a float division + compare with an integer compare.
template <SetMeasure kMeasure, bool kStrict>
size_t RequiredOverlap(size_t size_a, size_t size_b, double threshold) {
  const size_t max_overlap = std::min(size_a, size_b);
  const double a = static_cast<double>(size_a);
  const double b = static_cast<double>(size_b);
  auto reaches = [&](size_t overlap) {
    const double sim = SetSimilarityFromCounts(kMeasure, size_a, size_b,
                                               overlap);
    return kStrict ? sim > threshold : sim >= threshold;
  };
  double guess;
  if constexpr (kMeasure == SetMeasure::kJaccard) {
    guess = threshold * (a + b) / (1.0 + threshold);
  } else if constexpr (kMeasure == SetMeasure::kCosine) {
    guess = threshold * std::sqrt(a * b);
  } else if constexpr (kMeasure == SetMeasure::kDice) {
    guess = threshold * (a + b) / 2.0;
  } else {
    static_assert(kMeasure == SetMeasure::kOverlapCoefficient);
    guess = threshold * std::min(a, b);
  }
  size_t o = guess <= 0.0                                ? 0
             : guess >= static_cast<double>(max_overlap) ? max_overlap
                                                         : static_cast<size_t>(guess);
  while (o > 0 && reaches(o - 1)) --o;
  while (o <= max_overlap && !reaches(o)) ++o;
  return o;
}

// Exact similarity like SpanScore, but abandons the merge (returning false)
// as soon as the pair provably cannot reach `threshold`: when even matching
// every remaining token leaves the overlap below RequiredOverlap. The
// comparison is strict — a pair whose exact score ties the k-th entry is
// still scored in full, because ties can displace a larger pair id — so
// callers may treat `false` exactly as "TopKList::Add would have rejected
// it". On true, *score holds the exact similarity.
template <SetMeasure kMeasure>
bool SpanScoreAbove(const ConfigView& view, RowId row_a, RowId row_b,
                    double threshold, double* score) {
  const TokenSpan a = view.a(row_a);
  const TokenSpan b = view.b(row_b);
  const size_t required =
      RequiredOverlap<kMeasure, /*kStrict=*/false>(a.size(), b.size(),
                                                   threshold);
  size_t overlap = 0;
  if (!simd::OverlapAtLeast(a.data, a.size(), b.data, b.size(), required,
                            &overlap)) {
    return false;
  }
  *score = SetSimilarityFromCounts(kMeasure, a.size(), b.size(), overlap);
  return true;
}

// Runs the sequential prefix-event join over the rows of table A whose
// index is congruent to `shard` mod `shard_count` (joined against all of
// table B). shard = 0, shard_count = 1 is the full join; the engine is
// bit-identical to the pre-CSR implementation in that case.
//
// `prefilter` < 0 runs the classic engine. >= 0 tightens every pruning
// bound to max(k-th score, prefilter): termination, the positional
// required-overlap bound, extension scheduling, and early-abandon scoring
// all use the tightened bound, so pairs provably below the prefilter are
// skipped even while the list is still filling. The caller (RunShardImpl)
// owns the correctness argument: it accepts this pass's list only when its
// final k-th score reaches the prefilter, and restarts without it
// otherwise.
//
// Templated on the measure (folds the similarity switch out of the bound
// computations, which run once or twice per probe) and on the concrete
// scorer type (Scorer = DirectPairScorer scores inline with the same folded
// measure; Scorer = PairScorer keeps the virtual call for custom scorers).
template <SetMeasure kMeasure, typename Scorer>
TopKList RunShardPass(const ConfigView& view, const TopKJoinOptions& options,
                      double prefilter, Scorer* scorer,
                      const std::vector<ScoredPair>* seed,
                      MergeSource* merge_source, TopKJoinStats* stats,
                      size_t shard, size_t shard_count, size_t b_shard,
                      size_t b_shard_count, size_t a_begin, size_t a_end) {
  TopKList topk(options.k);

  // Effective pruning bound. With the prefilter off this is exactly the
  // k-th score (max with -1 is the identity on KthScore's range), so the
  // classic engine's behavior is untouched byte for byte.
  auto bound = [&] { return std::max(topk.KthScore(), prefilter); };

  // Seeds initialize the list (raising the pruning threshold early). The
  // engine may later re-derive a seeded pair at its q-th shared token and
  // score it again; scoring is deterministic, so TopKList::Add sees the
  // same value and the list is unchanged.
  if (seed != nullptr) {
    for (const ScoredPair& entry : *seed) {
      topk.Add(entry.pair, entry.score);
    }
  }

  const size_t q = options.q;
  // Deferred-scoring cap: a pair still unscored when a row's prefix reaches
  // `position` has at most q - 1 shared tokens before `position` (it scores
  // the moment its count hits q), so its overlap is bounded as if the
  // suffix started q - 1 positions earlier. Using the classic cap at the
  // raw position (valid only for q = 1) undercounts those carried tokens
  // and silently drops pairs whose q-th shared token sits deep in a prefix.
  // q = 1 reduces to SetSimilarityCap exactly.
  auto extension_cap = [&](size_t len, size_t position) {
    const size_t effective = position >= q ? position - (q - 1) : 0;
    return SetSimilarityCap(kMeasure, len, effective);
  };

  // Pass-local scratch arena backing the inverted indexes, the event heap,
  // and the required-overlap tables. Uncharged (transient working memory,
  // not resident plane state) and unplaced: its pages are first-touched by
  // this thread, so under a pinned topology-aware pool the whole scratch
  // plane lands on the worker's own node for free. Posting-list growth
  // strands its doubling copies in the arena (deallocate is a no-op); the
  // waste is bounded by the geometric series and the arena returns it all
  // at once when the pass ends — cheaper than a heap round-trip per list.
  mem::Arena scratch(mem::ArenaOptions{.tag = "join_scratch"});

  // Inverted indexes over the *extended* prefixes, one per side, indexed
  // densely by token rank (every rank is < view.rank_limit()). Replaces the
  // former unordered_map indexes: a probe is one array load instead of a
  // hash walk, and the postings of hot (frequent) tokens stay contiguous.
  // The fill constructor copies the prototype posting list into every slot;
  // the allocator's select_on_container_copy_construction keeps the arena,
  // so the inner lists bump-allocate from scratch too.
  using PostingList = mem::ArenaVector<IndexEntry>;
  const PostingList posting_proto{mem::ArenaAllocator<IndexEntry>(&scratch)};
  mem::ArenaVector<PostingList> index_a(
      view.rank_limit(), posting_proto,
      mem::ArenaAllocator<PostingList>(&scratch));
  mem::ArenaVector<PostingList> index_b(
      view.rank_limit(), posting_proto,
      mem::ArenaAllocator<PostingList>(&scratch));

  // Required-overlap table: req_value[len] caches
  // RequiredOverlap<kMeasure, true>(own_len, len, kth) for the event being
  // processed, so each probe's pruning bound is an integer compare instead
  // of a float division (SetSimilarityFromCounts). Entries are valid while
  // req_epoch is unchanged; the epoch advances on every new event (own_len
  // changes) and whenever the k-th score moves (a scored pair entered the
  // list or a merge landed). Rounded similarity is monotone in the overlap,
  // so the integer compare reproduces the float compare bit for bit.
  size_t max_len = 0;
  for (size_t row = 0; row < view.rows_a(); ++row) {
    max_len = std::max(max_len, view.a(row).size());
  }
  for (size_t row = 0; row < view.rows_b(); ++row) {
    max_len = std::max(max_len, view.b(row).size());
  }
  mem::ArenaVector<uint32_t> req_value(max_len + 1, 0,
                                       mem::ArenaAllocator<uint32_t>(&scratch));
  mem::ArenaVector<uint64_t> req_stamp(max_len + 1, 0,
                                       mem::ArenaAllocator<uint64_t>(&scratch));
  uint64_t req_epoch = 1;  // 64-bit: never wraps into a stale stamp.
  double epoch_bound = bound();
  auto note_kth_change = [&] {
    if (bound() != epoch_bound) {
      epoch_bound = bound();
      ++req_epoch;
    }
  };

  // Event heap: a plain binary max-heap under EventLess. EventLess is a
  // total order on distinct (cap, side, row, position) keys, so the pop
  // sequence — and therefore the join's output — is independent of heap
  // internals; a hand-rolled heap buys a replace-top operation (assign the
  // root, one sift-down) that halves the per-event sift work versus
  // priority_queue's pop-then-push.
  // Side-A rows are confined to the [a_begin, a_end) window before the
  // residue split (the topology executor's node slices); the default window
  // covers the whole table.
  const size_t a_window_end = std::min(a_end, view.rows_a());
  const size_t a_window_begin = std::min(a_begin, a_window_end);

  mem::ArenaVector<Event> events{mem::ArenaAllocator<Event>(&scratch)};
  // Heap size only shrinks after the initial fill (replace_top assigns in
  // place); reserving the per-shard row bound up front means the arena
  // strands nothing to doubling.
  events.reserve(
      (a_window_end - a_window_begin + shard_count - 1) / shard_count +
      (view.rows_b() + b_shard_count - 1) / b_shard_count);
  const EventLess event_less;
  auto push_initial = [&](uint8_t side) {
    const size_t rows = side == 0 ? a_window_end : view.rows_b();
    const size_t step = side == 0 ? shard_count : b_shard_count;
    for (size_t row = side == 0 ? a_window_begin + shard : b_shard;
         row < rows; row += step) {
      const TokenSpan tokens = side == 0 ? view.a(row) : view.b(row);
      if (tokens.empty()) continue;
      events.push_back(Event{extension_cap(tokens.size(), 0), side,
                             static_cast<RowId>(row), 0});
    }
  };
  push_initial(0);
  push_initial(1);
  std::make_heap(events.begin(), events.end(), event_less);

  // Overwrites the root with `e` and restores the heap property downward.
  auto replace_top = [&](const Event& e) {
    size_t i = 0;
    const size_t n = events.size();
    while (true) {
      size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && event_less(events[child], events[child + 1])) {
        ++child;
      }
      if (!event_less(e, events[child])) break;
      events[i] = events[child];
      i = child;
    }
    events[i] = e;
  };
  auto pop_top = [&] {
    std::pop_heap(events.begin(), events.end(), event_less);
    events.pop_back();
  };

  // The exclusion filter (blocker output C) runs at scoring time, not at
  // discovery time: hopeless pairs die via the positional bound without the
  // hash lookup, so only the few pairs that could enter the top-k pay it.
  auto score_pair = [&](PairId pair) {
    if (options.exclude != nullptr && options.exclude->Contains(pair)) {
      return;
    }
    ++stats->pairs_scored;
    RowId row_a = PairRowA(pair);
    RowId row_b = PairRowB(pair);
    double score;
    if constexpr (std::is_same_v<Scorer, DirectPairScorer>) {
      const double kth = bound();  // -1 until the list fills (prefilter off).
      if (kth < 0.0 || topk.Contains(pair)) {
        // A not-yet-full list accepts everything, and a kept pair must be
        // re-scored in full so a corrected score lands in place.
        score = SpanScore<kMeasure>(view, row_a, row_b);
      } else if (!SpanScoreAbove<kMeasure>(view, row_a, row_b, kth, &score)) {
        return;  // Provably below the bound: Add would reject it.
      }
    } else {
      const double kth = bound();
      if (kth < 0.0 || topk.Contains(pair)) {
        score = scorer->Score(row_a, row_b);
      } else if (!scorer->ScoreAbove(row_a, row_b, kth, &score)) {
        return;  // Scorer proved it below the bound: Add would reject.
      }
    }
    if (topk.Add(pair, score)) scorer->NoteKept(row_a, row_b);
    note_kth_change();
  };

  // Cancellation: checked before the loop and every merge_poll_period
  // events. On expiry the partially filled list is still returned (the
  // best-so-far contract, docs/robustness.md).
  if (options.run_context.Cancelled()) {
    stats->truncated = true;
    return topk;
  }

  bool merge_pending = merge_source != nullptr;
  auto poll_merge = [&] {
    if (!merge_pending) return;
    std::optional<std::vector<ScoredPair>> merged = merge_source->TryFetch();
    if (!merged.has_value()) return;
    merge_pending = false;
    ++stats->merges_applied;
    for (const ScoredPair& entry : *merged) {
      // The re-adjusted score is exact for this config and overrides any
      // stale score already in the list (TopKList::Add updates in place).
      topk.Add(entry.pair, entry.score);
    }
    note_kth_change();
  };
  poll_merge();

  while (!events.empty()) {
    const Event event = events.front();
    // Termination: no pending extension can create a pair beating *or
    // tying* the k-th score. The comparison is strict — events whose cap
    // equals the k-th score still run, because a tied pair with a smaller
    // pair id displaces the boundary entry under TopKList's total order
    // (score desc, pair asc). That makes the returned list the *canonical*
    // top-k of the searched pair space: the unique k-minimum under the
    // total order, independent of discovery order — which is what lets
    // shard-merged and seeded runs reproduce the sequential list bit for
    // bit (see docs/algorithms.md §"Canonical tie handling").
    // (KthScore() is -1 until the list fills, so we never stop early with
    // fewer than k results while extensions remain — unless an active
    // prefilter raises the bound, whose skips the caller repairs or
    // proves canonical.)
    if (event.cap < bound()) break;
    ++stats->events_popped;
    if ((stats->events_popped % options.merge_poll_period) == 0) {
      poll_merge();
      if (options.run_context.Cancelled()) {
        stats->truncated = true;
        break;
      }
    }

    const bool from_a = event.side == 0;
    ++req_epoch;  // New event: own_len changes, so cached bounds expire.
    const TokenSpan tokens = from_a ? view.a(event.row) : view.b(event.row);
    const uint32_t token = tokens[event.position];
    auto& own_index = from_a ? index_a : index_b;
    auto& other_index = from_a ? index_b : index_a;

    // Probe partners whose prefix already covers `token`. Every shared
    // token of a pair produces exactly one probe (whichever side reveals
    // it second finds the other side's posting), so the probe sequence of
    // a pair enumerates its shared tokens in event order — and the pair's
    // exact shared count at each probe is recomputable from the CSR
    // prefixes alone. That makes the join stateless per pair: no hash map
    // of pair state (formerly the join's dominant cost — one random cache
    // miss per probe), just a short sequential merge over arena data.
    const PostingList& postings = other_index[token];
    if (!postings.empty()) {
      const size_t own_len = tokens.size();
      const size_t own_remaining = own_len - 1 - event.position;
      for (const IndexEntry& entry : postings) {
        RowId partner = entry.row;

        // A probe only matters if it is the pair's *scoring* probe — the
        // one where its shared-token count c = |own_prefix ∩ partner_prefix|
        // + 1 equals q (c is distinct at every probe of a pair, so this
        // holds at exactly one probe). At that probe the pair's overlap is
        // bounded by positions alone:
        //   - shared tokens so far: c = q, and also at most min(i, j) + 1
        //     (they all precede the current token in both rank-sorted
        //     rows);
        //   - shared tokens still to come: at most min of the remainders.
        // So overlap <= min(min(i, j) + 1, q) + min(own_rem, partner_rem),
        // capped at min of the lengths. If that cannot beat the k-th
        // score, skip before touching the prefixes: pruning a non-scoring
        // probe is harmless (it would have been a no-op), and a pair whose
        // true score exceeds the final k-th always passes at its scoring
        // probe (score <= bound, and the k-th only rises).
        const TokenSpan partner_tokens =
            from_a ? view.b(partner) : view.a(partner);
        const size_t partner_len = partner_tokens.size();
        const size_t partner_remaining = partner_len - 1 - entry.position;
        const size_t prefix_limit =
            std::min(static_cast<size_t>(event.position),
                     static_cast<size_t>(entry.position));
        if (prefix_limit + 1 < q) continue;  // c <= prefix_limit + 1 < q.
        const size_t max_overlap =
            std::min(std::min(prefix_limit + 1, q) +
                         std::min(own_remaining, partner_remaining),
                     std::min(own_len, partner_len));
        // Bound check in integer form: the probe survives iff its overlap
        // bound reaches the smallest overlap whose similarity beats the
        // k-th score (cached per partner length for the current event +
        // k-th score, see req_value above). No float math on this path.
        uint32_t required;
        if (req_stamp[partner_len] == req_epoch) {
          required = req_value[partner_len];
        } else {
          // Non-strict: a pair that can only *tie* the k-th score must
          // still be scored — a tie with a smaller pair id displaces the
          // boundary entry (canonical tie handling).
          required = static_cast<uint32_t>(
              RequiredOverlap<kMeasure, /*kStrict=*/false>(
                  own_len, partner_len, bound()));
          req_value[partner_len] = required;
          req_stamp[partner_len] = req_epoch;
        }
        if (max_overlap < required) {
          ++stats->pairs_pruned;
          continue;
        }

        // Exact c via a short merge of the rank-sorted CSR prefixes — the
        // join is stateless per pair: no hash map of pair counts (formerly
        // the dominant cost — one random cache miss per probe).
        const size_t before =
            PrefixOverlap(tokens.begin(), event.position,
                          partner_tokens.begin(), entry.position,
                          /*limit=*/q - 1);
        if (before == 0) ++stats->pairs_discovered;
        if (before != q - 1) continue;  // Not the q-th shared token.
        score_pair(from_a ? MakePairId(event.row, partner)
                          : MakePairId(partner, event.row));
      }
    }

    // Reveal the token in this side's index.
    own_index[token].push_back(IndexEntry{event.row, event.position});
    ++stats->tokens_indexed;

    // Schedule the next extension unless it provably cannot matter — i.e.
    // unless its cap is strictly below the k-th score (a cap that ties can
    // still surface a smaller-pair-id tie, canonical tie handling). The
    // common case (extension survives) replaces the just-processed root in
    // place instead of pop + push.
    uint32_t next = event.position + 1;
    if (next < tokens.size()) {
      double cap = extension_cap(tokens.size(), next);
      if (cap >= bound()) {
        replace_top(Event{cap, event.side, event.row, next});
        continue;
      }
    }
    pop_top();
  }
  // A late parent list may still be pending (e.g. the join drained early);
  // apply it so reuse never loses pairs.
  poll_merge();
  return topk;
}

// Hybrid threshold/top-k wrapper (TopKJoinOptions::prefilter_threshold).
// Phase 1 runs the engine with every pruning bound tightened to
// max(k-th, threshold). If the phase ends with a full list whose k-th score
// reaches the threshold, that list is the canonical result: every pair the
// tightened bound skipped provably scores strictly below some bound value
// <= the final k-th score, so it cannot even tie into the list. Otherwise
// the threshold overshot the true k-th (the planner's sampled estimate is
// biased low, so this is the rare path) and the engine restarts
// without the prefilter, seeded with phase 1's survivors — all exactly
// scored at their q-th shared-token probe, hence inside the q-eligible
// space the classic run searches — which reproduces the non-hybrid output
// bit for bit.
template <SetMeasure kMeasure, typename Scorer>
TopKList RunShardImpl(const ConfigView& view, const TopKJoinOptions& options,
                      Scorer* scorer, const std::vector<ScoredPair>* seed,
                      MergeSource* merge_source, TopKJoinStats* stats,
                      size_t shard, size_t shard_count, size_t b_shard,
                      size_t b_shard_count, size_t a_begin, size_t a_end) {
  const double tau = options.prefilter_threshold;
  if (tau < 0.0 || merge_source != nullptr) {
    return RunShardPass<kMeasure, Scorer>(view, options, /*prefilter=*/-1.0,
                                          scorer, seed, merge_source, stats,
                                          shard, shard_count, b_shard,
                                          b_shard_count, a_begin, a_end);
  }
  TopKList first =
      RunShardPass<kMeasure, Scorer>(view, options, tau, scorer, seed,
                                     /*merge_source=*/nullptr, stats, shard,
                                     shard_count, b_shard, b_shard_count,
                                     a_begin, a_end);
  // Cancelled mid-phase: best-so-far contract, no restart (the restart
  // would be cancelled too and lose the survivors).
  if (stats->truncated) return first;
  // Done case: full list (KthScore >= 0) whose boundary reached the
  // threshold — canonical, by the argument above.
  if (first.KthScore() >= tau) return first;
  ++stats->prefilter_restarts;
  std::vector<ScoredPair> combined = first.Entries();
  if (seed != nullptr) {
    combined.insert(combined.end(), seed->begin(), seed->end());
  }
  return RunShardPass<kMeasure, Scorer>(view, options, /*prefilter=*/-1.0,
                                        scorer, &combined,
                                        /*merge_source=*/nullptr, stats, shard,
                                        shard_count, b_shard, b_shard_count,
                                        a_begin, a_end);
}

// Measure/scorer-kind dispatch into the templated shard runner. `direct` is
// non-null exactly when the caller did not supply a custom scorer.
TopKList RunShard(const ConfigView& view, const TopKJoinOptions& options,
                  PairScorer* scorer, DirectPairScorer* direct,
                  const std::vector<ScoredPair>* seed,
                  MergeSource* merge_source, TopKJoinStats* stats,
                  size_t shard, size_t shard_count, size_t b_shard = 0,
                  size_t b_shard_count = 1, size_t a_begin = 0,
                  size_t a_end = static_cast<size_t>(-1)) {
  auto run = [&](auto measure_tag) {
    constexpr SetMeasure kMeasure = decltype(measure_tag)::value;
    if (direct != nullptr) {
      return RunShardImpl<kMeasure, DirectPairScorer>(
          view, options, direct, seed, merge_source, stats, shard,
          shard_count, b_shard, b_shard_count, a_begin, a_end);
    }
    return RunShardImpl<kMeasure, PairScorer>(view, options, scorer, seed,
                                              merge_source, stats, shard,
                                              shard_count, b_shard,
                                              b_shard_count, a_begin, a_end);
  };
  switch (options.measure) {
    case SetMeasure::kJaccard:
      return run(
          std::integral_constant<SetMeasure, SetMeasure::kJaccard>{});
    case SetMeasure::kCosine:
      return run(std::integral_constant<SetMeasure, SetMeasure::kCosine>{});
    case SetMeasure::kDice:
      return run(std::integral_constant<SetMeasure, SetMeasure::kDice>{});
    case SetMeasure::kOverlapCoefficient:
      return run(std::integral_constant<SetMeasure,
                                        SetMeasure::kOverlapCoefficient>{});
  }
  MC_CHECK(false) << "unknown measure";
  return TopKList(options.k);
}

// Largest L such that every position p < L of a row with `len` tokens has
// extension cap >= tau under (kMeasure, q). The cap is non-increasing in
// the position (the effective suffix only shrinks), so L is found by a
// binary search for the first position whose cap falls below tau.
template <SetMeasure kMeasure>
size_t TruncatedPrefixLength(size_t len, size_t q, double tau) {
  size_t lo = 0;
  size_t hi = len;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const size_t effective = mid >= q ? mid - (q - 1) : 0;
    if (SetSimilarityCap(kMeasure, len, effective) >= tau) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

using PostingList = mem::ArenaVector<IndexEntry>;

// Probes one contiguous block of table-B rows [b_begin, b_end) against the
// shared read-only table-A truncated-prefix index at the fixed bound `tau`
// and returns the canonical top-k of the block's sub-space restricted to
// pairs scoring >= tau (plus any seeds). Unlike RunShardPass there is no
// event heap — rows stream in order and positions advance sequentially —
// and the required-overlap table is stamped once per probe row (own_len is
// the only variable: tau never moves), so the k-th score raising never
// invalidates cached bounds. The k-th score still tightens the scoring
// early-abandon bound via max(tau, k-th), which is safe under the
// accept-or-restart contract of RunThresholdImpl.
template <SetMeasure kMeasure, typename Scorer>
TopKList ThresholdBlockPass(const ConfigView& view,
                            const TopKJoinOptions& options, double tau,
                            Scorer* scorer,
                            const std::vector<ScoredPair>* seed,
                            const mem::ArenaVector<PostingList>& index_a,
                            const mem::ArenaVector<uint32_t>& b_prefix_len,
                            size_t b_begin, size_t b_end,
                            TopKJoinStats* stats) {
  TopKList topk(options.k);
  if (seed != nullptr) {
    for (const ScoredPair& entry : *seed) {
      topk.Add(entry.pair, entry.score);
    }
  }
  const size_t q = options.q;

  auto score_pair = [&](PairId pair) {
    if (options.exclude != nullptr && options.exclude->Contains(pair)) {
      return;
    }
    ++stats->pairs_scored;
    const RowId row_a = PairRowA(pair);
    const RowId row_b = PairRowB(pair);
    // The scoring bound max(tau, k-th) mirrors the hybrid prefilter pass:
    // pairs provably strictly below it can neither enter the accepted list
    // (boundary >= tau) nor survive to the restart (survivors are exactly
    // the scored pairs). Kept pairs re-score in full so a re-derivation
    // lands the same value in place.
    const double threshold = std::max(tau, topk.KthScore());
    double score;
    if constexpr (std::is_same_v<Scorer, DirectPairScorer>) {
      if (topk.Contains(pair)) {
        score = SpanScore<kMeasure>(view, row_a, row_b);
      } else if (!SpanScoreAbove<kMeasure>(view, row_a, row_b, threshold,
                                           &score)) {
        return;
      }
    } else {
      if (topk.Contains(pair)) {
        score = scorer->Score(row_a, row_b);
      } else if (!scorer->ScoreAbove(row_a, row_b, threshold, &score)) {
        return;
      }
    }
    if (topk.Add(pair, score)) scorer->NoteKept(row_a, row_b);
  };

  // Required-overlap cache at the fixed bound tau, stamped by probe row:
  // req_value[partner_len] holds RequiredOverlap(own_len, partner_len, tau)
  // for the row being probed. Valid for the whole row — tau is fixed, so
  // unlike the classic pass nothing ever expires mid-row.
  size_t max_len = 0;
  for (size_t row = 0; row < view.rows_a(); ++row) {
    max_len = std::max(max_len, view.a(row).size());
  }
  for (size_t row = b_begin; row < b_end; ++row) {
    max_len = std::max(max_len, view.b(row).size());
  }
  std::vector<uint32_t> req_value(max_len + 1, 0);
  std::vector<uint64_t> req_stamp(max_len + 1, 0);
  uint64_t req_epoch = 0;

  size_t since_poll = 0;
  for (size_t row = b_begin; row < b_end; ++row) {
    const TokenSpan tokens = view.b(row);
    const size_t limit = b_prefix_len[row];
    if (limit == 0) continue;
    ++req_epoch;
    const size_t own_len = tokens.size();
    for (size_t position = 0; position < limit; ++position) {
      ++stats->events_popped;
      if (++since_poll >= options.merge_poll_period) {
        since_poll = 0;
        if (options.run_context.Cancelled()) {
          stats->truncated = true;
          return topk;
        }
      }
      const PostingList& postings = index_a[tokens[position]];
      if (postings.empty()) continue;
      const size_t own_remaining = own_len - 1 - position;
      for (const IndexEntry& entry : postings) {
        const RowId partner = entry.row;
        const TokenSpan partner_tokens = view.a(partner);
        const size_t partner_len = partner_tokens.size();
        const size_t partner_remaining = partner_len - 1 - entry.position;
        const size_t prefix_limit =
            std::min(position, static_cast<size_t>(entry.position));
        if (prefix_limit + 1 < q) continue;  // c <= prefix_limit + 1 < q.
        const size_t max_overlap =
            std::min(std::min(prefix_limit + 1, q) +
                         std::min(own_remaining, partner_remaining),
                     std::min(own_len, partner_len));
        uint32_t required;
        if (req_stamp[partner_len] == req_epoch) {
          required = req_value[partner_len];
        } else {
          required = static_cast<uint32_t>(
              RequiredOverlap<kMeasure, /*kStrict=*/false>(own_len,
                                                           partner_len, tau));
          req_value[partner_len] = required;
          req_stamp[partner_len] = req_epoch;
        }
        if (max_overlap < required) {
          ++stats->pairs_pruned;
          continue;
        }
        // Shared tokens appear at increasing positions in both rank-sorted
        // prefixes, so the i-th shared token inside the truncated prefixes
        // probes with exactly i - 1 predecessors: each pair is scored at
        // most once, at its q-th shared truncated-prefix token.
        const size_t before =
            PrefixOverlap(tokens.begin(), position, partner_tokens.begin(),
                          entry.position, /*limit=*/q - 1);
        if (before == 0) ++stats->pairs_discovered;
        if (before != q - 1) continue;
        score_pair(MakePairId(partner, static_cast<RowId>(row)));
      }
    }
  }
  return topk;
}

// Threshold-join driver body: truncate both sides' prefixes at tau, index
// table A sequentially, stream table B (in options.shards contiguous
// blocks) against it, merge the canonical block lists, and accept or
// restart per the hybrid prefilter contract.
template <SetMeasure kMeasure, typename Scorer>
TopKList RunThresholdImpl(const ConfigView& view,
                          const TopKJoinOptions& options, Scorer* scorer,
                          PairScorer* scorer_base,
                          const std::vector<ScoredPair>* seed,
                          TopKJoinStats* stats) {
  const double tau = options.prefilter_threshold;
  const size_t q = options.q;

  // Scratch arena for the truncated-prefix index: built once on the calling
  // thread, then shared read-only across the B-row block tasks.
  mem::Arena scratch(mem::ArenaOptions{.tag = "join_scratch"});
  const PostingList posting_proto{mem::ArenaAllocator<IndexEntry>(&scratch)};
  mem::ArenaVector<PostingList> index_a(
      view.rank_limit(), posting_proto,
      mem::ArenaAllocator<PostingList>(&scratch));

  // Truncated prefix lengths, computed once per distinct row length would
  // also work; per row keeps it simple and the binary search is O(log len).
  for (size_t row = 0; row < view.rows_a(); ++row) {
    const TokenSpan tokens = view.a(row);
    const size_t limit = TruncatedPrefixLength<kMeasure>(tokens.size(), q, tau);
    for (size_t position = 0; position < limit; ++position) {
      ++stats->events_popped;
      index_a[tokens[position]].push_back(
          IndexEntry{static_cast<RowId>(row), static_cast<uint32_t>(position)});
      ++stats->tokens_indexed;
    }
  }
  mem::ArenaVector<uint32_t> b_prefix_len(
      view.rows_b(), 0, mem::ArenaAllocator<uint32_t>(&scratch));
  for (size_t row = 0; row < view.rows_b(); ++row) {
    b_prefix_len[row] = static_cast<uint32_t>(
        TruncatedPrefixLength<kMeasure>(view.b(row).size(), q, tau));
  }

  TopKList merged(options.k);
  if (options.shards == 1 || view.rows_b() < 2) {
    merged = ThresholdBlockPass<kMeasure, Scorer>(
        view, options, tau, scorer, seed, index_a, b_prefix_len,
        /*b_begin=*/0, /*b_end=*/view.rows_b(), stats);
  } else {
    const size_t blocks = std::min(options.shards, view.rows_b());
    const size_t hardware =
        std::max<size_t>(1, std::thread::hardware_concurrency());
    std::vector<TopKList> block_lists(blocks, TopKList(options.k));
    std::vector<TopKJoinStats> block_stats(blocks);
    {
      ThreadPool pool(std::min(blocks, hardware), "mc-ttjoin");
      for (size_t s = 0; s < blocks; ++s) {
        pool.Submit([&, s] {
          const size_t b_begin = s * view.rows_b() / blocks;
          const size_t b_end = (s + 1) * view.rows_b() / blocks;
          block_lists[s] = ThresholdBlockPass<kMeasure, Scorer>(
              view, options, tau, scorer, seed, index_a, b_prefix_len,
              b_begin, b_end, &block_stats[s]);
        });
      }
      Status status = pool.Wait();
      MC_CHECK(status.ok()) << status.message();
    }
    for (size_t s = 0; s < blocks; ++s) {
      for (const ScoredPair& entry : block_lists[s].Entries()) {
        merged.Add(entry.pair, entry.score);
      }
      stats->events_popped += block_stats[s].events_popped;
      stats->pairs_discovered += block_stats[s].pairs_discovered;
      stats->pairs_scored += block_stats[s].pairs_scored;
      stats->pairs_pruned += block_stats[s].pairs_pruned;
      stats->truncated = stats->truncated || block_stats[s].truncated;
    }
  }
  // Cancelled mid-pass: best-so-far contract, no restart (the restart would
  // be cancelled too and lose the survivors).
  if (stats->truncated) return merged;
  // Done case: full list whose boundary reached tau — canonical. Every pair
  // the truncation skipped has its q-th shared token at a position whose
  // extension cap is < tau, so it scores strictly below tau <= the final
  // k-th and cannot even tie; every ScoreAbove rejection was strictly below
  // max(tau, a then-current block k-th) <= the final k-th.
  if (merged.KthScore() >= tau) return merged;
  // Threshold overshot the true k-th: re-run the classic engine seeded with
  // the survivors (all exactly scored at their q-th shared-token probe,
  // hence q-eligible), which reproduces the non-threshold output bit for
  // bit — same repair as the hybrid prefilter restart.
  ++stats->prefilter_restarts;
  std::vector<ScoredPair> combined = merged.Entries();
  if (seed != nullptr) {
    combined.insert(combined.end(), seed->begin(), seed->end());
  }
  TopKJoinOptions classic = options;
  classic.prefilter_threshold = -1.0;
  return RunTopKJoin(view, classic, scorer_base, &combined,
                     /*merge_source=*/nullptr, stats);
}

}  // namespace

TopKList RunTopKJoin(const ConfigView& view, const TopKJoinOptions& options,
                     PairScorer* scorer, const std::vector<ScoredPair>* seed,
                     MergeSource* merge_source, TopKJoinStats* stats) {
  MC_CHECK_GE(options.q, 1u);
  MC_CHECK_GE(options.merge_poll_period, 1u);
  MC_CHECK_GE(options.shards, 1u);
  DirectPairScorer direct_scorer(&view, options.measure);
  DirectPairScorer* direct = scorer == nullptr ? &direct_scorer : nullptr;
  if (scorer == nullptr) scorer = &direct_scorer;
  TopKJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  if (options.shards == 1) {
    return RunShard(view, options, scorer, direct, seed, merge_source, stats,
                    /*shard=*/0, /*shard_count=*/1);
  }

  // Parallel mode: independent sub-joins over table-A shards, merged at the
  // end. Each shard's result is its canonical top-k over (shard x B) — the
  // k-minimum under (score desc, pair asc) — so merging the shard lists
  // through TopKList::Add reproduces the sequential run's list bit for bit
  // (see docs/algorithms.md §"Canonical tie handling"). The seed is offered
  // to every shard — its scores raise each shard's pruning threshold early,
  // and the final merge deduplicates. The merge source is polled once at
  // the end instead (its one-shot contract does not allow concurrent
  // polling from shards).
  const size_t shard_count = options.shards;
  const size_t hardware =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  std::vector<TopKList> shard_lists(shard_count, TopKList(options.k));
  std::vector<TopKJoinStats> shard_stats(shard_count);
  {
    ThreadPool pool(std::min(shard_count, hardware), "mc-shard");
    for (size_t s = 0; s < shard_count; ++s) {
      pool.Submit([&, s] {
        shard_lists[s] = RunShard(view, options, scorer, direct, seed,
                                  /*merge_source=*/nullptr, &shard_stats[s],
                                  s, shard_count);
      });
    }
    Status status = pool.Wait();
    // Scorers are the only user code on this path; a throwing scorer is a
    // programming error, not a data condition.
    MC_CHECK(status.ok()) << status.message();
  }

  TopKList merged(options.k);
  for (size_t s = 0; s < shard_count; ++s) {
    for (const ScoredPair& entry : shard_lists[s].Entries()) {
      merged.Add(entry.pair, entry.score);
    }
    stats->events_popped += shard_stats[s].events_popped;
    stats->pairs_discovered += shard_stats[s].pairs_discovered;
    stats->pairs_scored += shard_stats[s].pairs_scored;
    stats->pairs_pruned += shard_stats[s].pairs_pruned;
    stats->tokens_indexed += shard_stats[s].tokens_indexed;
    stats->merges_applied += shard_stats[s].merges_applied;
    stats->prefilter_restarts += shard_stats[s].prefilter_restarts;
    stats->truncated = stats->truncated || shard_stats[s].truncated;
  }
  if (merge_source != nullptr) {
    if (std::optional<std::vector<ScoredPair>> late = merge_source->TryFetch()) {
      ++stats->merges_applied;
      merged.MergeFrom(*late);
    }
  }
  return merged;
}

TopKList RunTopKJoinShard(const ConfigView& view,
                          const TopKJoinOptions& options, size_t shard,
                          size_t shard_count, PairScorer* scorer,
                          const std::vector<ScoredPair>* seed,
                          TopKJoinStats* stats, size_t b_shard,
                          size_t b_shard_count, size_t a_begin,
                          size_t a_end) {
  MC_CHECK_GE(options.q, 1u);
  MC_CHECK_GE(options.merge_poll_period, 1u);
  MC_CHECK_LT(shard, shard_count);
  MC_CHECK_LT(b_shard, b_shard_count);
  DirectPairScorer direct_scorer(&view, options.measure);
  DirectPairScorer* direct = scorer == nullptr ? &direct_scorer : nullptr;
  if (scorer == nullptr) scorer = &direct_scorer;
  TopKJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  return RunShard(view, options, scorer, direct, seed,
                  /*merge_source=*/nullptr, stats, shard, shard_count, b_shard,
                  b_shard_count, a_begin, a_end);
}

TopKList RunThresholdJoin(const ConfigView& view,
                          const TopKJoinOptions& options, PairScorer* scorer,
                          const std::vector<ScoredPair>* seed,
                          TopKJoinStats* stats) {
  MC_CHECK_GE(options.q, 1u);
  MC_CHECK_GE(options.merge_poll_period, 1u);
  MC_CHECK_GE(options.shards, 1u);
  MC_CHECK_GE(options.prefilter_threshold, 0.0)
      << "threshold mode needs a fixed bound";
  PairScorer* scorer_base = scorer;
  DirectPairScorer direct_scorer(&view, options.measure);
  const bool direct = scorer == nullptr;
  if (scorer == nullptr) scorer = &direct_scorer;
  TopKJoinStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  if (options.run_context.Cancelled()) {
    stats->truncated = true;
    TopKList topk(options.k);
    if (seed != nullptr) {
      for (const ScoredPair& entry : *seed) topk.Add(entry.pair, entry.score);
    }
    return topk;
  }
  auto run = [&](auto measure_tag) {
    constexpr SetMeasure kMeasure = decltype(measure_tag)::value;
    if (direct) {
      return RunThresholdImpl<kMeasure, DirectPairScorer>(
          view, options, &direct_scorer, scorer_base, seed, stats);
    }
    return RunThresholdImpl<kMeasure, PairScorer>(view, options, scorer,
                                                  scorer_base, seed, stats);
  };
  switch (options.measure) {
    case SetMeasure::kJaccard:
      return run(std::integral_constant<SetMeasure, SetMeasure::kJaccard>{});
    case SetMeasure::kCosine:
      return run(std::integral_constant<SetMeasure, SetMeasure::kCosine>{});
    case SetMeasure::kDice:
      return run(std::integral_constant<SetMeasure, SetMeasure::kDice>{});
    case SetMeasure::kOverlapCoefficient:
      return run(std::integral_constant<SetMeasure,
                                        SetMeasure::kOverlapCoefficient>{});
  }
  MC_CHECK(false) << "unknown measure";
  return TopKList(options.k);
}

size_t ThresholdPrefixLength(SetMeasure measure, size_t len, size_t q,
                             double threshold) {
  switch (measure) {
    case SetMeasure::kJaccard:
      return TruncatedPrefixLength<SetMeasure::kJaccard>(len, q, threshold);
    case SetMeasure::kCosine:
      return TruncatedPrefixLength<SetMeasure::kCosine>(len, q, threshold);
    case SetMeasure::kDice:
      return TruncatedPrefixLength<SetMeasure::kDice>(len, q, threshold);
    case SetMeasure::kOverlapCoefficient:
      return TruncatedPrefixLength<SetMeasure::kOverlapCoefficient>(
          len, q, threshold);
  }
  MC_CHECK(false) << "unknown measure";
  return len;
}

TopKList BruteForceTopK(const ConfigView& view, size_t k, SetMeasure measure,
                        const CandidateSet* exclude, size_t min_overlap) {
  TopKList topk(k);
  // Batch one probe row against all of table B through the kernel plane's
  // OverlapMany: one dispatch per probe, and the probe span stays
  // cache-resident across candidates. Iteration (and thus tie handling in
  // TopKList::Add) is unchanged: a outer ascending, b inner ascending.
  std::vector<simd::RankSpan> candidates(view.rows_b());
  for (size_t b = 0; b < view.rows_b(); ++b) {
    const TokenSpan tb = view.b(b);
    candidates[b] = {tb.data, tb.length};
  }
  std::vector<size_t> overlaps(view.rows_b());
  for (size_t a = 0; a < view.rows_a(); ++a) {
    const TokenSpan ta = view.a(a);
    if (ta.empty()) continue;
    simd::OverlapMany({ta.data, ta.length}, candidates.data(),
                      candidates.size(), overlaps.data());
    for (size_t b = 0; b < view.rows_b(); ++b) {
      if (candidates[b].length == 0) continue;
      PairId pair = MakePairId(static_cast<RowId>(a), static_cast<RowId>(b));
      if (exclude != nullptr && exclude->Contains(pair)) continue;
      const size_t overlap = overlaps[b];
      if (overlap < min_overlap) continue;
      topk.Add(pair, SetSimilarityFromCounts(measure, ta.size(),
                                             candidates[b].size(), overlap));
    }
  }
  return topk;
}

size_t SelectQByRace(const ConfigView& view, SetMeasure measure,
                     const CandidateSet* exclude, size_t max_q,
                     size_t probe_k, const RunContext& run_context) {
  MC_CHECK_GE(max_q, 1u);
  // Race each q for a top-probe_k list (paper §4.1: "one q value for each
  // core, for k = 50") and pick the minimum elapsed time, which selects the
  // same winner as a first-past-the-post race without having to kill losing
  // threads. Concurrency is capped at the hardware so candidate runs do not
  // oversubscribe the machine and distort each other's timings; a run
  // truncated by the deadline finished early *because it did less work*, so
  // it is disqualified rather than crowned.
  const size_t hardware =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  std::vector<double> elapsed(max_q, 0.0);
  std::vector<char> truncated(max_q, 0);
  {
    ThreadPool pool(std::min(max_q, hardware), "mc-qrace");
    for (size_t q = 1; q <= max_q; ++q) {
      pool.Submit([&, q] {
        Stopwatch watch;
        TopKJoinOptions options;
        options.k = probe_k;
        options.measure = measure;
        options.q = q;
        options.exclude = exclude;
        options.run_context = run_context;
        TopKJoinStats stats;
        RunTopKJoin(view, options, nullptr, nullptr, nullptr, &stats);
        elapsed[q - 1] = watch.ElapsedSeconds();
        truncated[q - 1] = stats.truncated ? 1 : 0;
      });
    }
    Status status = pool.Wait();
    MC_CHECK(status.ok()) << status.message();
  }
  size_t best_q = 0;  // 0 = no eligible run yet.
  for (size_t q = 1; q <= max_q; ++q) {
    if (truncated[q - 1]) continue;
    if (best_q == 0 || elapsed[q - 1] < elapsed[best_q - 1]) best_q = q;
  }
  // All runs truncated (deadline expired): fall back to the conservative
  // exact-join default instead of crowning whichever run was cut shortest.
  return best_q == 0 ? 1 : best_q;
}

}  // namespace mc
