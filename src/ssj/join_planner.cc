#include "ssj/join_planner.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "mem/topology.h"
#include "ssj/topk_join.h"
#include "ssj/topk_list.h"

namespace mc {

namespace {

// Fixed seed when neither PlannerOptions::seed nor MC_PLANNER_SEED is set
// (the golden-ratio constant; any fixed odd value works).
constexpr uint64_t kDefaultPlannerSeed = 0x9E3779B97F4A7C15ull;

// Auto sample sizing: pick the rate so the systematic sample holds about
// this many table-A rows. Large enough for the k-th score and the count
// extrapolation to be stable; small enough that probing every candidate q
// stays well under one full join — probe cost is dominated by pair-granular
// work in the (sampled A x sampled B) space and so shrinks quadratically
// with the rate.
constexpr size_t kTargetSampleRows = 256;

// Cost-model weights live in CostWeights (join_planner.h): an event is a
// heap pop plus an index append; a probe pays the positional bound and
// (often) a short prefix merge; a scored pair pays a full-span merge whose
// length scales with the mean tuple length. The weights need only rank
// plans correctly, not predict wall time; for a fixed weight vector the
// argmin — and hence the plan — stays deterministic, unlike the wall-clock
// race it replaced.

// Threshold-driver promotion cap: a hybrid-eligible plan runs the heap-free
// threshold driver only when at most this fraction of both tables' tokens
// survives prefix truncation at the sampled threshold. Above it the
// truncation strips too little for the up-front index build to beat the
// heap-driven prefilter pass, which shares the bound but keeps lazy
// extension scheduling.
constexpr double kMaxThresholdPrefixFraction = 0.75;

// A candidate q must be reachable by at least this fraction of table-A
// rows (CorpusPlannerStats::q_coverage_a); a q beyond most rows' length
// would "win" the cost comparison by answering a much smaller query space.
constexpr double kMinQCoverage = 0.5;

// Probe rank for a 1-in-N systematic sample: a probe joins the sampled
// table-A rows against the *same-residue* sampled table-B rows (the 2-D
// shard form of RunTopKJoinShard), so on row-aligned corpora the sample
// still holds about k/N of the full run's top-k pairs and the probe runs
// at ceil(k / N) — its k-th score then tracks the population k-th instead
// of a far weaker sample-at-full-k bound. Sampling both event streams is
// what makes a probe cost ~1/N of a full join: A-only sampling leaves the
// whole table-B event stream in the heap, and with the weak bound of a
// thinned pair space every probe drains it.
size_t ProbeK(size_t k, size_t rate) { return (k + rate - 1) / rate; }

// Hybrid switch: the sampled k-th score counts as stabilized when the full
// sample's k-th exceeds the nested half sample's by at most this relative
// tolerance. A stable k-th means doubling the sample barely moved the
// boundary, so the full run's k-th is unlikely to sit far above it — and
// the threshold it seeds will be reached (no restart).
constexpr double kKthStabilityTolerance = 0.05;

// Shard-count hint: one shard per this many extrapolated events, so small
// joins are not decomposed into shards that mostly re-walk table B.
constexpr size_t kMinEventsPerShard = 1u << 18;

}  // namespace

uint64_t PlannerSeedFromEnv() {
  const char* env = std::getenv("MC_PLANNER_SEED");
  if (env == nullptr || *env == '\0') return kDefaultPlannerSeed;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env) return kDefaultPlannerSeed;
  return static_cast<uint64_t>(value);
}

JoinPlan PlanTopKJoin(const SsjCorpus& corpus, const ConfigView& view,
                      const PlannerOptions& options) {
  JoinPlan plan;
  const CorpusPlannerStats& stats = corpus.PlannerStats();
  plan.stats_generation = stats.generation;
  plan.seed = options.seed != 0 ? options.seed : PlannerSeedFromEnv();

  const size_t rows_a = view.rows_a();
  if (rows_a == 0 || view.rows_b() == 0 || options.k == 0) {
    plan.cost_per_q.assign(1, 0.0);
    return plan;  // Nothing to join; the conservative default is free.
  }

  // Candidate q values, capped by the length distribution.
  size_t max_q = std::max<size_t>(1, std::min<size_t>(options.max_q, 4));
  while (max_q > 1 && stats.q_coverage_a[max_q - 1] < kMinQCoverage) {
    --max_q;
  }

  // Systematic sample: table-A rows congruent to (seed mod N). The probe
  // joins reuse the engine's shard decomposition, so a probe is a real
  // sub-join — same bounds, same counters, same arithmetic — over a
  // sample-row space whose q-eligible pairs are a subset of the full run's.
  size_t rate = options.sample_rate != 0
                    ? options.sample_rate
                    : std::max<size_t>(1, rows_a / kTargetSampleRows);
  rate = std::min(rate, rows_a);
  const size_t offset = plan.seed % rate;
  plan.sample_rate = rate;
  plan.sample_rows = (rows_a - offset + rate - 1) / rate;

  const double mean_len = (stats.mean_tokens_a + stats.mean_tokens_b) / 2.0;
  // Extrapolation: events are per (row, position), one stream per side,
  // each thinned by N — so event counts scale by N. Pair-granular counts
  // (probes, scored) live in the (sampled A x sampled B) space and scale
  // by N^2.
  const double scale = static_cast<double>(rate);
  const double pair_scale = scale * scale;
  // B-side sample offset: the *same* residue as table A, deliberately — on
  // corpora whose matching rows are index-aligned (every generated bench
  // dataset), a different residue would exclude each sampled A row's
  // partner from the B sample and blind the probes to the score
  // distribution's head.
  const size_t b_rate = std::min<size_t>(rate, view.rows_b());
  const size_t b_offset = offset % b_rate;
  std::vector<TopKJoinStats> probe_stats(max_q);
  std::vector<TopKList> probe_lists;
  probe_lists.reserve(max_q);
  plan.cost_per_q.assign(max_q, 0.0);
  const size_t probe_k = ProbeK(options.k, rate);
  for (size_t q = 1; q <= max_q; ++q) {
    TopKJoinOptions probe;
    probe.k = probe_k;
    probe.measure = options.measure;
    probe.q = q;
    probe.exclude = options.exclude;
    probe.run_context = options.run_context;
    probe_lists.push_back(RunTopKJoinShard(view, probe, offset, rate,
                                           /*scorer=*/nullptr,
                                           /*seed=*/nullptr,
                                           &probe_stats[q - 1], b_offset,
                                           b_rate));
    if (probe_stats[q - 1].truncated) plan.truncated = true;
  }
  // The q ladder is priced with the PINNED default weights, never the
  // calibrated fit: q is the one plan knob that changes which pairs are
  // eligible at all (a pair sharing fewer than q tokens is invisible to
  // the q-overlap index), so a fit drifting with observed wall times must
  // never flip it — plans, and with them the joined lists, stay
  // bit-identical across calibration states. The calibrated weights steer
  // the output-neutral decisions below (shard decomposition).
  const CostWeights pinned;
  auto modeled_cost = [&](const TopKJoinStats& s, const CostWeights& w) {
    const double events = static_cast<double>(s.events_popped);
    const double probes =
        static_cast<double>(s.pairs_pruned + s.pairs_scored);
    const double scored = static_cast<double>(s.pairs_scored);
    return scale * events * w.event +
           pair_scale * (probes * w.probe +
                         scored * (w.score_base + w.score_token * mean_len));
  };
  for (size_t q = 1; q <= max_q; ++q) {
    plan.cost_per_q[q - 1] = modeled_cost(probe_stats[q - 1], pinned);
  }
  if (plan.truncated) {
    // Deadline hit mid-sample: mirror the race's all-truncated fallback
    // (conservative exact-join default) instead of trusting partial counts.
    plan.q = 1;
    plan.shards = 1;
    return plan;
  }

  size_t best_q = 1;
  for (size_t q = 2; q <= max_q; ++q) {
    if (plan.cost_per_q[q - 1] < plan.cost_per_q[best_q - 1]) best_q = q;
  }
  plan.q = best_q;
  const TopKJoinStats& best = probe_stats[best_q - 1];
  plan.est_events = static_cast<uint64_t>(
      scale * static_cast<double>(best.events_popped));
  plan.est_scored = static_cast<uint64_t>(
      pair_scale * static_cast<double>(best.pairs_scored));

  // Shard hint from the extrapolated event volume. Sharding splits only the
  // table-A event stream (each shard re-walks table B), so shards beyond
  // what the events fill — or beyond the machine — only add overhead.
  // This is where the calibrated weights bite: the fit rescales the modeled
  // cost of the chosen q relative to the pinned defaults, and a join whose
  // probes/scores got relatively costlier fills a shard with fewer events.
  // Safe by construction — the shard merge is canonical at every count, so
  // calibration moves wall time, never bytes; with default weights the
  // ratio is exactly 1 and the hint matches the uncalibrated planner.
  const size_t max_shards =
      options.max_shards != 0
          ? options.max_shards
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  const double pinned_cost = plan.cost_per_q[best_q - 1];
  const double calibrated_cost =
      modeled_cost(probe_stats[best_q - 1], options.weights);
  const double cost_scale =
      pinned_cost > 0.0
          ? std::clamp(calibrated_cost / pinned_cost, 1.0 / 16.0, 16.0)
          : 1.0;
  plan.shards = std::max<size_t>(
      1, std::min<size_t>(
             max_shards,
             static_cast<size_t>(static_cast<double>(plan.est_events) *
                                 cost_scale / kMinEventsPerShard)));
  // On multi-node machines the two-level executor folds the shards into one
  // A-row window per NUMA node; rounding the hint up to a node multiple
  // keeps those per-node groups equal-sized (no node finishing early and
  // idling its memory). Only when the join is worth decomposing at all, and
  // never past the machine cap. The hint moves work placement, not results.
  const size_t nodes = mem::SystemTopology::Get().num_nodes();
  if (plan.shards > 1 && nodes > 1) {
    const size_t rounded = ((plan.shards + nodes - 1) / nodes) * nodes;
    plan.shards = std::min(std::max<size_t>(rounded, nodes), max_shards);
  }

  // Hybrid decision: seed the threshold pass with the sampled k-th estimate
  // when it stabilized across nested samples. The full sample's rank-scaled
  // k-th (ceil(k/N)-th of a 1-in-N sample) estimates the true k-th; the
  // nested half sample (same offset, doubled rate, rank rescaled) estimates
  // the same quantile from half the rows. When the two agree the estimate
  // is trustworthy and the threshold phase ends with k-th >= threshold; when
  // the estimate still overshoots the true k-th, the engine's restart path
  // re-runs unbounded and the output stays bit-identical — the hybrid seed
  // is a pure performance hint. Taking the min of the two estimates biases
  // the seed low, trading a little pruning for restart headroom. Only
  // planned for single-shard execution — a shard's sub-space k-th can sit
  // below the full-space estimate, which would force per-shard restarts.
  if (options.enable_hybrid && plan.shards == 1 && rate * 2 <= rows_a) {
    const TopKList& full_sample = probe_lists[best_q - 1];
    if (full_sample.full()) {
      plan.sampled_kth = full_sample.KthScore();
      TopKJoinOptions probe;
      probe.k = ProbeK(options.k, rate * 2);
      probe.measure = options.measure;
      probe.q = best_q;
      probe.exclude = options.exclude;
      probe.run_context = options.run_context;
      TopKJoinStats half_stats;
      const size_t half_b_rate = std::min<size_t>(rate * 2, view.rows_b());
      TopKList half_sample =
          RunTopKJoinShard(view, probe, offset, rate * 2, /*scorer=*/nullptr,
                           /*seed=*/nullptr, &half_stats,
                           offset % half_b_rate, half_b_rate);
      if (!half_stats.truncated && half_sample.full()) {
        plan.half_sample_kth = half_sample.KthScore();
        const double drift =
            std::abs(plan.sampled_kth - plan.half_sample_kth);
        if (drift <=
            kKthStabilityTolerance * std::max(plan.sampled_kth, 1e-12)) {
          plan.hybrid = true;
          plan.prefilter_threshold =
              std::min(plan.sampled_kth, plan.half_sample_kth);
          plan.mode = JoinExecMode::kHybridPrefilter;
          // Threshold-driver promotion: estimate how much of both tables'
          // token mass the fixed bound strips. The truncated prefix length
          // is a pure function of (measure, length, q, threshold), so the
          // fraction — and hence the mode — is deterministic for a fixed
          // plan.
          size_t kept = 0;
          size_t total = 0;
          for (size_t row = 0; row < view.rows_a(); ++row) {
            const size_t len = view.a(row).size();
            kept += ThresholdPrefixLength(options.measure, len, best_q,
                                          plan.prefilter_threshold);
            total += len;
          }
          for (size_t row = 0; row < view.rows_b(); ++row) {
            const size_t len = view.b(row).size();
            kept += ThresholdPrefixLength(options.measure, len, best_q,
                                          plan.prefilter_threshold);
            total += len;
          }
          plan.threshold_prefix_fraction =
              total == 0 ? 1.0
                         : static_cast<double>(kept) /
                               static_cast<double>(total);
          if (options.enable_threshold &&
              plan.threshold_prefix_fraction <= kMaxThresholdPrefixFraction) {
            plan.mode = JoinExecMode::kThreshold;
          }
        }
      }
    }
  }
  return plan;
}

const char* JoinExecModeName(JoinExecMode mode) {
  switch (mode) {
    case JoinExecMode::kTopK:
      return "topk";
    case JoinExecMode::kHybridPrefilter:
      return "hybrid";
    case JoinExecMode::kThreshold:
      return "threshold";
  }
  return "unknown";
}

}  // namespace mc
