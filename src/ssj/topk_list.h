#ifndef MATCHCATCHER_SSJ_TOPK_LIST_H_
#define MATCHCATCHER_SSJ_TOPK_LIST_H_

#include <cstddef>
#include <vector>

#include "blocking/pair.h"
#include "util/flat_hash.h"

namespace mc {

/// A tuple pair with its similarity score under some config.
struct ScoredPair {
  PairId pair = 0;
  double score = 0.0;
};

/// Bounded top-k list of scored pairs, ordered by (score desc, pair asc).
/// Supports the pruning bound (k-th score) that drives top-k join
/// termination, and deduplicates pairs so that top-k reuse/merging (paper
/// §4.2) cannot double-count a pair.
class TopKList {
 public:
  explicit TopKList(size_t k);

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() == k_; }

  /// Score of the current k-th (worst kept) pair, or -1 when not yet full.
  /// Any candidate with score <= this bound (when full) cannot improve the
  /// list, because ties never replace kept pairs.
  double KthScore() const { return full() ? heap_[0].score : -1.0; }

  /// True iff `pair` is currently in the list.
  bool Contains(PairId pair) const { return positions_.Contains(pair); }

  /// Offers (pair, score). Returns true iff the pair is in the list after
  /// the call — which covers three cases: the pair was inserted, the pair
  /// was already present (its stored score is updated to `score` in place
  /// and re-sifted, so a re-offer with a corrected score — e.g. a parent
  /// list re-adjusted to this config arriving after the pair was scored
  /// directly — never leaves a stale score behind), or the list was not yet
  /// full. Returns false only when the list is full and `score` does not
  /// beat the k-th entry under the (score desc, pair asc) order.
  bool Add(PairId pair, double score);

  /// Offers every entry of `other` (used when a child config merges a late
  /// parent's re-adjusted list, §4.2).
  void MergeFrom(const std::vector<ScoredPair>& other);

  /// Entries ordered by (score desc, pair asc).
  std::vector<ScoredPair> SortedDescending() const;

  /// Unordered snapshot of the entries.
  const std::vector<ScoredPair>& Entries() const { return heap_; }

 private:
  // heap_ is a min-heap on (score asc, pair desc): heap_[0] is the entry
  // that would be evicted next. positions_ maps pair -> index in heap_; it
  // holds at most k entries, so the bounded flat map stays cache-resident
  // and the membership probe paid by every scored pair is cheap.
  bool WorseThan(const ScoredPair& x, const ScoredPair& y) const;
  void SiftUp(size_t index);
  void SiftDown(size_t index);

  size_t k_;
  std::vector<ScoredPair> heap_;
  PairPositionMap positions_;
};

}  // namespace mc

#endif  // MATCHCATCHER_SSJ_TOPK_LIST_H_
