#ifndef MATCHCATCHER_SSJ_TOPK_LIST_H_
#define MATCHCATCHER_SSJ_TOPK_LIST_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "blocking/pair.h"

namespace mc {

/// A tuple pair with its similarity score under some config.
struct ScoredPair {
  PairId pair = 0;
  double score = 0.0;
};

/// Bounded top-k list of scored pairs, ordered by (score desc, pair asc).
/// Supports the pruning bound (k-th score) that drives top-k join
/// termination, and deduplicates pairs so that top-k reuse/merging (paper
/// §4.2) cannot double-count a pair.
class TopKList {
 public:
  explicit TopKList(size_t k);

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() == k_; }

  /// Score of the current k-th (worst kept) pair, or -1 when not yet full.
  /// Any candidate with score <= this bound (when full) cannot improve the
  /// list, because ties never replace kept pairs.
  double KthScore() const { return full() ? heap_[0].score : -1.0; }

  /// True iff `pair` is currently in the list.
  bool Contains(PairId pair) const { return positions_.count(pair) > 0; }

  /// Offers (pair, score). Returns true iff the pair is now in the list.
  /// A pair already present is left untouched (scores are deterministic per
  /// config, so a re-offer always carries the same score).
  bool Add(PairId pair, double score);

  /// Offers every entry of `other` (used when a child config merges a late
  /// parent's re-adjusted list, §4.2).
  void MergeFrom(const std::vector<ScoredPair>& other);

  /// Entries ordered by (score desc, pair asc).
  std::vector<ScoredPair> SortedDescending() const;

  /// Unordered snapshot of the entries.
  const std::vector<ScoredPair>& Entries() const { return heap_; }

 private:
  // heap_ is a min-heap on (score asc, pair desc): heap_[0] is the entry
  // that would be evicted next. positions_ maps pair -> index in heap_.
  bool WorseThan(const ScoredPair& x, const ScoredPair& y) const;
  void SiftUp(size_t index);
  void SiftDown(size_t index);

  size_t k_;
  std::vector<ScoredPair> heap_;
  std::unordered_map<PairId, size_t, PairIdHash> positions_;
};

}  // namespace mc

#endif  // MATCHCATCHER_SSJ_TOPK_LIST_H_
