#ifndef MATCHCATCHER_SSJ_TOPK_DELTA_H_
#define MATCHCATCHER_SSJ_TOPK_DELTA_H_

#include <cstddef>
#include <vector>

#include "blocking/candidate_set.h"
#include "blocking/pair.h"
#include "ssj/corpus.h"
#include "ssj/topk_list.h"
#include "text/similarity.h"
#include "util/run_context.h"

namespace mc {

/// Options for RepairTopKList. Mirrors the TopKJoinOptions the original
/// list was produced with — the repair must search the same pair space
/// under the same order to reproduce the join's canonical result.
struct TopKRepairOptions {
  size_t k = 1000;
  SetMeasure measure = SetMeasure::kJaccard;
  /// The q the original join ran with (q-restricted candidate space: pairs
  /// sharing fewer than q tokens are only reachable through the seed).
  size_t q = 1;
  const CandidateSet* exclude = nullptr;
  RunContext run_context;
};

/// Where RepairTopKList spent its effort (and whether the incremental path
/// sufficed).
struct TopKRepairStats {
  /// Touched-row pairs whose overlap was batch-computed.
  size_t pairs_examined = 0;
  /// Pairs that cleared the q gate and were scored + offered.
  size_t pairs_rescored = 0;
  /// Old entries carried over without re-scoring (both rows untouched).
  size_t pairs_carried = 0;
  /// True when the incremental merge could not prove exactness and the
  /// repair fell back to a full RunTopKJoin.
  bool fell_back = false;
};

/// Repairs one config's canonical top-k list after a row delta, given the
/// *patched* view (built over the patched corpus) and the sorted touched
/// row sets of each side (mutated, deleted, or appended rows).
///
/// The incremental path merges three exact candidate sources:
///  1. old entries whose rows are both untouched and whose overlap still
///     clears the q gate (their scores are unchanged — scores are pure
///     functions of the rows' token spans);
///  2. every (touched_a x B) and ((A \ touched_a) x touched_b) pair with
///     overlap >= max(q, 1), overlap-counted with the batched SIMD kernel
///     and scored from counts;
///  3. `seed` — the parent config's repaired list re-adjusted to this view
///     (exactly the seed a from-scratch joint execution would use).
///
/// The merge is provably the canonical top-k when the old list was not
/// full (the old candidate space was exhausted) or when the merged k-th
/// boundary is not-after the old k-th boundary under (score desc, pair
/// asc) — any untouched pair absent from the old list sits strictly after
/// the old boundary and cannot enter. Otherwise the repair falls back to
/// RunTopKJoin over the patched view, which is exact by construction; the
/// returned list is the canonical top-k either way, bit-identical to a
/// from-scratch rebuild.
TopKList RepairTopKList(const ConfigView& view,
                        const std::vector<ScoredPair>& old_list,
                        const std::vector<RowId>& touched_a,
                        const std::vector<RowId>& touched_b,
                        const TopKRepairOptions& options,
                        const std::vector<ScoredPair>* seed = nullptr,
                        TopKRepairStats* stats = nullptr);

}  // namespace mc

#endif  // MATCHCATCHER_SSJ_TOPK_DELTA_H_
