#ifndef MATCHCATCHER_LEARN_RANDOM_FOREST_H_
#define MATCHCATCHER_LEARN_RANDOM_FOREST_H_

#include <cstddef>
#include <vector>

#include "learn/decision_tree.h"
#include "learn/features.h"

namespace mc {

class ThreadPool;

struct ForestParams {
  size_t num_trees = 32;
  TreeParams tree;
  uint64_t seed = 1234;
};

/// Confidence and controversy of one sample, produced by a single forest
/// traversal (see RandomForest::Predict).
struct ForestPrediction {
  /// Fraction of trees voting match.
  double confidence = 0.0;
  /// |confidence - 0.5| — smaller is more controversial (the active-learning
  /// selection criterion).
  double controversy = 0.0;
};

/// Bagged random forest of CART trees — the classifier F of paper §5. The
/// "positive prediction confidence" of a pair is "the fraction of decision
/// trees in F that predict the item as a match".
class RandomForest {
 public:
  RandomForest() = default;

  /// Trains on the full (features, labels) set with bootstrap sampling per
  /// tree. Requires at least one sample of each class for meaningful output
  /// (the verifier guarantees this before first training).
  static RandomForest Train(const std::vector<FeatureVector>& features,
                            const std::vector<int>& labels,
                            const ForestParams& params);

  bool trained() const { return !trees_.empty(); }
  size_t num_trees() const { return trees_.size(); }

  /// Fraction of trees voting match.
  double Confidence(const FeatureVector& sample) const;

  /// |confidence - 0.5| — smaller is more controversial (the active-learning
  /// selection criterion).
  double Controversy(const FeatureVector& sample) const;

  /// Both quantities from one walk over the trees — callers needing
  /// confidence and controversy of the same sample (the verifier's active
  /// batch) pay a single traversal instead of two. Bit-identical to the
  /// separate getters (same integer vote count through the same division).
  ForestPrediction Predict(const FeatureVector& sample) const;

  /// Batched fused prediction over a row-major feature matrix
  /// (num_samples x num_features): confidence[i] / controversy[i] get the
  /// prediction of row i. One pass per (tree, sample) — trees outer within a
  /// chunk of samples, so a tree's nodes stay cache-resident across the
  /// chunk. `num_threads > 1` splits the sample range over a ThreadPool;
  /// outputs are disjoint per sample, so results are bit-identical for every
  /// thread count (and to the single-sample getters).
  void PredictBatch(const double* matrix, size_t num_samples,
                    size_t num_features, size_t num_threads,
                    double* confidence, double* controversy) const;

  /// Same, but reusing a caller-owned pool (nullptr = sequential). Callers
  /// scoring many batches (the verifier loop) avoid spawning workers per
  /// call.
  void PredictBatch(const double* matrix, size_t num_samples,
                    size_t num_features, ThreadPool* pool, double* confidence,
                    double* controversy) const;

 private:
  std::vector<DecisionTree> trees_;
};

}  // namespace mc

#endif  // MATCHCATCHER_LEARN_RANDOM_FOREST_H_
