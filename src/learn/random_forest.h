#ifndef MATCHCATCHER_LEARN_RANDOM_FOREST_H_
#define MATCHCATCHER_LEARN_RANDOM_FOREST_H_

#include <cstddef>
#include <vector>

#include "learn/decision_tree.h"
#include "learn/features.h"

namespace mc {

struct ForestParams {
  size_t num_trees = 32;
  TreeParams tree;
  uint64_t seed = 1234;
};

/// Bagged random forest of CART trees — the classifier F of paper §5. The
/// "positive prediction confidence" of a pair is "the fraction of decision
/// trees in F that predict the item as a match".
class RandomForest {
 public:
  RandomForest() = default;

  /// Trains on the full (features, labels) set with bootstrap sampling per
  /// tree. Requires at least one sample of each class for meaningful output
  /// (the verifier guarantees this before first training).
  static RandomForest Train(const std::vector<FeatureVector>& features,
                            const std::vector<int>& labels,
                            const ForestParams& params);

  bool trained() const { return !trees_.empty(); }
  size_t num_trees() const { return trees_.size(); }

  /// Fraction of trees voting match.
  double Confidence(const FeatureVector& sample) const;

  /// |confidence - 0.5| — smaller is more controversial (the active-learning
  /// selection criterion).
  double Controversy(const FeatureVector& sample) const;

 private:
  std::vector<DecisionTree> trees_;
};

}  // namespace mc

#endif  // MATCHCATCHER_LEARN_RANDOM_FOREST_H_
