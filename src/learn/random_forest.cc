#include "learn/random_forest.h"

#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace mc {

RandomForest RandomForest::Train(const std::vector<FeatureVector>& features,
                                 const std::vector<int>& labels,
                                 const ForestParams& params) {
  MC_CHECK_EQ(features.size(), labels.size());
  MC_CHECK(!features.empty());
  RandomForest forest;
  forest.trees_.reserve(params.num_trees);
  Rng rng(params.seed);
  const size_t n = features.size();
  std::vector<size_t> sample(n);
  for (size_t t = 0; t < params.num_trees; ++t) {
    for (size_t i = 0; i < n; ++i) {
      sample[i] = rng.NextBelow(n);  // Bootstrap with replacement.
    }
    forest.trees_.push_back(
        DecisionTree::Train(features, labels, sample, params.tree, rng));
  }
  return forest;
}

double RandomForest::Confidence(const FeatureVector& sample) const {
  MC_CHECK(trained());
  size_t votes = 0;
  for (const DecisionTree& tree : trees_) {
    if (tree.PredictMatch(sample)) ++votes;
  }
  return static_cast<double>(votes) / static_cast<double>(trees_.size());
}

double RandomForest::Controversy(const FeatureVector& sample) const {
  return std::abs(Confidence(sample) - 0.5);
}

}  // namespace mc
