#include "learn/random_forest.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace mc {

RandomForest RandomForest::Train(const std::vector<FeatureVector>& features,
                                 const std::vector<int>& labels,
                                 const ForestParams& params) {
  MC_CHECK_EQ(features.size(), labels.size());
  MC_CHECK(!features.empty());
  RandomForest forest;
  forest.trees_.reserve(params.num_trees);
  Rng rng(params.seed);
  const size_t n = features.size();
  std::vector<size_t> sample(n);
  for (size_t t = 0; t < params.num_trees; ++t) {
    for (size_t i = 0; i < n; ++i) {
      sample[i] = rng.NextBelow(n);  // Bootstrap with replacement.
    }
    forest.trees_.push_back(
        DecisionTree::Train(features, labels, sample, params.tree, rng));
  }
  return forest;
}

double RandomForest::Confidence(const FeatureVector& sample) const {
  return Predict(sample).confidence;
}

double RandomForest::Controversy(const FeatureVector& sample) const {
  return Predict(sample).controversy;
}

ForestPrediction RandomForest::Predict(const FeatureVector& sample) const {
  MC_CHECK(trained());
  size_t votes = 0;
  for (const DecisionTree& tree : trees_) {
    if (tree.PredictMatch(sample)) ++votes;
  }
  ForestPrediction prediction;
  prediction.confidence =
      static_cast<double>(votes) / static_cast<double>(trees_.size());
  prediction.controversy = std::abs(prediction.confidence - 0.5);
  return prediction;
}

void RandomForest::PredictBatch(const double* matrix, size_t num_samples,
                                size_t num_features, size_t num_threads,
                                double* confidence, double* controversy) const {
  if (num_threads <= 1 || num_samples <= 1) {
    PredictBatch(matrix, num_samples, num_features,
                 static_cast<ThreadPool*>(nullptr), confidence, controversy);
    return;
  }
  ThreadPool pool(num_threads, "mc-forest");
  PredictBatch(matrix, num_samples, num_features, &pool, confidence,
               controversy);
}

void RandomForest::PredictBatch(const double* matrix, size_t num_samples,
                                size_t num_features, ThreadPool* pool,
                                double* confidence,
                                double* controversy) const {
  MC_CHECK(trained());
  if (num_samples == 0) return;
  const double total = static_cast<double>(trees_.size());
  // Per-sample integer votes make the result independent of chunking and
  // thread count: every partition sums the same per-tree hard votes.
  auto score_range = [&](size_t begin, size_t end) {
    // Trees outer, samples inner: one tree's node array stays cache-resident
    // while it sweeps the chunk's rows.
    std::vector<uint32_t> votes(end - begin, 0);
    for (const DecisionTree& tree : trees_) {
      for (size_t i = begin; i < end; ++i) {
        votes[i - begin] +=
            tree.PredictMatch(matrix + i * num_features, num_features);
      }
    }
    for (size_t i = begin; i < end; ++i) {
      const double c = static_cast<double>(votes[i - begin]) / total;
      confidence[i] = c;
      controversy[i] = std::abs(c - 0.5);
    }
  };
  const size_t threads =
      pool == nullptr ? 1 : std::min(pool->num_threads(), num_samples);
  if (threads <= 1) {
    score_range(0, num_samples);
    return;
  }
  // Contiguous sample ranges, one per worker; outputs are disjoint.
  const size_t chunk = (num_samples + threads - 1) / threads;
  for (size_t begin = 0; begin < num_samples; begin += chunk) {
    const size_t end = std::min(begin + chunk, num_samples);
    pool->Submit([=] { score_range(begin, end); });
  }
  const Status status = pool->Wait();
  MC_CHECK(status.ok()) << status.message();
}

}  // namespace mc
