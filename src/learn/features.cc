#include "learn/features.h"

#include <algorithm>
#include <cmath>

#include "text/normalize.h"
#include "text/similarity.h"
#include "text/tokenize.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace mc {

PairFeatureExtractor::PairFeatureExtractor(const Table* table_a,
                                           const Table* table_b)
    : table_a_(table_a), table_b_(table_b) {
  MC_CHECK(table_a_->schema() == table_b_->schema());
  plane_ = SharedTextPlane(*table_a_, *table_b_);
  if (plane_ != nullptr) {
    plane_side_a_ = table_a_->text_plane_side();
    plane_side_b_ = table_b_->text_plane_side();
    grams3_.resize(table_a_->num_columns(), nullptr);
  }
  const Schema& schema = table_a_->schema();
  for (size_t c = 0; c < schema.size(); ++c) {
    const std::string& name = schema.attribute(c).name;
    if (schema.attribute(c).type == AttributeType::kNumeric) {
      numeric_columns_.push_back(c);
      feature_names_.push_back(name + ":abs_diff");
      feature_names_.push_back(name + ":rel_diff");
      feature_names_.push_back(name + ":both_present");
    } else {
      string_columns_.push_back(c);
      if (plane_ != nullptr) {
        // Resolve the lazy 3-gram plane up front so Extract stays lock-free
        // on its hot path.
        grams3_[c] = plane_->QGramsForColumn(3, c);
      }
      feature_names_.push_back(name + ":jaccard_word");
      feature_names_.push_back(name + ":jaccard_3gram");
      feature_names_.push_back(name + ":cosine_word");
      feature_names_.push_back(name + ":overlap_coeff_word");
      feature_names_.push_back(name + ":edit_sim");
      feature_names_.push_back(name + ":both_present");
    }
  }
}

FeatureVector PairFeatureExtractor::Extract(PairId pair) const {
  FeatureVector features(num_features());
  ExtractInto(pair, features.data());
  return features;
}

void PairFeatureExtractor::ExtractInto(PairId pair, double* out) const {
  const size_t row_a = PairRowA(pair);
  const size_t row_b = PairRowB(pair);
  MC_CHECK_LT(row_a, table_a_->num_rows());
  MC_CHECK_LT(row_b, table_b_->num_rows());

  double* f = out;
  const Schema& schema = table_a_->schema();
  for (size_t c = 0; c < schema.size(); ++c) {
    if (schema.attribute(c).type == AttributeType::kNumeric) {
      std::optional<double> value_a = table_a_->NumericValue(row_a, c);
      std::optional<double> value_b = table_b_->NumericValue(row_b, c);
      if (value_a.has_value() && value_b.has_value()) {
        double abs_diff = std::abs(*value_a - *value_b);
        double magnitude = std::max(std::abs(*value_a), std::abs(*value_b));
        *f++ = abs_diff;
        *f++ = magnitude > 0.0 ? abs_diff / magnitude : 0.0;
        *f++ = 1.0;
      } else {
        *f++ = 0.0;
        *f++ = 0.0;
        *f++ = 0.0;
      }
    } else {
      bool present = !table_a_->IsMissing(row_a, c) &&
                     !table_b_->IsMissing(row_b, c);
      if (present && plane_ != nullptr) {
        // Span path: every quantity below comes from the tokenize-once
        // plane; no strings are tokenized per pair. Identical doubles to
        // the string path — all four set measures reduce to
        // SetSimilarityFromCounts over the same (|A|, |B|, overlap).
        CellSpan words_a = plane_->SortedRanks(plane_side_a_, row_a, c);
        CellSpan words_b = plane_->SortedRanks(plane_side_b_, row_b, c);
        const size_t word_overlap = SortedSpanOverlap(words_a, words_b);
        *f++ = SetSimilarityFromCounts(SetMeasure::kJaccard, words_a.size(),
                                       words_b.size(), word_overlap);
        CellSpan grams_a = grams3_[c]->Row(plane_side_a_, row_a);
        CellSpan grams_b = grams3_[c]->Row(plane_side_b_, row_b);
        *f++ = SetSimilarityFromCounts(SetMeasure::kJaccard, grams_a.size(),
                                       grams_b.size(),
                                       SortedSpanOverlap(grams_a, grams_b));
        *f++ = SetSimilarityFromCounts(SetMeasure::kCosine, words_a.size(),
                                       words_b.size(), word_overlap);
        *f++ = SetSimilarityFromCounts(SetMeasure::kOverlapCoefficient,
                                       words_a.size(), words_b.size(),
                                       word_overlap);
        std::string_view norm_a =
            plane_->NormalizedValue(plane_side_a_, row_a, c)
                .substr(0, kEditPrefixLimit);
        std::string_view norm_b =
            plane_->NormalizedValue(plane_side_b_, row_b, c)
                .substr(0, kEditPrefixLimit);
        *f++ = NormalizedEditSimilarity(norm_a, norm_b);
        *f++ = 1.0;
      } else if (present) {
        std::string_view value_a = table_a_->Value(row_a, c);
        std::string_view value_b = table_b_->Value(row_b, c);
        std::vector<std::string> words_a = DistinctWordTokens(value_a);
        std::vector<std::string> words_b = DistinctWordTokens(value_b);
        *f++ = JaccardSimilarity(words_a, words_b);
        *f++ = QGramJaccard(value_a, value_b, 3);
        *f++ = CosineSimilarity(words_a, words_b);
        *f++ = OverlapCoefficient(words_a, words_b);
        std::string norm_a = NormalizeForTokens(value_a).substr(
            0, kEditPrefixLimit);
        std::string norm_b = NormalizeForTokens(value_b).substr(
            0, kEditPrefixLimit);
        *f++ = NormalizedEditSimilarity(norm_a, norm_b);
        *f++ = 1.0;
      } else {
        for (int i = 0; i < 6; ++i) *f++ = 0.0;
      }
    }
  }
  MC_CHECK_EQ(static_cast<size_t>(f - out), num_features());
}

void PairFeatureExtractor::ExtractBatch(const PairId* pairs, size_t count,
                                        size_t num_threads,
                                        double* matrix) const {
  if (num_threads <= 1 || count <= 1) {
    ExtractBatch(pairs, count, static_cast<ThreadPool*>(nullptr), matrix);
    return;
  }
  ThreadPool pool(num_threads, "mc-feat");
  ExtractBatch(pairs, count, &pool, matrix);
}

void PairFeatureExtractor::ExtractBatch(const PairId* pairs, size_t count,
                                        ThreadPool* pool,
                                        double* matrix) const {
  const size_t nf = num_features();
  const size_t threads =
      pool == nullptr ? 1 : std::min(pool->num_threads(), count);
  if (threads <= 1) {
    for (size_t i = 0; i < count; ++i) ExtractInto(pairs[i], matrix + i * nf);
    return;
  }
  // Contiguous row ranges, one per worker; rows are disjoint writes.
  const size_t chunk = (count + threads - 1) / threads;
  for (size_t begin = 0; begin < count; begin += chunk) {
    const size_t end = std::min(begin + chunk, count);
    pool->Submit([this, pairs, matrix, nf, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        ExtractInto(pairs[i], matrix + i * nf);
      }
    });
  }
  const Status status = pool->Wait();
  MC_CHECK(status.ok()) << status.message();
}

}  // namespace mc
