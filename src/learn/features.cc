#include "learn/features.h"

#include <algorithm>
#include <cmath>

#include "text/normalize.h"
#include "text/similarity.h"
#include "text/tokenize.h"
#include "util/check.h"

namespace mc {

PairFeatureExtractor::PairFeatureExtractor(const Table* table_a,
                                           const Table* table_b)
    : table_a_(table_a), table_b_(table_b) {
  MC_CHECK(table_a_->schema() == table_b_->schema());
  plane_ = SharedTextPlane(*table_a_, *table_b_);
  if (plane_ != nullptr) {
    plane_side_a_ = table_a_->text_plane_side();
    plane_side_b_ = table_b_->text_plane_side();
    grams3_.resize(table_a_->num_columns(), nullptr);
  }
  const Schema& schema = table_a_->schema();
  for (size_t c = 0; c < schema.size(); ++c) {
    const std::string& name = schema.attribute(c).name;
    if (schema.attribute(c).type == AttributeType::kNumeric) {
      numeric_columns_.push_back(c);
      feature_names_.push_back(name + ":abs_diff");
      feature_names_.push_back(name + ":rel_diff");
      feature_names_.push_back(name + ":both_present");
    } else {
      string_columns_.push_back(c);
      if (plane_ != nullptr) {
        // Resolve the lazy 3-gram plane up front so Extract stays lock-free
        // on its hot path.
        grams3_[c] = plane_->QGramsForColumn(3, c);
      }
      feature_names_.push_back(name + ":jaccard_word");
      feature_names_.push_back(name + ":jaccard_3gram");
      feature_names_.push_back(name + ":cosine_word");
      feature_names_.push_back(name + ":overlap_coeff_word");
      feature_names_.push_back(name + ":edit_sim");
      feature_names_.push_back(name + ":both_present");
    }
  }
}

FeatureVector PairFeatureExtractor::Extract(PairId pair) const {
  const size_t row_a = PairRowA(pair);
  const size_t row_b = PairRowB(pair);
  MC_CHECK_LT(row_a, table_a_->num_rows());
  MC_CHECK_LT(row_b, table_b_->num_rows());

  FeatureVector features;
  features.reserve(num_features());
  const Schema& schema = table_a_->schema();
  for (size_t c = 0; c < schema.size(); ++c) {
    if (schema.attribute(c).type == AttributeType::kNumeric) {
      std::optional<double> value_a = table_a_->NumericValue(row_a, c);
      std::optional<double> value_b = table_b_->NumericValue(row_b, c);
      if (value_a.has_value() && value_b.has_value()) {
        double abs_diff = std::abs(*value_a - *value_b);
        double magnitude = std::max(std::abs(*value_a), std::abs(*value_b));
        features.push_back(abs_diff);
        features.push_back(magnitude > 0.0 ? abs_diff / magnitude : 0.0);
        features.push_back(1.0);
      } else {
        features.push_back(0.0);
        features.push_back(0.0);
        features.push_back(0.0);
      }
    } else {
      bool present = !table_a_->IsMissing(row_a, c) &&
                     !table_b_->IsMissing(row_b, c);
      if (present && plane_ != nullptr) {
        // Span path: every quantity below comes from the tokenize-once
        // plane; no strings are tokenized per pair. Identical doubles to
        // the string path — all four set measures reduce to
        // SetSimilarityFromCounts over the same (|A|, |B|, overlap).
        CellSpan words_a = plane_->SortedRanks(plane_side_a_, row_a, c);
        CellSpan words_b = plane_->SortedRanks(plane_side_b_, row_b, c);
        const size_t word_overlap = SortedSpanOverlap(words_a, words_b);
        features.push_back(SetSimilarityFromCounts(
            SetMeasure::kJaccard, words_a.size(), words_b.size(),
            word_overlap));
        CellSpan grams_a = grams3_[c]->Row(plane_side_a_, row_a);
        CellSpan grams_b = grams3_[c]->Row(plane_side_b_, row_b);
        features.push_back(SetSimilarityFromCounts(
            SetMeasure::kJaccard, grams_a.size(), grams_b.size(),
            SortedSpanOverlap(grams_a, grams_b)));
        features.push_back(SetSimilarityFromCounts(
            SetMeasure::kCosine, words_a.size(), words_b.size(),
            word_overlap));
        features.push_back(SetSimilarityFromCounts(
            SetMeasure::kOverlapCoefficient, words_a.size(), words_b.size(),
            word_overlap));
        std::string_view norm_a =
            plane_->NormalizedValue(plane_side_a_, row_a, c)
                .substr(0, kEditPrefixLimit);
        std::string_view norm_b =
            plane_->NormalizedValue(plane_side_b_, row_b, c)
                .substr(0, kEditPrefixLimit);
        features.push_back(NormalizedEditSimilarity(norm_a, norm_b));
        features.push_back(1.0);
      } else if (present) {
        std::string_view value_a = table_a_->Value(row_a, c);
        std::string_view value_b = table_b_->Value(row_b, c);
        std::vector<std::string> words_a = DistinctWordTokens(value_a);
        std::vector<std::string> words_b = DistinctWordTokens(value_b);
        features.push_back(JaccardSimilarity(words_a, words_b));
        features.push_back(QGramJaccard(value_a, value_b, 3));
        features.push_back(CosineSimilarity(words_a, words_b));
        features.push_back(OverlapCoefficient(words_a, words_b));
        std::string norm_a = NormalizeForTokens(value_a).substr(
            0, kEditPrefixLimit);
        std::string norm_b = NormalizeForTokens(value_b).substr(
            0, kEditPrefixLimit);
        features.push_back(NormalizedEditSimilarity(norm_a, norm_b));
        features.push_back(1.0);
      } else {
        for (int i = 0; i < 5; ++i) features.push_back(0.0);
        features.push_back(0.0);
      }
    }
  }
  MC_CHECK_EQ(features.size(), num_features());
  return features;
}

}  // namespace mc
