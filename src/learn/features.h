#ifndef MATCHCATCHER_LEARN_FEATURES_H_
#define MATCHCATCHER_LEARN_FEATURES_H_

#include <string>
#include <vector>

#include "blocking/pair.h"
#include "table/table.h"
#include "table/tokenized_table.h"

namespace mc {

class ThreadPool;

/// A pair's feature vector for the Match Verifier's random forest.
using FeatureVector = std::vector<double>;

/// Extracts similarity features for tuple pairs. Per non-numeric attribute:
/// word Jaccard, 3-gram Jaccard, word cosine, word overlap coefficient,
/// normalized edit similarity (on a bounded prefix — long descriptions would
/// make full edit distance quadratic in hundreds of characters), and a
/// both-present flag. Per numeric attribute: absolute difference, relative
/// difference, and a both-present flag. Missing values zero the similarity
/// features and the flag, letting trees learn "missing brand" style blocker
/// problems directly.
class PairFeatureExtractor {
 public:
  PairFeatureExtractor(const Table* table_a, const Table* table_b);

  size_t num_features() const { return feature_names_.size(); }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  FeatureVector Extract(PairId pair) const;

  /// Writes the features of `pair` into out[0..num_features()).
  void ExtractInto(PairId pair, double* out) const;

  /// Fills a row-major feature matrix (count x num_features()): row i gets
  /// the features of pairs[i]. `num_threads > 1` extracts rows in parallel
  /// over a ThreadPool — rows are disjoint writes and extraction is
  /// read-only over the tables/plane, so the matrix is bit-identical for
  /// every thread count. This is the once-per-iteration matrix build of the
  /// verifier's batched re-ranking.
  void ExtractBatch(const PairId* pairs, size_t count, size_t num_threads,
                    double* matrix) const;

  /// Same, but reusing a caller-owned pool (nullptr = sequential). Callers
  /// building matrices every iteration (the verifier loop) avoid spawning
  /// workers per call.
  void ExtractBatch(const PairId* pairs, size_t count, ThreadPool* pool,
                    double* matrix) const;

 private:
  static constexpr size_t kEditPrefixLimit = 30;

  const Table* table_a_;
  const Table* table_b_;
  // Shared text plane of the pair, when attached: Extract reads per-cell
  // spans instead of re-tokenizing both cell strings per call, so the
  // verifier's re-ranking iterations do zero tokenization. The 3-gram
  // planes of the string columns are resolved once here (they are lazy in
  // the TokenizedTable).
  const TokenizedTable* plane_ = nullptr;
  size_t plane_side_a_ = 0;
  size_t plane_side_b_ = 0;
  std::vector<const TokenizedTable::QGramColumn*> grams3_;  // By column.
  std::vector<std::string> feature_names_;
  std::vector<size_t> string_columns_;
  std::vector<size_t> numeric_columns_;
};

}  // namespace mc

#endif  // MATCHCATCHER_LEARN_FEATURES_H_
