#ifndef MATCHCATCHER_LEARN_FEATURES_H_
#define MATCHCATCHER_LEARN_FEATURES_H_

#include <string>
#include <vector>

#include "blocking/pair.h"
#include "table/table.h"

namespace mc {

/// A pair's feature vector for the Match Verifier's random forest.
using FeatureVector = std::vector<double>;

/// Extracts similarity features for tuple pairs. Per non-numeric attribute:
/// word Jaccard, 3-gram Jaccard, word cosine, word overlap coefficient,
/// normalized edit similarity (on a bounded prefix — long descriptions would
/// make full edit distance quadratic in hundreds of characters), and a
/// both-present flag. Per numeric attribute: absolute difference, relative
/// difference, and a both-present flag. Missing values zero the similarity
/// features and the flag, letting trees learn "missing brand" style blocker
/// problems directly.
class PairFeatureExtractor {
 public:
  PairFeatureExtractor(const Table* table_a, const Table* table_b);

  size_t num_features() const { return feature_names_.size(); }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  FeatureVector Extract(PairId pair) const;

 private:
  static constexpr size_t kEditPrefixLimit = 30;

  const Table* table_a_;
  const Table* table_b_;
  std::vector<std::string> feature_names_;
  std::vector<size_t> string_columns_;
  std::vector<size_t> numeric_columns_;
};

}  // namespace mc

#endif  // MATCHCATCHER_LEARN_FEATURES_H_
