#ifndef MATCHCATCHER_LEARN_DECISION_TREE_H_
#define MATCHCATCHER_LEARN_DECISION_TREE_H_

#include <cstddef>
#include <vector>

#include "learn/features.h"
#include "util/random.h"

namespace mc {

/// CART hyperparameters shared by trees and forests.
struct TreeParams {
  size_t max_depth = 8;
  size_t min_samples_leaf = 1;
  /// Features sampled per split; 0 = sqrt(num_features) (the random-forest
  /// default), SIZE_MAX-like large values = all features.
  size_t features_per_split = 0;
  /// Candidate thresholds per feature per split (quantile cuts); bounds the
  /// split search on large nodes.
  size_t max_thresholds = 32;
};

/// A binary classification tree trained with Gini impurity. Leaves store
/// the positive-class fraction of their training samples.
class DecisionTree {
 public:
  DecisionTree() = default;

  /// Trains on rows `indices` of (features, labels). labels are 0/1.
  static DecisionTree Train(const std::vector<FeatureVector>& features,
                            const std::vector<int>& labels,
                            const std::vector<size_t>& indices,
                            const TreeParams& params, Rng& rng);

  /// Positive-class probability estimate for `sample`.
  double PredictProbability(const FeatureVector& sample) const;

  /// Raw-row variant for the batch paths: `sample` points at one row of a
  /// row-major feature matrix with `num_features` columns (bounds-checked
  /// against the node's feature index like the vector overload).
  double PredictProbability(const double* sample, size_t num_features) const;

  /// Hard vote: probability >= 0.5.
  bool PredictMatch(const FeatureVector& sample) const {
    return PredictProbability(sample) >= 0.5;
  }

  /// Hard vote over a raw matrix row.
  bool PredictMatch(const double* sample, size_t num_features) const {
    return PredictProbability(sample, num_features) >= 0.5;
  }

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    // Internal: feature/threshold; leaf: feature == -1.
    int feature = -1;
    double threshold = 0.0;
    int left = -1;   // sample[feature] <= threshold.
    int right = -1;  // sample[feature] > threshold.
    double positive_fraction = 0.0;
  };

  int BuildNode(const std::vector<FeatureVector>& features,
                const std::vector<int>& labels, std::vector<size_t>& indices,
                size_t begin, size_t end, size_t depth,
                const TreeParams& params, Rng& rng);

  std::vector<Node> nodes_;
};

}  // namespace mc

#endif  // MATCHCATCHER_LEARN_DECISION_TREE_H_
