#include "learn/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace mc {

namespace {

double GiniImpurity(size_t positives, size_t total) {
  if (total == 0) return 0.0;
  double p = static_cast<double>(positives) / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

DecisionTree DecisionTree::Train(const std::vector<FeatureVector>& features,
                                 const std::vector<int>& labels,
                                 const std::vector<size_t>& indices,
                                 const TreeParams& params, Rng& rng) {
  MC_CHECK_EQ(features.size(), labels.size());
  MC_CHECK(!indices.empty());
  DecisionTree tree;
  std::vector<size_t> working = indices;
  tree.BuildNode(features, labels, working, 0, working.size(), 0, params,
                 rng);
  return tree;
}

int DecisionTree::BuildNode(const std::vector<FeatureVector>& features,
                            const std::vector<int>& labels,
                            std::vector<size_t>& indices, size_t begin,
                            size_t end, size_t depth,
                            const TreeParams& params, Rng& rng) {
  const size_t count = end - begin;
  size_t positives = 0;
  for (size_t i = begin; i < end; ++i) positives += labels[indices[i]];

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].positive_fraction =
      static_cast<double>(positives) / static_cast<double>(count);

  const bool pure = positives == 0 || positives == count;
  if (pure || depth >= params.max_depth ||
      count < 2 * params.min_samples_leaf) {
    return node_index;  // Leaf.
  }

  const size_t num_features = features[indices[begin]].size();
  size_t features_to_try = params.features_per_split;
  if (features_to_try == 0) {
    features_to_try = std::max<size_t>(
        1, static_cast<size_t>(std::sqrt(static_cast<double>(num_features))));
  }
  features_to_try = std::min(features_to_try, num_features);

  // Sample candidate features without replacement.
  std::vector<size_t> candidates(num_features);
  for (size_t f = 0; f < num_features; ++f) candidates[f] = f;
  for (size_t i = 0; i < features_to_try; ++i) {
    size_t j = i + rng.NextBelow(num_features - i);
    std::swap(candidates[i], candidates[j]);
  }

  double parent_impurity = GiniImpurity(positives, count);
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<double> values;
  values.reserve(count);
  for (size_t ci = 0; ci < features_to_try; ++ci) {
    size_t feature = candidates[ci];
    values.clear();
    for (size_t i = begin; i < end; ++i) {
      values.push_back(features[indices[i]][feature]);
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() < 2) continue;

    // Candidate thresholds: midpoints of up to max_thresholds quantile cuts.
    size_t cuts = std::min(params.max_thresholds, values.size() - 1);
    for (size_t t = 0; t < cuts; ++t) {
      size_t lo = (t * (values.size() - 1)) / cuts;
      double threshold = (values[lo] + values[lo + 1]) / 2.0;
      size_t left_count = 0, left_pos = 0;
      for (size_t i = begin; i < end; ++i) {
        if (features[indices[i]][feature] <= threshold) {
          ++left_count;
          left_pos += labels[indices[i]];
        }
      }
      size_t right_count = count - left_count;
      if (left_count < params.min_samples_leaf ||
          right_count < params.min_samples_leaf) {
        continue;
      }
      size_t right_pos = positives - left_pos;
      double weighted =
          (static_cast<double>(left_count) * GiniImpurity(left_pos,
                                                          left_count) +
           static_cast<double>(right_count) *
               GiniImpurity(right_pos, right_count)) /
          static_cast<double>(count);
      double gain = parent_impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = threshold;
      }
    }
  }

  if (best_feature < 0) return node_index;  // No useful split; stay a leaf.

  // Partition indices[begin, end) by the chosen split.
  auto middle = std::partition(
      indices.begin() + begin, indices.begin() + end, [&](size_t row) {
        return features[row][best_feature] <= best_threshold;
      });
  size_t split = static_cast<size_t>(middle - indices.begin());
  if (split == begin || split == end) return node_index;  // Degenerate.

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  int left = BuildNode(features, labels, indices, begin, split, depth + 1,
                       params, rng);
  int right = BuildNode(features, labels, indices, split, end, depth + 1,
                        params, rng);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

double DecisionTree::PredictProbability(const FeatureVector& sample) const {
  return PredictProbability(sample.data(), sample.size());
}

double DecisionTree::PredictProbability(const double* sample,
                                        size_t num_features) const {
  MC_CHECK(!nodes_.empty()) << "predict on untrained tree";
  int node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& current = nodes_[node];
    MC_CHECK_LT(static_cast<size_t>(current.feature), num_features);
    node = sample[current.feature] <= current.threshold ? current.left
                                                        : current.right;
  }
  return nodes_[node].positive_fraction;
}

}  // namespace mc
