#include "service/session_manager.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string_view>
#include <utility>

#include "core/session_io.h"
#include "mem/arena_stats.h"
#include "ssj/cost_calibrator.h"
#include "table/tokenized_table.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/thread_name.h"

namespace mc {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string CheckpointPath(const std::string& dir, uint64_t id) {
  return dir + "/session-" + std::to_string(id) + ".mc";
}

// Once this fraction of a plane's or corpus's dictionary is dead (df == 0
// through retired delta tokens), patching stops paying: compact by
// rebuilding from scratch instead. Content equality with a rebuild holds on
// either path.
constexpr double kDeadTokenCompactionThreshold = 0.5;

uint64_t MixFnv(uint64_t hash, uint64_t value) {
  for (size_t i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t MixFnvDouble(uint64_t hash, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return MixFnv(hash, bits);
}

// FNV-1a over the plan-affecting session options. Two sessions with equal
// signatures on the same plane generation compute byte-identical plans
// (PlanTopKJoin is deterministic for a fixed seed on a fixed corpus
// generation), so a memoized plan can stand in for a fresh run. Calibrated
// cost weights are deliberately excluded: a cached plan pins the decision
// made at insert time, and recalibration only steers future fresh plans —
// keying on live weights would make hits vanish as the fit drifts.
uint64_t PlanCacheSignature(const MatchCatcherOptions& options) {
  const JointOptions& joint = options.joint;
  uint64_t hash = 1469598103934665603ull;
  hash = MixFnv(hash, joint.k);
  hash = MixFnv(hash, static_cast<uint64_t>(joint.measure));
  hash = MixFnv(hash, joint.planner_seed != 0 ? joint.planner_seed
                                              : PlannerSeedFromEnv());
  hash = MixFnv(hash, joint.planner_hybrid ? 1 : 0);
  hash = MixFnv(hash, joint.planner_threshold ? 1 : 0);
  hash = MixFnv(hash, joint.num_threads);
  hash = MixFnv(hash, joint.shards_per_config);
  hash = MixFnv(hash, static_cast<uint64_t>(joint.scheduler));
  // Config generation picks the attributes, and with them the root view the
  // plan prices — its knobs (and type inference, and the text data path)
  // are part of what makes two plans interchangeable.
  const ConfigGeneratorOptions& config = options.config;
  hash = MixFnvDouble(hash, config.categorical_value_jaccard_threshold);
  hash = MixFnvDouble(hash, config.delta);
  hash = MixFnv(hash, config.handle_long_attributes ? 1 : 0);
  hash = MixFnv(hash, config.max_attributes);
  hash = MixFnv(hash, options.infer_types ? 1 : 0);
  hash = MixFnv(hash, static_cast<uint64_t>(options.text_plane));
  return hash;
}

// MC_PLANNER_CALIBRATE=0 disables the online cost-model feedback loop (the
// ablation knob); anything else, including unset, leaves it on.
bool CalibrationEnabled() {
  const char* env = std::getenv("MC_PLANNER_CALIBRATE");
  return env == nullptr || std::string_view(env) != "0";
}

}  // namespace

const char* SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kQueued:
      return "Queued";
    case SessionState::kBuilding:
      return "Building";
    case SessionState::kComplete:
      return "Complete";
    case SessionState::kTruncated:
      return "Truncated";
    case SessionState::kFailed:
      return "Failed";
    case SessionState::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

bool IsTerminalState(SessionState state) {
  switch (state) {
    case SessionState::kQueued:
    case SessionState::kBuilding:
      return false;
    case SessionState::kComplete:
    case SessionState::kTruncated:
    case SessionState::kFailed:
    case SessionState::kCancelled:
      return true;
  }
  return true;
}

SessionManager::SessionManager(const ServiceLimits& limits)
    : limits_(limits),
      budget_(limits.memory_limit_bytes),
      retry_seeds_(limits.seed),
      calibrate_(CalibrationEnabled()),
      root_context_(RunContext::Cancellable()) {
  MC_CHECK_GE(limits_.max_concurrent_sessions, 1u);
  if (!limits_.checkpoint_dir.empty()) {
    // Best effort: a missing directory would otherwise fail every save as
    // a (retried) kIoError. An uncreatable one still degrades that way —
    // checkpoint failures never fail sessions.
    std::error_code ignored;
    std::filesystem::create_directories(limits_.checkpoint_dir, ignored);
  }
  const size_t workers = limits_.num_worker_threads != 0
                             ? limits_.num_worker_threads
                             : limits_.max_concurrent_sessions;
  pool_ = std::make_unique<ThreadPool>(workers, "mcserve");
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

SessionManager::~SessionManager() { Shutdown(); }

void SessionManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  // Every session context is a child of the root: one cancel stops the
  // whole fleet at its next poll. Builds degrade to truncated planes and
  // best-so-far joins — the drain below is bounded by poll latency, not by
  // remaining work.
  root_context_.Cancel();
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  // Drains queued and running sessions; each ends terminal (RunSession
  // finishes on every path, including the already-cancelled fast path).
  pool_.reset();
}

Status SessionManager::RegisterTablePair(const std::string& key,
                                         const Table& table_a,
                                         const Table& table_b,
                                         const CandidateSet& blocker_output) {
  if (key.empty()) {
    return Status::InvalidArgument("table pair key must be non-empty");
  }
  auto entry = std::make_shared<PairEntry>();
  entry->table_a = std::make_shared<const Table>(table_a);
  entry->table_b = std::make_shared<const Table>(table_b);
  entry->blocker_output = std::make_shared<const CandidateSet>(blocker_output);
  entry->total_rows.store(static_cast<uint64_t>(table_a.num_rows()) +
                              static_cast<uint64_t>(table_b.num_rows()),
                          std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutting_down_) {
    return Status::Unavailable("session manager is shutting down");
  }
  pairs_[key] = std::move(entry);  // Replaces (and drops the old cache).
  return Status::Ok();
}

uint64_t SessionManager::EstimateCost(
    const PairEntry& entry, const MatchCatcherOptions& options) const {
  // total_rows, not the tables themselves: this runs under the manager
  // mutex while a delta commit may republish the pair_mutex-guarded table
  // pointers. Either generation's count is an acceptable estimate.
  const uint64_t rows = entry.total_rows.load(std::memory_order_relaxed);
  // The config tree of §3.2 holds at most a*(a+1)/2 + 1 nodes for a
  // promising attributes; max_attributes caps a before any data is seen,
  // which makes this a pre-admission upper bound.
  const uint64_t attrs =
      std::min<uint64_t>(options.config.max_attributes, 32u);
  const uint64_t configs = attrs * (attrs + 1) / 2 + 1;
  return rows * configs;
}

Result<uint64_t> SessionManager::Submit(const SessionRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.submitted;
  if (shutting_down_) {
    ++stats_.rejected;
    return Status::Unavailable("session manager is shutting down");
  }
  if (MC_FAULT_POINT("service/admit") != FaultKind::kNone) {
    ++stats_.rejected;
    return Status::Unavailable("injected fault: service/admit");
  }
  auto it = pairs_.find(request.pair_key);
  if (it == pairs_.end()) {
    ++stats_.rejected;
    return Status::NotFound("unknown table pair: " + request.pair_key);
  }
  const uint64_t cost = EstimateCost(*it->second, request.options);
  if (limits_.max_session_cost != 0 && cost > limits_.max_session_cost) {
    // Permanently over the ceiling — a retry cannot change the estimate, so
    // this is kInvalidArgument, not kResourceExhausted.
    ++stats_.rejected;
    return Status::InvalidArgument(
        "estimated session cost " + std::to_string(cost) +
        " exceeds max_session_cost " +
        std::to_string(limits_.max_session_cost));
  }
  const size_t capacity =
      limits_.max_concurrent_sessions + limits_.max_queued_sessions;
  if (live_count_ >= capacity) {
    ++stats_.rejected;
    // Retry-after: the backlog beyond one free slot drains at
    // max_concurrent sessions per observed average duration.
    const double avg =
        avg_session_seconds_ > 0.0 ? avg_session_seconds_ : 0.05;
    const uint64_t backlog = live_count_ - capacity + 1;
    const int64_t hint_millis = std::max<int64_t>(
        1, static_cast<int64_t>(
               1000.0 * avg * static_cast<double>(backlog) /
               static_cast<double>(limits_.max_concurrent_sessions)));
    // The hint travels as a typed Status payload; the message repeats it
    // for humans reading logs.
    return Status::ResourceExhausted(
               "admission queue full (" + std::to_string(live_count_) +
               " live sessions, capacity " + std::to_string(capacity) +
               "); retry-after-ms=" + std::to_string(hint_millis))
        .WithRetryAfter(hint_millis);
  }

  const uint64_t id = next_id_++;
  SessionRecord record;
  record.pair_key = request.pair_key;
  record.request = request;
  const int64_t deadline_millis = request.deadline_millis >= 0
                                      ? request.deadline_millis
                                      : limits_.default_deadline_millis;
  record.context = RunContext::WithParent(root_context_, deadline_millis);
  record.submit_time = Clock::now();
  if (deadline_millis >= 0) {
    record.has_deadline = true;
    record.deadline_time =
        record.submit_time + std::chrono::milliseconds(deadline_millis);
  }
  record.outcome.id = id;
  sessions_.emplace(id, std::move(record));
  ++live_count_;
  ++stats_.admitted;
  pool_->Submit([this, id] { RunSession(id); });
  return id;
}

Status SessionManager::ApplyTableDelta(const std::string& key,
                                       const TableDelta& delta) {
  std::shared_ptr<PairEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      return Status::Unavailable("session manager is shutting down");
    }
    auto it = pairs_.find(key);
    if (it == pairs_.end()) {
      return Status::NotFound("unknown table pair: " + key);
    }
    entry = it->second;
  }

  bool patched_plane = false;
  bool patched_corpus = false;
  JointRepairStats repair_stats;
  const Status status = [&]() -> Status {
    if (delta.empty()) {
      return Status::InvalidArgument("empty delta for pair " + key);
    }
    if (MC_FAULT_POINT("service/delta") != FaultKind::kNone) {
      return Status::Unavailable("injected fault: service/delta");
    }
    std::lock_guard<std::mutex> pair_lock(entry->pair_mutex);

    // Every artifact is staged on copies; the entry flips to the new
    // generation only after the whole batch succeeded, so any failure
    // below leaves the prior generation intact and visible.
    Table staged_a = *entry->table_a;
    Table staged_b = *entry->table_b;
    Table& target = delta.side == 0 ? staged_a : staged_b;
    const size_t base_rows = target.num_rows();
    MC_RETURN_IF_ERROR(ApplyDeltaToTable(target, delta));
    MC_ASSIGN_OR_RETURN(RowsDelta rows, MakeRowsDelta(delta, base_rows));

    // The row edits already detached the stale plane from the mutated copy;
    // drop it from the untouched side too, then patch — or, past the
    // dead-token compaction threshold, rebuild — and re-attach.
    const std::shared_ptr<const TokenizedTable> old_plane =
        entry->table_a->text_plane_ref();
    staged_a.DetachTextPlane();
    staged_b.DetachTextPlane();
    std::shared_ptr<const TokenizedTable> new_plane;
    if (old_plane != nullptr && !old_plane->truncated()) {
      TextPlaneBuildOptions plane_options;
      plane_options.run_context = root_context_;
      plane_options.memory_budget = &budget_;
      if (old_plane->dead_token_fraction() > kDeadTokenCompactionThreshold) {
        new_plane = TokenizedTable::Build(staged_a, staged_b, plane_options);
        if (new_plane == nullptr || new_plane->truncated()) {
          return Status::ResourceExhausted(
              "plane compaction rebuild truncated for pair " + key);
        }
      } else {
        new_plane = TokenizedTable::ApplyDelta(*old_plane, staged_a,
                                               staged_b, rows, plane_options);
        if (new_plane == nullptr) {
          return Status::Unavailable("plane patch failed for pair " + key);
        }
        patched_plane = true;
      }
      staged_a.AttachTextPlane(new_plane, 0);
      staged_b.AttachTextPlane(new_plane, 1);
    }

    std::shared_ptr<const SsjCorpus> new_corpus;
    if (entry->corpus != nullptr && !entry->corpus->truncated()) {
      CorpusBuildOptions corpus_options;
      corpus_options.run_context = root_context_;
      corpus_options.memory_budget = &budget_;
      if (entry->corpus->dead_token_fraction() >
          kDeadTokenCompactionThreshold) {
        auto rebuilt = std::make_shared<SsjCorpus>(SsjCorpus::Build(
            staged_a, staged_b, entry->corpus_columns, corpus_options));
        if (rebuilt->truncated()) {
          return Status::ResourceExhausted(
              "corpus compaction rebuild truncated for pair " + key);
        }
        new_corpus = std::move(rebuilt);
      } else {
        std::optional<SsjCorpus> patched = SsjCorpus::ApplyDelta(
            *entry->corpus, staged_a, staged_b, entry->corpus_columns, rows,
            corpus_options);
        if (!patched.has_value()) {
          return Status::Unavailable("corpus patch failed for pair " + key);
        }
        new_corpus = std::make_shared<SsjCorpus>(*std::move(patched));
        patched_corpus = true;
      }
    }

    // Repair the cached top-k lists against the patched corpus. Without a
    // corpus (evicted, or never published) the snapshot cannot be repaired
    // and is dropped — serving stale lists would be wrong.
    std::shared_ptr<const JointListsSnapshot> new_lists;
    if (entry->joint_lists != nullptr && new_corpus != nullptr) {
      std::vector<RowId> touched_a;
      std::vector<RowId> touched_b;
      std::vector<RowId>& touched = delta.side == 0 ? touched_a : touched_b;
      touched.assign(rows.touched.begin(), rows.touched.end());
      for (size_t i = 0; i < rows.appended; ++i) {
        touched.push_back(static_cast<RowId>(rows.base_rows + i));
      }
      JointRepairOptions repair_options;
      repair_options.exclude = entry->blocker_output.get();
      repair_options.run_context = root_context_;
      auto repaired =
          std::make_shared<JointListsSnapshot>(*entry->joint_lists);
      repaired->lists =
          RepairJointLists(*new_corpus, *entry->joint_lists, touched_a,
                           touched_b, repair_options, &repair_stats);
      new_lists = std::move(repaired);
    }

    // Publish. The displaced generation's plane/corpus park on the
    // superseded list — in-flight sessions keep their own references, and
    // the evictor reclaims these before any live plane.
    if (old_plane != nullptr || entry->corpus != nullptr) {
      entry->superseded.push_back(SupersededPlane{
          entry->generation, old_plane, std::move(entry->corpus)});
    }
    entry->table_a = std::make_shared<const Table>(std::move(staged_a));
    entry->table_b = std::make_shared<const Table>(std::move(staged_b));
    entry->total_rows.store(
        static_cast<uint64_t>(entry->table_a->num_rows()) +
            static_cast<uint64_t>(entry->table_b->num_rows()),
        std::memory_order_relaxed);
    entry->corpus = std::move(new_corpus);
    entry->joint_lists = std::move(new_lists);
    // Cached plans priced the displaced generation's sampled corpus
    // statistics; none survives the bump. The next planner-eligible session
    // re-plans against the patched corpus and repopulates the cache.
    entry->plan_cache.clear();
    ++entry->generation;
    return Status::Ok();
  }();

  std::lock_guard<std::mutex> lock(mutex_);
  if (!status.ok()) {
    ++stats_.delta_failures;
    return status;
  }
  ++stats_.deltas_applied;
  if (patched_plane) ++stats_.planes_patched;
  if (patched_corpus) ++stats_.corpora_patched;
  stats_.lists_repaired += repair_stats.configs_repaired;
  stats_.lists_rejoined += repair_stats.configs_rejoined;
  return status;
}

Result<uint64_t> SessionManager::PairGeneration(const std::string& key) const {
  std::shared_ptr<PairEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pairs_.find(key);
    if (it == pairs_.end()) {
      return Status::NotFound("unknown table pair: " + key);
    }
    entry = it->second;
  }
  std::lock_guard<std::mutex> pair_lock(entry->pair_mutex);
  return entry->generation;
}

Result<std::vector<std::vector<ScoredPair>>> SessionManager::CachedTopKLists(
    const std::string& key) const {
  std::shared_ptr<PairEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pairs_.find(key);
    if (it == pairs_.end()) {
      return Status::NotFound("unknown table pair: " + key);
    }
    entry = it->second;
  }
  std::lock_guard<std::mutex> pair_lock(entry->pair_mutex);
  if (entry->joint_lists == nullptr) {
    return Status::NotFound("no cached top-k lists for pair: " + key);
  }
  return entry->joint_lists->lists;
}

void SessionManager::RunSession(uint64_t id) {
  // Claim the record and snapshot what the build needs.
  SessionRequest request;
  RunContext context;
  std::shared_ptr<PairEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end() || IsTerminalState(it->second.state)) return;
    SessionRecord& record = it->second;
    record.state = SessionState::kBuilding;
    record.outcome.admission_wait_seconds = SecondsSince(record.submit_time);
    request = record.request;
    context = record.context;
    auto pair_it = pairs_.find(record.pair_key);
    if (pair_it != pairs_.end()) {
      entry = pair_it->second;
      entry->last_used_tick = ++lru_tick_;
      // Pin the pair while this session is live: the evictor leaves pinned
      // pairs' live planes alone, and FinishSession drops the pin.
      ++entry->active_sessions;
      record.entry = entry;
    }
  }
  if (entry == nullptr) {
    SessionOutcome outcome;
    outcome.id = id;
    outcome.state = SessionState::kFailed;
    outcome.status =
        Status::NotFound("table pair vanished: " + request.pair_key);
    FinishSession(id, std::move(outcome));
    return;
  }
  if (context.Cancelled()) {
    // Cancelled (or shut down, or past deadline) while queued: end without
    // paying for a build.
    SessionOutcome outcome;
    outcome.id = id;
    outcome.state = SessionState::kCancelled;
    outcome.status =
        Status::DeadlineExceeded("session cancelled while queued");
    FinishSession(id, std::move(outcome));
    return;
  }

  // Pair setup, single-flight under the pair's lock: the first session on
  // the pair tokenizes and attaches the shared plane; everyone snapshots
  // shared-table references (which carry the attached plane) and the
  // cached corpus — zero table copies per session.
  std::shared_ptr<const Table> table_a;
  std::shared_ptr<const Table> table_b;
  std::shared_ptr<const CandidateSet> blocker_output;
  std::shared_ptr<const SsjCorpus> shared_corpus;
  std::vector<size_t> shared_corpus_columns;
  bool built_plane = false;
  uint64_t plane_generation = 0;
  std::shared_ptr<const JoinPlan> cached_plan;
  std::shared_ptr<const CachedConfigPick> cached_config;
  uint64_t plan_signature = 0;
  const bool plan_cache_eligible =
      limits_.enable_plan_cache && request.options.joint.q == 0 &&
      request.options.joint.q_selection == QSelection::kPlanner;
  {
    std::lock_guard<std::mutex> pair_lock(entry->pair_mutex);
    if (request.options.text_plane == TextPlane::kTokenized &&
        AttachedTextPlane(*entry->table_a) == nullptr &&
        !context.Cancelled()) {
      // Built under the root context, not the session's: the plane outlives
      // this session, so one session's deadline must not truncate it. A
      // truncated build (shutdown mid-flight, budget refusal) is simply not
      // attached; this and later sessions fall back to the legacy path.
      // Staged on copies and republished (one-time cost per pair): the
      // entry's tables are shared with live sessions and must never mutate
      // in place.
      TextPlaneBuildOptions plane_options;
      plane_options.num_threads = request.options.joint.num_threads;
      plane_options.run_context = root_context_;
      plane_options.memory_budget = &budget_;
      Table staged_a = *entry->table_a;
      Table staged_b = *entry->table_b;
      TokenizedTable::BuildAndAttach(staged_a, staged_b, plane_options);
      entry->table_a = std::make_shared<const Table>(std::move(staged_a));
      entry->table_b = std::make_shared<const Table>(std::move(staged_b));
      built_plane = true;
    }
    table_a = entry->table_a;
    table_b = entry->table_b;
    blocker_output = entry->blocker_output;
    shared_corpus = entry->corpus;
    shared_corpus_columns = entry->corpus_columns;
    // The generation this session runs over. A delta committed from here
    // on supersedes it, but these snapshots stay valid — and the sinks
    // below check it so a stale session never publishes into a patched
    // entry.
    plane_generation = entry->generation;
    // Plan-cache lookup under the same single-flight lock that pinned the
    // generation: no delta can commit between this read and the snapshots
    // above, so a hit is guaranteed to have been planned on exactly the
    // corpus this session is about to join over. Only planner-eligible
    // sessions participate (q == 0 under kPlanner — a fixed q has no plan
    // to memoize).
    if (plan_cache_eligible) {
      plan_signature = PlanCacheSignature(request.options);
      if (MC_FAULT_POINT("service/plan_cache") != FaultKind::kNone) {
        // A torn cache entry is handled as a miss: drop it and re-plan.
        // The degradation is cost (one planner run), never output.
        entry->plan_cache.erase(plan_signature);
      } else {
        auto plan_it = entry->plan_cache.find(plan_signature);
        if (plan_it != entry->plan_cache.end()) {
          cached_plan = plan_it->second.plan;
          cached_config = plan_it->second.config;
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (request.options.text_plane == TextPlane::kTokenized) {
      if (built_plane) {
        ++stats_.plane_cache_misses;
      } else {
        ++stats_.plane_cache_hits;
      }
    }
    if (shared_corpus != nullptr) ++stats_.corpus_cache_hits;
    if (plan_cache_eligible) {
      if (cached_plan != nullptr) {
        ++stats_.plan_cache_hits;
      } else {
        ++stats_.plan_cache_misses;
      }
    }
  }

  MatchCatcherOptions options = request.options;
  options.run_context = context;
  options.memory_budget = &budget_;
  options.shared_corpus = std::move(shared_corpus);
  options.shared_corpus_columns = std::move(shared_corpus_columns);
  options.corpus_sink = [this, entry, plane_generation](
                            std::shared_ptr<const SsjCorpus> corpus,
                            const std::vector<size_t>& columns) {
    {
      std::lock_guard<std::mutex> pair_lock(entry->pair_mutex);
      // Publish first-wins, and only into the generation this session
      // snapshotted: a corpus built over pre-delta tables must not land in
      // a patched entry.
      if (entry->generation == plane_generation &&
          entry->corpus == nullptr) {
        entry->corpus = std::move(corpus);
        entry->corpus_columns = columns;
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corpus_builds;
  };
  options.cached_plan = cached_plan;
  options.cached_config = cached_config;
  if (plan_cache_eligible && cached_plan == nullptr) {
    // Mirror of corpus_sink: publish the freshly computed plan first-wins,
    // and only into the generation this session snapshotted.
    options.plan_sink = [this, entry, plane_generation,
                         plan_signature](const JoinPlan& plan) {
      std::lock_guard<std::mutex> pair_lock(entry->pair_mutex);
      if (entry->generation != plane_generation) return;  // Stale session.
      auto& slot = entry->plan_cache[plan_signature].plan;
      if (slot == nullptr) slot = std::make_shared<const JoinPlan>(plan);
    };
  }
  if (plan_cache_eligible && cached_config == nullptr) {
    // The config half of the memoized session plan, same first-wins and
    // generation guard. Published separately from the plan (selection
    // finishes before the joint phase), so a session truncated in between
    // still leaves the pick for the next session to re-plan over.
    options.config_sink = [this, entry, plane_generation,
                           plan_signature](const CachedConfigPick& pick) {
      std::lock_guard<std::mutex> pair_lock(entry->pair_mutex);
      if (entry->generation != plane_generation) return;  // Stale session.
      auto& slot = entry->plan_cache[plan_signature].config;
      if (slot == nullptr) slot = std::make_shared<const CachedConfigPick>(pick);
    };
  }
  if (calibrate_) {
    options.joint.calibrator = &CostModelCalibrator::Process();
  }
  if (request.options.joint.q >= 1) {
    // Cache repairable top-k state, first qualifying session wins. Gated on
    // a caller-fixed q: under joint.q == 0 the executor races q against the
    // data, so a rebuild could legitimately pick a different q than the
    // snapshot replays — only a deterministic q makes repair-vs-rebuild
    // equivalence provable. Truncated executions never reach the sink.
    options.joint_sink = [this, entry,
                          plane_generation](const JointListsSnapshot& lists) {
      std::lock_guard<std::mutex> pair_lock(entry->pair_mutex);
      if (entry->generation != plane_generation) return;  // Stale session.
      if (entry->joint_lists == nullptr) {
        entry->joint_lists = std::make_shared<const JointListsSnapshot>(lists);
      }
    };
  }

  // The build is pure until FinishSession publishes, so rebuilding after a
  // transient failure (the "service/build" fault, a budget rejection that
  // cleared) is safe — exactly the idempotent case RetryPolicy covers.
  uint64_t retry_seed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    retry_seed = retry_seeds_.NextUint64();
  }
  Retrier retrier(limits_.retry, retry_seed);
  std::optional<DebugSession> session;
  const Status build_status = retrier.Run(
      [&]() -> Status {
        if (MC_FAULT_POINT("service/build") != FaultKind::kNone) {
          return Status::Unavailable("injected fault: service/build");
        }
        Result<DebugSession> result =
            DebugSession::Create(table_a, table_b, *blocker_output, options);
        if (!result.ok()) return result.status();
        session.emplace(std::move(result).value());
        return Status::Ok();
      },
      context);

  SessionOutcome outcome;
  outcome.id = id;
  outcome.plane_generation = plane_generation;
  if (!build_status.ok()) {
    outcome.status = build_status;
    // A cancel/deadline that fired before the joint phase produced anything
    // is a cancellation, not a failure; everything else is typed failure.
    outcome.state =
        (build_status.code() == StatusCode::kDeadlineExceeded ||
         context.Cancelled())
            ? SessionState::kCancelled
            : SessionState::kFailed;
    FinishSession(id, std::move(outcome));
    return;
  }

  outcome.lists = session->TopKLists();
  outcome.truncated = session->truncated();
  outcome.used_shared_corpus = session->used_shared_corpus();
  const JointResult& joint = session->joint_result();
  outcome.planner_used = joint.planner_used;
  outcome.plan = joint.plan;
  outcome.plan_cache_hit = joint.plan_from_cache;
  outcome.plan_decisions = joint.plan_decisions;
  if (joint.planner_used) {
    std::lock_guard<std::mutex> lock(mutex_);
    // A cache hit skipped the probes, so it is not a computed plan.
    if (!joint.plan_from_cache) ++stats_.plans_computed;
    if (joint.plan.hybrid) ++stats_.hybrid_plans;
    for (const ConfigJoinResult& config : joint.per_config) {
      stats_.hybrid_restarts += config.stats.prefilter_restarts;
    }
  }
  outcome.state = session->truncated() ? SessionState::kTruncated
                                       : SessionState::kComplete;
  if (!limits_.checkpoint_dir.empty()) {
    // Checkpoint IO under the same retry schedule; .tmp+rename makes the
    // save idempotent. A save that still fails is recorded, not fatal —
    // the session's result exists regardless.
    const std::string path = CheckpointPath(limits_.checkpoint_dir, id);
    outcome.checkpoint_status = retrier.Run(
        [&] { return SaveTopKLists(outcome.lists, path); }, context);
  }
  FinishSession(id, std::move(outcome));
}

void SessionManager::FinishSession(uint64_t id, SessionOutcome outcome) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end() || IsTerminalState(it->second.state)) return;
  SessionRecord& record = it->second;
  if (record.entry != nullptr) {
    MC_CHECK_GT(record.entry->active_sessions, 0u);
    --record.entry->active_sessions;
    record.entry.reset();
  }
  outcome.admission_wait_seconds = record.outcome.admission_wait_seconds;
  outcome.total_seconds = SecondsSince(record.submit_time);
  record.state = outcome.state;
  record.outcome = std::move(outcome);
  MC_CHECK_GT(live_count_, 0u);
  --live_count_;
  switch (record.state) {
    case SessionState::kComplete:
      ++stats_.completed;
      break;
    case SessionState::kTruncated:
      ++stats_.truncated;
      break;
    case SessionState::kFailed:
      ++stats_.failed;
      break;
    case SessionState::kCancelled:
      ++stats_.cancelled;
      break;
    default:
      break;
  }
  // EMA of session duration feeds the admission retry-after hint.
  const double seconds = record.outcome.total_seconds;
  avg_session_seconds_ = avg_session_seconds_ == 0.0
                             ? seconds
                             : 0.8 * avg_session_seconds_ + 0.2 * seconds;
  terminal_cv_.notify_all();
}

Result<SessionOutcome> SessionManager::Wait(uint64_t session_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session id " +
                            std::to_string(session_id));
  }
  terminal_cv_.wait(lock, [&] {
    return IsTerminalState(sessions_.at(session_id).state);
  });
  return sessions_.at(session_id).outcome;
}

Result<SessionOutcome> SessionManager::WaitFor(uint64_t session_id,
                                               int64_t timeout_millis) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session id " +
                            std::to_string(session_id));
  }
  const bool terminal = terminal_cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_millis),
      [&] { return IsTerminalState(sessions_.at(session_id).state); });
  if (!terminal) {
    return Status::DeadlineExceeded(
        "session " + std::to_string(session_id) + " still " +
        SessionStateName(sessions_.at(session_id).state) + " after " +
        std::to_string(timeout_millis) + " ms");
  }
  return sessions_.at(session_id).outcome;
}

Status SessionManager::CancelSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session id " +
                            std::to_string(session_id));
  }
  it->second.context.Cancel();
  return Status::Ok();
}

Result<SessionState> SessionManager::StateOf(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session id " +
                            std::to_string(session_id));
  }
  return it->second.state;
}

size_t SessionManager::EvictSharedPlanes(size_t max_evictions) {
  std::lock_guard<std::mutex> lock(mutex_);
  return EvictSharedPlanesLocked(max_evictions);
}

size_t SessionManager::EvictSharedPlanesLocked(size_t max_evictions) {
  // LRU order over the registered pairs.
  std::vector<std::pair<uint64_t, PairEntry*>> order;
  order.reserve(pairs_.size());
  for (auto& [key, entry] : pairs_) {
    order.emplace_back(entry->last_used_tick, entry.get());
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t evicted = 0;
  // Pass 1: superseded generations. No new session can ever see them, so
  // they are pure reclaim — they go before any live plane is touched, and
  // pinned sessions are unaffected (they hold their own references).
  for (auto& [tick, entry] : order) {
    if (max_evictions != 0 && evicted >= max_evictions) break;
    // try_lock: a pair whose plane is being built (or snapshotted, or
    // patched) right now is busy, not idle — skip it rather than invert
    // the mutex_ → pair_mutex order and deadlock.
    std::unique_lock<std::mutex> pair_lock(entry->pair_mutex,
                                           std::try_to_lock);
    if (!pair_lock.owns_lock()) continue;
    while (!entry->superseded.empty() &&
           (max_evictions == 0 || evicted < max_evictions)) {
      entry->superseded.erase(entry->superseded.begin());  // Oldest first.
      ++evicted;
      ++stats_.planes_evicted;
      ++stats_.superseded_planes_evicted;
    }
  }
  // Pass 2: live planes, LRU first — but only on pairs no live session is
  // pinned to, so a running session never loses the shared cache under it.
  for (auto& [tick, entry] : order) {
    if (max_evictions != 0 && evicted >= max_evictions) break;
    if (entry->active_sessions != 0) continue;
    std::unique_lock<std::mutex> pair_lock(entry->pair_mutex,
                                           std::try_to_lock);
    if (!pair_lock.owns_lock()) continue;
    const bool had_plane = AttachedTextPlane(*entry->table_a) != nullptr;
    const bool had_corpus = entry->corpus != nullptr;
    if (!had_plane && !had_corpus && entry->plan_cache.empty()) continue;
    // Cached plans priced this generation's sampled corpus statistics;
    // they are reclaimed with the cache they rode on.
    stats_.plans_evicted += entry->plan_cache.size();
    entry->plan_cache.clear();
    if (!had_plane && !had_corpus) continue;  // Plans-only reclaim.
    if (had_plane) {
      // The tables are shared with sessions, so the plane is dropped by
      // republishing plane-free staged copies — a transient table copy,
      // after which the entry stops pinning the plane and the old table
      // objects free as their last session completes.
      Table stripped_a = *entry->table_a;
      Table stripped_b = *entry->table_b;
      stripped_a.DetachTextPlane();
      stripped_b.DetachTextPlane();
      entry->table_a = std::make_shared<const Table>(std::move(stripped_a));
      entry->table_b = std::make_shared<const Table>(std::move(stripped_b));
    }
    entry->corpus.reset();
    entry->corpus_columns.clear();
    // Without a corpus the snapshot can no longer be repaired by a delta;
    // drop it with the cache it rode on.
    entry->joint_lists.reset();
    ++evicted;
    ++stats_.planes_evicted;
  }
  return evicted;
}

Result<size_t> SessionManager::RestoreFromCheckpoints() {
  if (limits_.checkpoint_dir.empty()) {
    return Status::FailedPrecondition(
        "RestoreFromCheckpoints requires ServiceLimits::checkpoint_dir");
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator dir(limits_.checkpoint_dir, ec);
  if (ec) {
    return Status::IoError("cannot read checkpoint dir " +
                           limits_.checkpoint_dir + ": " + ec.message());
  }
  size_t restored = 0;
  for (const fs::directory_entry& file : dir) {
    const std::string name = file.path().filename().string();
    const std::string prefix = "session-";
    const std::string suffix = ".mc";
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    char* end = nullptr;
    const uint64_t id =
        std::strtoull(name.c_str() + prefix.size(), &end, 10);
    if (end == nullptr || std::string(end) != suffix || id == 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.restore_failures;
      continue;
    }
    uint64_t retry_seed;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (sessions_.count(id) != 0) continue;  // Live or already restored.
      retry_seed = retry_seeds_.NextUint64();
    }
    // Reads go through the same retry schedule as writes; a CRC-corrupt or
    // torn checkpoint keeps returning its typed kIoError and is skipped —
    // one bad file never aborts the whole restore.
    Retrier retrier(limits_.retry, retry_seed);
    std::vector<std::vector<ScoredPair>> lists;
    const Status status = retrier.Run([&]() -> Status {
      Result<std::vector<std::vector<ScoredPair>>> result =
          LoadTopKLists(file.path().string());
      if (!result.ok()) return result.status();
      lists = std::move(result).value();
      return Status::Ok();
    });
    std::lock_guard<std::mutex> lock(mutex_);
    if (!status.ok()) {
      ++stats_.restore_failures;
      continue;
    }
    if (sessions_.count(id) != 0) continue;
    SessionRecord record;
    record.state = SessionState::kComplete;
    record.outcome.id = id;
    record.outcome.state = SessionState::kComplete;
    record.outcome.lists = std::move(lists);
    record.outcome.restored = true;
    sessions_.emplace(id, std::move(record));
    next_id_ = std::max(next_id_, id + 1);
    ++stats_.sessions_restored;
    ++restored;
  }
  return restored;
}

ServiceStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats snapshot = stats_;
  snapshot.memory_used_bytes = budget_.used();
  snapshot.memory_peak_bytes = budget_.peak();
  snapshot.memory_rejected_charges = budget_.rejected();
  snapshot.memory_release_violations = budget_.release_violations();
  snapshot.topology_fallbacks =
      mem::ArenaStatsRegistry::Instance().topology_fallbacks();
  return snapshot;
}

size_t SessionManager::live_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_count_;
}

void SessionManager::WatchdogLoop() {
  SetCurrentThreadName("mc-watchdog");
  std::unique_lock<std::mutex> watchdog_lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(
        watchdog_lock,
        std::chrono::milliseconds(std::max<int64_t>(
            1, limits_.watchdog_period_millis)),
        [this] { return watchdog_stop_; });
    if (watchdog_stop_) break;
    watchdog_lock.unlock();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Force-cancel sessions past their deadline. Contexts self-cancel
      // when polled, but a session wedged between polls (a long build
      // phase, a stuck fault) needs the push; the counter also surfaces
      // how often deadlines actually bite.
      const Clock::time_point now = Clock::now();
      for (auto& [id, record] : sessions_) {
        if (IsTerminalState(record.state) || !record.has_deadline ||
            record.watchdog_cancelled || now <= record.deadline_time) {
          continue;
        }
        record.context.Cancel();
        record.watchdog_cancelled = true;
        ++stats_.watchdog_cancelled;
      }
      // Memory pressure: shed the least-recently-used idle planes once
      // usage crosses ~90% of the ceiling. In-flight sessions keep their
      // references; the bytes return when the last one drops.
      if (limits_.memory_limit_bytes != 0 &&
          budget_.used() >
              limits_.memory_limit_bytes - limits_.memory_limit_bytes / 10) {
        EvictSharedPlanesLocked(1);
      }
    }
    watchdog_lock.lock();
  }
}

}  // namespace mc
