#ifndef MATCHCATCHER_SERVICE_RETRY_POLICY_H_
#define MATCHCATCHER_SERVICE_RETRY_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/random.h"
#include "util/run_context.h"
#include "util/status.h"

namespace mc {

/// Capped exponential backoff with deterministic jitter. The service wraps
/// its transient-failure sites — checkpoint IO, session (re)build — in a
/// Retrier configured from this policy; every knob has the conventional
/// meaning, every draw comes from a seeded Rng so a test's retry schedule
/// is reproducible.
struct RetryPolicy {
  /// Total tries including the first; 1 disables retrying.
  size_t max_attempts = 3;
  /// Backoff before the first retry.
  int64_t initial_backoff_millis = 10;
  /// Ceiling the exponential growth saturates at.
  int64_t max_backoff_millis = 2000;
  /// Growth factor between consecutive backoffs.
  double multiplier = 2.0;
  /// Fraction of each backoff randomized: the sleep is drawn uniformly from
  /// [backoff * (1 - jitter), backoff * (1 + jitter)]. 0 = fully
  /// deterministic sleeps.
  double jitter = 0.5;
};

/// True for the transient codes worth retrying: kUnavailable (by
/// definition), kResourceExhausted (capacity frees up), kIoError (the
/// filesystem flake / torn write that the checkpoint layer reports).
/// Everything else — invalid argument, not found, internal — repeats
/// identically on retry and fails fast.
bool IsRetryableStatus(const Status& status);

/// Executes an operation under a RetryPolicy. Not thread-safe (owns the
/// jitter Rng); make one per call site or guard externally.
class Retrier {
 public:
  Retrier(const RetryPolicy& policy, uint64_t seed);

  /// Runs `op` until it returns OK, a non-retryable error, the attempt
  /// budget is spent, or `run_context` cancels. Returns the last status.
  ///
  /// `idempotent` is the caller's promise that re-running `op` after a
  /// partial failure is safe. Non-idempotent operations never retry — the
  /// first failure is final — because a "failed" attempt may still have
  /// applied its effect (the classic double-apply hazard). The service's
  /// retry sites are all idempotent by construction: checkpoint saves go
  /// through .tmp+rename (re-running overwrites the same artifact) and
  /// session builds are pure until their single publish step.
  ///
  /// Backoff sleeps poll `run_context` (~10 ms cadence) so cancellation
  /// interrupts a long backoff promptly; a cancelled wait returns the last
  /// operation status, never invents one.
  Status Run(const std::function<Status()>& op,
             const RunContext& run_context = {}, bool idempotent = true);

  /// Attempts consumed by the last Run() (for tests/stats).
  size_t last_attempts() const { return last_attempts_; }

  /// The jittered backoff before retry number `retry` (1-based). Draws from
  /// the Rng — calling it advances the schedule. Exposed for tests.
  int64_t BackoffMillis(size_t retry);

 private:
  RetryPolicy policy_;
  Rng rng_;
  size_t last_attempts_ = 0;
};

}  // namespace mc

#endif  // MATCHCATCHER_SERVICE_RETRY_POLICY_H_
