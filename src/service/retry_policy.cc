#include "service/retry_policy.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/check.h"

namespace mc {

bool IsRetryableStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kIoError:
      return true;
    default:
      return false;
  }
}

Retrier::Retrier(const RetryPolicy& policy, uint64_t seed)
    : policy_(policy), rng_(seed) {
  MC_CHECK_GE(policy_.max_attempts, 1u);
  MC_CHECK_GE(policy_.jitter, 0.0);
  MC_CHECK_GE(policy_.multiplier, 1.0);
}

int64_t Retrier::BackoffMillis(size_t retry) {
  MC_CHECK_GE(retry, 1u);
  double backoff = static_cast<double>(policy_.initial_backoff_millis);
  for (size_t i = 1; i < retry; ++i) {
    backoff *= policy_.multiplier;
    if (backoff >= static_cast<double>(policy_.max_backoff_millis)) break;
  }
  backoff = std::min(backoff, static_cast<double>(policy_.max_backoff_millis));
  if (policy_.jitter > 0.0) {
    const double spread = (rng_.NextDouble() * 2.0 - 1.0) * policy_.jitter;
    backoff *= 1.0 + spread;
  }
  return std::max<int64_t>(0, static_cast<int64_t>(backoff));
}

Status Retrier::Run(const std::function<Status()>& op,
                    const RunContext& run_context, bool idempotent) {
  MC_CHECK(op != nullptr);
  last_attempts_ = 0;
  Status last = Status::Ok();
  for (size_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (run_context.Cancelled()) {
      // Cancelled before this attempt: report the last real failure, or the
      // cancellation itself when the first attempt never ran.
      if (last_attempts_ == 0) {
        return Status::DeadlineExceeded("retry cancelled before first attempt");
      }
      return last;
    }
    ++last_attempts_;
    last = op();
    if (last.ok() || !IsRetryableStatus(last) || !idempotent) return last;
    if (attempt == policy_.max_attempts) break;

    // Jittered backoff, polled so a cancel interrupts the sleep promptly.
    int64_t remaining = BackoffMillis(attempt);
    while (remaining > 0 && !run_context.Cancelled()) {
      const int64_t slice = std::min<int64_t>(remaining, 10);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      remaining -= slice;
    }
  }
  return last;
}

}  // namespace mc
