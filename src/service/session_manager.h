#ifndef MATCHCATCHER_SERVICE_SESSION_MANAGER_H_
#define MATCHCATCHER_SERVICE_SESSION_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "blocking/candidate_set.h"
#include "core/match_catcher.h"
#include "service/retry_policy.h"
#include "table/table.h"
#include "table/table_delta.h"
#include "util/memory_budget.h"
#include "util/run_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mc {

/// Hard resource bounds of a SessionManager. Everything is enforced at
/// admission or by construction (shared budget threaded into the builders);
/// nothing is advisory.
struct ServiceLimits {
  /// Sessions executing concurrently (the worker pool size, unless
  /// `num_worker_threads` overrides it).
  size_t max_concurrent_sessions = 4;
  /// Sessions allowed to wait beyond the concurrent ones. Submissions past
  /// `max_concurrent_sessions + max_queued_sessions` live sessions are
  /// rejected with kResourceExhausted and a retry-after hint.
  size_t max_queued_sessions = 16;
  /// Ceiling for the shared MemoryBudget charged by every plane/corpus
  /// build (0 = unlimited). A build that would cross it degrades to a
  /// truncated result; the watchdog additionally evicts idle shared planes
  /// when usage passes ~90% of this.
  size_t memory_limit_bytes = 0;
  /// Per-session cost ceiling, in estimated row-config units
  /// ((rows_a + rows_b) x estimated config count). A request estimated
  /// above this can never be admitted (kInvalidArgument — retrying cannot
  /// help). 0 = unlimited.
  uint64_t max_session_cost = 0;
  /// Deadline applied to sessions that do not carry their own (-1 = none).
  int64_t default_deadline_millis = -1;
  /// Watchdog sweep period: past-deadline sessions are force-cancelled and
  /// idle planes evicted under memory pressure at this cadence.
  int64_t watchdog_period_millis = 20;
  /// Worker pool size override; 0 = max_concurrent_sessions.
  size_t num_worker_threads = 0;
  /// Directory for session checkpoints ("" = checkpointing off). Completed
  /// sessions save their top-k lists as `session-<id>.mc`;
  /// RestoreFromCheckpoints() reloads them after a restart.
  std::string checkpoint_dir;
  /// Retry schedule for checkpoint IO and session (re)builds.
  RetryPolicy retry;
  /// Seed for the retry jitter streams (each session forks its own).
  uint64_t seed = 42;
  /// Cache joint execution plans across sessions on the same pair, keyed by
  /// (plane generation, plan-affecting option signature). A hit skips the
  /// planner's sampling probes entirely; output stays bit-identical because
  /// the planner is deterministic for a fixed (seed, generation) — serving
  /// the memoized plan is indistinguishable from re-running it. Off =
  /// every session plans fresh (`mcserve --no-plan-cache` ablation).
  bool enable_plan_cache = true;
};

/// Session lifecycle (docs/robustness.md has the transition diagram):
/// kQueued → kBuilding → {kComplete, kTruncated, kFailed, kCancelled}.
/// The last four are terminal; every admitted session reaches exactly one.
enum class SessionState {
  kQueued,     // Admitted, waiting for a worker.
  kBuilding,   // A worker is running plane/corpus build + joint phase.
  kComplete,   // Full top-k lists produced.
  kTruncated,  // Deadline/cancel/budget cut it short; lists are best-so-far.
  kFailed,     // Typed error (injected fault past retries, bad input, ...).
  kCancelled,  // Cancelled before producing any result.
};

const char* SessionStateName(SessionState state);
bool IsTerminalState(SessionState state);

/// One debugging-session request against a registered table pair.
struct SessionRequest {
  /// Key from RegisterTablePair.
  std::string pair_key;
  /// Base options. `run_context`, `memory_budget`, and the corpus-sharing
  /// fields are owned by the manager and overwritten; everything else
  /// passes through.
  MatchCatcherOptions options;
  /// Session deadline; -1 = ServiceLimits::default_deadline_millis.
  int64_t deadline_millis = -1;
};

/// Terminal record of a session, returned by Wait()/WaitFor().
struct SessionOutcome {
  uint64_t id = 0;
  SessionState state = SessionState::kQueued;
  /// Typed error for kFailed / cancellation cause for kCancelled; OK
  /// otherwise.
  Status status;
  /// Outcome of the post-completion checkpoint save (OK when checkpointing
  /// is off). A failed save never fails the session — the result exists.
  Status checkpoint_status;
  /// Per-config top-k lists (empty for kFailed/kCancelled).
  std::vector<std::vector<ScoredPair>> lists;
  bool truncated = false;
  /// Joint phase ran over the pair's cached corpus (plane-sharing hit).
  bool used_shared_corpus = false;
  /// Reloaded from a checkpoint by RestoreFromCheckpoints(), not computed.
  bool restored = false;
  /// Generation of the pair's shared planes this session ran over (0 when
  /// the pair vanished or the session never reached the build). A delta
  /// committed mid-session bumps the pair's generation, but the session
  /// keeps the one it pinned here — its table/corpus references stay valid.
  uint64_t plane_generation = 0;
  double admission_wait_seconds = 0.0;
  double total_seconds = 0.0;
  /// The cost-based plan of the joint phase, when the planner ran
  /// (JointOptions::q == 0 under QSelection::kPlanner). The planner's
  /// corpus statistics live on the shared corpus and re-sample
  /// automatically after ApplyTableDelta (the patched corpus carries a new
  /// generation; plan.stats_generation records which one the plan used).
  JoinPlan plan;
  bool planner_used = false;
  /// The joint phase executed a plan served from the pair's cross-session
  /// plan cache instead of running the sampling probes (bit-identical
  /// lists either way; this only records where the plan came from).
  bool plan_cache_hit = false;
  /// Per-config resolved plan decisions of the joint phase, in config-tree
  /// node order (`tools/mcserve --explain-plans` prints these).
  std::vector<ConfigPlanDecision> plan_decisions;
};

/// Aggregate counters (stats() returns a consistent snapshot).
struct ServiceStats {
  size_t submitted = 0;
  size_t admitted = 0;
  size_t rejected = 0;  // Admission rejections (queue full, cost, fault).
  size_t completed = 0;
  size_t truncated = 0;
  size_t failed = 0;
  size_t cancelled = 0;
  size_t watchdog_cancelled = 0;  // Force-cancelled past their deadline.
  size_t plane_cache_hits = 0;    // Sessions that found the plane attached.
  size_t plane_cache_misses = 0;  // Sessions that had to build it.
  size_t corpus_cache_hits = 0;
  size_t corpus_builds = 0;
  size_t planes_evicted = 0;
  size_t sessions_restored = 0;
  size_t restore_failures = 0;  // Corrupt/unreadable checkpoints skipped.
  size_t deltas_applied = 0;    // ApplyTableDelta commits (generation bumps).
  size_t delta_failures = 0;    // Failed deltas; prior generation kept.
  size_t planes_patched = 0;    // Planes updated via TokenizedTable::ApplyDelta.
  size_t corpora_patched = 0;   // Corpora updated via SsjCorpus::ApplyDelta.
  size_t lists_repaired = 0;    // Config lists repaired by incremental merge.
  size_t lists_rejoined = 0;    // Config lists that fell back to a full join.
  size_t superseded_planes_evicted = 0;  // Subset of planes_evicted that
                                         // were superseded generations.
  size_t memory_used_bytes = 0;
  size_t memory_peak_bytes = 0;
  size_t memory_rejected_charges = 0;
  size_t memory_release_violations = 0;  // Over-releases clamped at zero.
  size_t plans_computed = 0;  // Joint phases that ran the cost planner.
  size_t plan_cache_hits = 0;    // Sessions served a memoized joint plan.
  size_t plan_cache_misses = 0;  // Planner-eligible sessions that planned
                                 // fresh (cold pair, new generation, new
                                 // option signature, or injected fault).
  size_t plans_evicted = 0;  // Cached plans reclaimed by LRU plane eviction
                             // (delta invalidations are not counted here).
  /// Topology placement degradations observed process-wide (arena NUMA
  /// binds or thread pins that fell back to plain placement — mbind/
  /// pthread_setaffinity unavailable, fake MC_TOPOLOGY, huge-page advisory
  /// refused). Purely diagnostic: a fallback never fails a build or
  /// changes results, it only forfeits locality.
  size_t topology_fallbacks = 0;
  size_t hybrid_plans = 0;    // Plans that enabled the hybrid prefilter.
  size_t hybrid_restarts = 0;  // Prefilter phase-1 lists that fell short of
                               // tau and re-ran without the bound (output
                               // still bit-identical; a restart just means
                               // the sampled threshold overshot).
};

/// Long-lived multiplexer of concurrent DebugSessions over shared immutable
/// planes. The survival contract (docs/robustness.md): any number of
/// concurrent submissions under faults, cancellations, deadlines, and
/// memory pressure, and every admitted session still reaches exactly one
/// terminal state with either valid lists (complete or truncated) or a
/// typed error — never a hang, leak, or crash.
///
///   - Admission control: a bounded queue plus per-session cost estimates;
///     over-capacity submissions get kResourceExhausted carrying a typed
///     retry-after payload (Status::retry_after_millis()) derived from the
///     observed session rate.
///   - Budget enforcement: each session runs under a RunContext child of
///     the manager root (session deadline tightens, shutdown cancels all),
///     and all plane/corpus arenas charge one shared MemoryBudget.
///   - Plane sharing: the first session on a registered pair builds the
///     TokenizedTable (single-flight, under the pair's lock) and attaches
///     it to the stored tables; later sessions' table copies inherit it, so
///     N sessions cost ~1 tokenization. The first finished corpus build is
///     published the same way. Shared results are bit-identical to isolated
///     builds (the builders are thread-count deterministic).
///   - Incremental deltas: ApplyTableDelta() patches the stored tables, the
///     shared plane, the cached corpus, and the cached per-config top-k
///     lists in place of a rebuild, then bumps the pair's generation.
///     In-flight sessions keep the generation they pinned at snapshot time;
///     superseded generations park on a reclaim list the evictor drains
///     first. A failed delta leaves the prior generation intact and visible.
///   - Retry/backoff: session builds and checkpoint IO run under the
///     configured RetryPolicy; injected faults ("service/build",
///     "session_io/*") exercise the real paths.
///   - Degradation + recovery: a watchdog force-cancels past-deadline
///     sessions and evicts idle shared planes under memory pressure;
///     RestoreFromCheckpoints() reloads completed sessions after a restart,
///     skipping corrupt files with a typed count instead of crashing.
///
/// Thread-safe. Shutdown() (also run by the destructor) cancels the root
/// context, drains the workers, and leaves every session terminal.
class SessionManager {
 public:
  explicit SessionManager(const ServiceLimits& limits);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers a table pair under `key`. Copies the inputs; the shared
  /// plane is built lazily by the first session on the pair. Re-registering
  /// a key replaces the pair (and drops its cached plane/corpus).
  Status RegisterTablePair(const std::string& key, const Table& table_a,
                           const Table& table_b,
                           const CandidateSet& blocker_output);

  /// Admission control. Returns the session id, or a typed rejection:
  /// kNotFound (unknown pair), kInvalidArgument (cost can never fit),
  /// kResourceExhausted with a typed retry-after hint — read it with
  /// status.retry_after_millis() — when the queue is full, kUnavailable
  /// (shutting down, or the "service/admit" fault fired).
  Result<uint64_t> Submit(const SessionRequest& request);

  /// Applies a batch of row edits to one side of a registered pair and
  /// patches every cached artifact incrementally: the stored tables, the
  /// attached TokenizedTable (TokenizedTable::ApplyDelta), the cached
  /// corpus (SsjCorpus::ApplyDelta), and the cached per-config top-k lists
  /// (RepairJointLists) — all staged on copies and published atomically as
  /// a new plane generation. Patched artifacts are content-identical to
  /// from-scratch rebuilds of the mutated tables (the delta-equivalence
  /// suite holds this bit for bit). When an artifact's dead-token fraction
  /// passes the compaction threshold (0.5), it is rebuilt instead of
  /// patched — same contract, fresh dictionary.
  ///
  /// In-flight sessions are unaffected: they hold references to the
  /// generation they snapshotted. On any failure — validation, the
  /// "service/delta" fault, a budget refusal mid-patch — the prior
  /// generation stays intact and visible, and nothing is published.
  /// Typed errors: kNotFound (unknown key), kInvalidArgument (empty or
  /// malformed delta), kUnavailable (fault/patch failure, shutting down),
  /// kResourceExhausted (compaction rebuild truncated by the budget).
  Status ApplyTableDelta(const std::string& key, const TableDelta& delta);

  /// Current plane generation of a registered pair (starts at 1; each
  /// committed delta increments it). kNotFound for unknown keys.
  Result<uint64_t> PairGeneration(const std::string& key) const;

  /// The pair's cached per-config top-k lists — populated by the first
  /// non-truncated session that ran with a deterministic q (joint.q >= 1),
  /// then repaired in place by every committed delta. kNotFound when the
  /// pair is unknown or nothing is cached (no qualifying session yet, or
  /// the cache was evicted).
  Result<std::vector<std::vector<ScoredPair>>> CachedTopKLists(
      const std::string& key) const;

  /// Blocks until the session is terminal; returns its outcome.
  Result<SessionOutcome> Wait(uint64_t session_id);

  /// Wait() with a timeout; kDeadlineExceeded when the session is still
  /// live after `timeout_millis` (the session itself is unaffected).
  Result<SessionOutcome> WaitFor(uint64_t session_id, int64_t timeout_millis);

  /// Requests cooperative cancellation of one session. A queued session
  /// ends kCancelled without running; a building one stops at its next
  /// poll and ends kTruncated (best-so-far lists) or kCancelled.
  Status CancelSession(uint64_t session_id);

  /// Current state of a session (kNotFound for unknown ids).
  Result<SessionState> StateOf(uint64_t session_id);

  /// Detaches cached shared planes/corpora from up to `max_evictions`
  /// registered pairs, least-recently-used first (all of them when 0).
  /// Memory is reclaimed once in-flight sessions drop their references.
  /// The watchdog calls this automatically under memory pressure; exposed
  /// for tests and operators.
  size_t EvictSharedPlanes(size_t max_evictions = 0);

  /// Scans ServiceLimits::checkpoint_dir for `session-<id>.mc` files and
  /// reloads each as a terminal kComplete session (outcome.restored set).
  /// CRC-corrupt or unreadable files are skipped and counted in
  /// stats().restore_failures — a typed per-file kIoError, never a crash.
  /// Returns the number restored.
  Result<size_t> RestoreFromCheckpoints();

  /// Consistent snapshot of the aggregate counters.
  ServiceStats stats() const;

  /// Number of sessions not yet terminal.
  size_t live_sessions() const;

  /// Cancels everything (root context), drains the workers, stops the
  /// watchdog. Every session is terminal afterwards. Idempotent; further
  /// Submits return kUnavailable.
  void Shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  /// A plane generation displaced by a committed delta. New sessions can
  /// never see it again, so the evictor reclaims these before touching any
  /// live plane; in-flight sessions pinned to it hold their own references
  /// and are unaffected by the reclaim.
  struct SupersededPlane {
    uint64_t generation = 0;
    std::shared_ptr<const TokenizedTable> plane;
    std::shared_ptr<const SsjCorpus> corpus;
  };

  struct PairEntry {
    /// Immutable and shared: sessions snapshot these pointers under
    /// pair_mutex instead of copying the tables (zero-copy session start).
    /// Every mutation — the one-time plane attach, a committed delta, a
    /// plane eviction — stages new Table objects and republishes the
    /// pointers, so in-flight sessions keep reading the generation they
    /// pinned. Guarded by pair_mutex (reads and republishes alike);
    /// admission-time cost estimation reads total_rows below instead so it
    /// never touches these under the manager mutex.
    std::shared_ptr<const Table> table_a;
    std::shared_ptr<const Table> table_b;
    std::shared_ptr<const CandidateSet> blocker_output;
    /// Sum of both tables' row counts, set at registration and refreshed on
    /// each committed delta. EstimateCost reads it at admission time under
    /// the manager mutex, where dereferencing the pair_mutex-guarded table
    /// pointers would race with a concurrent republish.
    std::atomic<uint64_t> total_rows{0};
    /// Published by the first session's corpus_sink; later sessions join
    /// over it directly.
    std::shared_ptr<const SsjCorpus> corpus;
    std::vector<size_t> corpus_columns;
    /// Cached repairable top-k state: published by the first qualifying
    /// session's joint_sink, repaired in place by every committed delta.
    /// Guarded by pair_mutex, like corpus.
    std::shared_ptr<const JointListsSnapshot> joint_lists;
    /// One memoized session plan: the joint execution plan plus the config
    /// pick (promising attributes + tree) it was planned over. The two
    /// halves publish independently (config before the joint phase, plan
    /// after it), so a session that dies between them leaves a config-only
    /// entry — a later session reuses the pick and re-plans.
    struct CachedSessionPlan {
      std::shared_ptr<const JoinPlan> plan;
      std::shared_ptr<const CachedConfigPick> config;
    };
    /// Cross-session plan cache: memoized session plans published by the
    /// first planner-eligible session per option signature, served to every
    /// later session with the same signature on the same generation.
    /// Invalidated wholesale by each committed delta (the plan's sampled
    /// corpus statistics and the pick's e-scores die with the generation)
    /// and reclaimed by LRU plane eviction. Guarded by pair_mutex, like
    /// corpus.
    std::unordered_map<uint64_t, CachedSessionPlan> plan_cache;
    /// Monotone plane generation; ApplyTableDelta bumps it on commit.
    /// Guarded by pair_mutex.
    uint64_t generation = 1;
    /// Prior generations awaiting reclaim, oldest first. Guarded by
    /// pair_mutex.
    std::vector<SupersededPlane> superseded;
    uint64_t last_used_tick = 0;
    /// Sessions currently pinned to this entry (claimed but not yet
    /// terminal). Guarded by mutex_ — the evictor reads it there to skip
    /// busy pairs.
    size_t active_sessions = 0;
    /// Serializes the single-flight plane build, table snapshotting, and
    /// delta application for this pair; never held together with mutex_.
    std::mutex pair_mutex;
  };

  struct SessionRecord {
    SessionState state = SessionState::kQueued;
    std::string pair_key;
    SessionRequest request;
    RunContext context;  // Child of root_context_ (+ session deadline).
    Clock::time_point submit_time;
    Clock::time_point deadline_time;  // Meaningful iff has_deadline.
    bool has_deadline = false;
    bool watchdog_cancelled = false;
    /// Pin on the pair entry while the session is live; FinishSession drops
    /// it and decrements active_sessions.
    std::shared_ptr<PairEntry> entry;
    SessionOutcome outcome;
  };

  uint64_t EstimateCost(const PairEntry& entry,
                        const MatchCatcherOptions& options) const;
  void RunSession(uint64_t id);
  void FinishSession(uint64_t id, SessionOutcome outcome);
  void WatchdogLoop();
  size_t EvictSharedPlanesLocked(size_t max_evictions);

  const ServiceLimits limits_;
  /// Declared before everything that charges it: reservations held by
  /// cached planes/corpora and in-flight sessions must release into a live
  /// budget.
  MemoryBudget budget_;

  mutable std::mutex mutex_;
  std::condition_variable terminal_cv_;
  // shared_ptr: in-flight sessions hold their own reference, so replacing
  // or evicting a pair never pulls the entry out from under them.
  std::unordered_map<std::string, std::shared_ptr<PairEntry>> pairs_;
  std::unordered_map<uint64_t, SessionRecord> sessions_;
  uint64_t next_id_ = 1;
  uint64_t lru_tick_ = 0;
  size_t live_count_ = 0;  // Sessions in a non-terminal state.
  double avg_session_seconds_ = 0.0;  // EMA; feeds the retry-after hint.
  Rng retry_seeds_;  // Forked per retry site, under mutex_.
  /// MC_PLANNER_CALIBRATE read once at construction: when true, every
  /// session's joint phase prices plans with — and reports observations
  /// back into — the process-wide CostModelCalibrator.
  const bool calibrate_;
  ServiceStats stats_;
  bool shutting_down_ = false;

  /// Root of every session context: Shutdown() cancels it and the whole
  /// fleet stops at its next poll.
  RunContext root_context_;

  std::thread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  /// Declared last: destroyed (drained) before any state its tasks touch.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace mc

#endif  // MATCHCATCHER_SERVICE_SESSION_MANAGER_H_
