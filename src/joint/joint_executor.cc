#include "joint/joint_executor.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "joint/caching_scorer.h"
#include "joint/overlap_cache.h"
#include "joint/parent_merge.h"
#include "ssj/cost_calibrator.h"
#include "mem/per_node_replica.h"
#include "mem/topology.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mc {

namespace {

// Everything both schedulers need, threaded through one struct instead of
// a dozen lambda captures.
struct JointContext {
  JointContext(const SsjCorpus& corpus, const ConfigTree& tree,
               const JointOptions& options, JointResult& result, size_t q,
               bool overlap_reuse, OverlapCache& cache, size_t num_threads)
      : corpus(corpus),
        tree(tree),
        options(options),
        result(result),
        q(q),
        overlap_reuse(overlap_reuse),
        cache(cache),
        num_threads(num_threads) {}

  const SsjCorpus& corpus;
  const ConfigTree& tree;
  const JointOptions& options;
  JointResult& result;
  size_t q;
  bool overlap_reuse;
  OverlapCache& cache;
  size_t num_threads;
  // Resolved shard count per config: options.shards_per_config, else the
  // planner's hint, else 0 (auto: min(num_threads, hardware)).
  size_t shards_per_config = 0;
  // Hybrid prefilter threshold for the root config (< 0 = off). Set only
  // when the planner ran and decided for the hybrid mode.
  double root_prefilter = -1.0;
  // How the root config executes its threshold (kHybridPrefilter vs the
  // heap-free kThreshold driver); kTopK when no hybrid plan applies.
  JoinExecMode root_mode = JoinExecMode::kTopK;

  std::mutex error_mutex;
  void RecordTaskError(const Status& status) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (result.task_error.ok()) result.task_error = status;
  }

  TopKJoinOptions JoinOptions() const {
    return JoinOptions(options.run_context);
  }

  /// Variant running the join under a derived context (the two-level
  /// scheduler gives each config a child of the session context).
  TopKJoinOptions JoinOptions(const RunContext& run_context) const {
    TopKJoinOptions join_options;
    join_options.k = options.k;
    join_options.measure = options.measure;
    join_options.q = q;
    join_options.exclude = options.exclude;
    join_options.merge_poll_period = options.merge_poll_period;
    join_options.run_context = run_context;
    return join_options;
  }
};

// ---------------------------------------------------------------------------
// Legacy scheduler (JointScheduler::kConfigPerTask): one monolithic task per
// config, all submitted at once; children poll unfinished parents through
// ParentMergeSource. Kept as the determinism pin's "old BFS path" and the
// micro_joint ablation baseline.
// ---------------------------------------------------------------------------

void RunConfigPerTask(JointContext& ctx) {
  std::vector<ParentPublication> states(ctx.tree.size());

  auto run_node = [&](size_t node_index) {
    const ConfigNode& node = ctx.tree.nodes[node_index];
    ConfigJoinResult& out = ctx.result.per_config[node_index];
    out.config = node.mask;
    out.completed = false;  // Set true only when the join drains fully.
    Stopwatch watch;

    // MarkDone guarantees children polling this node never wait on a task
    // that bailed out (cancelled or threw): every exit path publishes
    // whatever list exists, even an empty one.
    struct MarkDone {
      ParentPublication* publication;
      const std::vector<ScoredPair>* topk;
      ~MarkDone() { publication->Publish(*topk); }
    } mark_done{&states[node_index], &out.topk};

    if (ctx.options.run_context.Cancelled()) {
      return;  // Skipped entirely: deadline hit before this config started.
    }
    if (MC_FAULT_POINT("joint/run_node") == FaultKind::kThrow) {
      throw std::runtime_error("injected fault: joint/run_node " +
                               std::to_string(node_index));
    }

    Stopwatch view_watch;
    ConfigView view = ctx.corpus.MakeConfigView(node.mask, ctx.options.view_mode);
    out.view_seconds = view_watch.ElapsedSeconds();
    out.average_tokens = view.average_tokens();

    // Scorer: caching only when overlap reuse is on — constructing the
    // caching scorer snapshots the shared cache, which is wasted work (and
    // misleading hit/miss counters) when reuse is disabled. With reuse off
    // the direct scorer runs and cache_hits/cache_misses stay 0.
    DirectPairScorer direct(&view, ctx.options.measure);
    std::unique_ptr<CachingPairScorer> caching;
    PairScorer* scorer = &direct;
    if (ctx.overlap_reuse) {
      caching = std::make_unique<CachingPairScorer>(
          &ctx.corpus, &view, node.mask, ctx.options.measure, &ctx.cache,
          /*write_enabled=*/true, ctx.options.corpus_miss_path);
      scorer = caching.get();
    }

    TopKJoinOptions join_options = ctx.JoinOptions();

    // Top-k reuse: seed from a finished parent, else poll it mid-run.
    std::vector<ScoredPair> seed;
    const std::vector<ScoredPair>* seed_ptr = nullptr;
    std::unique_ptr<ParentMergeSource> merge_source;
    if (ctx.options.reuse_topk && node.parent >= 0) {
      ParentPublication& parent = states[node.parent];
      if (parent.done()) {
        // Final and immutable: re-adjust straight from the published list.
        seed = ReadjustToConfig(parent.result(), view, *scorer);
        seed_ptr = &seed;
        out.seeded_from_parent = true;
      } else {
        merge_source =
            std::make_unique<ParentMergeSource>(&parent, &view, scorer);
      }
    }

    TopKList topk = RunTopKJoin(view, join_options, scorer, seed_ptr,
                                merge_source.get(), &out.stats);

    out.topk = topk.SortedDescending();
    out.seconds = watch.ElapsedSeconds();
    out.cache_hits = caching != nullptr ? caching->cache_hits() : 0;
    out.cache_misses = caching != nullptr ? caching->cache_misses() : 0;
    out.completed = !out.stats.truncated;
  };

  auto record_task_error = [&](const Status& status) {
    ctx.RecordTaskError(status);
  };

  if (ctx.num_threads == 1) {
    // Sequential BFS (deterministic; every child sees a finished parent).
    // The task boundary matches the pool's: a throwing node is captured as
    // a Status and the remaining configs still run.
    for (size_t i = 0; i < ctx.tree.size(); ++i) {
      try {
        run_node(i);
      } catch (const std::exception& e) {
        record_task_error(
            Status::Internal(std::string("config task threw: ") + e.what()));
      } catch (...) {
        record_task_error(
            Status::Internal("config task threw a non-std exception"));
      }
    }
  } else {
    ThreadPool pool(ctx.num_threads, "mc-joint");
    for (size_t i = 0; i < ctx.tree.size(); ++i) {
      pool.Submit([&run_node, i] { run_node(i); }, record_task_error);
    }
    pool.Wait();
  }
}

// ---------------------------------------------------------------------------
// Two-level scheduler (JointScheduler::kTwoLevel, the default).
//
// Level 1: configs are scheduled over the config tree parents-first — a
// config's setup task is submitted only after its parent published its
// final list, so every child seeds from a finished parent (no mid-run
// polling, no idle spinning). Level 2: each config's join is decomposed
// into table-A shard sub-joins (RunTopKJoinShard) that run as independent
// pool tasks, so the machine stays busy even when few configs are ready.
//
// Determinism: every shard list is the canonical top-k of its sub-space
// under (score desc, pair asc), so the shard merge reproduces the
// sequential join's list exactly; parents-first makes the seeds — and hence
// every per-config list — identical for every thread count, shard count,
// and scheduling interleaving.
//
// Liveness: every setup path — cancelled, faulted, or normal — ends in
// PublishAndCascade, which publishes the (possibly empty) list and submits
// the children's setups. No task ever blocks on another task, so a full
// drain of the pool is guaranteed; a failed parent yields one incomplete
// config, not an orphaned subtree.
// ---------------------------------------------------------------------------

class TwoLevelExecutor {
 public:
  TwoLevelExecutor(JointContext& ctx) : ctx_(ctx), nodes_(ctx.tree.size()) {
    for (size_t i = 0; i < ctx_.tree.size(); ++i) {
      const int32_t parent = ctx_.tree.nodes[i].parent;
      if (parent >= 0) nodes_[static_cast<size_t>(parent)].children.push_back(i);
    }
    shard_count_ = ctx_.shards_per_config != 0
                       ? ctx_.shards_per_config
                       : std::max<size_t>(
                             1, std::min<size_t>(
                                    ctx_.num_threads,
                                    std::max<size_t>(
                                        1, std::thread::hardware_concurrency())));
    // Topology decomposition: shard tasks are grouped into one contiguous
    // table-A row window per NUMA node (the slice PlaceForTopology bound to
    // that node), with the residue split applied inside each window. Every
    // group task is routed to its node's workers. Single-node topologies
    // give one group covering all rows — exactly the classic residue
    // partition. Any disjoint decomposition merges to the same canonical
    // list, so this moves memory traffic, never results.
    groups_ = std::min(mem::SystemTopology::Get().num_nodes(), shard_count_);
    if (groups_ == 0) groups_ = 1;
  }

  void Run() {
    pool_ = std::make_unique<ThreadPool>(
        ctx_.num_threads,
        ThreadPoolOptions{.name_prefix = "mc-joint", .topology_aware = true});
    for (size_t i = 0; i < ctx_.tree.size(); ++i) {
      if (ctx_.tree.nodes[i].parent < 0) {
        pool_->Submit([this, i] { StartNode(i); });
      }
    }
    pool_->Wait();
    pool_.reset();
  }

 private:
  struct Node {
    ParentPublication publication;
    std::vector<size_t> children;
    // Setup products; alive from StartNode until FinishNode (shard tasks
    // reference them).
    ConfigView view;
    std::vector<std::unique_ptr<CachingPairScorer>> scorers;  // Per shard.
    std::vector<ScoredPair> seed;
    // Per-node copies of the seed: every shard task of a config reads the
    // seed list, so the replicas keep that hot read-only structure off a
    // single node's memory controller. One copy on single-node topologies.
    mem::PerNodeReplica<std::vector<ScoredPair>> seed_replicas;
    bool use_seed = false;
    std::vector<TopKList> shard_lists;
    std::vector<TopKJoinStats> shard_stats;
    std::atomic<size_t> shards_remaining{0};
    std::atomic<bool> failed{false};
    // Child of the session context (RunContext::WithParent): the session's
    // cancel/deadline still stops every shard, while a failed shard cancels
    // only its sibling shards — other configs keep running.
    RunContext context;
    Stopwatch watch;
  };

  // Node-ready step: build the view and scorers, re-adjust the parent's
  // published list into the seed, and fan the config out into shard tasks.
  void StartNode(size_t index) {
    Node& node = nodes_[index];
    const ConfigNode& tree_node = ctx_.tree.nodes[index];
    ConfigJoinResult& out = ctx_.result.per_config[index];
    node.watch.Reset();
    out.config = tree_node.mask;
    out.completed = false;
    try {
      if (ctx_.options.run_context.Cancelled()) {
        // Skipped entirely; children still cascade (and skip too).
        PublishAndCascade(index);
        return;
      }
      if (MC_FAULT_POINT("joint/run_node") == FaultKind::kThrow) {
        throw std::runtime_error("injected fault: joint/run_node " +
                                 std::to_string(index));
      }

      Stopwatch view_watch;
      node.view =
          ctx_.corpus.MakeConfigView(tree_node.mask, ctx_.options.view_mode);
      out.view_seconds = view_watch.ElapsedSeconds();
      out.average_tokens = node.view.average_tokens();
      out.shards_used = shard_count_;

      // Per-shard caching scorers: CachingPairScorer is single-threaded
      // (local snapshot + counters), so each shard gets its own instance
      // over the shared concurrent cache. Snapshots taken here — after the
      // parent finished — already contain every ancestor's kept pairs.
      // Writes are disabled on the hot path: the legacy engine pays a
      // ComputeShared (full-tuple merge + allocation) for every pair that
      // *enters* a top-k list, including the many later evicted; the
      // two-level scheduler instead writes the k pairs that actually
      // survived, once, at config completion (FinishNode) — which is all a
      // child's snapshot can observe anyway, since children start only
      // after the parent published.
      if (ctx_.overlap_reuse) {
        node.scorers.reserve(shard_count_);
        for (size_t s = 0; s < shard_count_; ++s) {
          node.scorers.push_back(std::make_unique<CachingPairScorer>(
              &ctx_.corpus, &node.view, tree_node.mask, ctx_.options.measure,
              &ctx_.cache, /*write_enabled=*/false,
              ctx_.options.corpus_miss_path));
        }
      }

      // Parents-first guarantee: the parent published before this task was
      // submitted, so the seed is always available — children never poll.
      if (ctx_.options.reuse_topk && tree_node.parent >= 0) {
        const ParentPublication& parent =
            nodes_[static_cast<size_t>(tree_node.parent)].publication;
        if (!node.scorers.empty()) {
          node.seed =
              ReadjustToConfig(parent.result(), node.view, *node.scorers[0]);
        } else {
          DirectPairScorer direct(&node.view, ctx_.options.measure);
          node.seed = ReadjustToConfig(parent.result(), node.view, direct);
        }
        node.use_seed = true;
        out.seeded_from_parent = true;
      }
      if (node.use_seed && groups_ > 1) {
        node.seed_replicas.Fill(node.seed, groups_);
      }

      node.context = RunContext::WithParent(ctx_.options.run_context);
      node.shard_lists.reserve(shard_count_);
      for (size_t s = 0; s < shard_count_; ++s) {
        node.shard_lists.emplace_back(ctx_.options.k);
      }
      node.shard_stats.assign(shard_count_, TopKJoinStats{});
      node.shards_remaining.store(shard_count_, std::memory_order_relaxed);
      for (size_t s = 0; s < shard_count_; ++s) {
        pool_->SubmitOnNode(static_cast<int>(GroupOfShard(s)),
                            [this, index, s] { RunShardTask(index, s); });
      }
    } catch (const std::exception& e) {
      ctx_.RecordTaskError(
          Status::Internal(std::string("config task threw: ") + e.what()));
      node.failed.store(true, std::memory_order_relaxed);
      PublishAndCascade(index);
    } catch (...) {
      ctx_.RecordTaskError(
          Status::Internal("config task threw a non-std exception"));
      node.failed.store(true, std::memory_order_relaxed);
      PublishAndCascade(index);
    }
  }

  void RunShardTask(size_t index, size_t s) {
    Node& node = nodes_[index];
    try {
      if (MC_FAULT_POINT("joint/shard_task") == FaultKind::kThrow) {
        throw std::runtime_error("injected fault: joint/shard_task " +
                                 std::to_string(index) + "/" +
                                 std::to_string(s));
      }
      PairScorer* scorer =
          node.scorers.empty() ? nullptr : node.scorers[s].get();
      TopKJoinOptions join_options = ctx_.JoinOptions(node.context);
      // Hybrid prefilter, planned for the root config only (the planner
      // sampled the root view) and only in single-shard form: a shard
      // sub-space's k-th score can sit below the full-space bound the
      // sample provides, which would force per-shard restarts.
      if (index == 0 && node.shard_lists.size() == 1 && !node.use_seed) {
        join_options.prefilter_threshold = ctx_.root_prefilter;
        // Threshold-mode dispatch: the plan's fixed bound runs the
        // heap-free driver instead of the prefiltered event engine. Same
        // gate, same accept-or-restart contract, bit-identical output.
        if (ctx_.root_mode == JoinExecMode::kThreshold &&
            ctx_.root_prefilter >= 0.0) {
          node.shard_lists[s] = RunThresholdJoin(node.view, join_options,
                                                 scorer, /*seed=*/nullptr,
                                                 &node.shard_stats[s]);
          if (node.shards_remaining.fetch_sub(
                  1, std::memory_order_acq_rel) == 1) {
            FinishNode(index);
          }
          return;
        }
      }
      // Topology decomposition of the global shard id: group g owns the
      // contiguous A-row window PlaceForTopology bound to NUMA node g, and
      // the residue split runs inside that window. groups_ == 1 degenerates
      // to the classic full-window residue partition (r == s, window == A).
      const size_t g = GroupOfShard(s);
      const size_t r = s - GroupBegin(g);
      const size_t group_count = GroupBegin(g + 1) - GroupBegin(g);
      const size_t rows_a = node.view.rows_a();
      const size_t a_begin = g * rows_a / groups_;
      const size_t a_end = (g + 1) * rows_a / groups_;
      const std::vector<ScoredPair>* seed = nullptr;
      if (node.use_seed) {
        seed = node.seed_replicas.empty() ? &node.seed
                                          : &node.seed_replicas.Get(g);
      }
      node.shard_lists[s] = RunTopKJoinShard(
          node.view, join_options, r, group_count, scorer, seed,
          &node.shard_stats[s], /*b_shard=*/0, /*b_shard_count=*/1, a_begin,
          a_end);
    } catch (const std::exception& e) {
      ctx_.RecordTaskError(
          Status::Internal(std::string("config task threw: ") + e.what()));
      node.failed.store(true, std::memory_order_relaxed);
      node.shard_stats[s].truncated = true;
      // The config is already lost; stop its sibling shards at their next
      // poll instead of letting them run the join to completion.
      node.context.Cancel();
    } catch (...) {
      ctx_.RecordTaskError(
          Status::Internal("config task threw a non-std exception"));
      node.failed.store(true, std::memory_order_relaxed);
      node.shard_stats[s].truncated = true;
      node.context.Cancel();
    }
    // The last shard to finish merges and cascades (acq_rel: it observes
    // every other shard's list writes).
    if (node.shards_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      FinishNode(index);
    }
  }

  // Runs on the worker that finished the config's last shard: merge the
  // shard lists deterministically, finalize the per-config result, release
  // the setup products, publish, and cascade the children.
  void FinishNode(size_t index) {
    Node& node = nodes_[index];
    ConfigJoinResult& out = ctx_.result.per_config[index];

    TopKList merged(ctx_.options.k);
    for (const TopKList& list : node.shard_lists) {
      for (const ScoredPair& entry : list.Entries()) {
        merged.Add(entry.pair, entry.score);
      }
    }
    for (const TopKJoinStats& stats : node.shard_stats) {
      out.stats.events_popped += stats.events_popped;
      out.stats.pairs_discovered += stats.pairs_discovered;
      out.stats.pairs_scored += stats.pairs_scored;
      out.stats.pairs_pruned += stats.pairs_pruned;
      out.stats.tokens_indexed += stats.tokens_indexed;
      out.stats.merges_applied += stats.merges_applied;
      out.stats.prefilter_restarts += stats.prefilter_restarts;
      out.stats.truncated = out.stats.truncated || stats.truncated;
    }
    for (const std::unique_ptr<CachingPairScorer>& scorer : node.scorers) {
      out.cache_hits += scorer->cache_hits();
      out.cache_misses += scorer->cache_misses();
    }
    out.topk = merged.SortedDescending();
    // Deferred cache writes: publish the overlap structure of the pairs
    // that survived the merge — exactly what descendants' snapshots will
    // re-score. Insert-only, first writer wins, so pairs already published
    // by an ancestor skip the ComputeShared entirely.
    if (!node.scorers.empty()) {
      for (const ScoredPair& entry : out.topk) {
        ctx_.cache.InsertWith(entry.pair, [&] {
          return OverlapCache::ComputeShared(
              ctx_.corpus.tuple_a(PairRowA(entry.pair)),
              ctx_.corpus.tuple_b(PairRowB(entry.pair)));
        });
      }
    }
    out.completed =
        !out.stats.truncated && !node.failed.load(std::memory_order_relaxed);
    out.seconds = node.watch.ElapsedSeconds();

    // Release the setup products now: the view's scratch buffer returns to
    // the corpus pool for the configs still to come.
    node.scorers.clear();
    node.view = ConfigView();
    node.seed.clear();
    node.seed.shrink_to_fit();
    node.seed_replicas = mem::PerNodeReplica<std::vector<ScoredPair>>();
    node.shard_lists.clear();
    node.shard_stats.clear();

    PublishAndCascade(index);
  }

  // Every setup/finish path ends here exactly once per node: publish the
  // (possibly empty) final list for the children to seed from, then submit
  // their setup tasks.
  void PublishAndCascade(size_t index) {
    Node& node = nodes_[index];
    node.publication.Publish(
        std::vector<ScoredPair>(ctx_.result.per_config[index].topk));
    for (size_t child : node.children) {
      pool_->Submit([this, child] { StartNode(child); });
    }
  }

  // First global shard id owned by group g; group g owns ids
  // [GroupBegin(g), GroupBegin(g + 1)). Inverse of GroupOfShard.
  size_t GroupBegin(size_t g) const {
    return (g * shard_count_ + groups_ - 1) / groups_;
  }
  size_t GroupOfShard(size_t s) const { return s * groups_ / shard_count_; }

  JointContext& ctx_;
  std::vector<Node> nodes_;
  size_t shard_count_ = 1;
  size_t groups_ = 1;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace

JointResult RunJointTopKJoins(const SsjCorpus& corpus, const ConfigTree& tree,
                              const JointOptions& options) {
  MC_CHECK_GT(tree.size(), 0u);
  Stopwatch total_watch;
  // Bind the corpus's per-node A-row slices before the join touches them
  // (advisory: no-op / fallback-counted on single-node, fake, or bind-less
  // systems; never affects results).
  corpus.PlaceForTopology();
  JointResult result;
  result.per_config.resize(tree.size());

  // Decide the plan (q, shard hint, hybrid prefilter) on the root config —
  // by the cost-based planner (the default) or the legacy q race. Both
  // respect the run context, so a deadline also bounds this warm-up phase.
  size_t q = options.q;
  Stopwatch root_view_watch;
  ConfigView root_view =
      corpus.MakeConfigView(tree.nodes[0].mask, options.view_mode);
  result.stages.view_seconds += root_view_watch.ElapsedSeconds();
  Stopwatch q_watch;
  const size_t hardware =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  if (q == 0) {
    if (options.q_selection == QSelection::kPlanner) {
      if (options.cached_plan != nullptr) {
        // Cross-session plan cache hit: skip the sampling probes entirely.
        // The caller guarantees the plan was computed by PlanTopKJoin on an
        // identical corpus generation/config signature, so executing it is
        // bit-identical to planning fresh (the planner is deterministic).
        result.plan = *options.cached_plan;
        result.plan_from_cache = true;
      } else {
        PlannerOptions planner_options;
        planner_options.k = options.k;
        planner_options.measure = options.measure;
        planner_options.exclude = options.exclude;
        planner_options.seed = options.planner_seed;
        planner_options.max_shards =
            options.num_threads != 0 ? options.num_threads : hardware;
        planner_options.enable_hybrid =
            options.planner_hybrid &&
            options.scheduler == JointScheduler::kTwoLevel;
        planner_options.enable_threshold = options.planner_threshold;
        if (options.calibrator != nullptr) {
          planner_options.weights = options.calibrator->weights();
        }
        planner_options.run_context = options.run_context;
        result.plan = PlanTopKJoin(corpus, root_view, planner_options);
      }
      result.planner_used = true;
      q = result.plan.q;
    } else {
      size_t max_q = 4;
      q = SelectQByRace(root_view, options.measure, options.exclude, max_q,
                        /*probe_k=*/50, options.run_context);
    }
  }
  result.q_used = q;
  result.stages.q_select_seconds = q_watch.ElapsedSeconds();

  // The reuse trigger uses the average tuple length over the root config.
  const bool overlap_reuse =
      options.reuse_overlaps &&
      root_view.average_tokens() >= options.reuse_min_avg_tokens;
  result.overlap_reuse_active = overlap_reuse;

  const size_t cache_shards =
      options.overlap_cache_shards != 0
          ? options.overlap_cache_shards
          : OverlapCache::RecommendShards(
                corpus.rows_a(), corpus.rows_b(), options.k, tree.size(),
                result.planner_used && !result.plan.truncated
                    ? result.plan.est_scored
                    : 0);
  result.overlap_cache_shards_used = cache_shards;
  OverlapCache cache(cache_shards);

  const size_t num_threads =
      options.num_threads != 0 ? options.num_threads : hardware;

  JointContext ctx(corpus, tree, options, result, q, overlap_reuse, cache,
                   num_threads);
  ctx.shards_per_config = options.shards_per_config;
  if (ctx.shards_per_config == 0 && result.planner_used &&
      !result.plan.truncated) {
    ctx.shards_per_config = result.plan.shards;
  }
  if (result.planner_used && result.plan.hybrid) {
    ctx.root_prefilter = result.plan.prefilter_threshold;
    ctx.root_mode = result.plan.mode;
  }

  if (options.scheduler == JointScheduler::kConfigPerTask) {
    RunConfigPerTask(ctx);
  } else {
    TwoLevelExecutor(ctx).Run();
  }

  result.plan_decisions.reserve(tree.size());
  for (size_t i = 0; i < tree.size(); ++i) {
    const ConfigJoinResult& config = result.per_config[i];
    ConfigPlanDecision decision;
    decision.config = config.config;
    decision.q = q;
    decision.shards = config.shards_used;
    decision.seeded_from_parent = config.seeded_from_parent;
    decision.hybrid = i == 0 && ctx.root_prefilter >= 0.0 &&
                      options.scheduler == JointScheduler::kTwoLevel &&
                      config.shards_used == 1 && !config.seeded_from_parent;
    decision.prefilter_threshold =
        decision.hybrid ? ctx.root_prefilter : -1.0;
    decision.mode = decision.hybrid ? ctx.root_mode : JoinExecMode::kTopK;
    result.plan_decisions.push_back(decision);
  }

  for (const ConfigJoinResult& config : result.per_config) {
    if (!config.completed) result.truncated = true;
    result.stages.view_seconds += config.view_seconds;
    result.stages.join_seconds +=
        std::max(0.0, config.seconds - config.view_seconds);
  }
  // A corpus cut short mid-build (deadline/fault during tokenization) makes
  // every per-config list best-so-far, not exact.
  if (corpus.truncated()) result.truncated = true;
  // Online calibration feedback: every completed config reports the same
  // operation counts the cost model prices, plus its observed join time.
  // Node order is fixed, so the observation sequence is deterministic for a
  // given run shape (the calibrator's determinism contract is sequence-in,
  // weights-out; wall times naturally vary across machines).
  if (options.calibrator != nullptr) {
    for (const ConfigJoinResult& config : result.per_config) {
      if (!config.completed) continue;
      CostObservation observation;
      observation.events = config.stats.events_popped;
      observation.probes =
          config.stats.pairs_pruned + config.stats.pairs_scored;
      observation.scored = config.stats.pairs_scored;
      observation.mean_tokens = config.average_tokens;
      observation.seconds =
          std::max(0.0, config.seconds - config.view_seconds);
      options.calibrator->Record(observation);
    }
  }
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

}  // namespace mc
