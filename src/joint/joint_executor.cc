#include "joint/joint_executor.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include <stdexcept>

#include "joint/caching_scorer.h"
#include "joint/overlap_cache.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace mc {

namespace {

// Completion state of one config task, read by its children.
struct NodeState {
  std::mutex mutex;
  bool done = false;
  // Final top-k of the config, with scores under *that* config.
  std::vector<ScoredPair> result;
};

// Re-scores a parent's top-k pairs under the child config using the child's
// scorer ("this re-adjustment is fairly straightforward (and inexpensive)
// because the overlap information ... should already be in H", §4.2).
// Pairs where either tuple has no tokens under the child config are dropped:
// such tuples never take part in the child's join (an empty string carries
// no similarity evidence), and the empty-vs-empty case would degenerately
// score 1.0.
std::vector<ScoredPair> ReadjustToConfig(const std::vector<ScoredPair>& pairs,
                                         const ConfigView& view,
                                         PairScorer& scorer) {
  std::vector<ScoredPair> adjusted;
  adjusted.reserve(pairs.size());
  for (const ScoredPair& entry : pairs) {
    RowId row_a = PairRowA(entry.pair);
    RowId row_b = PairRowB(entry.pair);
    if (view.a(row_a).empty() || view.b(row_b).empty()) {
      continue;
    }
    adjusted.push_back(ScoredPair{entry.pair, scorer.Score(row_a, row_b)});
  }
  return adjusted;
}

// MergeSource that waits for a parent task and re-adjusts its list when it
// lands.
class ParentMergeSource : public MergeSource {
 public:
  ParentMergeSource(NodeState* parent, const ConfigView* view,
                    PairScorer* scorer)
      : parent_(parent), view_(view), scorer_(scorer) {}

  std::optional<std::vector<ScoredPair>> TryFetch() override {
    std::vector<ScoredPair> snapshot;
    {
      std::lock_guard<std::mutex> lock(parent_->mutex);
      if (!parent_->done) return std::nullopt;
      snapshot = parent_->result;
    }
    return ReadjustToConfig(snapshot, *view_, *scorer_);
  }

 private:
  NodeState* parent_;
  const ConfigView* view_;
  PairScorer* scorer_;
};

}  // namespace

JointResult RunJointTopKJoins(const SsjCorpus& corpus, const ConfigTree& tree,
                              const JointOptions& options) {
  MC_CHECK_GT(tree.size(), 0u);
  Stopwatch total_watch;
  JointResult result;
  result.per_config.resize(tree.size());

  // Decide q (optionally by racing on the root config). The race respects
  // the run context, so a deadline also bounds this warm-up phase.
  size_t q = options.q;
  ConfigView root_view = corpus.MakeConfigView(tree.nodes[0].mask);
  if (q == 0) {
    size_t max_q = 4;
    q = SelectQByRace(root_view, options.measure, options.exclude, max_q,
                      /*probe_k=*/50, options.run_context);
  }
  result.q_used = q;

  // The reuse trigger uses the average tuple length over the root config.
  const bool overlap_reuse =
      options.reuse_overlaps &&
      root_view.average_tokens() >= options.reuse_min_avg_tokens;
  result.overlap_reuse_active = overlap_reuse;

  OverlapCache cache;
  std::vector<NodeState> states(tree.size());

  size_t num_threads = options.num_threads != 0
                           ? options.num_threads
                           : std::max(1u, std::thread::hardware_concurrency());

  auto run_node = [&](size_t node_index) {
    const ConfigNode& node = tree.nodes[node_index];
    ConfigJoinResult& out = result.per_config[node_index];
    out.config = node.mask;
    out.completed = false;  // Set true only when the join drains fully.
    Stopwatch watch;

    // MarkDone guarantees children polling this node never wait on a task
    // that bailed out (cancelled or threw): every exit path publishes
    // whatever list exists, even an empty one.
    struct MarkDone {
      NodeState* state;
      const std::vector<ScoredPair>* topk;
      ~MarkDone() {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->result = *topk;
        state->done = true;
      }
    } mark_done{&states[node_index], &out.topk};

    if (options.run_context.Cancelled()) {
      return;  // Skipped entirely: deadline hit before this config started.
    }
    if (MC_FAULT_POINT("joint/run_node") == FaultKind::kThrow) {
      throw std::runtime_error("injected fault: joint/run_node " +
                               std::to_string(node_index));
    }

    ConfigView view = corpus.MakeConfigView(node.mask);

    // Scorer: caching only when overlap reuse is on — constructing the
    // caching scorer snapshots the shared cache, which is wasted work (and
    // misleading hit/miss counters) when reuse is disabled. With reuse off
    // the direct scorer runs and cache_hits/cache_misses stay 0.
    DirectPairScorer direct(&view, options.measure);
    std::unique_ptr<CachingPairScorer> caching;
    PairScorer* scorer = &direct;
    if (overlap_reuse) {
      caching = std::make_unique<CachingPairScorer>(
          &corpus, &view, node.mask, options.measure, &cache,
          /*write_enabled=*/true);
      scorer = caching.get();
    }

    TopKJoinOptions join_options;
    join_options.k = options.k;
    join_options.measure = options.measure;
    join_options.q = q;
    join_options.exclude = options.exclude;
    join_options.merge_poll_period = options.merge_poll_period;
    join_options.run_context = options.run_context;

    // Top-k reuse: seed from a finished parent, else poll it mid-run.
    std::vector<ScoredPair> seed;
    const std::vector<ScoredPair>* seed_ptr = nullptr;
    std::unique_ptr<ParentMergeSource> merge_source;
    if (options.reuse_topk && node.parent >= 0) {
      NodeState& parent = states[node.parent];
      bool parent_done = false;
      {
        std::lock_guard<std::mutex> lock(parent.mutex);
        parent_done = parent.done;
        if (parent_done) seed = parent.result;  // Snapshot under the lock.
      }
      if (parent_done) {
        seed = ReadjustToConfig(seed, view, *scorer);
        seed_ptr = &seed;
        out.seeded_from_parent = true;
      } else {
        merge_source =
            std::make_unique<ParentMergeSource>(&parent, &view, scorer);
      }
    }

    TopKList topk = RunTopKJoin(view, join_options, scorer, seed_ptr,
                                merge_source.get(), &out.stats);

    out.topk = topk.SortedDescending();
    out.seconds = watch.ElapsedSeconds();
    out.cache_hits = caching != nullptr ? caching->cache_hits() : 0;
    out.cache_misses = caching != nullptr ? caching->cache_misses() : 0;
    out.completed = !out.stats.truncated;
  };

  std::mutex error_mutex;
  auto record_task_error = [&](const Status& status) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (result.task_error.ok()) result.task_error = status;
  };

  if (num_threads == 1) {
    // Sequential BFS (deterministic; every child sees a finished parent).
    // The task boundary matches the pool's: a throwing node is captured as
    // a Status and the remaining configs still run.
    for (size_t i = 0; i < tree.size(); ++i) {
      try {
        run_node(i);
      } catch (const std::exception& e) {
        record_task_error(
            Status::Internal(std::string("config task threw: ") + e.what()));
      } catch (...) {
        record_task_error(
            Status::Internal("config task threw a non-std exception"));
      }
    }
  } else {
    ThreadPool pool(num_threads);
    for (size_t i = 0; i < tree.size(); ++i) {
      pool.Submit([&run_node, i] { run_node(i); }, record_task_error);
    }
    pool.Wait();
  }

  for (const ConfigJoinResult& config : result.per_config) {
    if (!config.completed) result.truncated = true;
  }
  result.total_seconds = total_watch.ElapsedSeconds();
  return result;
}

}  // namespace mc
