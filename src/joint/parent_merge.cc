#include "joint/parent_merge.h"

namespace mc {

std::vector<ScoredPair> ReadjustToConfig(const std::vector<ScoredPair>& pairs,
                                         const ConfigView& view,
                                         PairScorer& scorer) {
  std::vector<ScoredPair> adjusted;
  adjusted.reserve(pairs.size());
  for (const ScoredPair& entry : pairs) {
    RowId row_a = PairRowA(entry.pair);
    RowId row_b = PairRowB(entry.pair);
    if (view.a(row_a).empty() || view.b(row_b).empty()) {
      continue;
    }
    adjusted.push_back(ScoredPair{entry.pair, scorer.Score(row_a, row_b)});
  }
  return adjusted;
}

}  // namespace mc
