#include "joint/caching_scorer.h"

#include <algorithm>
#include <cmath>

#include "simd/kernels.h"

namespace mc {

namespace {

// Overlap by merging the two rows' view spans (sorted rank arrays already
// filtered to the active config). Equivalent to SsjCorpus::ConfigOverlap —
// a token survives the view iff its mask intersects the config on that side
// — but merges only the surviving tokens instead of the full tuples.
size_t SpanOverlap(TokenSpan a, TokenSpan b) {
  return simd::OverlapCount(a.data, a.size(), b.data, b.size());
}

// Smallest overlap whose similarity reaches `threshold` for the given set
// sizes (runtime-measure twin of the engine's RequiredOverlap, non-strict:
// ties must still be scored in full). Closed-form guess, then a local
// adjustment — a handful of iterations at most.
size_t RequiredOverlapFor(SetMeasure measure, size_t size_a, size_t size_b,
                          double threshold) {
  const size_t max_overlap = std::min(size_a, size_b);
  const double a = static_cast<double>(size_a);
  const double b = static_cast<double>(size_b);
  auto reaches = [&](size_t overlap) {
    return SetSimilarityFromCounts(measure, size_a, size_b, overlap) >=
           threshold;
  };
  double guess;
  switch (measure) {
    case SetMeasure::kJaccard:
      guess = threshold * (a + b) / (1.0 + threshold);
      break;
    case SetMeasure::kCosine:
      guess = threshold * std::sqrt(a * b);
      break;
    case SetMeasure::kDice:
      guess = threshold * (a + b) / 2.0;
      break;
    default:
      guess = threshold * std::min(a, b);
      break;
  }
  size_t o = guess <= 0.0                                ? 0
             : guess >= static_cast<double>(max_overlap) ? max_overlap
                                                         : static_cast<size_t>(guess);
  while (o > 0 && reaches(o - 1)) --o;
  while (o <= max_overlap && !reaches(o)) ++o;
  return o;
}

// SpanOverlap with a positional bound: returns false as soon as matching
// every remaining token would still leave the overlap below `required`.
bool SpanOverlapAbove(TokenSpan a, TokenSpan b, size_t required,
                      size_t* overlap_out) {
  return simd::OverlapAtLeast(a.data, a.size(), b.data, b.size(), required,
                              overlap_out);
}

}  // namespace

CachingPairScorer::CachingPairScorer(const SsjCorpus* corpus,
                                     const ConfigView* view, ConfigMask config,
                                     SetMeasure measure, OverlapCache* cache,
                                     bool write_enabled, bool corpus_miss_path)
    : corpus_(corpus),
      view_(view),
      config_(config),
      measure_(measure),
      cache_(cache),
      write_enabled_(write_enabled),
      corpus_miss_path_(corpus_miss_path),
      snapshot_(cache->Size() * 2 + 64) {
  cache_->ForEach([this](PairId pair, const CachedOverlap& overlap) {
    bool inserted = false;
    *snapshot_.FindOrInsert(pair, &overlap, &inserted) = &overlap;
  });
}

double CachingPairScorer::Score(RowId row_a, RowId row_b) {
  const PairId pair = MakePairId(row_a, row_b);
  size_t overlap = 0;
  if (const CachedOverlap** cached = snapshot_.Find(pair)) {
    ++hits_;
    overlap = OverlapCache::OverlapUnder(**cached, config_);
  } else {
    ++misses_;
    overlap = corpus_miss_path_
                  ? SsjCorpus::ConfigOverlap(corpus_->tuple_a(row_a),
                                             corpus_->tuple_b(row_b), config_)
                  : SpanOverlap(view_->a(row_a), view_->b(row_b));
  }
  return SetSimilarityFromCounts(measure_, view_->a(row_a).size(),
                                 view_->b(row_b).size(), overlap);
}

bool CachingPairScorer::ScoreAbove(RowId row_a, RowId row_b, double threshold,
                                   double* score) {
  const PairId pair = MakePairId(row_a, row_b);
  const TokenSpan a = view_->a(row_a);
  const TokenSpan b = view_->b(row_b);
  if (const CachedOverlap** cached = snapshot_.Find(pair)) {
    ++hits_;
    *score = SetSimilarityFromCounts(
        measure_, a.size(), b.size(),
        OverlapCache::OverlapUnder(**cached, config_));
    return true;
  }
  ++misses_;
  if (corpus_miss_path_) {
    *score = SetSimilarityFromCounts(
        measure_, a.size(), b.size(),
        SsjCorpus::ConfigOverlap(corpus_->tuple_a(row_a),
                                 corpus_->tuple_b(row_b), config_));
    return true;
  }
  const size_t required =
      RequiredOverlapFor(measure_, a.size(), b.size(), threshold);
  size_t overlap = 0;
  if (!SpanOverlapAbove(a, b, required, &overlap)) return false;
  *score = SetSimilarityFromCounts(measure_, a.size(), b.size(), overlap);
  return true;
}

void CachingPairScorer::NoteKept(RowId row_a, RowId row_b) {
  if (!write_enabled_) return;
  const PairId pair = MakePairId(row_a, row_b);
  const CachedOverlap* stored = cache_->InsertWith(pair, [&] {
    return OverlapCache::ComputeShared(corpus_->tuple_a(row_a),
                                       corpus_->tuple_b(row_b));
  });
  bool inserted = false;
  *snapshot_.FindOrInsert(pair, stored, &inserted) = stored;
}

}  // namespace mc
