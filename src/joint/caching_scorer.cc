#include "joint/caching_scorer.h"

namespace mc {

CachingPairScorer::CachingPairScorer(const SsjCorpus* corpus,
                                     const ConfigView* view, ConfigMask config,
                                     SetMeasure measure, OverlapCache* cache,
                                     bool write_enabled)
    : corpus_(corpus),
      view_(view),
      config_(config),
      measure_(measure),
      cache_(cache),
      write_enabled_(write_enabled),
      snapshot_(cache->Size() * 2 + 64) {
  cache_->ForEach([this](PairId pair, const CachedOverlap& overlap) {
    bool inserted = false;
    *snapshot_.FindOrInsert(pair, &overlap, &inserted) = &overlap;
  });
}

double CachingPairScorer::Score(RowId row_a, RowId row_b) {
  const PairId pair = MakePairId(row_a, row_b);
  size_t overlap = 0;
  if (const CachedOverlap** cached = snapshot_.Find(pair)) {
    ++hits_;
    overlap = OverlapCache::OverlapUnder(**cached, config_);
  } else {
    ++misses_;
    overlap = SsjCorpus::ConfigOverlap(corpus_->tuple_a(row_a),
                                       corpus_->tuple_b(row_b), config_);
  }
  return SetSimilarityFromCounts(measure_, view_->a(row_a).size(),
                                 view_->b(row_b).size(), overlap);
}

void CachingPairScorer::NoteKept(RowId row_a, RowId row_b) {
  if (!write_enabled_) return;
  const PairId pair = MakePairId(row_a, row_b);
  const CachedOverlap* stored = cache_->InsertWith(pair, [&] {
    return OverlapCache::ComputeShared(corpus_->tuple_a(row_a),
                                       corpus_->tuple_b(row_b));
  });
  bool inserted = false;
  *snapshot_.FindOrInsert(pair, stored, &inserted) = stored;
}

}  // namespace mc
