#ifndef MATCHCATCHER_JOINT_PARENT_MERGE_H_
#define MATCHCATCHER_JOINT_PARENT_MERGE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "ssj/topk_join.h"
#include "ssj/topk_list.h"

namespace mc {

/// One config's published final top-k list, read by its children (paper
/// §4.2: "When config g finishes, it sends its top-k list to h"). The
/// owning config's task calls Publish exactly once, on every exit path —
/// even cancelled or failed tasks publish their (possibly empty)
/// best-so-far list, so children never wait on a parent that bailed out.
///
/// Readers distinguish "nothing changed since my last poll" from "the
/// final list landed" through a monotonic version counter, without taking
/// a lock or touching the list.
class ParentPublication {
 public:
  /// Publishes the final list. The list is immutable afterwards; done()
  /// readers may reference it without copying.
  void Publish(std::vector<ScoredPair> list) {
    result_ = std::move(list);
    done_.store(true, std::memory_order_release);
    version_.fetch_add(1, std::memory_order_release);
  }

  /// Monotonic change counter; 0 until the first Publish.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  bool done() const { return done_.load(std::memory_order_acquire); }

  /// The published list. Only valid once done(); immutable from then on.
  const std::vector<ScoredPair>& result() const { return result_; }

 private:
  std::atomic<uint64_t> version_{0};
  std::atomic<bool> done_{false};
  std::vector<ScoredPair> result_;
};

/// Re-scores a parent's top-k pairs under the child config using the
/// child's scorer ("this re-adjustment is fairly straightforward (and
/// inexpensive) because the overlap information ... should already be in
/// H", §4.2). Pairs where either tuple has no tokens under the child
/// config are dropped: such tuples never take part in the child's join (an
/// empty string carries no similarity evidence), and the empty-vs-empty
/// case would degenerately score 1.0.
std::vector<ScoredPair> ReadjustToConfig(const std::vector<ScoredPair>& pairs,
                                         const ConfigView& view,
                                         PairScorer& scorer);

/// MergeSource that waits for a parent config's publication and re-adjusts
/// its list to the child config when it lands.
///
/// TryFetch is polled every merge_poll_period join events; the common case
/// by far is "parent still running". That case is a single atomic load:
/// the version check skips the lock/copy/re-score work entirely when the
/// parent's publication has not changed since the previous poll. When the
/// final list does land, it is re-adjusted straight from the (now
/// immutable) published vector — no snapshot copy. The MergeSource
/// contract (a value at most once) holds because the version changes
/// exactly once, at Publish.
class ParentMergeSource : public MergeSource {
 public:
  ParentMergeSource(const ParentPublication* parent, const ConfigView* view,
                    PairScorer* scorer)
      : parent_(parent), view_(view), scorer_(scorer) {}

  std::optional<std::vector<ScoredPair>> TryFetch() override {
    const uint64_t version = parent_->version();
    if (version == last_seen_version_) return std::nullopt;  // Unchanged.
    last_seen_version_ = version;
    if (!parent_->done()) return std::nullopt;
    return ReadjustToConfig(parent_->result(), *view_, *scorer_);
  }

 private:
  const ParentPublication* parent_;
  const ConfigView* view_;
  PairScorer* scorer_;
  uint64_t last_seen_version_ = 0;
};

}  // namespace mc

#endif  // MATCHCATCHER_JOINT_PARENT_MERGE_H_
