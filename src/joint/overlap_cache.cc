#include "joint/overlap_cache.h"

namespace mc {

CachedOverlap OverlapCache::ComputeShared(const TupleTokens& a,
                                          const TupleTokens& b) {
  CachedOverlap shared;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.ranks[i] == b.ranks[j]) {
      shared.push_back(SharedToken{a.masks[i], b.masks[j]});
      ++i;
      ++j;
    } else if (a.ranks[i] < b.ranks[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return shared;
}

size_t OverlapCache::OverlapUnder(const CachedOverlap& shared,
                                  ConfigMask config) {
  size_t overlap = 0;
  for (const SharedToken& token : shared) {
    if ((token.mask_a & config) && (token.mask_b & config)) ++overlap;
  }
  return overlap;
}

}  // namespace mc
