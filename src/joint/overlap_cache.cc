#include "joint/overlap_cache.h"

#include <algorithm>

#include "mem/topology.h"

namespace mc {

size_t OverlapCache::RecommendShards(size_t rows_a, size_t rows_b, size_t k,
                                     size_t num_configs) {
  return RecommendShards(rows_a, rows_b, k, num_configs,
                         /*estimated_scored_pairs=*/0);
}

size_t OverlapCache::RecommendShards(size_t rows_a, size_t rows_b, size_t k,
                                     size_t num_configs,
                                     uint64_t estimated_scored_pairs) {
  // Expected entries: one per kept pair, ~k per config, never more than
  // the pair space itself (tiny corpora).
  const uint64_t pair_space =
      static_cast<uint64_t>(rows_a) * static_cast<uint64_t>(rows_b);
  uint64_t expected = std::min<uint64_t>(
      static_cast<uint64_t>(k) * std::max<uint64_t>(num_configs, 1),
      pair_space);
  // A planner estimate of the scored-pair volume refines the worst case
  // downward: kept pairs are a subset of scored pairs, so a join that
  // scores few pairs cannot fill k entries per config.
  if (estimated_scored_pairs > 0) {
    expected = std::min(expected, estimated_scored_pairs);
  }
  // ~8 entries per stripe keeps insert contention negligible without
  // allocating thousands of mutexes for toy workloads. On multi-node
  // machines a bounced stripe mutex costs a cross-socket cache-line
  // transfer, so the stripe floor scales with the node count (stripe count
  // only changes contention, never results).
  const uint64_t node_floor =
      64 * std::max<uint64_t>(1, mem::SystemTopology::Get().num_nodes());
  uint64_t shards = std::min<uint64_t>(
      std::max<uint64_t>(expected / 8, node_floor), 8192);
  uint64_t rounded = 1;
  while (rounded < shards) rounded <<= 1;
  return static_cast<size_t>(rounded);
}

CachedOverlap OverlapCache::ComputeShared(const TupleTokens& a,
                                          const TupleTokens& b) {
  CachedOverlap shared;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a.ranks[i] == b.ranks[j]) {
      shared.push_back(SharedToken{a.masks[i], b.masks[j]});
      ++i;
      ++j;
    } else if (a.ranks[i] < b.ranks[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return shared;
}

size_t OverlapCache::OverlapUnder(const CachedOverlap& shared,
                                  ConfigMask config) {
  size_t overlap = 0;
  for (const SharedToken& token : shared) {
    if ((token.mask_a & config) && (token.mask_b & config)) ++overlap;
  }
  return overlap;
}

}  // namespace mc
