#ifndef MATCHCATCHER_JOINT_OVERLAP_CACHE_H_
#define MATCHCATCHER_JOINT_OVERLAP_CACHE_H_

#include <cstdint>
#include <vector>

#include "blocking/pair.h"
#include "config/config.h"
#include "ssj/corpus.h"
#include "util/sharded_insert_map.h"

namespace mc {

/// One token shared by both tuples of a pair: the attribute bitmasks of the
/// token on each side. The overlap of the pair under *any* config g is the
/// number of shared tokens with (mask_a ∧ g) and (mask_b ∧ g) non-zero —
/// exact for every config, which is what lets the joint executor (and even
/// sibling configs) reuse one computation (paper §4.2's database H).
struct SharedToken {
  uint32_t mask_a = 0;
  uint32_t mask_b = 0;
};

/// The cached shared-token list of a pair.
using CachedOverlap = std::vector<SharedToken>;

/// Concurrent insert-only cache of pair overlap structure, shared by all
/// configs of one joint execution. Stands in for the per-config Folly
/// atomic hashmaps of the paper with a strictly more reusable keying (see
/// DESIGN.md §2).
class OverlapCache {
 public:
  /// `num_shards` stripes the underlying insert map (rounded up to a power
  /// of two). Size it from the expected pair volume — RecommendShards — or
  /// accept the historical default.
  explicit OverlapCache(size_t num_shards = 256) : map_(num_shards) {}

  /// Shard count sized from the expected entry volume. The cache holds
  /// only *kept* pairs — at most k per config, bounded by the pair space —
  /// inserted concurrently by the scheduler's shard tasks. Targets a few
  /// entries per stripe so concurrent NoteKept inserts rarely contend on a
  /// mutex, clamped to [64, 8192] and rounded up to a power of two (so the
  /// returned value is exactly the stripe count the map will use).
  /// Exposed through JointOptions::overlap_cache_shards for bench sweeps.
  static size_t RecommendShards(size_t rows_a, size_t rows_b, size_t k,
                                size_t num_configs);

  /// Planner-informed variant: when the cost planner ran, its extrapolated
  /// scored-pair volume (JoinPlan::est_scored) bounds the kept-pair entries
  /// tighter than the k-per-config worst case — a join whose pruning keeps
  /// most pairs out never inserts them. `estimated_scored_pairs` == 0 falls
  /// back to the heuristic above; the estimate only refines the stripe
  /// count downward (contention is governed by actual entries, and the k *
  /// configs bound still caps the volume).
  static size_t RecommendShards(size_t rows_a, size_t rows_b, size_t k,
                                size_t num_configs,
                                uint64_t estimated_scored_pairs);

  /// The cached overlap of `pair`, or nullptr.
  const CachedOverlap* Find(PairId pair) const { return map_.Find(pair); }

  /// Stores `overlap` for `pair` (first writer wins); returns the stored
  /// value.
  const CachedOverlap* Insert(PairId pair, CachedOverlap overlap) {
    return map_.Insert(pair, std::move(overlap)).first;
  }

  /// Stores the overlap produced by `factory()` if `pair` is absent; the
  /// factory runs only on actual insertion.
  template <typename Factory>
  const CachedOverlap* InsertWith(PairId pair, Factory&& factory) {
    return map_.InsertWith(pair, std::forward<Factory>(factory)).first;
  }

  size_t Size() const { return map_.Size(); }

  /// Invokes fn(pair, overlap) for every cached entry. Safe to run
  /// concurrently with inserts only in the sense that it sees a snapshot of
  /// each shard; callers treat missing late entries as cache misses.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    map_.ForEach(std::forward<Fn>(fn));
  }

  /// Shared tokens (with masks) of a tuple pair, computed from the corpus.
  static CachedOverlap ComputeShared(const TupleTokens& a,
                                     const TupleTokens& b);

  /// Overlap of a cached pair under `config`.
  static size_t OverlapUnder(const CachedOverlap& shared, ConfigMask config);

 private:
  ShardedInsertMap<PairId, CachedOverlap, PairIdHash> map_;
};

}  // namespace mc

#endif  // MATCHCATCHER_JOINT_OVERLAP_CACHE_H_
