#ifndef MATCHCATCHER_JOINT_JOINT_EXECUTOR_H_
#define MATCHCATCHER_JOINT_JOINT_EXECUTOR_H_

#include <cstddef>
#include <vector>

#include "blocking/candidate_set.h"
#include "config/config_generator.h"
#include "ssj/corpus.h"
#include "ssj/topk_join.h"
#include "text/similarity.h"
#include "util/run_context.h"
#include "util/status.h"

namespace mc {

/// Options for joint execution of top-k SSJs over all configs (paper §4.2).
struct JointOptions {
  /// Top-k size per config.
  size_t k = 1000;
  SetMeasure measure = SetMeasure::kJaccard;
  /// QJoin deferred-scoring parameter; 0 selects q per corpus via the race
  /// of §4.1 (run once on the root config).
  size_t q = 1;
  /// Worker threads ("one config per core"); 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Reuse similarity-score computations through the shared overlap cache.
  bool reuse_overlaps = true;
  /// Seed each config's top-k list from its parent's re-adjusted list (and
  /// merge late parents mid-run).
  bool reuse_topk = true;
  /// Overlap reuse triggers only when the average tuple length (in tokens,
  /// over the root config) is at least this (paper's t = 20).
  double reuse_min_avg_tokens = 20.0;
  /// Blocker output C: pairs to exclude from every top-k list.
  const CandidateSet* exclude = nullptr;
  /// Poll period for late-parent merges, in join events. Cancellation is
  /// checked at the same cadence.
  size_t merge_poll_period = 1024;
  /// Cooperative cancellation/deadline (util/run_context.h). When it fires,
  /// every running join stops at its next poll and unstarted configs are
  /// skipped; the result carries each config's best-so-far list with
  /// `ConfigJoinResult::completed == false` and `JointResult::truncated ==
  /// true`. Partial lists are still valid (every score exact, every pair in
  /// D), so the verifier can rank them — graceful degradation, not an
  /// error. The default inert context leaves behavior byte-identical to a
  /// run without deadlines.
  RunContext run_context;
};

/// Per-config outcome of the joint execution.
struct ConfigJoinResult {
  ConfigMask config = 0;
  /// Top-k pairs, ordered by (score desc, pair asc).
  std::vector<ScoredPair> topk;
  TopKJoinStats stats;
  double seconds = 0.0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  bool seeded_from_parent = false;
  /// False when this config's join was cut short (deadline/cancel) or its
  /// task failed; `topk` then holds the best-so-far list (possibly empty),
  /// not the exact top-k.
  bool completed = true;
};

/// Outcome of the whole joint execution, in config-tree node order.
struct JointResult {
  std::vector<ConfigJoinResult> per_config;
  double total_seconds = 0.0;
  /// The q value actually used (after the optional race).
  size_t q_used = 1;
  /// Whether the overlap cache was active (average length reached t).
  bool overlap_reuse_active = false;
  /// True when any config did not complete (deadline, cancellation, or a
  /// failed task) — the partial-result flag of the graceful-degradation
  /// contract (docs/robustness.md).
  bool truncated = false;
  /// First error captured from a config task (a task that threw is caught
  /// at the pool boundary and converted to Status); OK when all tasks ran
  /// clean. The affected config has `completed == false`.
  Status task_error;
};

/// Runs one top-k SSJ per config of `tree` over `corpus`, in parallel, with
/// score-computation and top-k reuse across configs. With q = 1 each
/// config's result is exactly the top-k of D under that config (Theorem
/// 4.2), independent of scheduling — pinned by the joint_test property
/// suite.
JointResult RunJointTopKJoins(const SsjCorpus& corpus, const ConfigTree& tree,
                              const JointOptions& options);

}  // namespace mc

#endif  // MATCHCATCHER_JOINT_JOINT_EXECUTOR_H_
