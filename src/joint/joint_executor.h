#ifndef MATCHCATCHER_JOINT_JOINT_EXECUTOR_H_
#define MATCHCATCHER_JOINT_JOINT_EXECUTOR_H_

#include <cstddef>
#include <vector>

#include "blocking/candidate_set.h"
#include "config/config_generator.h"
#include "ssj/corpus.h"
#include "ssj/join_planner.h"
#include "ssj/topk_join.h"
#include "text/similarity.h"
#include "util/run_context.h"
#include "util/status.h"

namespace mc {

class CostModelCalibrator;

/// How RunJointTopKJoins schedules the per-config joins.
enum class JointScheduler {
  /// Two-level scheduler (the default): configs are scheduled
  /// parents-first over the config tree, and each config is decomposed
  /// into table-A shard sub-joins that run as independent pool tasks. A
  /// child starts only after its parent published its final list, so every
  /// child seeds from a finished parent (no polling); the per-shard top-k
  /// lists merge deterministically (each shard list is canonical under
  /// (score desc, pair asc)), making the output bit-identical to the
  /// sequential BFS run for every thread count and shard count.
  kTwoLevel,
  /// Legacy scheduler: one monolithic task per config, all submitted at
  /// once; children poll unfinished parents via ParentMergeSource. Kept
  /// for the determinism pin (old-vs-new) and the micro_joint ablation.
  kConfigPerTask,
};

/// How the execution plan (q, shard hint, hybrid prefilter) is chosen when
/// JointOptions::q == 0.
enum class QSelection {
  /// Cost-based planner (src/ssj/join_planner.h, the default): sampled
  /// probe joins on the root view pick q by extrapolated operation counts,
  /// plus a shard hint and the hybrid threshold/top-k prefilter. No loser
  /// work is discarded, and the decision is deterministic for a fixed
  /// planner seed — unlike the wall-clock race.
  kPlanner,
  /// Legacy empirical q race (SelectQByRace, paper §4.1): races candidate
  /// q values with real join work and keeps the fastest. Kept as the
  /// ablation baseline for bench/micro_planner.
  kRace,
};

/// Options for joint execution of top-k SSJs over all configs (paper §4.2).
struct JointOptions {
  /// Top-k size per config.
  size_t k = 1000;
  SetMeasure measure = SetMeasure::kJaccard;
  /// QJoin deferred-scoring parameter; 0 selects q per corpus — via the
  /// cost-based planner or the legacy race, see `q_selection` — once, on
  /// the root config.
  size_t q = 1;
  /// Plan selection strategy when q == 0 (ignored otherwise).
  QSelection q_selection = QSelection::kPlanner;
  /// Planner sample seed; 0 = MC_PLANNER_SEED (fixed default when unset).
  /// Plans are deterministic for a fixed seed on a fixed corpus generation.
  uint64_t planner_seed = 0;
  /// Allow the planner's hybrid threshold/top-k prefilter on the root
  /// config (ablation switch; per-config output is bit-identical either
  /// way).
  bool planner_hybrid = true;
  /// Allow promoting a hybrid plan to the threshold-join driver
  /// (JoinExecMode::kThreshold; ablation switch, bit-identical output).
  bool planner_threshold = true;
  /// Skip planning entirely and execute this plan (the service's
  /// cross-session plan cache). Only consulted when q == 0 under
  /// QSelection::kPlanner; the plan must have been produced by
  /// PlanTopKJoin on an identical corpus generation and config signature —
  /// the caller owns that invariant (SessionManager keys its cache by it).
  /// The executed output is bit-identical to planning fresh because the
  /// planner is deterministic for a fixed (seed, generation, weights) and
  /// every plan executes to the same canonical lists. Not owned; must
  /// outlive the call.
  const JoinPlan* cached_plan = nullptr;
  /// Online cost-model calibration (ssj/cost_calibrator.h): when set, the
  /// planner prices candidate plans with the calibrator's current weight
  /// fit, and every completed config reports its observed operation counts
  /// and join wall time back after the run. Null (the default) keeps the
  /// shipped constant weights — existing callers and tests are unaffected.
  /// Not owned; must outlive the call.
  CostModelCalibrator* calibrator = nullptr;
  /// Worker threads ("one config per core"); 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Scheduling strategy; see JointScheduler.
  JointScheduler scheduler = JointScheduler::kTwoLevel;
  /// Table-A shards per config under the two-level scheduler. 0 = auto:
  /// min(num_threads, hardware concurrency) — enough decomposition to fill
  /// the machine when ready configs are scarce (sharding splits only the
  /// table-A event stream; each shard re-walks table B, so shards beyond
  /// the core count only add overhead). The join output is independent of
  /// this value (canonical shard merge).
  size_t shards_per_config = 0;
  /// Stripe count for the shared OverlapCache. 0 = auto-sized from the
  /// expected pair volume via OverlapCache::RecommendShards(rows_a, rows_b,
  /// k, config count); the value actually used is reported in
  /// JointResult::overlap_cache_shards_used (bench sweeps set it
  /// explicitly).
  size_t overlap_cache_shards = 0;
  /// How per-config token views are built. The default zero-copy mode
  /// serves fully covered rows straight from the corpus arena;
  /// kMaterialize copies every row (the pre-zero-copy cost model, kept for
  /// the micro_joint before/after ablation). The join output is identical
  /// either way.
  SsjCorpus::ViewMode view_mode = SsjCorpus::ViewMode::kAuto;
  /// Score cache misses by merging the full tuples from the corpus instead
  /// of the config-filtered view spans — the pre-zero-copy cost model, kept
  /// for the micro_joint ablation. The computed scores are identical.
  bool corpus_miss_path = false;
  /// Reuse similarity-score computations through the shared overlap cache.
  bool reuse_overlaps = true;
  /// Seed each config's top-k list from its parent's re-adjusted list (and
  /// merge late parents mid-run).
  bool reuse_topk = true;
  /// Overlap reuse triggers only when the average tuple length (in tokens,
  /// over the root config) is at least this (paper's t = 20).
  double reuse_min_avg_tokens = 20.0;
  /// Blocker output C: pairs to exclude from every top-k list.
  const CandidateSet* exclude = nullptr;
  /// Poll period for late-parent merges, in join events. Cancellation is
  /// checked at the same cadence.
  size_t merge_poll_period = 1024;
  /// Cooperative cancellation/deadline (util/run_context.h). When it fires,
  /// every running join stops at its next poll and unstarted configs are
  /// skipped; the result carries each config's best-so-far list with
  /// `ConfigJoinResult::completed == false` and `JointResult::truncated ==
  /// true`. Partial lists are still valid (every score exact, every pair in
  /// D), so the verifier can rank them — graceful degradation, not an
  /// error. The default inert context leaves behavior byte-identical to a
  /// run without deadlines.
  RunContext run_context;
};

/// Per-config outcome of the joint execution.
struct ConfigJoinResult {
  ConfigMask config = 0;
  /// Top-k pairs, ordered by (score desc, pair asc).
  std::vector<ScoredPair> topk;
  TopKJoinStats stats;
  double seconds = 0.0;
  /// Time spent building this config's token view (part of `seconds`).
  double view_seconds = 0.0;
  /// Table-A shard tasks this config's join was decomposed into.
  size_t shards_used = 1;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Average tuple length (tokens) of this config's view — the scoring-cost
  /// length scale the calibrator feeds back (captured before the view is
  /// released).
  double average_tokens = 0.0;
  bool seeded_from_parent = false;
  /// False when this config's join was cut short (deadline/cancel) or its
  /// task failed; `topk` then holds the best-so-far list (possibly empty),
  /// not the exact top-k.
  bool completed = true;
};

/// One config's resolved execution plan, reported for diagnostics
/// (`tools/mcserve --explain-plans`). Node order matches
/// JointResult::per_config.
struct ConfigPlanDecision {
  ConfigMask config = 0;
  /// The q the config ran with (shared across the tree).
  size_t q = 1;
  /// Table-A shard tasks the config was decomposed into.
  size_t shards = 1;
  /// Whether the hybrid threshold/top-k prefilter was applied.
  bool hybrid = false;
  /// The prefilter threshold used (< 0 when hybrid is off).
  double prefilter_threshold = -1.0;
  /// Execution mode the config actually ran (kHybridPrefilter/kThreshold
  /// only on the root config when the hybrid gate applied).
  JoinExecMode mode = JoinExecMode::kTopK;
  bool seeded_from_parent = false;
};

/// Where the joint execution spent its time, aggregated across configs
/// (bench/micro_joint reports these alongside corpus-build timings).
struct JointStageTimings {
  /// The optional plan-selection phase (cost-based planner or legacy q
  /// race; runs once, on the root view).
  double q_select_seconds = 0.0;
  /// Sum of per-config view construction times.
  double view_seconds = 0.0;
  /// Sum of per-config join execution times (shard runs + merge + seeding;
  /// per-config `seconds` minus `view_seconds`). Sums task time, not wall
  /// time: with parallel workers this exceeds the elapsed total_seconds.
  double join_seconds = 0.0;
};

/// Outcome of the whole joint execution, in config-tree node order.
struct JointResult {
  std::vector<ConfigJoinResult> per_config;
  double total_seconds = 0.0;
  /// Per-stage breakdown of total_seconds (see JointStageTimings).
  JointStageTimings stages;
  /// OverlapCache stripe count actually used (auto-sized or explicit).
  size_t overlap_cache_shards_used = 0;
  /// The q value actually used (after the optional planner/race).
  size_t q_used = 1;
  /// The cost-based plan, when the planner ran (q == 0 under
  /// QSelection::kPlanner); default-constructed otherwise.
  JoinPlan plan;
  bool planner_used = false;
  /// True when `plan` came from JointOptions::cached_plan instead of a
  /// fresh PlanTopKJoin run (the service's plan-cache hit path).
  bool plan_from_cache = false;
  /// Per-config resolved plan decisions, in config-tree node order.
  std::vector<ConfigPlanDecision> plan_decisions;
  /// Whether the overlap cache was active (average length reached t).
  bool overlap_reuse_active = false;
  /// True when any config did not complete (deadline, cancellation, or a
  /// failed task), or when the corpus itself was truncated mid-build — the
  /// partial-result flag of the graceful-degradation contract
  /// (docs/robustness.md).
  bool truncated = false;
  /// First error captured from a config task (a task that threw is caught
  /// at the pool boundary and converted to Status); OK when all tasks ran
  /// clean. The affected config has `completed == false`.
  Status task_error;
};

/// Runs one top-k SSJ per config of `tree` over `corpus`, in parallel, with
/// score-computation and top-k reuse across configs. With q = 1 each
/// config's result is exactly the top-k of D under that config (Theorem
/// 4.2). Under the two-level scheduler the per-config lists (pairs and
/// scores) are bit-identical for every num_threads/shards_per_config
/// combination and match the sequential BFS run — pinned by the joint_test
/// property suite and the joint determinism test.
JointResult RunJointTopKJoins(const SsjCorpus& corpus, const ConfigTree& tree,
                              const JointOptions& options);

}  // namespace mc

#endif  // MATCHCATCHER_JOINT_JOINT_EXECUTOR_H_
