#include "joint/joint_repair.h"

#include <utility>

#include "joint/parent_merge.h"
#include "ssj/topk_delta.h"
#include "ssj/topk_join.h"
#include "util/check.h"

namespace mc {

std::vector<std::vector<ScoredPair>> RepairJointLists(
    const SsjCorpus& corpus, const JointListsSnapshot& snapshot,
    const std::vector<RowId>& touched_a, const std::vector<RowId>& touched_b,
    const JointRepairOptions& options, JointRepairStats* stats) {
  const size_t n = snapshot.configs.size();
  MC_CHECK_EQ(snapshot.parents.size(), n);
  MC_CHECK_EQ(snapshot.seeded.size(), n);
  MC_CHECK_EQ(snapshot.lists.size(), n);

  JointRepairStats local_stats;
  JointRepairStats& s = stats != nullptr ? *stats : local_stats;
  s = JointRepairStats{};

  std::vector<std::vector<ScoredPair>> repaired(n);
  for (size_t i = 0; i < n; ++i) {
    // Nodes are stored in generation order: every parent precedes its
    // children, so the parent's repaired list is ready when needed.
    MC_CHECK_LT(snapshot.parents[i], static_cast<int>(i));
    const ConfigView view = corpus.MakeConfigView(snapshot.configs[i]);

    // Replay the execution's seeding decision with the *repaired* parent
    // list — the same re-adjustment a from-scratch run performs when a
    // child starts after its parent published.
    std::vector<ScoredPair> seed;
    const bool has_seed = snapshot.seeded[i] != 0 && snapshot.parents[i] >= 0;
    if (has_seed) {
      DirectPairScorer scorer(&view, snapshot.measure);
      seed = ReadjustToConfig(repaired[snapshot.parents[i]], view, scorer);
    }

    TopKRepairOptions repair_options;
    repair_options.k = snapshot.k;
    repair_options.measure = snapshot.measure;
    repair_options.q = snapshot.q_used;
    repair_options.exclude = options.exclude;
    repair_options.run_context = options.run_context;
    TopKRepairStats repair_stats;
    TopKList list =
        RepairTopKList(view, snapshot.lists[i], touched_a, touched_b,
                       repair_options, has_seed ? &seed : nullptr,
                       &repair_stats);
    s.pairs_rescored += repair_stats.pairs_rescored;
    if (repair_stats.fell_back) {
      ++s.configs_rejoined;
    } else {
      ++s.configs_repaired;
    }
    repaired[i] = list.SortedDescending();
  }
  return repaired;
}

}  // namespace mc
