#ifndef MATCHCATCHER_JOINT_JOINT_REPAIR_H_
#define MATCHCATCHER_JOINT_JOINT_REPAIR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "blocking/candidate_set.h"
#include "blocking/pair.h"
#include "config/config.h"
#include "ssj/corpus.h"
#include "ssj/topk_list.h"
#include "text/similarity.h"
#include "util/run_context.h"

namespace mc {

/// Everything needed to repair a joint execution's per-config top-k lists
/// after a row delta, captured when the execution finished (the service
/// snapshots this through MatchCatcherOptions::joint_sink). Entries are in
/// config-tree node order; `parents[i]` indexes the node `lists[i]` was
/// seeded from (-1 for the root), and `seeded[i]` records whether the seed
/// actually happened (reuse_topk on and the parent published in time) — the
/// repair must replay the identical seeding decisions to stay bit-identical
/// to a rebuild.
struct JointListsSnapshot {
  std::vector<ConfigMask> configs;
  std::vector<int> parents;
  std::vector<uint8_t> seeded;
  /// Canonical (score desc, pair asc) per-config lists.
  std::vector<std::vector<ScoredPair>> lists;
  size_t k = 0;
  SetMeasure measure = SetMeasure::kJaccard;
  /// The q the execution actually ran with (after any race).
  size_t q_used = 1;
};

struct JointRepairOptions {
  /// Blocker output C, excluded from every list (unchanged by the delta).
  const CandidateSet* exclude = nullptr;
  RunContext run_context;
};

struct JointRepairStats {
  /// Configs whose list the incremental merge repaired in place.
  size_t configs_repaired = 0;
  /// Configs that fell back to a full re-join (still exact).
  size_t configs_rejoined = 0;
  /// Touched-row pairs scored across all configs.
  size_t pairs_rescored = 0;
};

/// Repairs every config's top-k list against the *patched* corpus, in tree
/// order so each child seeds from its parent's already-repaired list —
/// exactly the data flow of a from-scratch joint execution. Each config
/// goes through RepairTopKList (ssj/topk_delta.h): incremental merge when
/// exactness is provable, full re-join otherwise, canonical either way, so
/// the returned lists are bit-identical to rerunning RunJointTopKJoins over
/// a rebuilt corpus.
std::vector<std::vector<ScoredPair>> RepairJointLists(
    const SsjCorpus& corpus, const JointListsSnapshot& snapshot,
    const std::vector<RowId>& touched_a, const std::vector<RowId>& touched_b,
    const JointRepairOptions& options = {}, JointRepairStats* stats = nullptr);

}  // namespace mc

#endif  // MATCHCATCHER_JOINT_JOINT_REPAIR_H_
