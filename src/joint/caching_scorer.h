#ifndef MATCHCATCHER_JOINT_CACHING_SCORER_H_
#define MATCHCATCHER_JOINT_CACHING_SCORER_H_

#include "config/config.h"
#include "joint/overlap_cache.h"
#include "ssj/corpus.h"
#include "ssj/topk_join.h"
#include "text/similarity.h"
#include "util/flat_hash.h"

namespace mc {

/// PairScorer that reuses overlap computations across configs via a shared
/// OverlapCache (paper §4.2 "Reusing Similarity Score Computations"). On a
/// cache hit the score is derived from the cached shared-token masks; on a
/// miss the overlap is merged directly (no allocation). Only pairs that
/// enter a top-k list are written to the cache (NoteKept) — exactly the
/// pairs parent-to-child reuse re-scores — keeping the cache bounded by
/// O(k x configs) instead of O(all scored pairs).
///
/// Each instance is used by a single config task (one thread); the cache
/// itself is concurrent.
class CachingPairScorer : public PairScorer {
 public:
  /// Snapshots the cache's current contents into a lock-free local index;
  /// entries published after construction are simply recomputed on miss
  /// (cache values are pointer-stable, so the snapshot stays valid).
  ///
  /// A miss is scored by merging the rows' *view* spans — already filtered
  /// to the config, so the merge touches only surviving tokens. Passing
  /// `corpus_miss_path = true` restores the historical miss path (merge the
  /// full tuples from the corpus, mask-filtering on the fly); the overlap
  /// is identical either way. Kept for the micro_joint before/after
  /// ablation.
  CachingPairScorer(const SsjCorpus* corpus, const ConfigView* view,
                    ConfigMask config, SetMeasure measure, OverlapCache* cache,
                    bool write_enabled, bool corpus_miss_path = false);

  double Score(RowId row_a, RowId row_b) override;

  /// Bounded scoring (see PairScorer::ScoreAbove). On a snapshot hit the
  /// exact score comes from the cached masks (already cheap). On a miss the
  /// view-span merge is abandoned as soon as the remaining tokens cannot
  /// reach the overlap required for `threshold` — the same positional bound
  /// the engine's inline fast path uses. With `corpus_miss_path` the
  /// historical full-merge behavior is kept (no early abort).
  bool ScoreAbove(RowId row_a, RowId row_b, double threshold,
                  double* score) override;

  void NoteKept(RowId row_a, RowId row_b) override;

  size_t cache_hits() const { return hits_; }
  size_t cache_misses() const { return misses_; }

 private:
  const SsjCorpus* corpus_;
  const ConfigView* view_;
  ConfigMask config_;
  SetMeasure measure_;
  OverlapCache* cache_;
  bool write_enabled_;
  bool corpus_miss_path_ = false;
  // Local snapshot: pair -> pointer into the shared cache.
  PairFlatMap<const CachedOverlap*> snapshot_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace mc

#endif  // MATCHCATCHER_JOINT_CACHING_SCORER_H_
