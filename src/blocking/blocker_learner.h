#ifndef MATCHCATCHER_BLOCKING_BLOCKER_LEARNER_H_
#define MATCHCATCHER_BLOCKING_BLOCKER_LEARNER_H_

#include <memory>
#include <utility>
#include <vector>

#include "blocking/pair.h"
#include "blocking/rule_blocker.h"
#include "table/table.h"
#include "util/status.h"

namespace mc {

/// Options for the greedy rule-blocker learner.
struct BlockerLearnerOptions {
  /// Stop adding rules once this fraction of sample positives is kept.
  double target_sample_recall = 0.98;
  /// A rule may keep at most this fraction of sample negatives (keeps the
  /// learned blocker selective).
  double max_rule_negative_rate = 0.15;
  /// Maximum number of rules in the union.
  size_t max_rules = 5;
  /// Maximum predicates per rule (1 or 2).
  size_t max_conjuncts = 2;
};

/// A learned blocker plus its quality on the training sample.
struct LearnedBlocker {
  std::shared_ptr<const RuleBlocker> blocker;
  /// Fraction of sample positives the blocker keeps.
  double sample_recall = 0.0;
  /// Fraction of sample negatives the blocker keeps.
  double sample_negative_rate = 0.0;
};

/// Learns a rule blocker (union of conjunctive keep-rules) from a labeled
/// pair sample, greedily maximizing positive coverage under a per-rule
/// negative-rate cap. This plays the role of the crowdsourced blocker
/// learners the paper debugs in §6.2 ([Das et al. 2017] / [Gokhale et al.
/// 2014]): the point of that experiment is that *even the best learned
/// blockers* have problems MatchCatcher can surface — any reasonable
/// sample-based learner exhibits them (sampling flukes generalize poorly).
///
/// The candidate predicate pool is derived from the schema: per non-numeric
/// attribute, key-equality (full value, last word), word/3-gram Jaccard and
/// cosine thresholds, and overlap counts; per numeric attribute, absolute
/// difference thresholds.
Result<LearnedBlocker> LearnBlocker(
    const Table& table_a, const Table& table_b,
    const std::vector<std::pair<PairId, bool>>& labeled_sample,
    const BlockerLearnerOptions& options = {});

}  // namespace mc

#endif  // MATCHCATCHER_BLOCKING_BLOCKER_LEARNER_H_
