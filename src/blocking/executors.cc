#include "blocking/executors.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "table/tokenized_table.h"
#include "text/similarity.h"
#include "text/token_dictionary.h"
#include "util/check.h"

namespace mc {

namespace {

// (key -> rows) partitioning of one table under a key function.
std::unordered_map<std::string, std::vector<RowId>> PartitionByKey(
    const Table& table, const KeyFunction& key) {
  std::unordered_map<std::string, std::vector<RowId>> partitions;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    std::optional<std::string> value = key.Apply(table, row);
    if (!value.has_value()) continue;
    partitions[*value].push_back(static_cast<RowId>(row));
  }
  return partitions;
}

// Tokenized rows of one column, with token ids sorted by the global order.
struct TokenizedColumn {
  // Per row: token ids sorted ascending by (document frequency, token).
  std::vector<std::vector<TokenId>> rows;
};

// Plane fast path for TokenizeColumns: per-cell distinct-token spans are
// precomputed and already sorted in a consistent total order shared by both
// sides, which is all PrefixFilterJoin needs — its exact verification makes
// the resulting candidate set independent of which total order is used.
// Returns false when the tables don't share a plane (or the q-gram plane is
// unavailable); callers then tokenize from strings.
bool TokenizeColumnsFromPlane(const Table& table_a, const Table& table_b,
                              size_t column, const TokenizerSpec& tokenizer,
                              TokenizedColumn* a, TokenizedColumn* b) {
  const TokenizedTable* plane = SharedTextPlane(table_a, table_b);
  if (plane == nullptr) return false;
  const TokenizedTable::QGramColumn* grams = nullptr;
  if (tokenizer.kind == TokenizerSpec::Kind::kQGram) {
    grams = plane->QGramsForColumn(tokenizer.q, column);
    if (grams == nullptr) return false;
  }
  auto copy_side = [&](const Table& table, TokenizedColumn* out) {
    const size_t side = table.text_plane_side();
    out->rows.resize(table.num_rows());
    for (size_t row = 0; row < table.num_rows(); ++row) {
      if (table.IsMissing(row, column)) continue;
      CellSpan span = grams != nullptr
                          ? grams->Row(side, row)
                          : plane->SortedRanks(side, row, column);
      out->rows[row].assign(span.begin(), span.end());
    }
  };
  copy_side(table_a, a);
  copy_side(table_b, b);
  return true;
}

// Tokenizes the predicate column of both tables into a shared dictionary and
// sorts each row's distinct tokens by the global (df, token) order, encoded
// as ranks so plain integer comparison gives the global order.
std::pair<TokenizedColumn, TokenizedColumn> TokenizeColumns(
    const Table& table_a, const Table& table_b, size_t column,
    const TokenizerSpec& tokenizer) {
  TokenizedColumn plane_a, plane_b;
  if (TokenizeColumnsFromPlane(table_a, table_b, column, tokenizer, &plane_a,
                               &plane_b)) {
    return {std::move(plane_a), std::move(plane_b)};
  }
  TokenDictionary dictionary;
  auto intern_table = [&](const Table& table) {
    std::vector<std::vector<TokenId>> rows(table.num_rows());
    for (size_t row = 0; row < table.num_rows(); ++row) {
      if (table.IsMissing(row, column)) continue;
      std::vector<std::string> tokens =
          tokenizer.Tokens(table.Value(row, column));
      std::vector<TokenId>& ids = rows[row];
      ids.reserve(tokens.size());
      for (const std::string& token : tokens) {
        ids.push_back(dictionary.Intern(token));
      }
      dictionary.AddDocument(ids);
    }
    return rows;
  };
  TokenizedColumn a{intern_table(table_a)};
  TokenizedColumn b{intern_table(table_b)};
  dictionary.FinalizeRanks();
  auto to_ranks = [&](TokenizedColumn& column_tokens) {
    for (auto& ids : column_tokens.rows) {
      for (TokenId& id : ids) id = dictionary.RankOf(id);
      std::sort(ids.begin(), ids.end());
    }
  };
  to_ranks(a);
  to_ranks(b);
  return {std::move(a), std::move(b)};
}

// Intersection size of two sorted id vectors.
size_t SortedOverlap(const std::vector<TokenId>& a,
                     const std::vector<TokenId>& b) {
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

// Minimum shared-token count a set of size `len` must contribute for the
// predicate to hold (the per-side overlap lower bound behind prefix
// filtering; see DESIGN.md §5).
size_t RequiredOverlap(SetMeasure measure, double threshold, size_t len) {
  double bound = 0.0;
  switch (measure) {
    case SetMeasure::kJaccard:
      bound = threshold * static_cast<double>(len);
      break;
    case SetMeasure::kCosine:
      bound = threshold * threshold * static_cast<double>(len);
      break;
    case SetMeasure::kDice:
      bound = threshold * static_cast<double>(len) / (2.0 - threshold);
      break;
    case SetMeasure::kOverlapCoefficient:
      // o >= t * min(|x|,|y|) gives no per-side bound from |x| alone (the
      // partner may be tiny); only o >= 1 is safe.
      bound = 1.0;
      break;
  }
  double required = std::ceil(bound - 1e-9);
  return std::max<size_t>(1, static_cast<size_t>(required));
}

// Generic prefix-filter join: keeps pairs whose exact verified `verify`
// callback passes, where candidates are generated by matching prefixes of
// length len - required(len) + 1.
template <typename RequiredFn, typename VerifyFn>
CandidateSet PrefixFilterJoin(const TokenizedColumn& a,
                              const TokenizedColumn& b, RequiredFn required,
                              VerifyFn verify) {
  // Inverted index over prefixes of A.
  std::unordered_map<TokenId, std::vector<RowId>> index;
  for (size_t row = 0; row < a.rows.size(); ++row) {
    const std::vector<TokenId>& tokens = a.rows[row];
    if (tokens.empty()) continue;
    size_t need = required(tokens.size());
    if (tokens.size() < need) continue;  // Can never reach the threshold.
    size_t prefix = tokens.size() - need + 1;
    for (size_t i = 0; i < prefix; ++i) {
      index[tokens[i]].push_back(static_cast<RowId>(row));
    }
  }

  CandidateSet result;
  std::unordered_set<RowId> candidates;
  for (size_t row_b = 0; row_b < b.rows.size(); ++row_b) {
    const std::vector<TokenId>& tokens_b = b.rows[row_b];
    if (tokens_b.empty()) continue;
    size_t need_b = required(tokens_b.size());
    if (tokens_b.size() < need_b) continue;
    size_t prefix_b = tokens_b.size() - need_b + 1;
    candidates.clear();
    for (size_t i = 0; i < prefix_b; ++i) {
      auto it = index.find(tokens_b[i]);
      if (it == index.end()) continue;
      for (RowId row_a : it->second) candidates.insert(row_a);
    }
    for (RowId row_a : candidates) {
      size_t overlap = SortedOverlap(a.rows[row_a], tokens_b);
      if (verify(a.rows[row_a].size(), tokens_b.size(), overlap)) {
        result.Add(row_a, static_cast<RowId>(row_b));
      }
    }
  }
  return result;
}

// All padded 2-grams of `key`, *with duplicates* (the count-filter theorem
// for edit distance is stated over gram multisets).
std::vector<std::string> PaddedBigrams(const std::string& key) {
  std::string padded = "#" + key + "#";
  std::vector<std::string> grams;
  grams.reserve(padded.size() - 1);
  for (size_t i = 0; i + 2 <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, 2));
  }
  return grams;
}

}  // namespace

CandidateSet EnumerateKeyEquality(const Table& table_a, const Table& table_b,
                                  const KeyFunction& key) {
  CandidateSet result;
  auto partitions_a = PartitionByKey(table_a, key);
  for (size_t row_b = 0; row_b < table_b.num_rows(); ++row_b) {
    std::optional<std::string> value = key.Apply(table_b, row_b);
    if (!value.has_value()) continue;
    auto it = partitions_a.find(*value);
    if (it == partitions_a.end()) continue;
    for (RowId row_a : it->second) {
      result.Add(row_a, static_cast<RowId>(row_b));
    }
  }
  return result;
}

CandidateSet EnumerateSetSimilarity(const Table& table_a,
                                    const Table& table_b,
                                    const SetSimilarityPredicate& predicate) {
  auto [a, b] = TokenizeColumns(table_a, table_b, predicate.column(),
                                predicate.tokenizer());
  const SetMeasure measure = predicate.measure();
  const double threshold = predicate.threshold();
  return PrefixFilterJoin(
      a, b,
      [&](size_t len) { return RequiredOverlap(measure, threshold, len); },
      [&](size_t size_a, size_t size_b, size_t overlap) {
        return SetSimilarityFromCounts(measure, size_a, size_b, overlap) >=
               threshold;
      });
}

CandidateSet EnumerateOverlap(const Table& table_a, const Table& table_b,
                              const OverlapPredicate& predicate) {
  auto [a, b] = TokenizeColumns(table_a, table_b, predicate.column(),
                                predicate.tokenizer());
  const size_t min_overlap = std::max<size_t>(1, predicate.min_overlap());
  return PrefixFilterJoin(
      a, b, [&](size_t) { return min_overlap; },
      [&](size_t, size_t, size_t overlap) { return overlap >= min_overlap; });
}

CandidateSet EnumerateEditDistanceKeys(
    const Table& table_a, const Table& table_b,
    const EditDistancePredicate& predicate) {
  const size_t d = predicate.max_distance();
  auto keys_a = PartitionByKey(table_a, predicate.key());
  auto keys_b = PartitionByKey(table_b, predicate.key());

  // Distinct keys as vectors for indexing.
  std::vector<const std::string*> distinct_a;
  distinct_a.reserve(keys_a.size());
  for (const auto& [key, rows] : keys_a) distinct_a.push_back(&key);

  // 2-gram inverted index over A keys of length >= 2d (for those, ED <= d
  // guarantees at least one shared padded bigram; shorter keys fall back to
  // a length-bucketed scan).
  std::unordered_map<std::string, std::vector<uint32_t>> gram_index;
  std::unordered_map<size_t, std::vector<uint32_t>> length_index_a;
  for (uint32_t i = 0; i < distinct_a.size(); ++i) {
    const std::string& key = *distinct_a[i];
    length_index_a[key.size()].push_back(i);
    if (key.size() >= 2 * d) {
      std::vector<std::string> grams = PaddedBigrams(key);
      std::unordered_set<std::string> seen;
      for (std::string& gram : grams) {
        if (seen.insert(gram).second) {
          gram_index[gram].push_back(i);
        }
      }
    }
  }

  CandidateSet result;
  auto emit = [&](const std::vector<RowId>& rows_a,
                  const std::vector<RowId>& rows_b) {
    for (RowId row_a : rows_a) {
      for (RowId row_b : rows_b) result.Add(row_a, row_b);
    }
  };

  std::unordered_set<uint32_t> candidates;
  for (const auto& [key_b, rows_b] : keys_b) {
    candidates.clear();
    if (key_b.size() >= 2 * d || d == 0) {
      // Gram-index path: any A key of length >= 2d within distance d shares
      // a bigram with key_b.
      for (const std::string& gram : PaddedBigrams(key_b)) {
        auto it = gram_index.find(gram);
        if (it == gram_index.end()) continue;
        for (uint32_t i : it->second) candidates.insert(i);
      }
    }
    // Short-key fallback: A keys shorter than 2d are not in the gram index;
    // compare key_b against all of them within the length window. Also, if
    // key_b itself is short, compare against every A key in the window (its
    // grams may all have been destroyed).
    size_t lo = key_b.size() > d ? key_b.size() - d : 0;
    size_t hi = key_b.size() + d;
    for (size_t len = lo; len <= hi; ++len) {
      auto it = length_index_a.find(len);
      if (it == length_index_a.end()) continue;
      if (key_b.size() < 2 * d) {
        for (uint32_t i : it->second) candidates.insert(i);
      } else if (len < 2 * d) {
        for (uint32_t i : it->second) candidates.insert(i);
      }
    }
    for (uint32_t i : candidates) {
      const std::string& key_a = *distinct_a[i];
      size_t len_diff = key_a.size() > key_b.size()
                            ? key_a.size() - key_b.size()
                            : key_b.size() - key_a.size();
      if (len_diff > d) continue;
      if (BoundedEditDistance(key_a, key_b, d) <= d) {
        emit(keys_a.find(key_a)->second, rows_b);
      }
    }
  }
  return result;
}

CandidateSet EnumerateSortedNeighborhood(const Table& table_a,
                                         const Table& table_b,
                                         const KeyFunction& key,
                                         size_t window) {
  MC_CHECK_GE(window, 2u) << "sorted neighborhood needs window >= 2";
  struct Entry {
    std::string key;
    RowId row;
    bool from_a;
  };
  std::vector<Entry> entries;
  entries.reserve(table_a.num_rows() + table_b.num_rows());
  for (size_t row = 0; row < table_a.num_rows(); ++row) {
    std::optional<std::string> value = key.Apply(table_a, row);
    if (!value.has_value()) continue;
    entries.push_back({std::move(*value), static_cast<RowId>(row), true});
  }
  for (size_t row = 0; row < table_b.num_rows(); ++row) {
    std::optional<std::string> value = key.Apply(table_b, row);
    if (!value.has_value()) continue;
    entries.push_back({std::move(*value), static_cast<RowId>(row), false});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& x, const Entry& y) { return x.key < y.key; });

  CandidateSet result;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size() && j < i + window; ++j) {
      if (entries[i].from_a == entries[j].from_a) continue;
      if (entries[i].from_a) {
        result.Add(entries[i].row, entries[j].row);
      } else {
        result.Add(entries[j].row, entries[i].row);
      }
    }
  }
  return result;
}

}  // namespace mc
