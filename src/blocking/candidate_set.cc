#include "blocking/candidate_set.h"

#include <algorithm>

namespace mc {

std::vector<PairId> CandidateSet::SortedPairs() const {
  std::vector<PairId> result(pairs_.begin(), pairs_.end());
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace mc
