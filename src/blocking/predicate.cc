#include "blocking/predicate.h"

#include <cmath>
#include <sstream>

#include "table/tokenized_table.h"
#include "text/tokenize.h"

namespace mc {

namespace {

// Token counts and overlap of a cell pair straight from the shared text
// plane (no per-call tokenization). Returns false — meaning "use the string
// path" — when the tables don't share a plane or the q-gram plane for this
// column is unavailable.
bool PlaneTokenCounts(const Table& table_a, size_t row_a, const Table& table_b,
                      size_t row_b, size_t column,
                      const TokenizerSpec& tokenizer, size_t* size_a,
                      size_t* size_b, size_t* overlap) {
  const TokenizedTable* plane = SharedTextPlane(table_a, table_b);
  if (plane == nullptr) return false;
  const size_t side_a = table_a.text_plane_side();
  const size_t side_b = table_b.text_plane_side();
  switch (tokenizer.kind) {
    case TokenizerSpec::Kind::kWord: {
      CellSpan a = plane->SortedRanks(side_a, row_a, column);
      CellSpan b = plane->SortedRanks(side_b, row_b, column);
      *size_a = a.size();
      *size_b = b.size();
      *overlap = SortedSpanOverlap(a, b);
      return true;
    }
    case TokenizerSpec::Kind::kQGram: {
      const TokenizedTable::QGramColumn* grams =
          plane->QGramsForColumn(tokenizer.q, column);
      if (grams == nullptr) return false;
      CellSpan a = grams->Row(side_a, row_a);
      CellSpan b = grams->Row(side_b, row_b);
      *size_a = a.size();
      *size_b = b.size();
      *overlap = SortedSpanOverlap(a, b);
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<std::string> TokenizerSpec::Tokens(std::string_view text) const {
  switch (kind) {
    case Kind::kWord:
      return DistinctWordTokens(text);
    case Kind::kQGram:
      return QGrams(text, q);
  }
  return {};
}

std::string TokenizerSpec::Description() const {
  switch (kind) {
    case Kind::kWord:
      return "word";
    case Kind::kQGram:
      return std::to_string(q) + "gram";
  }
  return "word";
}

bool KeyEqualityPredicate::Evaluate(const Table& table_a, size_t row_a,
                                    const Table& table_b,
                                    size_t row_b) const {
  std::optional<std::string> key_a = key_.Apply(table_a, row_a);
  if (!key_a.has_value()) return false;
  std::optional<std::string> key_b = key_.Apply(table_b, row_b);
  return key_b.has_value() && *key_a == *key_b;
}

std::string KeyEqualityPredicate::Description(const Schema& schema) const {
  std::string key = key_.Description(schema);
  return "a." + key + " = b." + key;
}

bool SetSimilarityPredicate::Evaluate(const Table& table_a, size_t row_a,
                                      const Table& table_b,
                                      size_t row_b) const {
  if (table_a.IsMissing(row_a, column_) || table_b.IsMissing(row_b, column_)) {
    return false;
  }
  size_t size_a = 0;
  size_t size_b = 0;
  size_t overlap = 0;
  if (!PlaneTokenCounts(table_a, row_a, table_b, row_b, column_, tokenizer_,
                        &size_a, &size_b, &overlap)) {
    std::vector<std::string> tokens_a =
        tokenizer_.Tokens(table_a.Value(row_a, column_));
    std::vector<std::string> tokens_b =
        tokenizer_.Tokens(table_b.Value(row_b, column_));
    size_a = tokens_a.size();
    size_b = tokens_b.size();
    overlap = OverlapSize(tokens_a, tokens_b);
  }
  double score = SetSimilarityFromCounts(measure_, size_a, size_b, overlap);
  return score >= threshold_;
}

std::string SetSimilarityPredicate::Description(const Schema& schema) const {
  std::ostringstream out;
  out << SetMeasureName(measure_) << "_" << tokenizer_.Description() << "("
      << schema.attribute(column_).name << ") >= " << threshold_;
  return out.str();
}

bool OverlapPredicate::Evaluate(const Table& table_a, size_t row_a,
                                const Table& table_b, size_t row_b) const {
  if (table_a.IsMissing(row_a, column_) || table_b.IsMissing(row_b, column_)) {
    return false;
  }
  size_t size_a = 0;
  size_t size_b = 0;
  size_t overlap = 0;
  if (!PlaneTokenCounts(table_a, row_a, table_b, row_b, column_, tokenizer_,
                        &size_a, &size_b, &overlap)) {
    std::vector<std::string> tokens_a =
        tokenizer_.Tokens(table_a.Value(row_a, column_));
    std::vector<std::string> tokens_b =
        tokenizer_.Tokens(table_b.Value(row_b, column_));
    overlap = OverlapSize(tokens_a, tokens_b);
  }
  return overlap >= min_overlap_;
}

std::string OverlapPredicate::Description(const Schema& schema) const {
  std::ostringstream out;
  out << "overlap_" << tokenizer_.Description() << "("
      << schema.attribute(column_).name << ") >= " << min_overlap_;
  return out.str();
}

bool EditDistancePredicate::Evaluate(const Table& table_a, size_t row_a,
                                     const Table& table_b,
                                     size_t row_b) const {
  std::optional<std::string> key_a = key_.Apply(table_a, row_a);
  if (!key_a.has_value()) return false;
  std::optional<std::string> key_b = key_.Apply(table_b, row_b);
  if (!key_b.has_value()) return false;
  return BoundedEditDistance(*key_a, *key_b, max_distance_) <= max_distance_;
}

std::string EditDistancePredicate::Description(const Schema& schema) const {
  std::ostringstream out;
  std::string key = key_.Description(schema);
  out << "ed(a." << key << ", b." << key << ") <= " << max_distance_;
  return out.str();
}

bool NumericDiffPredicate::Evaluate(const Table& table_a, size_t row_a,
                                    const Table& table_b,
                                    size_t row_b) const {
  std::optional<double> value_a = table_a.NumericValue(row_a, column_);
  if (!value_a.has_value()) return false;
  std::optional<double> value_b = table_b.NumericValue(row_b, column_);
  if (!value_b.has_value()) return false;
  return std::abs(*value_a - *value_b) <= max_abs_diff_;
}

std::string NumericDiffPredicate::Description(const Schema& schema) const {
  std::ostringstream out;
  out << "absdiff(" << schema.attribute(column_).name
      << ") <= " << max_abs_diff_;
  return out.str();
}

}  // namespace mc
