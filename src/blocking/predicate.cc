#include "blocking/predicate.h"

#include <cmath>
#include <sstream>

#include "text/tokenize.h"

namespace mc {

std::vector<std::string> TokenizerSpec::Tokens(std::string_view text) const {
  switch (kind) {
    case Kind::kWord:
      return DistinctWordTokens(text);
    case Kind::kQGram:
      return QGrams(text, q);
  }
  return {};
}

std::string TokenizerSpec::Description() const {
  switch (kind) {
    case Kind::kWord:
      return "word";
    case Kind::kQGram:
      return std::to_string(q) + "gram";
  }
  return "word";
}

bool KeyEqualityPredicate::Evaluate(const Table& table_a, size_t row_a,
                                    const Table& table_b,
                                    size_t row_b) const {
  std::optional<std::string> key_a = key_.Apply(table_a, row_a);
  if (!key_a.has_value()) return false;
  std::optional<std::string> key_b = key_.Apply(table_b, row_b);
  return key_b.has_value() && *key_a == *key_b;
}

std::string KeyEqualityPredicate::Description(const Schema& schema) const {
  std::string key = key_.Description(schema);
  return "a." + key + " = b." + key;
}

bool SetSimilarityPredicate::Evaluate(const Table& table_a, size_t row_a,
                                      const Table& table_b,
                                      size_t row_b) const {
  if (table_a.IsMissing(row_a, column_) || table_b.IsMissing(row_b, column_)) {
    return false;
  }
  std::vector<std::string> tokens_a =
      tokenizer_.Tokens(table_a.Value(row_a, column_));
  std::vector<std::string> tokens_b =
      tokenizer_.Tokens(table_b.Value(row_b, column_));
  size_t overlap = OverlapSize(tokens_a, tokens_b);
  double score = SetSimilarityFromCounts(measure_, tokens_a.size(),
                                         tokens_b.size(), overlap);
  return score >= threshold_;
}

std::string SetSimilarityPredicate::Description(const Schema& schema) const {
  std::ostringstream out;
  out << SetMeasureName(measure_) << "_" << tokenizer_.Description() << "("
      << schema.attribute(column_).name << ") >= " << threshold_;
  return out.str();
}

bool OverlapPredicate::Evaluate(const Table& table_a, size_t row_a,
                                const Table& table_b, size_t row_b) const {
  if (table_a.IsMissing(row_a, column_) || table_b.IsMissing(row_b, column_)) {
    return false;
  }
  std::vector<std::string> tokens_a =
      tokenizer_.Tokens(table_a.Value(row_a, column_));
  std::vector<std::string> tokens_b =
      tokenizer_.Tokens(table_b.Value(row_b, column_));
  return OverlapSize(tokens_a, tokens_b) >= min_overlap_;
}

std::string OverlapPredicate::Description(const Schema& schema) const {
  std::ostringstream out;
  out << "overlap_" << tokenizer_.Description() << "("
      << schema.attribute(column_).name << ") >= " << min_overlap_;
  return out.str();
}

bool EditDistancePredicate::Evaluate(const Table& table_a, size_t row_a,
                                     const Table& table_b,
                                     size_t row_b) const {
  std::optional<std::string> key_a = key_.Apply(table_a, row_a);
  if (!key_a.has_value()) return false;
  std::optional<std::string> key_b = key_.Apply(table_b, row_b);
  if (!key_b.has_value()) return false;
  return BoundedEditDistance(*key_a, *key_b, max_distance_) <= max_distance_;
}

std::string EditDistancePredicate::Description(const Schema& schema) const {
  std::ostringstream out;
  std::string key = key_.Description(schema);
  out << "ed(a." << key << ", b." << key << ") <= " << max_distance_;
  return out.str();
}

bool NumericDiffPredicate::Evaluate(const Table& table_a, size_t row_a,
                                    const Table& table_b,
                                    size_t row_b) const {
  std::optional<double> value_a = table_a.NumericValue(row_a, column_);
  if (!value_a.has_value()) return false;
  std::optional<double> value_b = table_b.NumericValue(row_b, column_);
  if (!value_b.has_value()) return false;
  return std::abs(*value_a - *value_b) <= max_abs_diff_;
}

std::string NumericDiffPredicate::Description(const Schema& schema) const {
  std::ostringstream out;
  out << "absdiff(" << schema.attribute(column_).name
      << ") <= " << max_abs_diff_;
  return out.str();
}

}  // namespace mc
