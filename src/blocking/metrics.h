#ifndef MATCHCATCHER_BLOCKING_METRICS_H_
#define MATCHCATCHER_BLOCKING_METRICS_H_

#include <cstddef>

#include "blocking/candidate_set.h"

namespace mc {

/// Blocker quality measures from paper §1/§2.
struct BlockerMetrics {
  /// |C|: size of the blocker output.
  size_t candidate_count = 0;
  /// |M ∩ C| / |M|: fraction of gold matches surviving the blocker
  /// (Definition 2.1). 1.0 when M is empty.
  double recall = 1.0;
  /// |C| / |A x B|: lower is more selective.
  double selectivity = 0.0;
  /// |M - C|: number of killed-off matches (the M_D column of Table 3).
  size_t killed_matches = 0;
};

/// Evaluates a candidate set against gold matches and table sizes.
BlockerMetrics EvaluateBlocking(const CandidateSet& candidates,
                                const CandidateSet& gold_matches,
                                size_t rows_a, size_t rows_b);

}  // namespace mc

#endif  // MATCHCATCHER_BLOCKING_METRICS_H_
