#include "blocking/canopy_blocker.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "text/similarity.h"
#include "text/token_dictionary.h"
#include "util/check.h"
#include "util/random.h"

namespace mc {

CanopyBlocker::CanopyBlocker(size_t column, TokenizerSpec tokenizer,
                             double loose, double tight, uint64_t seed)
    : column_(column),
      tokenizer_(tokenizer),
      loose_(loose),
      tight_(tight),
      seed_(seed) {
  MC_CHECK_LE(loose, tight) << "loose canopy threshold must not exceed tight";
}

CandidateSet CanopyBlocker::Run(const Table& table_a,
                                const Table& table_b) const {
  // Tokenize both tables into a shared dictionary; each entry remembers its
  // source table and row.
  struct Item {
    bool from_a;
    RowId row;
    std::vector<TokenId> tokens;  // Sorted.
  };
  TokenDictionary dictionary;
  std::vector<Item> items;
  auto add_table = [&](const Table& table, bool from_a) {
    for (size_t row = 0; row < table.num_rows(); ++row) {
      if (table.IsMissing(row, column_)) continue;
      std::vector<TokenId> ids;
      for (const std::string& token :
           tokenizer_.Tokens(table.Value(row, column_))) {
        ids.push_back(dictionary.Intern(token));
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      if (ids.empty()) continue;
      items.push_back(Item{from_a, static_cast<RowId>(row), std::move(ids)});
    }
  };
  add_table(table_a, true);
  add_table(table_b, false);

  // Inverted index over all items for cheap canopy formation.
  std::unordered_map<TokenId, std::vector<uint32_t>> index;
  for (uint32_t i = 0; i < items.size(); ++i) {
    for (TokenId token : items[i].tokens) index[token].push_back(i);
  }

  auto jaccard = [&](const Item& x, const Item& y) {
    size_t i = 0, j = 0, overlap = 0;
    while (i < x.tokens.size() && j < y.tokens.size()) {
      if (x.tokens[i] == y.tokens[j]) {
        ++overlap;
        ++i;
        ++j;
      } else if (x.tokens[i] < y.tokens[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return SetSimilarityFromCounts(SetMeasure::kJaccard, x.tokens.size(),
                                   y.tokens.size(), overlap);
  };

  // Canopy formation over a shuffled seed order (deterministic by seed_).
  std::vector<uint32_t> order(items.size());
  for (uint32_t i = 0; i < items.size(); ++i) order[i] = i;
  Rng rng(seed_);
  rng.Shuffle(order);

  std::vector<bool> removed(items.size(), false);
  CandidateSet result;
  std::vector<uint32_t> canopy_a, canopy_b;
  std::vector<uint32_t> neighbors;
  for (uint32_t seed_item : order) {
    if (removed[seed_item]) continue;
    removed[seed_item] = true;
    canopy_a.clear();
    canopy_b.clear();
    // Candidates: items sharing at least one token with the seed.
    neighbors.clear();
    for (TokenId token : items[seed_item].tokens) {
      const std::vector<uint32_t>& list = index[token];
      neighbors.insert(neighbors.end(), list.begin(), list.end());
    }
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
    for (uint32_t other : neighbors) {
      double similarity = other == seed_item
                              ? 1.0
                              : jaccard(items[seed_item], items[other]);
      if (similarity < loose_) continue;
      (items[other].from_a ? canopy_a : canopy_b).push_back(other);
      if (similarity >= tight_) removed[other] = true;
    }
    for (uint32_t a : canopy_a) {
      for (uint32_t b : canopy_b) {
        result.Add(items[a].row, items[b].row);
      }
    }
  }
  return result;
}

std::string CanopyBlocker::Description(const Schema& schema) const {
  return "canopy_" + tokenizer_.Description() + "(" +
         schema.attribute(column_).name + ", loose=" +
         std::to_string(loose_) + ", tight=" + std::to_string(tight_) + ")";
}

}  // namespace mc
