#ifndef MATCHCATCHER_BLOCKING_STANDARD_BLOCKERS_H_
#define MATCHCATCHER_BLOCKING_STANDARD_BLOCKERS_H_

#include <memory>
#include <string>

#include "blocking/blocker.h"
#include "blocking/executors.h"
#include "blocking/key_function.h"
#include "blocking/predicate.h"
#include "util/check.h"

namespace mc {

/// Hash blocking (covers attribute equivalence when the key function is
/// kFullValue): keeps pairs whose key values are equal.
class HashBlocker : public Blocker {
 public:
  explicit HashBlocker(KeyFunction key) : key_(std::move(key)) {}

  /// Attribute-equivalence convenience factory: a.attr = b.attr.
  static std::shared_ptr<const Blocker> AttributeEquivalence(size_t column) {
    return std::make_shared<HashBlocker>(
        KeyFunction(KeyFunction::Kind::kFullValue, column));
  }

  CandidateSet Run(const Table& table_a,
                   const Table& table_b) const override {
    return EnumerateKeyEquality(table_a, table_b, key_);
  }
  std::string Description(const Schema& schema) const override {
    std::string key = key_.Description(schema);
    return "a." + key + " = b." + key;
  }
  std::optional<bool> KeepsPair(const Table& table_a, size_t row_a,
                                const Table& table_b,
                                size_t row_b) const override {
    return KeyEqualityPredicate(key_).Evaluate(table_a, row_a, table_b,
                                               row_b);
  }

 private:
  KeyFunction key_;
};

/// Sorted-neighborhood blocking: keeps cross-table pairs within a sliding
/// window of `window` entries in key order.
class SortedNeighborhoodBlocker : public Blocker {
 public:
  SortedNeighborhoodBlocker(KeyFunction key, size_t window)
      : key_(std::move(key)), window_(window) {}

  CandidateSet Run(const Table& table_a,
                   const Table& table_b) const override {
    return EnumerateSortedNeighborhood(table_a, table_b, key_, window_);
  }
  std::string Description(const Schema& schema) const override {
    return "sorted_neighborhood(" + key_.Description(schema) +
           ", w=" + std::to_string(window_) + ")";
  }

 private:
  KeyFunction key_;
  size_t window_;
};

/// Overlap blocking: keeps pairs sharing at least `min_overlap` tokens.
class OverlapBlocker : public Blocker {
 public:
  /// min_overlap must be >= 1 (an overlap-0 blocker keeps all of A x B,
  /// which the indexed executor could not enumerate).
  OverlapBlocker(size_t column, TokenizerSpec tokenizer, size_t min_overlap)
      : predicate_(column, tokenizer, min_overlap) {
    MC_CHECK_GE(min_overlap, 1u);
  }

  CandidateSet Run(const Table& table_a,
                   const Table& table_b) const override {
    return EnumerateOverlap(table_a, table_b, predicate_);
  }
  std::string Description(const Schema& schema) const override {
    return predicate_.Description(schema);
  }
  std::optional<bool> KeepsPair(const Table& table_a, size_t row_a,
                                const Table& table_b,
                                size_t row_b) const override {
    return predicate_.Evaluate(table_a, row_a, table_b, row_b);
  }

 private:
  OverlapPredicate predicate_;
};

/// Similarity blocking (SIM): keeps pairs whose set similarity on one
/// attribute meets a threshold.
class SimilarityBlocker : public Blocker {
 public:
  /// threshold must be positive (a threshold-0 blocker keeps all of A x B,
  /// which the prefix-filter executor could not enumerate).
  SimilarityBlocker(size_t column, TokenizerSpec tokenizer, SetMeasure measure,
                    double threshold)
      : predicate_(column, tokenizer, measure, threshold) {
    MC_CHECK_GT(threshold, 0.0);
  }

  CandidateSet Run(const Table& table_a,
                   const Table& table_b) const override {
    return EnumerateSetSimilarity(table_a, table_b, predicate_);
  }
  std::string Description(const Schema& schema) const override {
    return predicate_.Description(schema);
  }
  std::optional<bool> KeepsPair(const Table& table_a, size_t row_a,
                                const Table& table_b,
                                size_t row_b) const override {
    return predicate_.Evaluate(table_a, row_a, table_b, row_b);
  }

 private:
  SetSimilarityPredicate predicate_;
};

/// Edit-distance blocking on blocking keys, e.g.
/// ed(lastword(a.Name), lastword(b.Name)) <= 2.
class EditDistanceBlocker : public Blocker {
 public:
  EditDistanceBlocker(KeyFunction key, size_t max_distance)
      : predicate_(std::move(key), max_distance) {}

  CandidateSet Run(const Table& table_a,
                   const Table& table_b) const override {
    return EnumerateEditDistanceKeys(table_a, table_b, predicate_);
  }
  std::string Description(const Schema& schema) const override {
    return predicate_.Description(schema);
  }
  std::optional<bool> KeepsPair(const Table& table_a, size_t row_a,
                                const Table& table_b,
                                size_t row_b) const override {
    return predicate_.Evaluate(table_a, row_a, table_b, row_b);
  }

 private:
  EditDistancePredicate predicate_;
};

/// Phonetic blocking: hash blocking on the Soundex code of an attribute.
class PhoneticBlocker : public Blocker {
 public:
  explicit PhoneticBlocker(size_t column)
      : key_(KeyFunction::Kind::kSoundex, column) {}

  CandidateSet Run(const Table& table_a,
                   const Table& table_b) const override {
    return EnumerateKeyEquality(table_a, table_b, key_);
  }
  std::string Description(const Schema& schema) const override {
    std::string key = key_.Description(schema);
    return "a." + key + " = b." + key;
  }
  std::optional<bool> KeepsPair(const Table& table_a, size_t row_a,
                                const Table& table_b,
                                size_t row_b) const override {
    return KeyEqualityPredicate(key_).Evaluate(table_a, row_a, table_b,
                                               row_b);
  }

 private:
  KeyFunction key_;
};

}  // namespace mc

#endif  // MATCHCATCHER_BLOCKING_STANDARD_BLOCKERS_H_
