#ifndef MATCHCATCHER_BLOCKING_SUFFIX_ARRAY_BLOCKER_H_
#define MATCHCATCHER_BLOCKING_SUFFIX_ARRAY_BLOCKER_H_

#include <string>

#include "blocking/blocker.h"
#include "blocking/key_function.h"

namespace mc {

/// Suffix-array blocking (Aizawa & Oyama; listed among the blocker types in
/// paper §2): every suffix of the blocking key with length >= min_length
/// becomes a block key; a pair survives iff the tuples share a suffix whose
/// block is not larger than max_block_size (oversized blocks are dropped as
/// uninformative, the standard guard).
class SuffixArrayBlocker : public Blocker {
 public:
  SuffixArrayBlocker(KeyFunction key, size_t min_suffix_length,
                     size_t max_block_size)
      : key_(std::move(key)),
        min_suffix_length_(min_suffix_length),
        max_block_size_(max_block_size) {}

  CandidateSet Run(const Table& table_a,
                   const Table& table_b) const override;
  std::string Description(const Schema& schema) const override;

 private:
  KeyFunction key_;
  size_t min_suffix_length_;
  size_t max_block_size_;
};

}  // namespace mc

#endif  // MATCHCATCHER_BLOCKING_SUFFIX_ARRAY_BLOCKER_H_
