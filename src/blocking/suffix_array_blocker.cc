#include "blocking/suffix_array_blocker.h"

#include <unordered_map>
#include <vector>

namespace mc {

CandidateSet SuffixArrayBlocker::Run(const Table& table_a,
                                     const Table& table_b) const {
  struct Block {
    std::vector<RowId> rows_a;
    std::vector<RowId> rows_b;
  };
  std::unordered_map<std::string, Block> blocks;
  auto add_table = [&](const Table& table, bool from_a) {
    for (size_t row = 0; row < table.num_rows(); ++row) {
      std::optional<std::string> key = key_.Apply(table, row);
      if (!key.has_value() || key->size() < min_suffix_length_) continue;
      for (size_t start = 0;
           start + min_suffix_length_ <= key->size(); ++start) {
        Block& block = blocks[key->substr(start)];
        (from_a ? block.rows_a : block.rows_b)
            .push_back(static_cast<RowId>(row));
      }
    }
  };
  add_table(table_a, true);
  add_table(table_b, false);

  CandidateSet result;
  for (const auto& [suffix, block] : blocks) {
    if (block.rows_a.size() + block.rows_b.size() > max_block_size_) {
      continue;  // Oversized block: uninformative suffix.
    }
    for (RowId a : block.rows_a) {
      for (RowId b : block.rows_b) result.Add(a, b);
    }
  }
  return result;
}

std::string SuffixArrayBlocker::Description(const Schema& schema) const {
  return "suffix_array(" + key_.Description(schema) +
         ", min_len=" + std::to_string(min_suffix_length_) +
         ", max_block=" + std::to_string(max_block_size_) + ")";
}

}  // namespace mc
