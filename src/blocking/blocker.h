#ifndef MATCHCATCHER_BLOCKING_BLOCKER_H_
#define MATCHCATCHER_BLOCKING_BLOCKER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "blocking/candidate_set.h"
#include "blocking/predicate.h"
#include "table/table.h"

namespace mc {

/// A blocker maps two tables to the candidate set `C` of pairs that survive
/// blocking. MatchCatcher itself only ever consumes `C` — it is blocker
/// independent — but the library ships the full blocker zoo of paper §2 so
/// that the debugging loop can be exercised end to end.
class Blocker {
 public:
  virtual ~Blocker() = default;

  /// Applies the blocker, producing the surviving pair set C.
  virtual CandidateSet Run(const Table& table_a,
                           const Table& table_b) const = 0;

  /// Human-readable description, e.g. "a.City = b.City".
  virtual std::string Description(const Schema& schema) const = 0;

  /// Whether this blocker would keep the single pair, when the decision is
  /// *pair-decomposable* (depends only on the two tuples). Window- and
  /// cluster-based blockers (sorted neighborhood, canopy) return nullopt:
  /// their decision depends on the rest of the tables. Used by the
  /// blocker-aware kill explanations (explain/blame.h).
  virtual std::optional<bool> KeepsPair(const Table& table_a, size_t row_a,
                                        const Table& table_b,
                                        size_t row_b) const {
    (void)table_a;
    (void)row_a;
    (void)table_b;
    (void)row_b;
    return std::nullopt;
  }
};

/// Reference executor: evaluates an arbitrary keep-predicate over all of
/// A x B. Quadratic — used by equivalence tests and for tiny tables.
class NaiveBlocker : public Blocker {
 public:
  explicit NaiveBlocker(std::shared_ptr<const PairPredicate> predicate)
      : predicate_(std::move(predicate)) {}

  CandidateSet Run(const Table& table_a,
                   const Table& table_b) const override;
  std::string Description(const Schema& schema) const override;
  std::optional<bool> KeepsPair(const Table& table_a, size_t row_a,
                                const Table& table_b,
                                size_t row_b) const override {
    return predicate_->Evaluate(table_a, row_a, table_b, row_b);
  }

 private:
  std::shared_ptr<const PairPredicate> predicate_;
};

/// Union of blockers: keeps a pair iff any member keeps it ("use multiple
/// hash blockers and take the union of their outputs", paper §1).
class UnionBlocker : public Blocker {
 public:
  explicit UnionBlocker(std::vector<std::shared_ptr<const Blocker>> members)
      : members_(std::move(members)) {}

  CandidateSet Run(const Table& table_a,
                   const Table& table_b) const override;
  std::string Description(const Schema& schema) const override;
  /// Keeps iff any member keeps; nullopt when every non-keeping member is
  /// itself undecidable at pair level.
  std::optional<bool> KeepsPair(const Table& table_a, size_t row_a,
                                const Table& table_b,
                                size_t row_b) const override;

  const std::vector<std::shared_ptr<const Blocker>>& members() const {
    return members_;
  }

 private:
  std::vector<std::shared_ptr<const Blocker>> members_;
};

}  // namespace mc

#endif  // MATCHCATCHER_BLOCKING_BLOCKER_H_
