#ifndef MATCHCATCHER_BLOCKING_RULE_BLOCKER_H_
#define MATCHCATCHER_BLOCKING_RULE_BLOCKER_H_

#include <memory>
#include <string>
#include <vector>

#include "blocking/blocker.h"
#include "blocking/predicate.h"

namespace mc {

/// A conjunction of keep-predicates. A pair survives the rule iff every
/// predicate holds.
class ConjunctiveRule {
 public:
  ConjunctiveRule() = default;
  explicit ConjunctiveRule(
      std::vector<std::shared_ptr<const PairPredicate>> predicates)
      : predicates_(std::move(predicates)) {}

  void AddPredicate(std::shared_ptr<const PairPredicate> predicate) {
    predicates_.push_back(std::move(predicate));
  }

  const std::vector<std::shared_ptr<const PairPredicate>>& predicates()
      const {
    return predicates_;
  }

  bool Evaluate(const Table& table_a, size_t row_a, const Table& table_b,
                size_t row_b) const {
    for (const auto& predicate : predicates_) {
      if (!predicate->Evaluate(table_a, row_a, table_b, row_b)) return false;
    }
    return true;
  }

  std::string Description(const Schema& schema) const;

 private:
  std::vector<std::shared_ptr<const PairPredicate>> predicates_;
};

/// Rule-based blocking (paper §2): a pair survives iff it satisfies at least
/// one rule — the blocker is the union of its rules. Execution picks one
/// *indexable* predicate per rule as the enumeration anchor (key equality,
/// set similarity, overlap, or edit distance) and verifies the remaining
/// conjuncts pair by pair; rules without an indexable anchor fall back to a
/// naive scan (fine for small tables, avoided by every paper blocker).
class RuleBlocker : public Blocker {
 public:
  explicit RuleBlocker(std::vector<ConjunctiveRule> rules)
      : rules_(std::move(rules)) {}

  CandidateSet Run(const Table& table_a,
                   const Table& table_b) const override;
  std::string Description(const Schema& schema) const override;
  std::optional<bool> KeepsPair(const Table& table_a, size_t row_a,
                                const Table& table_b,
                                size_t row_b) const override {
    for (const ConjunctiveRule& rule : rules_) {
      if (rule.Evaluate(table_a, row_a, table_b, row_b)) return true;
    }
    return false;
  }

  const std::vector<ConjunctiveRule>& rules() const { return rules_; }

 private:
  std::vector<ConjunctiveRule> rules_;
};

}  // namespace mc

#endif  // MATCHCATCHER_BLOCKING_RULE_BLOCKER_H_
