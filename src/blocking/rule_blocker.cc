#include "blocking/rule_blocker.h"

#include <algorithm>
#include <cstddef>

#include "blocking/executors.h"
#include "util/check.h"
#include "util/random.h"

namespace mc {

std::string ConjunctiveRule::Description(const Schema& schema) const {
  std::string out;
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += predicates_[i]->Description(schema);
  }
  return out;
}

namespace {

// Heuristic selectivity score of a predicate as an enumeration anchor:
// higher = expected to enumerate fewer candidates. Key equality is the most
// selective (hash partition); similarity thresholds get more selective as
// the threshold rises; a 1-token overlap is barely a filter at all.
// Non-indexable predicates score negative.
double AnchorScore(const PairPredicate* predicate) {
  if (dynamic_cast<const KeyEqualityPredicate*>(predicate) != nullptr) {
    return 100.0;
  }
  if (const auto* edit =
          dynamic_cast<const EditDistancePredicate*>(predicate)) {
    return 90.0 - static_cast<double>(edit->max_distance());
  }
  if (const auto* similarity =
          dynamic_cast<const SetSimilarityPredicate*>(predicate)) {
    return 10.0 + similarity->threshold() * 50.0;
  }
  if (const auto* overlap =
          dynamic_cast<const OverlapPredicate*>(predicate)) {
    return std::min<double>(static_cast<double>(overlap->min_overlap()),
                            9.0);
  }
  return -1.0;
}

// Runs the enumeration anchor for predicate index `anchor` of `rule`, or
// returns false if that predicate is not indexable.
bool TryEnumerate(const ConjunctiveRule& rule, size_t anchor,
                  const Table& table_a, const Table& table_b,
                  CandidateSet* candidates) {
  const PairPredicate* predicate = rule.predicates()[anchor].get();
  if (const auto* key_eq =
          dynamic_cast<const KeyEqualityPredicate*>(predicate)) {
    *candidates = EnumerateKeyEquality(table_a, table_b, key_eq->key());
    return true;
  }
  if (const auto* similarity =
          dynamic_cast<const SetSimilarityPredicate*>(predicate)) {
    *candidates = EnumerateSetSimilarity(table_a, table_b, *similarity);
    return true;
  }
  if (const auto* overlap =
          dynamic_cast<const OverlapPredicate*>(predicate)) {
    *candidates = EnumerateOverlap(table_a, table_b, *overlap);
    return true;
  }
  if (const auto* edit =
          dynamic_cast<const EditDistancePredicate*>(predicate)) {
    *candidates = EnumerateEditDistanceKeys(table_a, table_b, *edit);
    return true;
  }
  return false;
}

}  // namespace

CandidateSet RuleBlocker::Run(const Table& table_a,
                              const Table& table_b) const {
  CandidateSet result;
  for (const ConjunctiveRule& rule : rules_) {
    CandidateSet candidates;
    // Anchor on the most selective indexable conjunct. Selectivity is
    // measured on a random-pair sample (an unselective anchor — say, key
    // equality on a 14-value attribute — would enumerate millions of
    // candidates only to have the residual conjuncts discard them); the
    // static kind-based score breaks ties among conjuncts the sample
    // cannot distinguish (both ~0 keep rate).
    size_t anchor = rule.predicates().size();
    double best_rate = 2.0;
    double best_static = -1.0;
    constexpr size_t kSelectivitySample = 1500;
    Rng sample_rng(0x5eedf00dULL + rule.predicates().size());
    std::vector<std::pair<size_t, size_t>> sample;
    if (table_a.num_rows() > 0 && table_b.num_rows() > 0) {
      sample.reserve(kSelectivitySample);
      for (size_t s = 0; s < kSelectivitySample; ++s) {
        sample.emplace_back(sample_rng.NextBelow(table_a.num_rows()),
                            sample_rng.NextBelow(table_b.num_rows()));
      }
    }
    for (size_t i = 0; i < rule.predicates().size(); ++i) {
      double static_score = AnchorScore(rule.predicates()[i].get());
      if (static_score < 0.0) continue;  // Not indexable.
      size_t kept = 0;
      for (const auto& [row_a, row_b] : sample) {
        if (rule.predicates()[i]->Evaluate(table_a, row_a, table_b,
                                           row_b)) {
          ++kept;
        }
      }
      double rate = sample.empty()
                        ? 0.0
                        : static_cast<double>(kept) / sample.size();
      if (anchor == rule.predicates().size() || rate < best_rate ||
          (rate == best_rate && static_score > best_static)) {
        anchor = i;
        best_rate = rate;
        best_static = static_score;
      }
    }
    if (anchor < rule.predicates().size()) {
      bool enumerated =
          TryEnumerate(rule, anchor, table_a, table_b, &candidates);
      MC_CHECK(enumerated);
    }
    if (anchor == rule.predicates().size()) {
      // No indexable anchor: naive scan.
      for (size_t a = 0; a < table_a.num_rows(); ++a) {
        for (size_t b = 0; b < table_b.num_rows(); ++b) {
          if (rule.Evaluate(table_a, a, table_b, b)) {
            result.Add(static_cast<RowId>(a), static_cast<RowId>(b));
          }
        }
      }
      continue;
    }
    // Verify the residual conjuncts on the anchor's candidates.
    for (PairId pair : candidates) {
      RowId row_a = PairRowA(pair);
      RowId row_b = PairRowB(pair);
      bool keep = true;
      for (size_t i = 0; i < rule.predicates().size() && keep; ++i) {
        if (i == anchor) continue;
        keep = rule.predicates()[i]->Evaluate(table_a, row_a, table_b, row_b);
      }
      if (keep) result.Add(pair);
    }
  }
  return result;
}

std::string RuleBlocker::Description(const Schema& schema) const {
  std::string out;
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (i > 0) out += " OR ";
    out += "(" + rules_[i].Description(schema) + ")";
  }
  return out;
}

}  // namespace mc
