#include "blocking/key_function.h"

#include <cmath>
#include <cstdint>

#include "table/tokenized_table.h"
#include "text/normalize.h"
#include "text/similarity.h"
#include "text/tokenize.h"
#include "util/check.h"

namespace mc {

std::optional<std::string> KeyFunction::Apply(const Table& table,
                                              size_t row) const {
  if (table.IsMissing(row, column_)) return std::nullopt;
  const TokenizedTable* plane = AttachedTextPlane(table);
  if (plane != nullptr) {
    // The normalized value and word tokens are precomputed in the plane;
    // kRawValue/kSoundex/kNumericBucket need the raw cell and fall through.
    const size_t side = table.text_plane_side();
    switch (kind_) {
      case Kind::kFullValue: {
        std::string_view normalized =
            TrimWhitespace(plane->NormalizedValue(side, row, column_));
        if (normalized.empty()) return std::nullopt;
        return std::string(normalized);
      }
      case Kind::kLastWord: {
        std::string_view word = plane->LastTokenOf(side, row, column_);
        if (word.empty()) return std::nullopt;
        return std::string(word);
      }
      case Kind::kFirstWord: {
        std::string_view word = plane->FirstTokenOf(side, row, column_);
        if (word.empty()) return std::nullopt;
        return std::string(word);
      }
      case Kind::kPrefix: {
        std::string_view normalized =
            TrimWhitespace(plane->NormalizedValue(side, row, column_));
        if (normalized.empty()) return std::nullopt;
        return std::string(normalized.substr(0, param_));
      }
      default:
        break;
    }
  }
  std::string_view raw = table.Value(row, column_);
  switch (kind_) {
    case Kind::kFullValue: {
      std::string normalized(TrimWhitespace(NormalizeForTokens(raw)));
      if (normalized.empty()) return std::nullopt;
      return normalized;
    }
    case Kind::kRawValue: {
      std::string trimmed(TrimWhitespace(raw));
      if (trimmed.empty()) return std::nullopt;
      return trimmed;
    }
    case Kind::kLastWord: {
      std::string word = LastWordToken(raw);
      if (word.empty()) return std::nullopt;
      return word;
    }
    case Kind::kFirstWord: {
      std::string word = FirstWordToken(raw);
      if (word.empty()) return std::nullopt;
      return word;
    }
    case Kind::kSoundex: {
      std::string code = Soundex(raw);
      if (code.empty()) return std::nullopt;
      return code;
    }
    case Kind::kPrefix: {
      std::string normalized(TrimWhitespace(NormalizeForTokens(raw)));
      if (normalized.empty()) return std::nullopt;
      return normalized.substr(0, param_);
    }
    case Kind::kNumericBucket: {
      std::optional<double> value = table.NumericValue(row, column_);
      if (!value.has_value()) return std::nullopt;
      MC_CHECK_GE(param_, 1u);
      int64_t bucket = static_cast<int64_t>(
          std::floor(*value / static_cast<double>(param_)));
      return std::to_string(bucket);
    }
  }
  return std::nullopt;
}

std::string KeyFunction::Description(const Schema& schema) const {
  const std::string& attr = schema.attribute(column_).name;
  switch (kind_) {
    case Kind::kFullValue:
      return attr;
    case Kind::kRawValue:
      return "raw(" + attr + ")";
    case Kind::kLastWord:
      return "lastword(" + attr + ")";
    case Kind::kFirstWord:
      return "firstword(" + attr + ")";
    case Kind::kSoundex:
      return "soundex(" + attr + ")";
    case Kind::kPrefix:
      return "prefix" + std::to_string(param_) + "(" + attr + ")";
    case Kind::kNumericBucket:
      return "bucket" + std::to_string(param_) + "(" + attr + ")";
  }
  return attr;
}

}  // namespace mc
