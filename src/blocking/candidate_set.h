#ifndef MATCHCATCHER_BLOCKING_CANDIDATE_SET_H_
#define MATCHCATCHER_BLOCKING_CANDIDATE_SET_H_

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "blocking/pair.h"

namespace mc {

/// A set of tuple pairs. This is both the output `C` of a blocker and the
/// representation of gold match sets `M` in tests/benchmarks.
class CandidateSet {
 public:
  CandidateSet() = default;

  void Add(RowId a, RowId b) { pairs_.insert(MakePairId(a, b)); }
  void Add(PairId pair) { pairs_.insert(pair); }

  bool Contains(RowId a, RowId b) const {
    return pairs_.count(MakePairId(a, b)) > 0;
  }
  bool Contains(PairId pair) const { return pairs_.count(pair) > 0; }

  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  /// Inserts every pair of `other` into this set (blocker union).
  void UnionWith(const CandidateSet& other) {
    pairs_.insert(other.pairs_.begin(), other.pairs_.end());
  }

  /// Number of pairs present in both this set and `other`.
  size_t IntersectionSize(const CandidateSet& other) const {
    const CandidateSet& small = size() <= other.size() ? *this : other;
    const CandidateSet& large = size() <= other.size() ? other : *this;
    size_t count = 0;
    for (PairId pair : small.pairs_) {
      if (large.Contains(pair)) ++count;
    }
    return count;
  }

  /// Stable snapshot of the pairs (sorted for determinism).
  std::vector<PairId> SortedPairs() const;

  auto begin() const { return pairs_.begin(); }
  auto end() const { return pairs_.end(); }

 private:
  std::unordered_set<PairId, PairIdHash> pairs_;
};

}  // namespace mc

#endif  // MATCHCATCHER_BLOCKING_CANDIDATE_SET_H_
