#ifndef MATCHCATCHER_BLOCKING_PREDICATE_H_
#define MATCHCATCHER_BLOCKING_PREDICATE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "blocking/key_function.h"
#include "table/table.h"
#include "text/similarity.h"

namespace mc {

/// How a cell value is tokenized for set-based predicates.
struct TokenizerSpec {
  enum class Kind { kWord, kQGram };

  Kind kind = Kind::kWord;
  /// Gram size; only meaningful for kQGram.
  size_t q = 3;

  /// Distinct tokens of `text` under this spec.
  std::vector<std::string> Tokens(std::string_view text) const;

  /// "word" or "<q>gram".
  std::string Description() const;

  static TokenizerSpec Word() { return TokenizerSpec{Kind::kWord, 0}; }
  static TokenizerSpec QGram(size_t q) {
    return TokenizerSpec{Kind::kQGram, q};
  }
};

/// A boolean *keep* condition over a tuple pair. Rule blockers are unions of
/// conjunctions of these; the naive reference executor evaluates them over
/// all of A x B. A predicate involving a missing value evaluates to false
/// (missing keys match nothing — the standard blocking behaviour, and the
/// source of several of the blocker problems the paper's users uncovered).
class PairPredicate {
 public:
  virtual ~PairPredicate() = default;

  virtual bool Evaluate(const Table& table_a, size_t row_a,
                        const Table& table_b, size_t row_b) const = 0;

  /// Human-readable form, e.g. "jaccard_word(title) >= 0.4".
  virtual std::string Description(const Schema& schema) const = 0;
};

/// Keep iff both key values exist and are equal (hash / attribute
/// equivalence semantics).
class KeyEqualityPredicate : public PairPredicate {
 public:
  explicit KeyEqualityPredicate(KeyFunction key) : key_(std::move(key)) {}

  bool Evaluate(const Table& table_a, size_t row_a, const Table& table_b,
                size_t row_b) const override;
  std::string Description(const Schema& schema) const override;

  const KeyFunction& key() const { return key_; }

 private:
  KeyFunction key_;
};

/// Keep iff measure(tokens(a.attr), tokens(b.attr)) >= threshold.
class SetSimilarityPredicate : public PairPredicate {
 public:
  SetSimilarityPredicate(size_t column, TokenizerSpec tokenizer,
                         SetMeasure measure, double threshold)
      : column_(column),
        tokenizer_(tokenizer),
        measure_(measure),
        threshold_(threshold) {}

  bool Evaluate(const Table& table_a, size_t row_a, const Table& table_b,
                size_t row_b) const override;
  std::string Description(const Schema& schema) const override;

  size_t column() const { return column_; }
  const TokenizerSpec& tokenizer() const { return tokenizer_; }
  SetMeasure measure() const { return measure_; }
  double threshold() const { return threshold_; }

 private:
  size_t column_;
  TokenizerSpec tokenizer_;
  SetMeasure measure_;
  double threshold_;
};

/// Keep iff |tokens(a.attr) ∩ tokens(b.attr)| >= min_overlap.
class OverlapPredicate : public PairPredicate {
 public:
  OverlapPredicate(size_t column, TokenizerSpec tokenizer, size_t min_overlap)
      : column_(column), tokenizer_(tokenizer), min_overlap_(min_overlap) {}

  bool Evaluate(const Table& table_a, size_t row_a, const Table& table_b,
                size_t row_b) const override;
  std::string Description(const Schema& schema) const override;

  size_t column() const { return column_; }
  const TokenizerSpec& tokenizer() const { return tokenizer_; }
  size_t min_overlap() const { return min_overlap_; }

 private:
  size_t column_;
  TokenizerSpec tokenizer_;
  size_t min_overlap_;
};

/// Keep iff ed(key(a), key(b)) <= max_distance (both keys present), e.g.
/// ed(lastword(a.Name), lastword(b.Name)) <= 2 from the paper's Example 1.1.
class EditDistancePredicate : public PairPredicate {
 public:
  EditDistancePredicate(KeyFunction key, size_t max_distance)
      : key_(std::move(key)), max_distance_(max_distance) {}

  bool Evaluate(const Table& table_a, size_t row_a, const Table& table_b,
                size_t row_b) const override;
  std::string Description(const Schema& schema) const override;

  const KeyFunction& key() const { return key_; }
  size_t max_distance() const { return max_distance_; }

 private:
  KeyFunction key_;
  size_t max_distance_;
};

/// Keep iff both numeric values exist and |a - b| <= max_abs_diff.
class NumericDiffPredicate : public PairPredicate {
 public:
  NumericDiffPredicate(size_t column, double max_abs_diff)
      : column_(column), max_abs_diff_(max_abs_diff) {}

  bool Evaluate(const Table& table_a, size_t row_a, const Table& table_b,
                size_t row_b) const override;
  std::string Description(const Schema& schema) const override;

  size_t column() const { return column_; }
  double max_abs_diff() const { return max_abs_diff_; }

 private:
  size_t column_;
  double max_abs_diff_;
};

}  // namespace mc

#endif  // MATCHCATCHER_BLOCKING_PREDICATE_H_
