#ifndef MATCHCATCHER_BLOCKING_CANOPY_BLOCKER_H_
#define MATCHCATCHER_BLOCKING_CANOPY_BLOCKER_H_

#include <string>

#include "blocking/blocker.h"
#include "blocking/predicate.h"

namespace mc {

/// Canopy clustering blocking (McCallum et al.; listed among the blocker
/// types in paper §2): repeatedly pick a random seed tuple, form a canopy
/// of all tuples within the *loose* similarity threshold of the seed, and
/// remove from the seed pool those within the *tight* threshold. A pair
/// survives iff both tuples share a canopy.
///
/// We use the standard cheap-metric choice of token overlap on one
/// attribute. Deterministic for a fixed seed.
class CanopyBlocker : public Blocker {
 public:
  /// Requires loose_threshold <= tight_threshold in similarity terms:
  /// `loose` is the minimum Jaccard to join a canopy, `tight` the Jaccard
  /// at which a tuple stops seeding new canopies (loose <= tight).
  CanopyBlocker(size_t column, TokenizerSpec tokenizer, double loose,
                double tight, uint64_t seed = 7);

  CandidateSet Run(const Table& table_a,
                   const Table& table_b) const override;
  std::string Description(const Schema& schema) const override;

 private:
  size_t column_;
  TokenizerSpec tokenizer_;
  double loose_;
  double tight_;
  uint64_t seed_;
};

}  // namespace mc

#endif  // MATCHCATCHER_BLOCKING_CANOPY_BLOCKER_H_
