#include "blocking/blocker.h"

namespace mc {

CandidateSet NaiveBlocker::Run(const Table& table_a,
                               const Table& table_b) const {
  CandidateSet result;
  for (size_t a = 0; a < table_a.num_rows(); ++a) {
    for (size_t b = 0; b < table_b.num_rows(); ++b) {
      if (predicate_->Evaluate(table_a, a, table_b, b)) {
        result.Add(static_cast<RowId>(a), static_cast<RowId>(b));
      }
    }
  }
  return result;
}

std::string NaiveBlocker::Description(const Schema& schema) const {
  return predicate_->Description(schema);
}

CandidateSet UnionBlocker::Run(const Table& table_a,
                               const Table& table_b) const {
  CandidateSet result;
  for (const auto& member : members_) {
    result.UnionWith(member->Run(table_a, table_b));
  }
  return result;
}

std::optional<bool> UnionBlocker::KeepsPair(const Table& table_a,
                                            size_t row_a,
                                            const Table& table_b,
                                            size_t row_b) const {
  bool all_decided = true;
  for (const auto& member : members_) {
    std::optional<bool> keeps =
        member->KeepsPair(table_a, row_a, table_b, row_b);
    if (!keeps.has_value()) {
      all_decided = false;
    } else if (*keeps) {
      return true;
    }
  }
  if (all_decided) return false;
  return std::nullopt;
}

std::string UnionBlocker::Description(const Schema& schema) const {
  std::string out;
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i > 0) out += " OR ";
    out += members_[i]->Description(schema);
  }
  return out;
}

}  // namespace mc
