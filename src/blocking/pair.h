#ifndef MATCHCATCHER_BLOCKING_PAIR_H_
#define MATCHCATCHER_BLOCKING_PAIR_H_

#include <cstdint>
#include <functional>

namespace mc {

/// A tuple pair (row index into table A, row index into table B) packed into
/// one 64-bit word. All pair-keyed containers in the library use this.
using PairId = uint64_t;

/// Row index type for tuples within one table.
using RowId = uint32_t;

constexpr PairId MakePairId(RowId a, RowId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

constexpr RowId PairRowA(PairId pair) {
  return static_cast<RowId>(pair >> 32);
}

constexpr RowId PairRowB(PairId pair) {
  return static_cast<RowId>(pair & 0xFFFFFFFFULL);
}

/// Mixing hash for PairId (fibonacci/splitmix-style finalizer); the identity
/// hash of std::hash<uint64_t> clusters badly for packed pairs.
struct PairIdHash {
  size_t operator()(PairId pair) const {
    uint64_t z = pair + 0x9E3779B97f4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};

}  // namespace mc

#endif  // MATCHCATCHER_BLOCKING_PAIR_H_
