#include "blocking/metrics.h"

namespace mc {

BlockerMetrics EvaluateBlocking(const CandidateSet& candidates,
                                const CandidateSet& gold_matches,
                                size_t rows_a, size_t rows_b) {
  BlockerMetrics metrics;
  metrics.candidate_count = candidates.size();
  size_t surviving = candidates.IntersectionSize(gold_matches);
  metrics.killed_matches = gold_matches.size() - surviving;
  metrics.recall = gold_matches.empty()
                       ? 1.0
                       : static_cast<double>(surviving) / gold_matches.size();
  double cross = static_cast<double>(rows_a) * static_cast<double>(rows_b);
  metrics.selectivity =
      cross == 0.0 ? 0.0 : static_cast<double>(candidates.size()) / cross;
  return metrics;
}

}  // namespace mc
