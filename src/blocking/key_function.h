#ifndef MATCHCATCHER_BLOCKING_KEY_FUNCTION_H_
#define MATCHCATCHER_BLOCKING_KEY_FUNCTION_H_

#include <optional>
#include <string>

#include "table/table.h"

namespace mc {

/// A blocking key function: maps a tuple to a (normalized) key string, or
/// nothing when the underlying value is missing. Hash blocking keeps a pair
/// iff both tuples produce the same key (paper §2: "hash blocking ... using a
/// pre-specified hash function").
class KeyFunction {
 public:
  enum class Kind {
    /// The whole attribute value, normalized (attribute equivalence).
    kFullValue,
    /// The whole attribute value, trimmed but case-sensitive — how typical
    /// EM tools hash raw values. Exposes "input tables are not lower-cased"
    /// blocker problems (paper Table 4).
    kRawValue,
    /// lastword(attr) — e.g. last name from a full name.
    kLastWord,
    /// firstword(attr).
    kFirstWord,
    /// Soundex code of the first word of the attribute.
    kSoundex,
    /// First `param` characters of the normalized value.
    kPrefix,
    /// Numeric value bucketed to multiples of `param` (param >= 1); a crude
    /// "hash of price" as in the paper's best manual hash blockers.
    kNumericBucket,
  };

  KeyFunction(Kind kind, size_t column, size_t param = 0)
      : kind_(kind), column_(column), param_(param) {}

  /// The key of row `row` of `table`, or nullopt when missing/undefined.
  std::optional<std::string> Apply(const Table& table, size_t row) const;

  /// Human-readable form, e.g. "lastword(name)".
  std::string Description(const Schema& schema) const;

  Kind kind() const { return kind_; }
  size_t column() const { return column_; }
  size_t param() const { return param_; }

 private:
  Kind kind_;
  size_t column_;
  size_t param_;
};

}  // namespace mc

#endif  // MATCHCATCHER_BLOCKING_KEY_FUNCTION_H_
