#ifndef MATCHCATCHER_BLOCKING_EXECUTORS_H_
#define MATCHCATCHER_BLOCKING_EXECUTORS_H_

#include "blocking/candidate_set.h"
#include "blocking/key_function.h"
#include "blocking/predicate.h"
#include "table/table.h"

namespace mc {

/// Indexed candidate enumeration for each indexable predicate type (paper
/// §2, "Efficient Execution of Blockers"). Each function returns exactly the
/// pairs satisfying the predicate — the index is a complete filter followed
/// by exact verification — so `Enumerate*(...)` ≡ naive evaluation, a
/// property pinned by the blocking equivalence tests.

/// Hash/attribute-equivalence: hash-partition on the key.
CandidateSet EnumerateKeyEquality(const Table& table_a, const Table& table_b,
                                  const KeyFunction& key);

/// Similarity threshold (Jaccard/cosine/Dice/overlap-coefficient): prefix
/// filtering under a document-frequency global token order, then exact
/// verification.
CandidateSet EnumerateSetSimilarity(const Table& table_a,
                                    const Table& table_b,
                                    const SetSimilarityPredicate& predicate);

/// Token-overlap threshold: prefix filtering with required overlap c.
CandidateSet EnumerateOverlap(const Table& table_a, const Table& table_b,
                              const OverlapPredicate& predicate);

/// Edit distance on blocking keys: 2-gram index with a short-key fallback,
/// then bounded edit-distance verification.
CandidateSet EnumerateEditDistanceKeys(const Table& table_a,
                                       const Table& table_b,
                                       const EditDistancePredicate& predicate);

/// Sorted neighborhood: merge-sort both tables on the key; every cross-table
/// pair within a window of `window` consecutive entries survives.
CandidateSet EnumerateSortedNeighborhood(const Table& table_a,
                                         const Table& table_b,
                                         const KeyFunction& key,
                                         size_t window);

}  // namespace mc

#endif  // MATCHCATCHER_BLOCKING_EXECUTORS_H_
