#include "blocking/blocker_learner.h"

#include <algorithm>

#include "blocking/key_function.h"
#include "blocking/predicate.h"
#include "table/profile.h"
#include "util/check.h"

namespace mc {

namespace {

// Candidate predicate pool derived from the schema. Long string attributes
// (descriptions, abstracts) only receive high-threshold word predicates:
// low-threshold or q-gram predicates over them are nearly unblockable
// anchors (two random long texts share plenty of tokens), so a rule built
// on one enumerates most of A x B.
std::vector<std::shared_ptr<const PairPredicate>> BuildCandidatePool(
    const Table& table_a) {
  const Schema& schema = table_a.schema();
  std::vector<std::shared_ptr<const PairPredicate>> pool;
  for (size_t c = 0; c < schema.size(); ++c) {
    if (schema.attribute(c).type == AttributeType::kNumeric) {
      for (double threshold : {0.5, 2.0, 10.0, 25.0}) {
        pool.push_back(
            std::make_shared<NumericDiffPredicate>(c, threshold));
      }
      continue;
    }
    const bool long_attribute =
        ProfileAttribute(table_a, c).average_token_length > 12.0;
    pool.push_back(std::make_shared<KeyEqualityPredicate>(
        KeyFunction(KeyFunction::Kind::kFullValue, c)));
    if (long_attribute) {
      for (double threshold : {0.5, 0.7}) {
        pool.push_back(std::make_shared<SetSimilarityPredicate>(
            c, TokenizerSpec::Word(), SetMeasure::kJaccard, threshold));
      }
      continue;
    }
    pool.push_back(std::make_shared<KeyEqualityPredicate>(
        KeyFunction(KeyFunction::Kind::kLastWord, c)));
    for (double threshold : {0.4, 0.6, 0.8}) {
      pool.push_back(std::make_shared<SetSimilarityPredicate>(
          c, TokenizerSpec::Word(), SetMeasure::kJaccard, threshold));
    }
    for (double threshold : {0.3, 0.5, 0.7}) {
      pool.push_back(std::make_shared<SetSimilarityPredicate>(
          c, TokenizerSpec::QGram(3), SetMeasure::kJaccard, threshold));
      pool.push_back(std::make_shared<SetSimilarityPredicate>(
          c, TokenizerSpec::Word(), SetMeasure::kCosine, threshold));
    }
    for (size_t count : {1u, 2u, 3u}) {
      pool.push_back(std::make_shared<OverlapPredicate>(
          c, TokenizerSpec::Word(), count));
    }
  }
  return pool;
}

// A candidate conjunction, as indices into the pool.
struct Candidate {
  std::vector<size_t> predicates;
  std::vector<bool> keeps;  // Per sample pair.
  size_t positives_kept = 0;
  size_t negatives_kept = 0;
};

}  // namespace

Result<LearnedBlocker> LearnBlocker(
    const Table& table_a, const Table& table_b,
    const std::vector<std::pair<PairId, bool>>& labeled_sample,
    const BlockerLearnerOptions& options) {
  if (labeled_sample.empty()) {
    return Status::InvalidArgument("labeled sample is empty");
  }
  size_t total_positives = 0;
  for (const auto& [pair, label] : labeled_sample) {
    total_positives += label ? 1 : 0;
  }
  if (total_positives == 0) {
    return Status::InvalidArgument("labeled sample has no positives");
  }
  const size_t total_negatives = labeled_sample.size() - total_positives;

  std::vector<std::shared_ptr<const PairPredicate>> pool =
      BuildCandidatePool(table_a);

  // Evaluate every pool predicate on every sample pair once.
  std::vector<std::vector<bool>> keeps(pool.size());
  for (size_t p = 0; p < pool.size(); ++p) {
    keeps[p].resize(labeled_sample.size());
    for (size_t s = 0; s < labeled_sample.size(); ++s) {
      PairId pair = labeled_sample[s].first;
      keeps[p][s] = pool[p]->Evaluate(table_a, PairRowA(pair), table_b,
                                      PairRowB(pair));
    }
  }

  // Enumerate candidate conjunctions of size 1 (and 2 if allowed); keep
  // those under the negative-rate cap.
  std::vector<Candidate> candidates;
  auto add_candidate = [&](std::vector<size_t> predicates) {
    Candidate candidate;
    candidate.predicates = std::move(predicates);
    candidate.keeps.assign(labeled_sample.size(), true);
    for (size_t p : candidate.predicates) {
      for (size_t s = 0; s < labeled_sample.size(); ++s) {
        candidate.keeps[s] = candidate.keeps[s] && keeps[p][s];
      }
    }
    for (size_t s = 0; s < labeled_sample.size(); ++s) {
      if (!candidate.keeps[s]) continue;
      if (labeled_sample[s].second) {
        ++candidate.positives_kept;
      } else {
        ++candidate.negatives_kept;
      }
    }
    if (candidate.positives_kept == 0) return;
    double negative_rate =
        total_negatives == 0
            ? 0.0
            : static_cast<double>(candidate.negatives_kept) / total_negatives;
    if (negative_rate > options.max_rule_negative_rate) return;
    candidates.push_back(std::move(candidate));
  };
  for (size_t p = 0; p < pool.size(); ++p) add_candidate({p});
  if (options.max_conjuncts >= 2) {
    for (size_t p = 0; p < pool.size(); ++p) {
      for (size_t q = p + 1; q < pool.size(); ++q) {
        add_candidate({p, q});
      }
    }
  }
  if (candidates.empty()) {
    return Status::FailedPrecondition(
        "no candidate rule satisfies the negative-rate cap");
  }

  // Greedy set cover over sample positives.
  std::vector<bool> covered(labeled_sample.size(), false);
  std::vector<ConjunctiveRule> rules;
  size_t covered_positives = 0;
  std::vector<bool> blocker_keeps(labeled_sample.size(), false);
  while (rules.size() < options.max_rules &&
         static_cast<double>(covered_positives) / total_positives <
             options.target_sample_recall) {
    size_t best = candidates.size();
    size_t best_gain = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      size_t gain = 0;
      for (size_t s = 0; s < labeled_sample.size(); ++s) {
        if (candidates[i].keeps[s] && labeled_sample[s].second &&
            !covered[s]) {
          ++gain;
        }
      }
      // Ties: prefer fewer negatives kept, then fewer conjuncts.
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && best < candidates.size() &&
           candidates[i].negatives_kept <
               candidates[best].negatives_kept)) {
        best = i;
        best_gain = gain;
      }
    }
    if (best == candidates.size() || best_gain == 0) break;
    const Candidate& winner = candidates[best];
    std::vector<std::shared_ptr<const PairPredicate>> predicates;
    for (size_t p : winner.predicates) predicates.push_back(pool[p]);
    rules.emplace_back(std::move(predicates));
    for (size_t s = 0; s < labeled_sample.size(); ++s) {
      if (!winner.keeps[s]) continue;
      blocker_keeps[s] = true;
      if (labeled_sample[s].second && !covered[s]) {
        covered[s] = true;
        ++covered_positives;
      }
    }
  }
  if (rules.empty()) {
    return Status::FailedPrecondition("greedy learner produced no rules");
  }

  LearnedBlocker learned;
  learned.blocker = std::make_shared<RuleBlocker>(std::move(rules));
  size_t kept_negatives = 0;
  for (size_t s = 0; s < labeled_sample.size(); ++s) {
    if (blocker_keeps[s] && !labeled_sample[s].second) ++kept_negatives;
  }
  learned.sample_recall =
      static_cast<double>(covered_positives) / total_positives;
  learned.sample_negative_rate =
      total_negatives == 0
          ? 0.0
          : static_cast<double>(kept_negatives) / total_negatives;
  return learned;
}

}  // namespace mc
