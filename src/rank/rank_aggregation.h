#ifndef MATCHCATCHER_RANK_RANK_AGGREGATION_H_
#define MATCHCATCHER_RANK_RANK_AGGREGATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "blocking/candidate_set.h"
#include "blocking/pair.h"
#include "ssj/topk_list.h"

namespace mc {

/// Competition ("1224") ranks for a list sorted by score descending: items
/// with equal score share a rank; the next distinct score resumes at its
/// 1-based position (paper Example 5.1: scores 1.0, 0.8, 0.8, 0.6 get ranks
/// 1, 2, 2, 4).
std::vector<uint32_t> CompetitionRanks(const std::vector<ScoredPair>& list);

/// Aggregates the per-config top-k lists into one global ranking of the
/// candidate set E (their union). Implements MedRank [Fagin et al. 2003] and
/// weighted median ranking (WMR), the two aggregators of paper §5.
class RankAggregator {
 public:
  /// `lists` are the per-config top-k lists, each sorted by score
  /// descending. `seed` drives random tie-breaking among equal medians.
  RankAggregator(std::vector<std::vector<ScoredPair>> lists, uint64_t seed);

  /// All distinct pairs across the lists (the candidate set E), in a fixed
  /// arbitrary order.
  const std::vector<PairId>& items() const { return items_; }

  size_t num_lists() const { return lists_.size(); }

  /// MedRank: each item's global rank is the median of its per-list ranks
  /// (items absent from a list of length L get rank L+1); items are ordered
  /// by ascending global rank, ties broken randomly (re-randomized per
  /// call from the constructor seed stream).
  std::vector<PairId> MedRank();

  /// Weighted median rank with one weight per list (weights need not be
  /// normalized). With uniform weights this coincides with MedRank up to
  /// median convention.
  std::vector<PairId> WeightedMedRank(const std::vector<double>& weights);

  /// Number of lists containing each of `matches` — r_i of the WMR weight
  /// update w_i <- w_i * (1 + log(1 + r_i)).
  std::vector<size_t> MatchesPerList(const CandidateSet& matches) const;

 private:
  std::vector<PairId> RankByAggregate(const std::vector<double>& aggregate);

  std::vector<std::vector<ScoredPair>> lists_;
  std::vector<PairId> items_;
  // ranks_[i][j] = rank of items_[j] in list i (len_i + 1 when absent).
  std::vector<std::vector<uint32_t>> ranks_;
  uint64_t seed_state_;
};

/// Maintains WMR weights across verifier iterations: starts uniform at 1/m,
/// multiplies by (1 + log(1 + r_i)) after each labeling round, then
/// normalizes (paper §5 "Using Rank Aggregation").
class WmrWeights {
 public:
  explicit WmrWeights(size_t num_lists);

  const std::vector<double>& weights() const { return weights_; }

  /// Applies one round of updates from the matches the user just confirmed.
  void Update(const RankAggregator& aggregator,
              const CandidateSet& new_matches);

 private:
  std::vector<double> weights_;
};

}  // namespace mc

#endif  // MATCHCATCHER_RANK_RANK_AGGREGATION_H_
