#include "rank/rank_aggregation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/random.h"

namespace mc {

std::vector<uint32_t> CompetitionRanks(const std::vector<ScoredPair>& list) {
  std::vector<uint32_t> ranks(list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    MC_CHECK(i == 0 || list[i - 1].score >= list[i].score)
        << "list must be sorted by score descending";
    if (i > 0 && list[i].score == list[i - 1].score) {
      ranks[i] = ranks[i - 1];
    } else {
      ranks[i] = static_cast<uint32_t>(i + 1);
    }
  }
  return ranks;
}

RankAggregator::RankAggregator(std::vector<std::vector<ScoredPair>> lists,
                               uint64_t seed)
    : lists_(std::move(lists)), seed_state_(seed) {
  // Universe E = union of all lists, in first-appearance order.
  std::unordered_map<PairId, size_t, PairIdHash> index;
  for (const auto& list : lists_) {
    for (const ScoredPair& entry : list) {
      if (index.emplace(entry.pair, items_.size()).second) {
        items_.push_back(entry.pair);
      }
    }
  }
  // Per-list ranks; absent items get rank len + 1.
  ranks_.resize(lists_.size());
  for (size_t i = 0; i < lists_.size(); ++i) {
    ranks_[i].assign(items_.size(),
                     static_cast<uint32_t>(lists_[i].size() + 1));
    std::vector<uint32_t> list_ranks = CompetitionRanks(lists_[i]);
    for (size_t j = 0; j < lists_[i].size(); ++j) {
      ranks_[i][index.at(lists_[i][j].pair)] = list_ranks[j];
    }
  }
}

std::vector<PairId> RankAggregator::RankByAggregate(
    const std::vector<double>& aggregate) {
  std::vector<size_t> order(items_.size());
  std::iota(order.begin(), order.end(), 0);
  // Random tie-break (paper §5: "breaking ties randomly"): shuffle first,
  // then stable-sort by aggregate rank.
  Rng rng(seed_state_);
  seed_state_ = rng.NextUint64();
  rng.Shuffle(order);
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return aggregate[x] < aggregate[y];
  });
  std::vector<PairId> result;
  result.reserve(items_.size());
  for (size_t j : order) result.push_back(items_[j]);
  return result;
}

std::vector<PairId> RankAggregator::MedRank() {
  std::vector<double> medians(items_.size());
  std::vector<uint32_t> buffer(lists_.size());
  for (size_t j = 0; j < items_.size(); ++j) {
    for (size_t i = 0; i < lists_.size(); ++i) buffer[i] = ranks_[i][j];
    std::sort(buffer.begin(), buffer.end());
    medians[j] = buffer[(buffer.size() - 1) / 2];  // Lower median.
  }
  return RankByAggregate(medians);
}

std::vector<PairId> RankAggregator::WeightedMedRank(
    const std::vector<double>& weights) {
  MC_CHECK_EQ(weights.size(), lists_.size());
  double total_weight = std::accumulate(weights.begin(), weights.end(), 0.0);
  MC_CHECK_GT(total_weight, 0.0);

  std::vector<double> aggregate(items_.size());
  std::vector<std::pair<uint32_t, double>> entries(lists_.size());
  for (size_t j = 0; j < items_.size(); ++j) {
    for (size_t i = 0; i < lists_.size(); ++i) {
      entries[i] = {ranks_[i][j], weights[i]};
    }
    std::sort(entries.begin(), entries.end());
    // Weighted median: smallest rank x with cumulative weight >= half.
    double cumulative = 0.0;
    double median = entries.back().first;
    for (const auto& [rank, weight] : entries) {
      cumulative += weight;
      if (cumulative * 2.0 >= total_weight) {
        median = rank;
        break;
      }
    }
    aggregate[j] = median;
  }
  return RankByAggregate(aggregate);
}

std::vector<size_t> RankAggregator::MatchesPerList(
    const CandidateSet& matches) const {
  std::vector<size_t> counts(lists_.size(), 0);
  for (size_t i = 0; i < lists_.size(); ++i) {
    for (const ScoredPair& entry : lists_[i]) {
      if (matches.Contains(entry.pair)) ++counts[i];
    }
  }
  return counts;
}

WmrWeights::WmrWeights(size_t num_lists) {
  MC_CHECK_GT(num_lists, 0u);
  weights_.assign(num_lists, 1.0 / static_cast<double>(num_lists));
}

void WmrWeights::Update(const RankAggregator& aggregator,
                        const CandidateSet& new_matches) {
  std::vector<size_t> counts = aggregator.MatchesPerList(new_matches);
  MC_CHECK_EQ(counts.size(), weights_.size());
  double total = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] *= 1.0 + std::log(1.0 + static_cast<double>(counts[i]));
    total += weights_[i];
  }
  MC_CHECK_GT(total, 0.0);
  for (double& weight : weights_) weight /= total;
}

}  // namespace mc
