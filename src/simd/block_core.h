#ifndef MATCHCATCHER_SIMD_BLOCK_CORE_H_
#define MATCHCATCHER_SIMD_BLOCK_CORE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "simd/kernels_impl.h"

// Shared skeleton of the SSE4/AVX2 intersection kernels. Each vector TU
// instantiates BlockCore with an Ops policy providing:
//
//   static constexpr size_t kWidth;            // lanes per block
//   static size_t Matches(const uint32_t* a, const uint32_t* b);
//       // how many of a[0..kWidth) appear in b[0..kWidth)
//       // (both blocks strictly increasing)
//   static bool HasAdjacentDup(const uint32_t* p);
//       // any p[i] == p[i + 1] for i in [0, kWidth) — i.e. a duplicate run
//       // inside the block or crossing into its boundary element
//
// The skeleton implements the classic sorted-set block intersection: compare
// the two current blocks all-against-all (Matches), then advance whichever
// block has the smaller maximum (both on a tie). For strictly increasing
// inputs each value matches in exactly one partner block, so summing
// Matches() reproduces the merge count exactly.
//
// Inputs with duplicates would break the per-lane counting (a value present
// twice would match twice), so each iteration first screens both blocks —
// including the one element past the block, which catches runs crossing a
// block boundary — and routes a duplicate-laden stretch through the scalar
// merge for kWidth steps. That keeps every level's result equal to the
// scalar reference on *all* sorted inputs, not just sets, which is what the
// randomized property tests assert.
//
// The template is header-only on purpose: each vector TU compiles it with
// its own -m ISA flags; nothing here may be referenced from generic code.

namespace mc::simd::internal {

enum class BlockMode {
  kFull,     // exact count
  kCapped,   // exact while <= bound, else bound + 1
  kAtLeast,  // early-abandon via positional bound (sets *ok)
};

template <typename Ops, BlockMode kMode>
size_t BlockCore(const uint32_t* a, size_t len_a, const uint32_t* b,
                 size_t len_b, size_t bound, bool* ok) {
  constexpr size_t kW = Ops::kWidth;
  size_t i = 0, j = 0, count = 0;
  // The +1 keeps the duplicate screen's one-past-the-block load in bounds.
  while (i + kW + 1 <= len_a && j + kW + 1 <= len_b) {
    if constexpr (kMode == BlockMode::kAtLeast) {
      if (count + std::min(len_a - i, len_b - j) < bound) {
        *ok = false;
        return count;
      }
    }
    if (Ops::HasAdjacentDup(a + i) || Ops::HasAdjacentDup(b + j)) {
      count += ScalarOverlapResume(a, len_a, b, len_b, &i, &j, kW);
    } else {
      count += Ops::Matches(a + i, b + j);
      const uint32_t a_max = a[i + kW - 1];
      const uint32_t b_max = b[j + kW - 1];
      i += a_max <= b_max ? kW : 0;
      j += b_max <= a_max ? kW : 0;
    }
    if constexpr (kMode == BlockMode::kCapped) {
      if (count > bound) return bound + 1;
    }
  }
  // Scalar tail (also handles inputs shorter than one block).
  while (i < len_a && j < len_b) {
    if constexpr (kMode == BlockMode::kAtLeast) {
      if (count + std::min(len_a - i, len_b - j) < bound) {
        *ok = false;
        return count;
      }
    }
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    if (x == y) {
      ++count;
      if constexpr (kMode == BlockMode::kCapped) {
        if (count > bound) return count;  // count == bound + 1.
      }
    }
    i += x <= y;
    j += y <= x;
  }
  // kAtLeast: a side can exhaust before the positional bound fires; the
  // final count decides, keeping `true iff count >= bound` exact at all
  // levels (levels differ only in *where* they abandon, never the boolean).
  if constexpr (kMode == BlockMode::kAtLeast) *ok = count >= bound;
  return count;
}

template <typename Ops>
size_t BlockOverlap(const uint32_t* a, size_t len_a, const uint32_t* b,
                    size_t len_b) {
  return BlockCore<Ops, BlockMode::kFull>(a, len_a, b, len_b, 0, nullptr);
}

template <typename Ops>
size_t BlockOverlapCapped(const uint32_t* a, size_t len_a, const uint32_t* b,
                          size_t len_b, size_t limit) {
  return BlockCore<Ops, BlockMode::kCapped>(a, len_a, b, len_b, limit,
                                            nullptr);
}

template <typename Ops>
bool BlockOverlapAtLeast(const uint32_t* a, size_t len_a, const uint32_t* b,
                         size_t len_b, size_t required, size_t* overlap) {
  bool ok = false;
  const size_t count =
      BlockCore<Ops, BlockMode::kAtLeast>(a, len_a, b, len_b, required, &ok);
  if (!ok) return false;
  *overlap = count;
  return true;
}

}  // namespace mc::simd::internal

#endif  // MATCHCATCHER_SIMD_BLOCK_CORE_H_
