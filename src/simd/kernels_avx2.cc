// AVX2 variants of the intersection kernels. This TU (and only this TU) is
// compiled with -mavx2 — see src/CMakeLists.txt — so nothing here may be
// called before dispatch has confirmed CPU support (simd/kernels.cc gates on
// __builtin_cpu_supports("avx2")).

#include "simd/kernels_impl.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "simd/block_core.h"

namespace mc::simd::internal {
namespace {

struct Avx2Ops {
  static constexpr size_t kWidth = 8;

  // How many of a[0..8) appear in b[0..8): compare the a block against all
  // eight rotations of the b block (cross-lane rotations via
  // permutevar8x32) and OR the equality masks.
  static size_t Matches(const uint32_t* a, const uint32_t* b) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    __m256i hit = _mm256_cmpeq_epi32(va, vb);
    __m256i rot = vb;
    const __m256i shift_one = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    for (int r = 1; r < 8; ++r) {
      rot = _mm256_permutevar8x32_epi32(rot, shift_one);
      hit = _mm256_or_si256(hit, _mm256_cmpeq_epi32(va, rot));
    }
    return static_cast<size_t>(
        _mm_popcnt_u32(static_cast<uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(hit)))));
  }

  // Any adjacent equal pair within p[0..8]? One shifted compare covers the
  // block and its boundary into the next element.
  static bool HasAdjacentDup(const uint32_t* p) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 1));
    return _mm256_movemask_epi8(_mm256_cmpeq_epi32(v0, v1)) != 0;
  }
};

}  // namespace

const KernelTable* Avx2Kernels() {
  static const KernelTable table = {&BlockOverlap<Avx2Ops>,
                                    &BlockOverlapCapped<Avx2Ops>,
                                    &BlockOverlapAtLeast<Avx2Ops>};
  return &table;
}

}  // namespace mc::simd::internal

#else  // !defined(__AVX2__)

namespace mc::simd::internal {

const KernelTable* Avx2Kernels() { return nullptr; }

}  // namespace mc::simd::internal

#endif
