// SSE4 variants of the intersection kernels. This TU (and only this TU) is
// compiled with -msse4.2 — see src/CMakeLists.txt — so nothing here may be
// called before dispatch has confirmed CPU support (simd/kernels.cc gates on
// __builtin_cpu_supports("sse4.2")).

#include "simd/kernels_impl.h"

#if defined(__SSE4_2__)

#include <smmintrin.h>

#include "simd/block_core.h"

namespace mc::simd::internal {
namespace {

struct Sse4Ops {
  static constexpr size_t kWidth = 4;

  // How many of a[0..4) appear in b[0..4): compare the a block against all
  // four rotations of the b block and OR the equality masks — each a lane's
  // bit survives iff its value occurs anywhere in the b block.
  static size_t Matches(const uint32_t* a, const uint32_t* b) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    __m128i hit = _mm_cmpeq_epi32(va, vb);
    hit = _mm_or_si128(
        hit, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    hit = _mm_or_si128(
        hit, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    hit = _mm_or_si128(
        hit, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    return static_cast<size_t>(
        _mm_popcnt_u32(static_cast<uint32_t>(
            _mm_movemask_ps(_mm_castsi128_ps(hit)))));
  }

  // Any adjacent equal pair within p[0..4]? One shifted compare covers the
  // block and its boundary into the next element.
  static bool HasAdjacentDup(const uint32_t* p) {
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 1));
    return _mm_movemask_epi8(_mm_cmpeq_epi32(v0, v1)) != 0;
  }
};

}  // namespace

const KernelTable* Sse4Kernels() {
  static const KernelTable table = {&BlockOverlap<Sse4Ops>,
                                    &BlockOverlapCapped<Sse4Ops>,
                                    &BlockOverlapAtLeast<Sse4Ops>};
  return &table;
}

}  // namespace mc::simd::internal

#else  // !defined(__SSE4_2__)

namespace mc::simd::internal {

const KernelTable* Sse4Kernels() { return nullptr; }

}  // namespace mc::simd::internal

#endif
