#ifndef MATCHCATCHER_SIMD_KERNELS_IMPL_H_
#define MATCHCATCHER_SIMD_KERNELS_IMPL_H_

#include <cstddef>
#include <cstdint>

// Internal plumbing of the kernel plane (see kernels.h for the public
// contract). Each dispatch level fills a KernelTable; the SSE4/AVX2 tables
// live in their own translation units compiled with the matching -m flags,
// and expose null when the compiler lacks the ISA so dispatch degrades to
// scalar instead of failing the build.

namespace mc::simd::internal {

struct KernelTable {
  size_t (*overlap)(const uint32_t* a, size_t len_a, const uint32_t* b,
                    size_t len_b);
  size_t (*overlap_capped)(const uint32_t* a, size_t len_a, const uint32_t* b,
                           size_t len_b, size_t limit);
  bool (*overlap_at_least)(const uint32_t* a, size_t len_a, const uint32_t* b,
                           size_t len_b, size_t required, size_t* overlap);
};

/// One side this many times longer than the other diverts to the galloping
/// path (shared by every level; see GallopOverlapCapped).
inline constexpr size_t kGallopSkew = 32;

/// Greedy-merge count of the skewed case via galloping (exponential probe +
/// binary search) over the longer side. Matched elements of the long side
/// are consumed (search resumes past them), which reproduces the merge's
/// multiset semantics exactly — the property tests compare this against the
/// scalar merge on duplicate-laden inputs. Returns the exact count while
/// <= limit, else limit + 1. `len_a <= len_b` is the caller's job.
size_t GallopOverlapCapped(const uint32_t* a, size_t len_a, const uint32_t* b,
                           size_t len_b, size_t limit);

/// Scalar reference kernels (always available; also the tail loops of the
/// vector kernels).
size_t ScalarOverlap(const uint32_t* a, size_t len_a, const uint32_t* b,
                     size_t len_b);
size_t ScalarOverlapCapped(const uint32_t* a, size_t len_a, const uint32_t* b,
                           size_t len_b, size_t limit);
bool ScalarOverlapAtLeast(const uint32_t* a, size_t len_a, const uint32_t* b,
                          size_t len_b, size_t required, size_t* overlap);

/// Scalar merge over [i, len) resumption points, used by the vector kernels
/// to step past duplicate runs without losing exactness.
size_t ScalarOverlapResume(const uint32_t* a, size_t len_a, const uint32_t* b,
                           size_t len_b, size_t* i, size_t* j, size_t steps);

const KernelTable& ScalarKernels();

/// Vector tables, or nullptr when this binary was compiled without the ISA
/// (non-x86 target or a compiler missing -msse4.2 / -mavx2 support).
const KernelTable* Sse4Kernels();
const KernelTable* Avx2Kernels();

}  // namespace mc::simd::internal

#endif  // MATCHCATCHER_SIMD_KERNELS_IMPL_H_
