#ifndef MATCHCATCHER_SIMD_KERNELS_H_
#define MATCHCATCHER_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "text/similarity.h"

namespace mc::simd {

/// The similarity kernel plane: intersection kernels over the sorted uint32
/// rank spans that every post-tokenization stage operates on (TokenSpan /
/// CellSpan slices of the CSR arenas — see docs/algorithms.md §"SIMD kernel
/// dispatch"). Three implementations — portable scalar, SSE4, AVX2 — are
/// compiled into every binary; one is selected at first use from CPUID,
/// overridable with the MC_SIMD_LEVEL environment variable (scalar|sse4|avx2)
/// or SetSimdLevel() for tests and benches.
///
/// ## Contract (all levels, all kernels)
///
/// Inputs are ascending-sorted uint32 arrays. Every level returns the exact
/// same integers as the scalar reference — the greedy two-pointer merge count
/// (for ascending *sets* this is |A ∩ B|; arrays with duplicates are counted
/// with the merge's multiset semantics, min of the multiplicities). Because
/// every similarity in the system is derived from (|A|, |B|, overlap) via
/// SetSimilarityFromCounts, identical counts make every score, ranking, and
/// checksum bit-identical across dispatch levels (the determinism recipe of
/// the CSR-engine PRs; enforced by tests/simd_kernels_test.cc and the
/// cross-level checksum checks of bench/micro_kernels).
///
/// Skewed lengths (one side much longer) divert to a shared galloping search
/// that consumes matched elements, reproducing the merge count exactly; it is
/// the same code at every level, so skew never threatens cross-level
/// identity.

/// Dispatch levels, in ascending capability order.
enum class SimdLevel : int {
  kScalar = 0,
  kSse4 = 1,
  kAvx2 = 2,
};

/// "scalar", "sse4", or "avx2".
const char* SimdLevelName(SimdLevel level);

/// Highest level this binary + CPU supports (compile-time ISA availability
/// intersected with CPUID feature bits).
SimdLevel MaxSupportedSimdLevel();

/// The active level. Resolved once on first use: MC_SIMD_LEVEL when set
/// (clamped to MaxSupportedSimdLevel with a one-line stderr note), otherwise
/// MaxSupportedSimdLevel().
SimdLevel ActiveSimdLevel();

/// Overrides the active level (tests / benches). Returns false — leaving the
/// active level unchanged — when `level` exceeds MaxSupportedSimdLevel().
/// Not intended for use while other threads are inside kernels; the swap is
/// atomic, but a concurrent caller may still finish on the previous level.
bool SetSimdLevel(SimdLevel level);

/// Human-readable CPU capability summary ("sse4.2 avx2" style), recorded in
/// bench JSON so archived records say what hardware picked the level.
std::string SimdCpuFlags();

/// Non-owning sorted rank span, layout-compatible with the (pointer, length)
/// prefix of TokenSpan and CellSpan. The batch kernels take arrays of these.
struct RankSpan {
  const uint32_t* data = nullptr;
  uint32_t length = 0;

  size_t size() const { return length; }
};

/// Exact greedy-merge intersection count of a[0..len_a) and b[0..len_b).
size_t OverlapCount(const uint32_t* a, size_t len_a, const uint32_t* b,
                    size_t len_b);

/// Count-only early-exit variant for integer pruning tables: returns the
/// exact count while it is <= limit, and exactly limit + 1 as soon as the
/// count provably exceeds `limit`. This is what the QJoin probe's q-th
/// shared-token test and the required-overlap table consume — they only need
/// equality with values <= limit, so the kernel stops merging the moment the
/// answer is "more than limit".
size_t OverlapCountCapped(const uint32_t* a, size_t len_a, const uint32_t* b,
                          size_t len_b, size_t limit);

/// Bounded-overlap kernel for early-abandon scoring: returns true iff the
/// merge count is >= required, abandoning the merge as soon as even matching
/// every remaining token leaves the count below `required` (the positional
/// bound of the engine's SpanScoreAbove). On true, *overlap holds the exact
/// merge count. Because every similarity is monotone in the overlap for
/// fixed sizes, callers deriving `required` from a threshold may treat false
/// exactly as "the score is below the threshold". Levels may differ in
/// *where* they abandon (the bound is checked per SIMD block, not per
/// element), never in the returned boolean or count.
bool OverlapAtLeast(const uint32_t* a, size_t len_a, const uint32_t* b,
                    size_t len_b, size_t required, size_t* overlap);

/// Rank-span counterpart of the legacy string-vector OverlapSize in
/// text/similarity.h: the overlap of two tokenized cells without ever
/// materializing strings. Plane-attached callers use this (or the kernels
/// above directly); the string-vector versions remain only for
/// TextPlane::kLegacy.
inline size_t OverlapSize(RankSpan a, RankSpan b) {
  return OverlapCount(a.data, a.length, b.data, b.length);
}

/// Batched counts: overlaps[i] = OverlapCount(probe, candidates[i]). One
/// dispatch for the whole batch; the probe span stays cache-resident across
/// candidates.
void OverlapMany(RankSpan probe, const RankSpan* candidates, size_t count,
                 size_t* overlaps);

/// Batched scoring: scores[i] = SetSimilarityFromCounts(measure,
/// probe.size(), candidates[i].size(), overlap_i). The batch entry point the
/// brute-force rankers and the micro bench drive.
void ScoreMany(RankSpan probe, const RankSpan* candidates, size_t count,
               SetMeasure measure, double* scores);

}  // namespace mc::simd

#endif  // MATCHCATCHER_SIMD_KERNELS_H_
