#include "simd/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "simd/kernels_impl.h"

namespace mc::simd {

namespace internal {

size_t ScalarOverlap(const uint32_t* a, size_t len_a, const uint32_t* b,
                     size_t len_b) {
  // Branchless advance (see ssj/topk_join.cc): which pointer moves is
  // data-dependent and unpredictable, so `i += (x <= y)` beats an if/else
  // chain; only the (rare, predictable) match test stays a branch.
  size_t i = 0, j = 0, count = 0;
  while (i < len_a && j < len_b) {
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    count += x == y;
    i += x <= y;
    j += y <= x;
  }
  return count;
}

size_t ScalarOverlapCapped(const uint32_t* a, size_t len_a, const uint32_t* b,
                           size_t len_b, size_t limit) {
  size_t i = 0, j = 0, count = 0;
  while (i < len_a && j < len_b) {
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    if (x == y && ++count > limit) return count;  // count == limit + 1.
    i += x <= y;
    j += y <= x;
  }
  return count;
}

bool ScalarOverlapAtLeast(const uint32_t* a, size_t len_a, const uint32_t* b,
                          size_t len_b, size_t required, size_t* overlap) {
  size_t i = 0, j = 0, count = 0;
  while (i < len_a && j < len_b) {
    if (count + std::min(len_a - i, len_b - j) < required) return false;
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    count += x == y;
    i += x <= y;
    j += y <= x;
  }
  // One side exhausted before the positional bound fired: the final count
  // still decides, keeping `true iff count >= required` exact at all levels.
  if (count < required) return false;
  *overlap = count;
  return true;
}

size_t ScalarOverlapResume(const uint32_t* a, size_t len_a, const uint32_t* b,
                           size_t len_b, size_t* i, size_t* j, size_t steps) {
  size_t count = 0;
  while (steps-- > 0 && *i < len_a && *j < len_b) {
    const uint32_t x = a[*i];
    const uint32_t y = b[*j];
    count += x == y;
    *i += x <= y;
    *j += y <= x;
  }
  return count;
}

size_t GallopOverlapCapped(const uint32_t* a, size_t len_a, const uint32_t* b,
                           size_t len_b, size_t limit) {
  // Iterate the short side; gallop (exponential probe + binary search) for
  // each element in the long side's remainder. A matched long-side element
  // is consumed, which reproduces the greedy merge's multiset count
  // exactly: value v contributes min(multiplicity_a(v), multiplicity_b(v)).
  size_t count = 0;
  size_t j = 0;
  for (size_t i = 0; i < len_a && j < len_b; ++i) {
    const uint32_t x = a[i];
    if (b[j] < x) {
      size_t low = j;  // Invariant: b[low] < x.
      size_t step = 1;
      while (low + step < len_b && b[low + step] < x) {
        low += step;
        step <<= 1;
      }
      size_t high = std::min(low + step, len_b);  // b[high] >= x or == end.
      while (low + 1 < high) {
        const size_t mid = low + (high - low) / 2;
        if (b[mid] < x) {
          low = mid;
        } else {
          high = mid;
        }
      }
      j = high;
      if (j >= len_b) break;
    }
    if (b[j] == x) {
      ++j;
      if (++count > limit) return count;  // count == limit + 1.
    }
  }
  return count;
}

const KernelTable& ScalarKernels() {
  static const KernelTable table = {&ScalarOverlap, &ScalarOverlapCapped,
                                    &ScalarOverlapAtLeast};
  return table;
}

}  // namespace internal

namespace {

using internal::KernelTable;

#if defined(__x86_64__) || defined(__i386__)
bool CpuHasSse4() { return __builtin_cpu_supports("sse4.2"); }
bool CpuHasAvx2() { return __builtin_cpu_supports("avx2"); }
#else
bool CpuHasSse4() { return false; }
bool CpuHasAvx2() { return false; }
#endif

// The active dispatch state: one pointer so level and table can never be
// observed torn.
struct ActiveState {
  SimdLevel level;
  const KernelTable* table;
};

const ActiveState* StateFor(SimdLevel level) {
  static const ActiveState states[3] = {
      {SimdLevel::kScalar, &internal::ScalarKernels()},
      {SimdLevel::kSse4, internal::Sse4Kernels()},
      {SimdLevel::kAvx2, internal::Avx2Kernels()},
  };
  return &states[static_cast<int>(level)];
}

bool LevelUsable(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSse4:
      return StateFor(SimdLevel::kSse4)->table != nullptr && CpuHasSse4();
    case SimdLevel::kAvx2:
      return StateFor(SimdLevel::kAvx2)->table != nullptr && CpuHasAvx2();
  }
  return false;
}

// Parses MC_SIMD_LEVEL; returns false when unset or unrecognized (an
// unrecognized value gets a one-line note and auto dispatch, so a typo'd
// override degrades loudly instead of silently pinning scalar).
bool ParseEnvLevel(SimdLevel* level) {
  const char* value = std::getenv("MC_SIMD_LEVEL");
  if (value == nullptr || *value == '\0') return false;
  if (std::strcmp(value, "scalar") == 0) {
    *level = SimdLevel::kScalar;
  } else if (std::strcmp(value, "sse4") == 0) {
    *level = SimdLevel::kSse4;
  } else if (std::strcmp(value, "avx2") == 0) {
    *level = SimdLevel::kAvx2;
  } else {
    std::fprintf(stderr,
                 "matchcatcher: ignoring unrecognized MC_SIMD_LEVEL='%s' "
                 "(expected scalar|sse4|avx2)\n",
                 value);
    return false;
  }
  return true;
}

std::atomic<const ActiveState*> g_active{nullptr};

const ActiveState* Resolve() {
  SimdLevel level = MaxSupportedSimdLevel();
  SimdLevel requested;
  if (ParseEnvLevel(&requested)) {
    if (LevelUsable(requested)) {
      level = requested;
    } else {
      std::fprintf(stderr,
                   "matchcatcher: MC_SIMD_LEVEL=%s unsupported on this "
                   "CPU/build; using %s\n",
                   SimdLevelName(requested), SimdLevelName(level));
    }
  }
  return StateFor(level);
}

const ActiveState* Active() {
  const ActiveState* state = g_active.load(std::memory_order_acquire);
  if (state == nullptr) {
    // Benign race: concurrent first calls resolve to the same state.
    state = Resolve();
    g_active.store(state, std::memory_order_release);
  }
  return state;
}

// Shared front door of the count kernels: empty/ordering normalization and
// the skew cut-over to the (level-independent) galloping path, so every
// level sees only the balanced case. `limit >= min(len_a, len_b)` never
// triggers, making the capped kernel double as the exact one.
inline size_t CountWith(const KernelTable& table, const uint32_t* a,
                        size_t len_a, const uint32_t* b, size_t len_b) {
  if (len_a > len_b) {
    std::swap(a, b);
    std::swap(len_a, len_b);
  }
  if (len_a == 0) return 0;
  if (len_b / len_a >= internal::kGallopSkew) {
    return internal::GallopOverlapCapped(a, len_a, b, len_b, len_a);
  }
  return table.overlap(a, len_a, b, len_b);
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse4:
      return "sse4";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel MaxSupportedSimdLevel() {
  if (LevelUsable(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  if (LevelUsable(SimdLevel::kSse4)) return SimdLevel::kSse4;
  return SimdLevel::kScalar;
}

SimdLevel ActiveSimdLevel() { return Active()->level; }

bool SetSimdLevel(SimdLevel level) {
  if (!LevelUsable(level)) return false;
  g_active.store(StateFor(level), std::memory_order_release);
  return true;
}

std::string SimdCpuFlags() {
  std::string flags;
  auto add = [&](const char* flag) {
    if (!flags.empty()) flags += ' ';
    flags += flag;
  };
  if (CpuHasSse4()) add("sse4.2");
  if (CpuHasAvx2()) add("avx2");
  if (flags.empty()) flags = "none";
  return flags;
}

size_t OverlapCount(const uint32_t* a, size_t len_a, const uint32_t* b,
                    size_t len_b) {
  return CountWith(*Active()->table, a, len_a, b, len_b);
}

size_t OverlapCountCapped(const uint32_t* a, size_t len_a, const uint32_t* b,
                          size_t len_b, size_t limit) {
  if (len_a > len_b) {
    std::swap(a, b);
    std::swap(len_a, len_b);
  }
  if (len_a == 0) return 0;
  if (len_a <= limit) {
    // The cap can never trigger; the plain kernel avoids its checks.
    return CountWith(*Active()->table, a, len_a, b, len_b);
  }
  if (len_b / len_a >= internal::kGallopSkew) {
    return internal::GallopOverlapCapped(a, len_a, b, len_b, limit);
  }
  return Active()->table->overlap_capped(a, len_a, b, len_b, limit);
}

bool OverlapAtLeast(const uint32_t* a, size_t len_a, const uint32_t* b,
                    size_t len_b, size_t required, size_t* overlap) {
  if (len_a > len_b) {
    std::swap(a, b);
    std::swap(len_a, len_b);
  }
  if (required > len_a) return false;  // Even full containment falls short.
  if (len_a == 0) {
    *overlap = 0;
    return true;  // required == 0.
  }
  if (len_b / len_a >= internal::kGallopSkew) {
    const size_t count =
        internal::GallopOverlapCapped(a, len_a, b, len_b, len_a);
    if (count < required) return false;
    *overlap = count;
    return true;
  }
  return Active()->table->overlap_at_least(a, len_a, b, len_b, required,
                                           overlap);
}

void OverlapMany(RankSpan probe, const RankSpan* candidates, size_t count,
                 size_t* overlaps) {
  const KernelTable& table = *Active()->table;
  for (size_t i = 0; i < count; ++i) {
    overlaps[i] = CountWith(table, probe.data, probe.length,
                            candidates[i].data, candidates[i].length);
  }
}

void ScoreMany(RankSpan probe, const RankSpan* candidates, size_t count,
               SetMeasure measure, double* scores) {
  const KernelTable& table = *Active()->table;
  for (size_t i = 0; i < count; ++i) {
    const size_t overlap = CountWith(table, probe.data, probe.length,
                                     candidates[i].data, candidates[i].length);
    scores[i] = SetSimilarityFromCounts(measure, probe.size(),
                                        candidates[i].size(), overlap);
  }
}

}  // namespace mc::simd
