// §6.5 sensitivity: the effect of k (pairs retrieved per config).
//
// The paper: increasing k retrieves more true matches but only up to a
// point, at the cost of higher runtime. We sweep k and report M_E and the
// top-k module's time.

#include <iostream>

#include "bench_common.h"
#include "core/match_catcher.h"
#include "paper_blockers.h"

namespace mc {
namespace bench {
namespace {

void Sweep(const std::string& name, const std::string& blocker_label) {
  datagen::GeneratedDataset dataset = LoadDataset(name);
  std::shared_ptr<const Blocker> blocker;
  for (const PaperBlocker& paper_blocker :
       PaperBlockersFor(name, dataset.table_a.schema())) {
    if (paper_blocker.label == blocker_label) blocker = paper_blocker.blocker;
  }
  MC_CHECK(blocker != nullptr);
  CandidateSet c = blocker->Run(dataset.table_a, dataset.table_b);

  std::cout << name << "/" << blocker_label << "\n"
            << Cell("k", 7) << Cell("|E|", 8) << Cell("ME", 7)
            << Cell("topk_s", 9) << "\n";
  for (size_t k : {100u, 250u, 500u, 1000u, 2000u}) {
    MatchCatcherOptions options;
    options.joint.k = k;
    options.joint.num_threads = EnvThreads();
    options.joint.q = EnvQ();
    Result<DebugSession> session =
        DebugSession::Create(dataset.table_a, dataset.table_b, c, options);
    MC_CHECK(session.ok()) << session.status().ToString();
    size_t matches_in_e = 0;
    for (PairId pair : session->CandidatePairs()) {
      if (dataset.gold.Contains(pair)) ++matches_in_e;
    }
    std::cout << Cell(k, 7) << Cell(session->CandidatePairs().size(), 8)
              << Cell(matches_in_e, 7)
              << Cell(session->topk_seconds(), 9, 2) << "\n";
  }
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace mc

int main() {
  std::cout << "=== Sensitivity (§6.5): k per config ===\n\n";
  mc::bench::Sweep("A-G", "HASH");
  mc::bench::Sweep("A-D", "R2");
  mc::bench::Sweep("M1", "HASH");
  std::cout << "(paper: M_E grows with k only up to a point, at higher "
               "runtime)\n";
  return 0;
}
