// §6.2 "Hash Blockers": debugging the best manual hash blockers.
//
// A well-trained user built the best hash blocker they could per dataset;
// MatchCatcher then surfaced its killed-off matches, and the user revised
// the blocker (similarity / edit-distance rules for the problems found).
// We reproduce the protocol: recall of the best hash blocker, the number of
// killed matches MatchCatcher surfaces, and recall after the scripted
// revision. For datasets where the hash blocker already reaches 100% recall
// (A-D, M1 in both the paper and here), debugging terminates early with
// nothing found.

#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "blocking/metrics.h"
#include "core/match_catcher.h"
#include "paper_blockers.h"

namespace mc {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  datagen::GeneratedDataset dataset = LoadDataset(name);
  const Schema& schema = dataset.table_a.schema();

  std::shared_ptr<const Blocker> hash = BestHashBlockerFor(name, schema);
  CandidateSet c = hash->Run(dataset.table_a, dataset.table_b);
  BlockerMetrics before =
      EvaluateBlocking(c, dataset.gold, dataset.table_a.num_rows(),
                       dataset.table_b.num_rows());

  MatchCatcherOptions options;
  options.joint.k = 1000;
  options.joint.num_threads = EnvThreads();
  options.joint.q = EnvQ();
  Result<DebugSession> session =
      DebugSession::Create(dataset.table_a, dataset.table_b, c, options);
  MC_CHECK(session.ok()) << session.status().ToString();
  GoldOracle oracle(&dataset.gold);
  VerifierResult verification = session->RunVerification(oracle);

  std::shared_ptr<const Blocker> improved =
      ImprovedBlockerFor(name, schema);
  CandidateSet c2 = improved->Run(dataset.table_a, dataset.table_b);
  BlockerMetrics after =
      EvaluateBlocking(c2, dataset.gold, dataset.table_a.num_rows(),
                       dataset.table_b.num_rows());

  std::cout << Cell(name, 6) << Cell(before.recall * 100, 10, 1)
            << Cell(before.killed_matches, 9)
            << Cell(verification.confirmed_matches.size(), 12)
            << Cell(verification.num_iterations(), 7)
            << Cell(after.recall * 100, 10, 1) << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace mc

int main() {
  std::cout << "=== Section 6.2: debugging the best manual hash blockers "
               "===\n"
            << mc::bench::Cell("data", 6) << mc::bench::Cell("recall%", 10)
            << mc::bench::Cell("killed", 9) << mc::bench::Cell("surfaced", 12)
            << mc::bench::Cell("iters", 7)
            << mc::bench::Cell("after%", 10) << "\n";
  for (const char* name : {"A-G", "W-A", "A-D", "F-Z", "M1"}) {
    mc::bench::RunDataset(name);
  }
  std::cout << "\n(paper: A-G 75.6->99.7, W-A 95.1->99.6, F-Z 97.3->100; "
               "A-D and M1 start at 100%\nand debugging terminates early — "
               "the same qualitative picture as above)\n";
  return 0;
}
