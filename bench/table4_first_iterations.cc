// Table 4: accuracy and explanations for the first 3 verifier iterations.
//
// The paper asked volunteers to label the first three iterations (7-10
// minutes) and write down the blocker problems they spotted. Our synthetic
// user labels from gold, and the "problems" column aggregates the injected
// corruption tags of the matches that surfaced — the same information a
// human reads off the pair explanations (printed for the first match).

#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/match_catcher.h"
#include "explain/summary.h"
#include "paper_blockers.h"

namespace mc {
namespace bench {
namespace {

void RunCase(const std::string& dataset_name, const std::string& blocker_label) {
  datagen::GeneratedDataset dataset = LoadDataset(dataset_name);
  std::shared_ptr<const Blocker> blocker;
  for (const PaperBlocker& paper_blocker :
       PaperBlockersFor(dataset_name, dataset.table_a.schema())) {
    if (paper_blocker.label == blocker_label) blocker = paper_blocker.blocker;
  }
  MC_CHECK(blocker != nullptr) << "unknown blocker" << blocker_label;
  CandidateSet c = blocker->Run(dataset.table_a, dataset.table_b);

  MatchCatcherOptions options;
  options.joint.k = 1000;
  options.joint.num_threads = EnvThreads();
  options.joint.q = EnvQ();
  Result<DebugSession> session =
      DebugSession::Create(dataset.table_a, dataset.table_b, c, options);
  MC_CHECK(session.ok()) << session.status().ToString();

  GoldOracle oracle(&dataset.gold);
  MatchVerifier verifier = session->MakeVerifier();
  VerifierResult result = verifier.RunIterations(oracle, 3);

  std::cout << "--- " << blocker_label << " (" << dataset.name << "): "
            << result.confirmed_matches.size() << " matches in 3 iterations ("
            << result.pairs_shown << " pairs examined)\n    problems: ";
  std::map<std::string, size_t> problems;
  for (PairId pair : result.confirmed_matches) {
    auto it = dataset.problem_tags.find(pair);
    if (it == dataset.problem_tags.end()) continue;
    for (const std::string& tag : it->second) ++problems[tag];
  }
  bool first = true;
  for (const auto& [tag, count] : problems) {
    if (!first) std::cout << "; ";
    std::cout << tag << " (" << count << ")";
    first = false;
  }
  if (problems.empty()) std::cout << "(none surfaced)";
  std::cout << "\n";
  // The automatic explanation summary (§8 extension) — derived purely from
  // the data, to compare against the injected ground truth above.
  std::vector<PairId> confirmed(result.confirmed_matches.begin(),
                                result.confirmed_matches.end());
  std::vector<ProblemGroup> groups = session->SummarizeProblems(confirmed);
  std::cout << "    auto-diagnosis:";
  size_t shown_groups = 0;
  for (const ProblemGroup& group : groups) {
    if (shown_groups++ == 5) break;
    std::cout << " "
              << dataset.table_a.schema().attribute(group.column).name << "/"
              << ProblemKindName(group.kind) << " (" << group.count() << ");";
  }
  std::cout << "\n";
  // One worked explanation, as the user would see it.
  for (PairId pair : result.confirmed_matches) {
    std::cout << "    example:\n";
    std::string explanation = session->ExplainPair(pair);
    // Indent.
    size_t start = 0;
    while (start < explanation.size()) {
      size_t end = explanation.find('\n', start);
      if (end == std::string::npos) end = explanation.size();
      std::cout << "      " << explanation.substr(start, end - start)
                << "\n";
      start = end + 1;
    }
    break;
  }
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace mc

int main() {
  std::cout << "=== Table 4: first three iterations — matches found and "
               "blocker problems ===\n\n";
  mc::bench::RunCase("A-G", "OL");
  mc::bench::RunCase("W-A", "HASH");
  mc::bench::RunCase("A-D", "SIM");
  mc::bench::RunCase("F-Z", "R");
  mc::bench::RunCase("M1", "R");
  return 0;
}
