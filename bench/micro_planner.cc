// Planner-vs-race ablation benchmark: the cost-based join planner
// (src/ssj/join_planner.h) against the legacy empirical q race
// (SelectQByRace, paper §4.1), each measured END TO END — plan selection
// plus the full top-k join the selection feeds. The race pays for full
// probe joins at every candidate q and throws the losers away; the planner
// pays for systematic-sample probes at a fraction of the table and keeps
// everything it learns (q, shard hint, hybrid prefilter threshold).
//
// Output equality is enforced, not just reported: the run aborts (exit 1)
// unless the planner path's top-k checksum matches both the race path's
// (identical_to_race — the two strategies picked plans with identical
// output on this workload) and a direct un-prefiltered run of the planner's
// own plan (identical_to_direct — the structural bit-identity contract of
// TopKJoinOptions::prefilter_threshold). The workload is sized so the top-k
// boundary pairs share at least max_q tokens, making the result q-invariant
// — without that, race and planner could legitimately pick different q with
// different (both correct) q-restricted answers.
//
// Besides the interactive google-benchmark mode, `--json=PATH` emits the
// machine-readable record archived in bench/BENCH_planner.json and checked
// by tools/validate_bench_json.py. Knobs: --scale=F (default 0.05),
// --reps=N (default 5), --k=N (default 100), --engine=LABEL.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "datagen/generator.h"
#include "simd/kernels.h"
#include "ssj/corpus.h"
#include "ssj/join_planner.h"
#include "ssj/topk_join.h"
#include "util/crc32.h"
#include "util/stopwatch.h"

namespace mc {
namespace {

const SsjCorpus& MusicCorpus(double scale = 0.05) {
  static const SsjCorpus& corpus = *[scale] {
    datagen::GeneratedDataset dataset = datagen::GenerateMusic(
        datagen::ScaleDims(datagen::kDimsMusic1, scale));
    std::vector<size_t> columns;
    for (size_t c = 0; c < dataset.table_a.schema().size(); ++c) {
      columns.push_back(c);
    }
    return new SsjCorpus(
        SsjCorpus::Build(dataset.table_a, dataset.table_b, columns));
  }();
  return corpus;
}

void BM_PlanTopKJoin(benchmark::State& state) {
  const SsjCorpus& corpus = MusicCorpus();
  ConfigView view = corpus.MakeConfigView(0xFF);
  PlannerOptions options;
  options.k = 100;
  options.seed = 42;
  for (auto _ : state) {
    JoinPlan plan = PlanTopKJoin(corpus, view, options);
    benchmark::DoNotOptimize(plan.q);
  }
}
BENCHMARK(BM_PlanTopKJoin);

void BM_SelectQByRace(benchmark::State& state) {
  const SsjCorpus& corpus = MusicCorpus();
  ConfigView view = corpus.MakeConfigView(0xFF);
  for (auto _ : state) {
    size_t q = SelectQByRace(view, SetMeasure::kJaccard, nullptr);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_SelectQByRace);

// --------------------------------------------------------------------------
// Machine-readable perf record (--json mode).
// --------------------------------------------------------------------------

uint32_t TopKChecksum(const TopKList& list) {
  uint32_t crc = 0;
  for (const ScoredPair& entry : list.SortedDescending()) {
    crc = Crc32(&entry.pair, sizeof(entry.pair), crc);
    crc = Crc32(&entry.score, sizeof(entry.score), crc);
  }
  return crc;
}

struct JsonBenchConfig {
  std::string path;
  std::string engine = "unspecified";
  double scale = 0.05;
  size_t reps = 5;
  size_t k = 100;
};

// One end-to-end path: selection seconds + join seconds, best-of-reps on
// the total.
struct PathResult {
  size_t q = 1;
  size_t shards = 1;
  bool hybrid = false;
  double select_seconds = 0.0;  // At the best-total repetition.
  double join_seconds = 0.0;
  double best_seconds = 0.0;
  double mean_seconds = 0.0;
  size_t pairs = 0;
  uint32_t checksum = 0;
};

PathResult TimeRacePath(const ConfigView& view, const JsonBenchConfig& config) {
  PathResult result;
  double total = 0.0;
  for (size_t rep = 0; rep < config.reps; ++rep) {
    Stopwatch select_watch;
    const size_t q = SelectQByRace(view, SetMeasure::kJaccard, nullptr);
    const double select_seconds = select_watch.ElapsedSeconds();
    TopKJoinOptions options;
    options.k = config.k;
    options.q = q;
    Stopwatch join_watch;
    TopKList list = RunTopKJoin(view, options);
    const double join_seconds = join_watch.ElapsedSeconds();
    const double seconds = select_seconds + join_seconds;
    total += seconds;
    if (rep == 0 || seconds < result.best_seconds) {
      result.best_seconds = seconds;
      result.select_seconds = select_seconds;
      result.join_seconds = join_seconds;
    }
    result.q = q;
    result.pairs = list.size();
    result.checksum = TopKChecksum(list);
  }
  result.mean_seconds = total / static_cast<double>(config.reps);
  return result;
}

PathResult TimePlannerPath(const SsjCorpus& corpus, const ConfigView& view,
                           const JsonBenchConfig& config, JoinPlan* plan_out) {
  PathResult result;
  double total = 0.0;
  for (size_t rep = 0; rep < config.reps; ++rep) {
    PlannerOptions planner_options;
    planner_options.k = config.k;
    planner_options.seed = 42;
    Stopwatch select_watch;
    const JoinPlan plan = PlanTopKJoin(corpus, view, planner_options);
    const double select_seconds = select_watch.ElapsedSeconds();
    TopKJoinOptions options;
    options.k = config.k;
    options.q = plan.q;
    options.shards = plan.shards;
    if (plan.hybrid) options.prefilter_threshold = plan.prefilter_threshold;
    Stopwatch join_watch;
    TopKList list = RunTopKJoin(view, options);
    const double join_seconds = join_watch.ElapsedSeconds();
    const double seconds = select_seconds + join_seconds;
    total += seconds;
    if (rep == 0 || seconds < result.best_seconds) {
      result.best_seconds = seconds;
      result.select_seconds = select_seconds;
      result.join_seconds = join_seconds;
    }
    result.q = plan.q;
    result.shards = plan.shards;
    result.hybrid = plan.hybrid;
    result.pairs = list.size();
    result.checksum = TopKChecksum(list);
    *plan_out = plan;
  }
  result.mean_seconds = total / static_cast<double>(config.reps);
  return result;
}

int RunJsonBench(const JsonBenchConfig& config) {
  datagen::GeneratedDataset dataset = datagen::GenerateMusic(
      datagen::ScaleDims(datagen::kDimsMusic1, config.scale));
  std::vector<size_t> columns;
  for (size_t c = 0; c < dataset.table_a.schema().size(); ++c) {
    columns.push_back(c);
  }
  SsjCorpus corpus =
      SsjCorpus::Build(dataset.table_a, dataset.table_b, columns);
  ConfigView view = corpus.MakeConfigView(0xFF);

  const PathResult race = TimeRacePath(view, config);
  JoinPlan plan;
  const PathResult planner = TimePlannerPath(corpus, view, config, &plan);

  // The structural contract: the planner's chosen plan, run directly with
  // the hybrid prefilter off, is bit-identical to the planner path.
  TopKJoinOptions direct_options;
  direct_options.k = config.k;
  direct_options.q = plan.q;
  direct_options.shards = plan.shards;
  const uint32_t checksum_direct =
      TopKChecksum(RunTopKJoin(view, direct_options));

  const bool identical_to_direct = planner.checksum == checksum_direct;
  const bool identical_to_race = planner.checksum == race.checksum;
  const double speedup = planner.best_seconds > 0.0
                             ? race.best_seconds / planner.best_seconds
                             : 0.0;

  std::ofstream out(config.path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", config.path.c_str());
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.KV("schema_version", uint64_t{1});
  json.KV("benchmark", "micro_planner");
  json.KV("engine", config.engine);
  json.Key("workload");
  json.BeginObject();
  // Machine context: every record names the core budget and the SIMD level
  // it ran under, so archived numbers are comparable across runners.
  json.KV("cpu_cores",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.KV("simd_level", simd::SimdLevelName(simd::ActiveSimdLevel()));
  json.KV("dataset", "music");
  json.KV("scale", config.scale);
  json.KV("rows_a", uint64_t{dataset.table_a.num_rows()});
  json.KV("rows_b", uint64_t{dataset.table_b.num_rows()});
  json.KV("config_mask", uint64_t{0xFF});
  json.KV("measure", "jaccard");
  json.KV("k", uint64_t{config.k});
  json.KV("repetitions", uint64_t{config.reps});
  json.EndObject();
  json.Key("results");
  json.BeginArray();
  auto emit_path = [&](const char* name, const PathResult& path) {
    json.BeginObject();
    json.KV("name", name);
    json.KV("q", uint64_t{path.q});
    json.KV("shards", uint64_t{path.shards});
    json.KV("hybrid", path.hybrid);
    json.KV("select_seconds", path.select_seconds);
    json.KV("join_seconds", path.join_seconds);
    json.KV("best_seconds", path.best_seconds);
    json.KV("mean_seconds", path.mean_seconds);
    json.KV("pairs", uint64_t{path.pairs});
    char checksum[16];
    std::snprintf(checksum, sizeof(checksum), "%08x", path.checksum);
    json.KV("topk_checksum", checksum);
    json.EndObject();
  };
  emit_path("race_path", race);
  emit_path("planner_path", planner);
  json.EndArray();
  json.Key("comparison");
  json.BeginObject();
  json.KV("speedup", speedup);
  json.KV("identical_to_race", identical_to_race);
  json.KV("identical_to_direct", identical_to_direct);
  json.KV("race_q", uint64_t{race.q});
  json.KV("planner_q", uint64_t{plan.q});
  json.KV("planner_hybrid", plan.hybrid);
  json.KV("planner_tau", plan.prefilter_threshold);
  json.KV("planner_sample_rate", uint64_t{plan.sample_rate});
  json.KV("planner_sample_rows", uint64_t{plan.sample_rows});
  json.KV("planner_seed", uint64_t{plan.seed});
  json.EndObject();
  json.EndObject();
  out << "\n";
  std::printf(
      "wrote %s\n  race:    q=%zu %.4fs (select %.4fs + join %.4fs)\n"
      "  planner: q=%zu %.4fs (plan %.4fs + join %.4fs) hybrid=%d\n"
      "  speedup %.2fx identical_to_race=%d identical_to_direct=%d\n",
      config.path.c_str(), race.q, race.best_seconds, race.select_seconds,
      race.join_seconds, planner.q, planner.best_seconds,
      planner.select_seconds, planner.join_seconds, planner.hybrid ? 1 : 0,
      speedup, identical_to_race ? 1 : 0, identical_to_direct ? 1 : 0);
  if (!identical_to_direct) {
    std::fprintf(stderr,
                 "FATAL: planner path output differs from a direct run of "
                 "its own plan — the bit-identity contract is broken\n");
    return 1;
  }
  if (!identical_to_race) {
    std::fprintf(stderr,
                 "FATAL: planner and race outputs differ on the q-invariant "
                 "workload (race q=%zu, planner q=%zu)\n",
                 race.q, plan.q);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mc

int main(int argc, char** argv) {
  mc::JsonBenchConfig config;
  bool json_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--json=")) {
      json_mode = true;
      config.path = v;
    } else if (const char* v = value_of("--engine=")) {
      config.engine = v;
    } else if (const char* v = value_of("--scale=")) {
      config.scale = std::atof(v);
    } else if (const char* v = value_of("--reps=")) {
      config.reps = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--k=")) {
      config.k = static_cast<size_t>(std::atoll(v));
    }
  }
  if (json_mode) return mc::RunJsonBench(config);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
