// Figure 9: runtime of the top-k module as table size grows.
//
// The paper varies M2 and Papers over 10/40/70/100% of their full size and
// plots top-k runtime for three blockers each, at k = 100 and k = 1000,
// showing linear-to-sublinear scaling. We sweep the same fractions of the
// bench-scaled datasets and print the series.

#include <iostream>

#include "bench_common.h"
#include "core/match_catcher.h"
#include "paper_blockers.h"

namespace mc {
namespace bench {
namespace {

void Sweep(const std::string& name,
           const std::vector<std::string>& blocker_labels, size_t k) {
  std::cout << name << ", k=" << k << "\n"
            << Cell("size", 7) << Cell("|A|", 9) << Cell("|B|", 9);
  for (const std::string& label : blocker_labels) {
    std::cout << Cell(label + "_s", 10);
  }
  std::cout << "\n";

  const double base = DefaultDatasetScale(name) * EnvScale();
  for (double fraction : {0.1, 0.4, 0.7, 1.0}) {
    Result<datagen::GeneratedDataset> generated =
        datagen::GenerateByName(name, base * fraction);
    MC_CHECK(generated.ok()) << generated.status().ToString();
    const datagen::GeneratedDataset& dataset = generated.value();

    std::cout << Cell(std::to_string(static_cast<int>(fraction * 100)) + "%",
                      7)
              << Cell(dataset.table_a.num_rows(), 9)
              << Cell(dataset.table_b.num_rows(), 9);
    std::vector<PaperBlocker> blockers =
        PaperBlockersFor(name, dataset.table_a.schema());
    for (const std::string& label : blocker_labels) {
      std::shared_ptr<const Blocker> blocker;
      for (const PaperBlocker& paper_blocker : blockers) {
        if (paper_blocker.label == label) blocker = paper_blocker.blocker;
      }
      MC_CHECK(blocker != nullptr);
      CandidateSet c = blocker->Run(dataset.table_a, dataset.table_b);
      MatchCatcherOptions options;
      options.joint.k = k;
      options.joint.num_threads = EnvThreads();
      options.joint.q = EnvQ();
      Result<DebugSession> session =
          DebugSession::Create(dataset.table_a, dataset.table_b, c, options);
      MC_CHECK(session.ok()) << session.status().ToString();
      std::cout << Cell(session->topk_seconds(), 10, 2) << std::flush;
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace mc

int main() {
  std::cout << "=== Figure 9: top-k module runtime vs table size ===\n\n";
  mc::bench::Sweep("M2", {"HASH1", "HASH2", "SIM1"}, 100);
  mc::bench::Sweep("M2", {"HASH1", "HASH2", "SIM1"}, 1000);
  mc::bench::Sweep("Papers", {"R1", "R2", "R3"}, 100);
  mc::bench::Sweep("Papers", {"R1", "R2", "R3"}, 1000);
  std::cout << "(expect linear-to-sublinear growth in table size, and "
               "k=1000 above k=100, as in the paper)\n";
  return 0;
}
