// §6.5 ablation: joint top-k processing across configs vs executing every
// config independently.
//
// Joint execution reuses (a) similarity-score computations through the
// shared overlap cache and (b) top-k lists from parent to child configs;
// the paper reports up to 3.5x over per-config independent execution. We
// time both modes on the same corpus. (On a single-core host the "one
// config per core" parallelism contributes nothing; what is measured here
// is the computation-reuse component.)

#include <iostream>

#include "bench_common.h"
#include "config/config_generator.h"
#include "joint/joint_executor.h"
#include "paper_blockers.h"
#include "ssj/corpus.h"
#include "table/profile.h"
#include "util/stopwatch.h"

namespace mc {
namespace bench {
namespace {

void RunDataset(const std::string& name, const std::string& blocker_label) {
  datagen::GeneratedDataset dataset = LoadDataset(name);
  Table table_a = dataset.table_a;
  Table table_b = dataset.table_b;
  table_a.SetSchema(InferAttributeTypes(table_a));
  table_b.SetSchema(table_a.schema());

  std::shared_ptr<const Blocker> blocker;
  for (const PaperBlocker& paper_blocker :
       PaperBlockersFor(name, table_a.schema())) {
    if (paper_blocker.label == blocker_label) blocker = paper_blocker.blocker;
  }
  MC_CHECK(blocker != nullptr);
  CandidateSet c = blocker->Run(table_a, table_b);

  Result<PromisingAttributes> attributes =
      SelectPromisingAttributes(table_a, table_b);
  MC_CHECK(attributes.ok()) << attributes.status().ToString();
  SsjCorpus corpus = SsjCorpus::Build(table_a, table_b, attributes->columns);
  ConfigTree tree = GenerateConfigTree(*attributes);

  double joint_seconds = 0.0, independent_seconds = 0.0;
  size_t cache_hits = 0, seeded = 0;
  for (bool reuse : {true, false}) {
    JointOptions options;
    options.k = 1000;
    options.q = EnvQ();
    options.num_threads = EnvThreads();
    options.exclude = &c;
    options.reuse_overlaps = reuse;
    options.reuse_topk = reuse;
    // Joint mode uses the paper's t = 20 trigger: overlap reuse activates
    // only for long tuples (short-tuple datasets would pay more for cache
    // lookups than the saved merges — the reason the trigger exists).
    options.reuse_min_avg_tokens = reuse ? 20.0 : 1e18;
    Stopwatch watch;
    JointResult result = RunJointTopKJoins(corpus, tree, options);
    double seconds = watch.ElapsedSeconds();
    if (reuse) {
      joint_seconds = seconds;
      for (const ConfigJoinResult& config : result.per_config) {
        cache_hits += config.cache_hits;
        seeded += config.seeded_from_parent ? 1 : 0;
      }
    } else {
      independent_seconds = seconds;
    }
  }
  std::cout << Cell(name + "/" + blocker_label, 12)
            << Cell(tree.size(), 9) << Cell(independent_seconds, 12, 2)
            << Cell(joint_seconds, 10, 2)
            << Cell(independent_seconds / std::max(joint_seconds, 1e-9), 9,
                    2)
            << Cell(cache_hits, 11) << Cell(seeded, 8) << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace mc

int main() {
  std::cout << "=== Ablation (§6.5): joint vs independent config execution "
               "===\n"
            << mc::bench::Cell("case", 12) << mc::bench::Cell("configs", 9)
            << mc::bench::Cell("indep_s", 12) << mc::bench::Cell("joint_s", 10)
            << mc::bench::Cell("speedup", 9)
            << mc::bench::Cell("cache_hits", 11)
            << mc::bench::Cell("seeded", 8) << "\n";
  mc::bench::RunDataset("A-G", "HASH");
  mc::bench::RunDataset("A-D", "SIM");
  mc::bench::RunDataset("F-Z", "HASH");
  mc::bench::RunDataset("M1", "HASH");
  mc::bench::RunDataset("Papers", "R2");
  std::cout << "\n(paper: joint processing outperforms independent "
               "execution by up to 3.5x; on this single-core host only the "
               "computation-reuse share of that gain is visible)\n";
  return 0;
}
