#include "bench_json.h"

#include <cstdio>

namespace mc {
namespace bench {

void JsonWriter::BeforeValue() {
  if (!needs_comma_.empty() && needs_comma_.back()) out_ << ',';
  if (!needs_comma_.empty()) needs_comma_.back() = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ << '{';
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  needs_comma_.pop_back();
  out_ << '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ << '[';
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  needs_comma_.pop_back();
  out_ << ']';
}

void JsonWriter::Key(std::string_view key) {
  String(key);
  out_ << ':';
  // The value that follows must not emit another comma.
  needs_comma_.back() = false;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ << '"';
  for (char c : value) {
    switch (c) {
      case '"':
        out_ << "\\\"";
        break;
      case '\\':
        out_ << "\\\\";
        break;
      case '\n':
        out_ << "\\n";
        break;
      case '\t':
        out_ << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out_ << buffer;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

void JsonWriter::Double(double value) {
  BeforeValue();
  // 17 significant digits round-trip any double exactly.
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_ << buffer;
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ << value;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ << (value ? "true" : "false");
}

void JsonWriter::KV(std::string_view key, std::string_view value) {
  Key(key);
  String(value);
}

void JsonWriter::KV(std::string_view key, const char* value) {
  Key(key);
  String(value);
}

void JsonWriter::KV(std::string_view key, double value) {
  Key(key);
  Double(value);
}

void JsonWriter::KV(std::string_view key, uint64_t value) {
  Key(key);
  UInt(value);
}

void JsonWriter::KV(std::string_view key, bool value) {
  Key(key);
  Bool(value);
}

}  // namespace bench
}  // namespace mc
