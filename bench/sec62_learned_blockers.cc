// §6.2 "Learned Blockers": auditing blockers learned from labeled samples.
//
// The paper obtained three blockers learned (via crowdsourced labels) on
// three separate samples of the Papers dataset and ran MatchCatcher for 5
// iterations against each, finding 76, 61, and 65 killed-off matches plus
// the reasons behind them. We learn three rule blockers with our greedy
// learner on three disjoint samples and run the same protocol. (Unlike the
// paper we *do* have full gold for the generated Papers corpus, so the true
// recall of each learned blocker is also reported.)

#include <iostream>
#include <map>

#include "bench_common.h"
#include "blocking/blocker_learner.h"
#include "blocking/metrics.h"
#include "core/match_catcher.h"
#include "util/random.h"

namespace mc {
namespace bench {
namespace {

std::vector<std::pair<PairId, bool>> MakeSample(
    const datagen::GeneratedDataset& dataset, size_t positives,
    size_t negatives, Rng& rng) {
  std::vector<std::pair<PairId, bool>> sample;
  std::vector<PairId> gold = dataset.gold.SortedPairs();
  rng.Shuffle(gold);
  for (size_t i = 0; i < positives && i < gold.size(); ++i) {
    sample.emplace_back(gold[i], true);
  }
  while (sample.size() < positives + negatives) {
    PairId pair = MakePairId(
        static_cast<RowId>(rng.NextBelow(dataset.table_a.num_rows())),
        static_cast<RowId>(rng.NextBelow(dataset.table_b.num_rows())));
    if (dataset.gold.Contains(pair)) continue;
    sample.emplace_back(pair, false);
  }
  return sample;
}

}  // namespace
}  // namespace bench
}  // namespace mc

int main() {
  using namespace mc;
  using namespace mc::bench;
  std::cout << "=== Section 6.2: debugging learned blockers (Papers) ===\n";
  datagen::GeneratedDataset dataset = LoadDataset("Papers");
  PrintDatasetHeader(dataset);

  Rng rng(7777);
  for (int run = 1; run <= 3; ++run) {
    auto sample = MakeSample(dataset, 250, 750, rng);
    BlockerLearnerOptions learner_options;
    learner_options.max_rule_negative_rate = 0.02;
    Result<LearnedBlocker> learned = LearnBlocker(
        dataset.table_a, dataset.table_b, sample, learner_options);
    MC_CHECK(learned.ok()) << learned.status().ToString();

    CandidateSet c = learned->blocker->Run(dataset.table_a, dataset.table_b);
    BlockerMetrics metrics =
        EvaluateBlocking(c, dataset.gold, dataset.table_a.num_rows(),
                         dataset.table_b.num_rows());

    MatchCatcherOptions options;
    options.joint.k = 1000;
    options.joint.num_threads = EnvThreads();
    options.joint.q = EnvQ();
    Result<DebugSession> session =
        DebugSession::Create(dataset.table_a, dataset.table_b, c, options);
    MC_CHECK(session.ok()) << session.status().ToString();
    GoldOracle oracle(&dataset.gold);
    MatchVerifier verifier = session->MakeVerifier();
    VerifierResult result = verifier.RunIterations(oracle, 5);

    std::cout << "\nblocker " << run << ": "
              << learned->blocker->Description(dataset.table_a.schema())
              << "\n  sample recall " << Cell(learned->sample_recall * 100, 0, 1)
              << "%, true recall " << Cell(metrics.recall * 100, 0, 1)
              << "%, |C| = " << c.size() << ", killed = "
              << metrics.killed_matches << "\n  after 5 iterations: "
              << result.confirmed_matches.size()
              << " killed-off matches surfaced; reasons:";
    std::map<std::string, size_t> problems;
    for (PairId pair : result.confirmed_matches) {
      auto it = dataset.problem_tags.find(pair);
      if (it == dataset.problem_tags.end()) continue;
      for (const std::string& tag : it->second) ++problems[tag];
    }
    for (const auto& [tag, count] : problems) {
      std::cout << " " << tag << " (" << count << ");";
    }
    std::cout << "\n";
  }
  std::cout << "\n(paper found 76, 61, 65 matches for its three learned "
               "blockers after 5 iterations)\n";
  return 0;
}
