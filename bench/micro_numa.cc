// Microbenchmark for the topology-aware placement plane: the same joint
// top-k execution run under three forced topologies — a single fake node
// (placement machinery on, no decomposition), a fake dual node (per-node
// A-row windows, node-routed shard tasks, replicated seeds), and the
// machine's real detected topology — with the bit-identity contract
// enforced across all of them. Placement moves bytes and threads, never
// results: every placement's per-config lists must carry the same checksum
// (the binary exits 1 otherwise, and tools/validate_bench_json.py
// re-enforces it on the archived record).
//
// `--json=PATH` emits a machine-readable record (benchmark "micro_numa");
// bench/BENCH_numa.json archives one run of this binary on the default
// workload.
//
// Knobs: --engine=LABEL, --dataset=amazon_google|fodors_zagats, --scale=F
// (default 0.05), --reps=N (default 3), --k=N (default 50), --threads=N
// (default 4), --seed=S (default 17).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "config/config_generator.h"
#include "core/session_io.h"
#include "datagen/generator.h"
#include "joint/joint_executor.h"
#include "mem/arena_stats.h"
#include "mem/topology.h"
#include "simd/kernels.h"
#include "ssj/corpus.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace mc {
namespace {

struct BenchConfig {
  std::string path;
  std::string engine = "unspecified";
  std::string dataset = "amazon_google";
  double scale = 0.05;
  size_t reps = 3;
  size_t k = 50;
  size_t threads = 4;
  uint64_t seed = 17;
};

struct PlacementResult {
  std::string name;
  double best = 0.0;
  double total = 0.0;
  size_t pairs = 0;
  uint32_t checksum = 0;
  void Record(size_t rep, double seconds) {
    total += seconds;
    if (rep == 0 || seconds < best) best = seconds;
  }
};

int RunJsonBench(const BenchConfig& config) {
  datagen::GeneratedDataset dataset =
      config.dataset == "fodors_zagats"
          ? datagen::GenerateFodorsZagats(
                datagen::ScaleDims(datagen::kDimsFodorsZagats, config.scale),
                config.seed)
          : datagen::GenerateAmazonGoogle(
                datagen::ScaleDims(datagen::kDimsAmazonGoogle, config.scale),
                config.seed);

  ConfigGeneratorOptions config_options;
  Result<PromisingAttributes> attributes = SelectPromisingAttributes(
      dataset.table_a, dataset.table_b, config_options);
  MC_CHECK(attributes.ok()) << attributes.status().ToString();
  const ConfigTree tree = GenerateConfigTree(*attributes, config_options);

  CorpusBuildOptions corpus_options;
  corpus_options.num_threads = config.threads;
  const SsjCorpus corpus = SsjCorpus::Build(
      dataset.table_a, dataset.table_b, attributes->columns, corpus_options);
  MC_CHECK(!corpus.truncated());

  JointOptions joint_options;
  joint_options.k = config.k;
  joint_options.num_threads = config.threads;
  joint_options.exclude = &dataset.gold;

  // The placements under test. Fake topologies route every placement
  // *decision* (arena slicing, shard->node windows, worker grouping)
  // without issuing syscalls, so the sweep is deterministic on any runner;
  // "machine" is whatever this host really has.
  struct Placement {
    const char* name;
    const char* spec;  // nullptr = real detection.
  };
  const Placement placements[] = {
      {"single_node", "nodes=1,cores_per_node=4"},
      {"dual_node", "nodes=2,cores_per_node=2"},
      {"machine", nullptr},
  };

  std::vector<PlacementResult> results;
  for (const Placement& placement : placements) {
    if (placement.spec != nullptr) {
      mem::SystemTopology topo;
      MC_CHECK(mem::SystemTopology::ParseSpec(placement.spec, &topo));
      mem::SystemTopology::SetForTest(topo);
    } else {
      mem::SystemTopology::ResetForTest();
    }
    PlacementResult result;
    result.name = placement.name;
    for (size_t rep = 0; rep < config.reps; ++rep) {
      Stopwatch watch;
      JointResult joint = RunJointTopKJoins(corpus, tree, joint_options);
      result.Record(rep, watch.ElapsedSeconds());
      MC_CHECK(!joint.truncated);
      std::vector<std::vector<ScoredPair>> lists;
      size_t pairs = 0;
      for (const ConfigJoinResult& per_config : joint.per_config) {
        pairs += per_config.topk.size();
        lists.push_back(per_config.topk);
      }
      result.pairs = pairs;
      result.checksum = TopKListsCrc(lists);
    }
    results.push_back(std::move(result));
  }
  mem::SystemTopology::ResetForTest();

  bool identical = true;
  for (const PlacementResult& result : results) {
    identical = identical && result.checksum == results[0].checksum;
  }

  const mem::ArenaStatsSnapshot arenas =
      mem::ArenaStatsRegistry::Instance().Snapshot();

  std::ofstream out(config.path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", config.path.c_str());
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.KV("schema_version", uint64_t{1});
  json.KV("benchmark", "micro_numa");
  json.KV("engine", config.engine);
  json.Key("workload");
  json.BeginObject();
  json.KV("cpu_cores",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.KV("simd_level", simd::SimdLevelName(simd::ActiveSimdLevel()));
  json.KV("dataset", config.dataset);
  json.KV("scale", config.scale);
  json.KV("rows_a", uint64_t{dataset.table_a.num_rows()});
  json.KV("rows_b", uint64_t{dataset.table_b.num_rows()});
  json.KV("k", uint64_t{config.k});
  json.KV("threads", uint64_t{config.threads});
  json.KV("repetitions", uint64_t{config.reps});
  json.KV("seed", config.seed);
  json.KV("machine_nodes",
          uint64_t{mem::SystemTopology::Detect().num_nodes()});
  json.EndObject();
  json.Key("results");
  json.BeginArray();
  char hex[16];
  for (const PlacementResult& result : results) {
    json.BeginObject();
    json.KV("name", result.name);
    json.KV("best_seconds", result.best);
    json.KV("mean_seconds",
            result.total / static_cast<double>(config.reps));
    json.KV("pairs", uint64_t{result.pairs});
    std::snprintf(hex, sizeof(hex), "%08x", result.checksum);
    json.KV("topk_checksum", hex);
    json.EndObject();
  }
  json.EndArray();
  json.Key("output");
  json.BeginObject();
  // dual-node-vs-single-node ratio: > 1 means the windowed decomposition
  // helped on this runner, < 1 means the extra groups cost more than the
  // locality bought (expected on genuinely single-node machines — the fake
  // topologies cannot conjure a second memory controller).
  json.KV("dual_node_speedup", results[0].best / results[1].best);
  json.KV("arena_reserved_bytes", uint64_t{arenas.total_reserved_bytes});
  json.KV("live_arenas", uint64_t{arenas.total_arenas});
  json.KV("topology_fallbacks", uint64_t{arenas.topology_fallbacks});
  json.KV("identical_across_placements", identical);
  json.EndObject();
  json.EndObject();
  out << "\n";
  std::printf(
      "wrote %s (single %.3fs, dual %.3fs, machine %.3fs, fallbacks %zu)\n",
      config.path.c_str(), results[0].best, results[1].best, results[2].best,
      arenas.topology_fallbacks);
  if (!identical) {
    std::fprintf(stderr,
                 "PLACEMENT VIOLATION: results differ across topologies\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mc

int main(int argc, char** argv) {
  mc::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--json=")) {
      config.path = v;
    } else if (const char* v = value_of("--engine=")) {
      config.engine = v;
    } else if (const char* v = value_of("--dataset=")) {
      config.dataset = v;
    } else if (const char* v = value_of("--scale=")) {
      config.scale = std::atof(v);
    } else if (const char* v = value_of("--reps=")) {
      config.reps = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--k=")) {
      config.k = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--threads=")) {
      config.threads = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--seed=")) {
      config.seed = static_cast<uint64_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (config.path.empty()) {
    std::fprintf(stderr, "usage: micro_numa --json=PATH [--engine=LABEL] "
                         "[--dataset=D] [--scale=F] [--reps=N] [--k=N] "
                         "[--threads=N] [--seed=S]\n");
    return 2;
  }
  return mc::RunJsonBench(config);
}
