// Cross-session plan cache benchmark: a hot-pair multi-session workload
// through two SessionManagers that differ ONLY in ServiceLimits::
// enable_plan_cache. Both arms share plane and corpus (one priming session
// each), so the warm A/B isolates exactly what the cache buys: every warm
// cached session is served the memoized joint plan, every warm no-cache
// session re-runs the planner's sampling probes ("cold planning") — the
// `mcserve --no-plan-cache` ablation, measured end to end per session.
//
// Output equality is enforced, not just reported: the run aborts (exit 1)
// unless every session of both arms — cached-plan and fresh-planned —
// produces the same per-config top-k checksum (identical_to_fresh, the
// bit-identity contract of the plan cache). The calibrator feedback loop is
// pinned off (MC_PLANNER_CALIBRATE=0) so both arms plan from identical
// weights whatever ran earlier in the process.
//
// `--json=PATH` emits the machine-readable record archived in
// bench/BENCH_plancache.json and checked by tools/validate_bench_json.py.
// Knobs: --scale=F (default 0.05), --sessions=N warm sessions per block
// (default 6), --reps=N blocks (default 3), --k=N (default 50),
// --threads=N (default 2), --attrs=N (default 1: the single-config shape
// where per-session planning dominates the warm path), --engine=LABEL.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/session_io.h"
#include "datagen/generator.h"
#include "service/session_manager.h"
#include "simd/kernels.h"
#include "util/stopwatch.h"

namespace mc {
namespace {

struct JsonBenchConfig {
  std::string path;
  std::string engine = "unspecified";
  double scale = 0.05;
  size_t sessions = 6;
  size_t reps = 3;
  size_t k = 50;
  size_t threads = 2;
  size_t attrs = 1;
};

// One arm of the A/B: a manager with the plan cache on or off, primed once
// (plane + corpus + for the cached arm the plan), then `reps` timed blocks
// of `sessions` sequential warm sessions.
struct ArmResult {
  double cold_seconds = 0.0;  // The priming session (plans either way).
  double best_seconds = 0.0;  // Best warm block.
  double total_seconds = 0.0;
  size_t plan_cache_hits = 0;
  size_t plan_cache_misses = 0;
  size_t plans_computed = 0;
  uint32_t checksum = 0;
  bool checksums_agree = true;  // Every session of the arm, same bytes.
};

ArmResult RunArm(const datagen::GeneratedDataset& dataset,
                 const JsonBenchConfig& config, bool enable_plan_cache) {
  ServiceLimits limits;
  limits.max_concurrent_sessions = 1;  // Sequential: clean per-session time.
  limits.enable_plan_cache = enable_plan_cache;
  SessionManager manager(limits);
  Status registered = manager.RegisterTablePair(
      "hot", dataset.table_a, dataset.table_b, dataset.gold);
  if (!registered.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 registered.ToString().c_str());
    std::exit(1);
  }

  SessionRequest request;
  request.pair_key = "hot";
  request.options.joint.k = config.k;
  request.options.joint.q = 0;  // Planner-eligible: what the cache keys on.
  request.options.joint.num_threads = config.threads;
  request.options.config.max_attributes = config.attrs;
  request.options.infer_types = false;

  ArmResult result;
  auto run_session = [&]() -> const SessionOutcome {
    Result<uint64_t> id = manager.Submit(request);
    if (!id.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   id.status().ToString().c_str());
      std::exit(1);
    }
    Result<SessionOutcome> outcome = manager.Wait(*id);
    if (!outcome.ok() || outcome->state != SessionState::kComplete) {
      std::fprintf(stderr, "session did not complete\n");
      std::exit(1);
    }
    return *outcome;
  };

  Stopwatch cold_watch;
  const SessionOutcome primed = run_session();
  result.cold_seconds = cold_watch.ElapsedSeconds();
  result.checksum = TopKListsCrc(primed.lists);

  for (size_t rep = 0; rep < config.reps; ++rep) {
    Stopwatch block_watch;
    for (size_t s = 0; s < config.sessions; ++s) {
      const SessionOutcome outcome = run_session();
      result.checksums_agree = result.checksums_agree &&
                               TopKListsCrc(outcome.lists) == result.checksum;
    }
    const double seconds = block_watch.ElapsedSeconds();
    result.total_seconds += seconds;
    if (rep == 0 || seconds < result.best_seconds) {
      result.best_seconds = seconds;
    }
  }

  const ServiceStats stats = manager.stats();
  result.plan_cache_hits = stats.plan_cache_hits;
  result.plan_cache_misses = stats.plan_cache_misses;
  result.plans_computed = stats.plans_computed;
  return result;
}

int RunJsonBench(const JsonBenchConfig& config) {
  datagen::GeneratedDataset dataset = datagen::GenerateMusic(
      datagen::ScaleDims(datagen::kDimsMusic1, config.scale));

  const ArmResult cached = RunArm(dataset, config, /*enable_plan_cache=*/true);
  const ArmResult fresh = RunArm(dataset, config, /*enable_plan_cache=*/false);

  const bool identical_to_fresh = cached.checksums_agree &&
                                  fresh.checksums_agree &&
                                  cached.checksum == fresh.checksum;
  const double speedup =
      cached.best_seconds > 0.0 ? fresh.best_seconds / cached.best_seconds
                                : 0.0;
  const double sessions_per_block = static_cast<double>(config.sessions);

  std::ofstream out(config.path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", config.path.c_str());
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.KV("schema_version", uint64_t{1});
  json.KV("benchmark", "micro_plancache");
  json.KV("engine", config.engine);
  json.Key("workload");
  json.BeginObject();
  json.KV("cpu_cores",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.KV("simd_level", simd::SimdLevelName(simd::ActiveSimdLevel()));
  json.KV("dataset", "music");
  json.KV("scale", config.scale);
  json.KV("rows_a", uint64_t{dataset.table_a.num_rows()});
  json.KV("rows_b", uint64_t{dataset.table_b.num_rows()});
  json.KV("k", uint64_t{config.k});
  json.KV("threads", uint64_t{config.threads});
  json.KV("max_attributes", uint64_t{config.attrs});
  json.KV("sessions", uint64_t{config.sessions});
  json.KV("repetitions", uint64_t{config.reps});
  json.EndObject();
  json.Key("results");
  json.BeginArray();
  auto emit_arm = [&](const char* name, const ArmResult& arm) {
    json.BeginObject();
    json.KV("name", name);
    json.KV("cold_seconds", arm.cold_seconds);
    json.KV("best_seconds", arm.best_seconds);
    json.KV("mean_seconds",
            arm.total_seconds / static_cast<double>(config.reps));
    json.KV("sessions_per_sec", sessions_per_block / arm.best_seconds);
    json.KV("plan_cache_hits", uint64_t{arm.plan_cache_hits});
    json.KV("plan_cache_misses", uint64_t{arm.plan_cache_misses});
    json.KV("plans_computed", uint64_t{arm.plans_computed});
    char checksum[16];
    std::snprintf(checksum, sizeof(checksum), "%08x", arm.checksum);
    json.KV("topk_checksum", checksum);
    json.EndObject();
  };
  emit_arm("warm_cached", cached);
  emit_arm("warm_fresh_planned", fresh);
  json.EndArray();
  json.Key("comparison");
  json.BeginObject();
  json.KV("speedup", speedup);
  json.KV("identical_to_fresh", identical_to_fresh);
  json.KV("cached_hit_count", uint64_t{cached.plan_cache_hits});
  json.KV("fresh_plans_computed", uint64_t{fresh.plans_computed});
  json.EndObject();
  json.EndObject();
  out << "\n";
  std::printf(
      "wrote %s\n  warm cached: %.4fs/block (cold %.4fs, hits=%zu)\n"
      "  warm fresh:  %.4fs/block (plans=%zu)\n"
      "  speedup %.2fx identical_to_fresh=%d\n",
      config.path.c_str(), cached.best_seconds, cached.cold_seconds,
      cached.plan_cache_hits, fresh.best_seconds, fresh.plans_computed,
      speedup, identical_to_fresh ? 1 : 0);
  if (!identical_to_fresh) {
    std::fprintf(stderr,
                 "FATAL: cached-plan sessions are not bit-identical to "
                 "fresh-planned sessions — the plan cache contract is "
                 "broken\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mc

int main(int argc, char** argv) {
  // Both arms must plan from identical cost weights, whatever joins this
  // process (or a prior bench stage) already executed: pin the calibrator
  // feedback loop off before any SessionManager reads the env.
  ::setenv("MC_PLANNER_CALIBRATE", "0", 1);
  mc::JsonBenchConfig config;
  bool json_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--json=")) {
      json_mode = true;
      config.path = v;
    } else if (const char* v = value_of("--engine=")) {
      config.engine = v;
    } else if (const char* v = value_of("--scale=")) {
      config.scale = std::atof(v);
    } else if (const char* v = value_of("--sessions=")) {
      config.sessions = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--reps=")) {
      config.reps = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--k=")) {
      config.k = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--threads=")) {
      config.threads = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--attrs=")) {
      config.attrs = static_cast<size_t>(std::atoll(v));
    }
  }
  if (!json_mode) {
    std::fprintf(stderr, "usage: micro_plancache --json=PATH [--scale=F] "
                         "[--sessions=N] [--reps=N] [--k=N] [--threads=N] [--attrs=N] "
                         "[--engine=LABEL]\n");
    return 2;
  }
  return mc::RunJsonBench(config);
}
