// §6.4 "Runtime & Scalability": wall-clock time of the top-k SSJ module per
// dataset/blocker, plus the Match Verifier's aggregation and per-iteration
// feedback costs. Also prints per-config join counters (events, pairs
// discovered/scored/pruned, cache hits) — the observability behind the
// QJoin-vs-TopKJoin claims.

#include <iostream>

#include "bench_common.h"
#include "blocking/metrics.h"
#include "core/match_catcher.h"
#include "paper_blockers.h"
#include "util/stopwatch.h"

namespace mc {
namespace bench {
namespace {

void RunDataset(const std::string& name, bool verbose_configs) {
  datagen::GeneratedDataset dataset = LoadDataset(name);
  PrintDatasetHeader(dataset);
  std::vector<PaperBlocker> blockers =
      PaperBlockersFor(name, dataset.table_a.schema());

  std::cout << Cell("blocker", 8) << Cell("|C|", 10) << Cell("topk_s", 9)
            << Cell("|E|", 8) << Cell("agg_ms", 9) << Cell("iter_ms", 9)
            << "\n";
  for (const PaperBlocker& paper_blocker : blockers) {
    CandidateSet c =
        paper_blocker.blocker->Run(dataset.table_a, dataset.table_b);

    MatchCatcherOptions options;
    options.joint.k = 1000;
    options.joint.num_threads = EnvThreads();
    options.joint.q = EnvQ();
    Result<DebugSession> session =
        DebugSession::Create(dataset.table_a, dataset.table_b, c, options);
    MC_CHECK(session.ok()) << session.status().ToString();

    // Verifier costs: rank aggregation, then per-iteration feedback
    // processing (retrain + rerank) with the gold oracle.
    Stopwatch agg_watch;
    MatchVerifier verifier = session->MakeVerifier();
    double aggregate_ms = agg_watch.ElapsedMillis();

    GoldOracle oracle(&dataset.gold);
    Stopwatch iter_watch;
    VerifierResult result = verifier.RunIterations(oracle, 5);
    double per_iteration_ms =
        result.num_iterations() == 0
            ? 0.0
            : iter_watch.ElapsedMillis() / result.num_iterations();

    std::cout << Cell(paper_blocker.label, 8) << Cell(c.size(), 10)
              << Cell(session->topk_seconds(), 9, 2)
              << Cell(session->CandidatePairs().size(), 8)
              << Cell(aggregate_ms, 9, 2) << Cell(per_iteration_ms, 9, 2)
              << "\n";

    if (verbose_configs) {
      std::cout << "    " << Cell("config", 8) << Cell("secs", 8)
                << Cell("events", 10) << Cell("discovered", 12)
                << Cell("scored", 10) << Cell("pruned", 10)
                << Cell("cache_hit", 10) << "\n";
      for (const ConfigJoinResult& config :
           session->joint_result().per_config) {
        std::cout << "    " << Cell(static_cast<size_t>(config.config), 8)
                  << Cell(config.seconds, 8, 2)
                  << Cell(config.stats.events_popped, 10)
                  << Cell(config.stats.pairs_discovered, 12)
                  << Cell(config.stats.pairs_scored, 10)
                  << Cell(config.stats.pairs_pruned, 10)
                  << Cell(config.cache_hits, 10) << "\n";
      }
    }
  }
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace mc

int main(int argc, char** argv) {
  bool verbose = false;
  std::vector<std::string> datasets;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--configs") {
      verbose = true;
    } else {
      datasets.push_back(argv[i]);
    }
  }
  if (datasets.empty()) {
    datasets = {"F-Z", "A-D", "A-G", "M1", "W-A", "M2", "Papers"};
  }
  std::cout << "=== Section 6.4: runtime of the top-k module and verifier "
               "===\n(times are seconds on this machine; the paper reports "
               "Cython on an E5-1650 — shapes, not absolutes, carry "
               "over)\n\n";
  for (const std::string& name : datasets) {
    mc::bench::RunDataset(name, verbose);
  }
  return 0;
}
