// §6.5 ablation: active/online learning vs weighted median ranking in the
// Match Verifier.
//
// WMR reranks purely by reweighting the per-config lists; the learner
// trains a random forest on the labels. The paper found learning
// "significantly outperforms" WMR. We run both against the oracle user with
// the same iteration budget and compare matches found.

#include <iostream>

#include "bench_common.h"
#include "core/match_catcher.h"
#include "paper_blockers.h"

namespace mc {
namespace bench {
namespace {

void RunCase(const std::string& name, const std::string& blocker_label,
             size_t iteration_budget) {
  datagen::GeneratedDataset dataset = LoadDataset(name);
  std::shared_ptr<const Blocker> blocker;
  for (const PaperBlocker& paper_blocker :
       PaperBlockersFor(name, dataset.table_a.schema())) {
    if (paper_blocker.label == blocker_label) blocker = paper_blocker.blocker;
  }
  MC_CHECK(blocker != nullptr);
  CandidateSet c = blocker->Run(dataset.table_a, dataset.table_b);

  MatchCatcherOptions options;
  options.joint.k = 1000;
  options.joint.num_threads = EnvThreads();
  options.joint.q = EnvQ();
  Result<DebugSession> session =
      DebugSession::Create(dataset.table_a, dataset.table_b, c, options);
  MC_CHECK(session.ok()) << session.status().ToString();
  GoldOracle oracle(&dataset.gold);

  size_t learned_found = 0, wmr_found = 0;
  size_t matches_in_e = 0;
  for (PairId pair : session->CandidatePairs()) {
    if (dataset.gold.Contains(pair)) ++matches_in_e;
  }
  for (bool use_learning : {true, false}) {
    MatchCatcherOptions run_options = options;
    run_options.verifier.use_learning = use_learning;
    // Rebuild the verifier from the same session with the mode toggled.
    MatchVerifier verifier(session->TopKLists(), &session->extractor(),
                           run_options.verifier);
    VerifierResult result = verifier.RunIterations(oracle, iteration_budget);
    (use_learning ? learned_found : wmr_found) =
        result.confirmed_matches.size();
  }
  std::cout << Cell(name + "/" + blocker_label, 12)
            << Cell(matches_in_e, 8) << Cell(iteration_budget, 7)
            << Cell(wmr_found, 10) << Cell(learned_found, 10) << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace mc

int main() {
  std::cout << "=== Ablation (§6.5): active/online learning vs WMR ===\n"
            << mc::bench::Cell("case", 12) << mc::bench::Cell("ME", 8)
            << mc::bench::Cell("iters", 7) << mc::bench::Cell("F(wmr)", 10)
            << mc::bench::Cell("F(learn)", 10) << "\n";
  mc::bench::RunCase("A-G", "HASH", 15);
  mc::bench::RunCase("A-D", "R2", 30);
  mc::bench::RunCase("F-Z", "OL", 5);
  mc::bench::RunCase("W-A", "R", 10);
  mc::bench::RunCase("M1", "HASH", 10);
  std::cout << "\n(paper: the hybrid active/online learner significantly "
               "outperforms weighted median ranking)\n";
  return 0;
}
