#include "bench_common.h"

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>

#include "util/check.h"

namespace mc {
namespace bench {

double EnvScale() {
  const char* value = std::getenv("MC_BENCH_SCALE");
  if (value == nullptr) return 1.0;
  double scale = std::atof(value);
  return scale > 0.0 ? scale : 1.0;
}

size_t EnvThreads() {
  const char* value = std::getenv("MC_BENCH_THREADS");
  if (value == nullptr) return 0;  // 0 = hardware concurrency downstream.
  long threads = std::atol(value);
  return threads > 0 ? static_cast<size_t>(threads) : 0;
}

size_t EnvQ() {
  const char* value = std::getenv("MC_BENCH_Q");
  if (value == nullptr) return 2;
  long q = std::atol(value);
  return q >= 0 ? static_cast<size_t>(q) : 2;
}

double DefaultDatasetScale(const std::string& name) {
  // Small paper datasets run at full size; the 100K-500K+ ones are scaled
  // so every experiment binary finishes in minutes on a laptop. Figure 9
  // sweeps table size explicitly, so shapes are still measured.
  if (name == "M1") return 0.10;     // 10K tuples per table.
  if (name == "M2") return 0.03;     // 15K tuples per table.
  if (name == "Papers") return 0.01;  // ~4.6K x 6.3K tuples.
  return 1.0;
}

datagen::GeneratedDataset LoadDataset(const std::string& name) {
  double scale = DefaultDatasetScale(name) * EnvScale();
  Result<datagen::GeneratedDataset> dataset =
      datagen::GenerateByName(name, scale);
  MC_CHECK(dataset.ok()) << dataset.status().ToString();
  return std::move(dataset).value();
}

void PrintDatasetHeader(const datagen::GeneratedDataset& dataset) {
  std::cout << dataset.name << ": |A|=" << dataset.table_a.num_rows()
            << " |B|=" << dataset.table_b.num_rows()
            << " gold=" << dataset.gold.size() << "\n";
}

std::string Cell(const std::string& text, size_t width) {
  std::ostringstream out;
  out << std::left << std::setw(static_cast<int>(width)) << text;
  return out.str();
}

std::string Cell(double value, size_t width, int precision) {
  std::ostringstream number;
  number << std::fixed << std::setprecision(precision) << value;
  return Cell(number.str(), width);
}

std::string Cell(size_t value, size_t width) {
  return Cell(std::to_string(value), width);
}

}  // namespace bench
}  // namespace mc
