// Microbenchmark for the joint executor's two-level scheduler, the
// zero-copy config views, and the block-parallel corpus build (the perf-PR
// counterpart of micro_ssj for the joint layer).
//
// `--json=PATH` runs a fixed music-style workload and emits a
// machine-readable stage-timing record (corpus_build / view_build /
// joint_execute / end_to_end); bench/BENCH_joint.json archives the
// before/after pair of the scheduler PR, both produced by this binary:
//
//   before:  --scheduler=config_per_task --views=materialize --build-threads=1
//   after:   defaults (two_level, zero-copy views, parallel build)
//
// Knobs: --engine=LABEL, --scale=F (default 0.02), --reps=N (default 3),
// --k=N (default 200), --threads=N (default 8), --build-threads=N (default:
// --threads), --scheduler=two_level|config_per_task,
// --views=auto|materialize, --cache-shards=N (default 0 = auto), --q=N
// (default 1).
//
// The two-level record also re-runs the joint phase single-threaded and
// reports whether the parallel output is bit-identical (the determinism
// contract of docs/algorithms.md).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "config/config_generator.h"
#include "datagen/generator.h"
#include "joint/joint_executor.h"
#include "simd/kernels.h"
#include "ssj/corpus.h"
#include "table/profile.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/stopwatch.h"

namespace mc {
namespace {

struct BenchConfig {
  std::string path;
  std::string engine = "unspecified";
  // Default workload: the Amazon-Google-style generator — long description
  // attributes, the regime the joint executor's reuse machinery targets
  // (paper §6.5 reports its largest joint-vs-independent gains there).
  std::string dataset = "amazon_google";
  double scale = 1.0;
  size_t reps = 3;
  size_t k = 1000;
  size_t threads = 8;
  size_t build_threads = 0;  // 0: same as threads.
  size_t cache_shards = 0;
  size_t q = 1;
  double reuse_trigger = 20.0;  // Paper's t; the A-G descriptions exceed it.
  bool legacy_miss = false;     // Pre-PR miss path (full-tuple merges).
  JointScheduler scheduler = JointScheduler::kTwoLevel;
  SsjCorpus::ViewMode view_mode = SsjCorpus::ViewMode::kAuto;
};

// CRC-32 over every config's sorted list (pair ids + raw score bits), so
// two runs can be compared for *identical* output.
uint32_t JointChecksum(const JointResult& result) {
  uint32_t crc = 0;
  for (const ConfigJoinResult& config : result.per_config) {
    for (const ScoredPair& entry : config.topk) {
      crc = Crc32(&entry.pair, sizeof(entry.pair), crc);
      crc = Crc32(&entry.score, sizeof(entry.score), crc);
    }
  }
  return crc;
}

struct StageTiming {
  double best = 0.0;
  double total = 0.0;
  void Record(size_t rep, double seconds) {
    total += seconds;
    if (rep == 0 || seconds < best) best = seconds;
  }
  double mean(size_t reps) const {
    return total / static_cast<double>(reps);
  }
};

JointOptions MakeJointOptions(const BenchConfig& config) {
  JointOptions options;
  options.k = config.k;
  options.q = config.q;
  options.num_threads = config.threads;
  options.scheduler = config.scheduler;
  options.view_mode = config.view_mode;
  options.overlap_cache_shards = config.cache_shards;
  // Product default: the paper's t = 20 trigger (music tuples are shorter,
  // so the overlap cache stays off). --reuse-trigger=0 forces it on for
  // cache-path sweeps.
  options.reuse_min_avg_tokens = config.reuse_trigger;
  options.corpus_miss_path = config.legacy_miss;
  return options;
}

int RunJsonBench(const BenchConfig& config) {
  datagen::GeneratedDataset dataset =
      config.dataset == "music"
          ? datagen::GenerateMusic(
                datagen::ScaleDims(datagen::kDimsMusic1, config.scale))
          : datagen::GenerateAmazonGoogle(
                datagen::ScaleDims(datagen::kDimsAmazonGoogle, config.scale));
  Table table_a = dataset.table_a;
  Table table_b = dataset.table_b;
  table_a.SetSchema(InferAttributeTypes(table_a));
  table_b.SetSchema(table_a.schema());

  Result<PromisingAttributes> attributes =
      SelectPromisingAttributes(table_a, table_b);
  MC_CHECK(attributes.ok()) << attributes.status().ToString();
  ConfigTree tree = GenerateConfigTree(*attributes);

  const size_t build_threads =
      config.build_threads != 0 ? config.build_threads : config.threads;
  CorpusBuildOptions build_options;
  build_options.num_threads = build_threads;

  StageTiming corpus_stage, view_stage, joint_stage, end_to_end_stage;
  JointResult last_result;
  size_t zero_copy_rows = 0, materialized_rows = 0;
  for (size_t rep = 0; rep < config.reps; ++rep) {
    Stopwatch end_to_end;

    Stopwatch corpus_watch;
    SsjCorpus corpus =
        SsjCorpus::Build(table_a, table_b, attributes->columns, build_options);
    corpus_stage.Record(rep, corpus_watch.ElapsedSeconds());

    // View construction for every config, timed in isolation (the executor
    // also builds views internally; this stage isolates the zero-copy win).
    Stopwatch view_watch;
    zero_copy_rows = materialized_rows = 0;
    for (const ConfigNode& node : tree.nodes) {
      ConfigView view = corpus.MakeConfigView(node.mask, config.view_mode);
      zero_copy_rows += view.zero_copy_rows();
      materialized_rows += view.materialized_rows();
    }
    view_stage.Record(rep, view_watch.ElapsedSeconds());

    Stopwatch joint_watch;
    JointResult result = RunJointTopKJoins(corpus, tree, MakeJointOptions(config));
    joint_stage.Record(rep, joint_watch.ElapsedSeconds());
    MC_CHECK(result.task_error.ok()) << result.task_error.ToString();
    MC_CHECK(!result.truncated);

    end_to_end_stage.Record(rep, end_to_end.ElapsedSeconds());
    last_result = std::move(result);
  }
  const uint32_t checksum = JointChecksum(last_result);

  // Determinism spot-check for the two-level scheduler: the parallel output
  // must be bit-identical to a single-threaded run over the same corpus.
  bool determinism_checked = false;
  bool identical_to_single_thread = false;
  if (config.scheduler == JointScheduler::kTwoLevel) {
    SsjCorpus corpus =
        SsjCorpus::Build(table_a, table_b, attributes->columns, build_options);
    JointOptions single = MakeJointOptions(config);
    single.num_threads = 1;
    JointResult reference = RunJointTopKJoins(corpus, tree, single);
    determinism_checked = true;
    identical_to_single_thread = JointChecksum(reference) == checksum;
  }

  size_t pairs = 0, cache_hits = 0, cache_misses = 0, seeded = 0;
  size_t events_popped = 0, pairs_scored = 0;
  for (const ConfigJoinResult& per_config : last_result.per_config) {
    pairs += per_config.topk.size();
    cache_hits += per_config.cache_hits;
    cache_misses += per_config.cache_misses;
    seeded += per_config.seeded_from_parent ? 1 : 0;
    events_popped += per_config.stats.events_popped;
    pairs_scored += per_config.stats.pairs_scored;
  }

  std::ofstream out(config.path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", config.path.c_str());
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.KV("schema_version", uint64_t{1});
  json.KV("benchmark", "micro_joint_executor");
  json.KV("engine", config.engine);
  json.Key("workload");
  json.BeginObject();
  // Machine context: every record names the core budget and the SIMD level
  // it ran under, so archived numbers are comparable across runners.
  json.KV("cpu_cores",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.KV("simd_level", simd::SimdLevelName(simd::ActiveSimdLevel()));
  json.KV("dataset", config.dataset);
  json.KV("scale", config.scale);
  json.KV("rows_a", uint64_t{table_a.num_rows()});
  json.KV("rows_b", uint64_t{table_b.num_rows()});
  json.KV("configs", uint64_t{tree.size()});
  json.KV("k", uint64_t{config.k});
  json.KV("q", uint64_t{config.q});
  json.KV("threads", uint64_t{config.threads});
  json.KV("build_threads", uint64_t{build_threads});
  json.KV("scheduler", config.scheduler == JointScheduler::kTwoLevel
                           ? "two_level"
                           : "config_per_task");
  json.KV("view_mode", config.view_mode == SsjCorpus::ViewMode::kAuto
                           ? "auto"
                           : "materialize");
  json.KV("legacy_miss_path", config.legacy_miss);
  json.KV("reuse_trigger", config.reuse_trigger);
  json.KV("repetitions", uint64_t{config.reps});
  json.EndObject();
  json.Key("results");
  json.BeginArray();
  auto stage = [&](const char* name, const StageTiming& timing) {
    json.BeginObject();
    json.KV("name", name);
    json.KV("best_seconds", timing.best);
    json.KV("mean_seconds", timing.mean(config.reps));
    json.EndObject();
  };
  stage("corpus_build", corpus_stage);
  stage("view_build", view_stage);
  stage("joint_execute", joint_stage);
  stage("end_to_end", end_to_end_stage);
  json.EndArray();
  json.Key("output");
  json.BeginObject();
  json.KV("pairs", uint64_t{pairs});
  json.KV("cache_hits", uint64_t{cache_hits});
  json.KV("cache_misses", uint64_t{cache_misses});
  json.KV("seeded_configs", uint64_t{seeded});
  json.KV("events_popped", uint64_t{events_popped});
  json.KV("pairs_scored", uint64_t{pairs_scored});
  json.KV("zero_copy_rows", uint64_t{zero_copy_rows});
  json.KV("materialized_rows", uint64_t{materialized_rows});
  json.KV("overlap_cache_shards", uint64_t{last_result.overlap_cache_shards_used});
  char checksum_hex[16];
  std::snprintf(checksum_hex, sizeof(checksum_hex), "%08x", checksum);
  json.KV("topk_checksum", checksum_hex);
  json.KV("determinism_checked", determinism_checked);
  json.KV("identical_to_single_thread", identical_to_single_thread);
  json.EndObject();
  json.EndObject();
  out << "\n";
  std::printf("wrote %s (end_to_end best %.3fs, joint best %.3fs)\n",
              config.path.c_str(), end_to_end_stage.best, joint_stage.best);
  if (determinism_checked && !identical_to_single_thread) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: parallel output differs from the "
                 "single-threaded run\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mc

int main(int argc, char** argv) {
  mc::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--json=")) {
      config.path = v;
    } else if (const char* v = value_of("--engine=")) {
      config.engine = v;
    } else if (const char* v = value_of("--dataset=")) {
      config.dataset = v;
    } else if (const char* v = value_of("--scale=")) {
      config.scale = std::atof(v);
    } else if (const char* v = value_of("--reps=")) {
      config.reps = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--k=")) {
      config.k = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--threads=")) {
      config.threads = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--build-threads=")) {
      config.build_threads = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--cache-shards=")) {
      config.cache_shards = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--q=")) {
      config.q = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--reuse-trigger=")) {
      config.reuse_trigger = std::atof(v);
    } else if (arg == "--legacy-miss") {
      config.legacy_miss = true;
    } else if (const char* v = value_of("--scheduler=")) {
      config.scheduler = std::string(v) == "config_per_task"
                             ? mc::JointScheduler::kConfigPerTask
                             : mc::JointScheduler::kTwoLevel;
    } else if (const char* v = value_of("--views=")) {
      config.view_mode = std::string(v) == "materialize"
                             ? mc::SsjCorpus::ViewMode::kMaterialize
                             : mc::SsjCorpus::ViewMode::kAuto;
    }
  }
  if (config.path.empty()) {
    std::fprintf(stderr,
                 "usage: micro_joint --json=PATH [--engine=L] [--scale=F] "
                 "[--reps=N] [--k=N] [--threads=N] [--build-threads=N] "
                 "[--scheduler=two_level|config_per_task] "
                 "[--views=auto|materialize] [--cache-shards=N] [--q=N]\n");
    return 2;
  }
  return mc::RunJsonBench(config);
}
