// §6.5 ablation: handling long string attributes in config generation.
//
// FindLongAttr steers the config tree away from attributes (like product
// descriptions or paper abstracts) that overwhelm the concatenated strings;
// the paper reports up to +11% recall of E from this. We compare M_E with
// the long-attribute handling on vs off, on the two long-attribute datasets.

#include <iostream>

#include "bench_common.h"
#include "blocking/metrics.h"
#include "core/match_catcher.h"
#include "paper_blockers.h"

namespace mc {
namespace bench {
namespace {

size_t MatchesInE(const DebugSession& session, const CandidateSet& gold) {
  size_t matches = 0;
  for (PairId pair : session.CandidatePairs()) {
    if (gold.Contains(pair)) ++matches;
  }
  return matches;
}

void RunDataset(const std::string& name, const std::string& blocker_label,
                size_t k) {
  datagen::GeneratedDataset dataset = LoadDataset(name);
  std::shared_ptr<const Blocker> blocker;
  for (const PaperBlocker& paper_blocker :
       PaperBlockersFor(name, dataset.table_a.schema())) {
    if (paper_blocker.label == blocker_label) blocker = paper_blocker.blocker;
  }
  MC_CHECK(blocker != nullptr);
  CandidateSet c = blocker->Run(dataset.table_a, dataset.table_b);
  BlockerMetrics metrics =
      EvaluateBlocking(c, dataset.gold, dataset.table_a.num_rows(),
                       dataset.table_b.num_rows());

  size_t with_handling = 0, without_handling = 0;
  for (bool handle : {true, false}) {
    MatchCatcherOptions options;
    options.joint.k = k;
    options.joint.num_threads = EnvThreads();
    options.joint.q = EnvQ();
    options.config.handle_long_attributes = handle;
    Result<DebugSession> session =
        DebugSession::Create(dataset.table_a, dataset.table_b, c, options);
    MC_CHECK(session.ok()) << session.status().ToString();
    (handle ? with_handling : without_handling) =
        MatchesInE(*session, dataset.gold);
  }
  auto recall = [&](size_t matches) {
    return metrics.killed_matches == 0
               ? 0.0
               : 100.0 * static_cast<double>(matches) /
                     static_cast<double>(metrics.killed_matches);
  };
  std::cout << Cell(name + "/" + blocker_label, 12) << Cell(k, 6)
            << Cell(metrics.killed_matches, 8)
            << Cell(recall(without_handling), 14, 1)
            << Cell(recall(with_handling), 14, 1)
            << Cell(recall(with_handling) - recall(without_handling), 8, 1)
            << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace mc

int main() {
  std::cout << "=== Ablation (§6.5): long-attribute handling in config "
               "generation ===\n"
            << mc::bench::Cell("case", 12) << mc::bench::Cell("k", 6)
            << mc::bench::Cell("killed", 8)
            << mc::bench::Cell("recallE off%", 14)
            << mc::bench::Cell("recallE on%", 14)
            << mc::bench::Cell("delta", 8) << "\n";
  // Small k stresses E's capacity, where steering configs away from the
  // long attribute matters most; k=1000 shows the headline setting.
  for (size_t k : {100u, 250u, 1000u}) {
    mc::bench::RunDataset("A-G", "HASH", k);
    mc::bench::RunDataset("A-G", "OL", k);
    mc::bench::RunDataset("Papers", "R1", k);
  }
  std::cout << "\n(paper: up to +11% recall of E from handling long "
               "attributes)\n";
  return 0;
}
