// Microbenchmark for incremental delta ingestion: G generations of small
// table deltas applied to the shared planes by patching (TokenizedTable::
// ApplyDelta + SsjCorpus::ApplyDelta + RepairJointLists) versus rebuilding
// everything from scratch each generation (Build + Build + re-running the
// joint top-k joins over the same config tree).
//
// `--json=PATH` emits a machine-readable record (benchmark "micro_delta");
// bench/BENCH_delta.json archives one run of this binary on the default
// workload. The record carries the patch-vs-rebuild speedup and checksums
// proving the patched plane, corpus, and repaired lists are bit-identical
// to the rebuild at every generation — patching is a cost optimization,
// never a semantic one (identical_to_rebuild must be true; the binary
// exits 1 otherwise, and tools/validate_bench_json.py re-enforces it).
//
// Knobs: --engine=LABEL, --dataset=amazon_google|fodors_zagats, --scale=F
// (default 0.05), --generations=N (default 8), --delta-rows=N (mutations
// per delta, default 4), --reps=N (default 3), --k=N (default 10),
// --threads=N (default 2), --seed=S (default 17).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "config/config_generator.h"
#include "core/session_io.h"
#include "datagen/generator.h"
#include "joint/joint_executor.h"
#include "joint/joint_repair.h"
#include "simd/kernels.h"
#include "ssj/corpus.h"
#include "table/table_delta.h"
#include "table/tokenized_table.h"
#include "util/check.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace mc {
namespace {

struct BenchConfig {
  std::string path;
  std::string engine = "unspecified";
  // Long description attributes make tokenization + corpus build the
  // dominant cost — the regime incremental patching targets.
  std::string dataset = "amazon_google";
  double scale = 0.05;
  size_t generations = 8;
  size_t delta_rows = 4;
  size_t reps = 3;
  size_t k = 10;
  size_t threads = 2;
  uint64_t seed = 17;
};

struct StageTiming {
  double best = 0.0;
  double total = 0.0;
  void Record(size_t rep, double seconds) {
    total += seconds;
    if (rep == 0 || seconds < best) best = seconds;
  }
  double mean(size_t reps) const {
    return total / static_cast<double>(reps);
  }
};

// A small delta against `table`: `delta_rows` mutated rows (one cell each
// gets fresh tokens) plus one appended row — the "few rows changed out of
// thousands" shape incremental ingestion is built for.
TableDelta SmallRandomDelta(const Table& table, uint8_t side,
                            size_t generation, size_t delta_rows, Rng& rng) {
  TableDelta delta;
  delta.side = side;
  const size_t rows = table.num_rows();
  const size_t cols = table.num_columns();
  auto row_values = [&](size_t row) {
    std::vector<std::string> values;
    values.reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      values.emplace_back(table.Value(row, c));
    }
    return values;
  };
  std::vector<uint32_t> used;
  for (size_t m = 0; m < delta_rows; ++m) {
    const uint32_t row = static_cast<uint32_t>(rng.NextBelow(rows));
    bool seen = false;
    for (uint32_t u : used) seen = seen || u == row;
    if (seen) continue;
    used.push_back(row);
    TableDelta::RowEdit edit;
    edit.row = row;
    edit.values = row_values(row);
    edit.values[rng.NextBelow(cols)] +=
        " g" + std::to_string(generation) + "m" + std::to_string(m);
    delta.mutated.push_back(std::move(edit));
  }
  std::vector<std::string> appended = row_values(rng.NextBelow(rows));
  appended[0] += " appended" + std::to_string(generation);
  delta.appended.push_back(std::move(appended));
  return delta;
}

int RunJsonBench(const BenchConfig& config) {
  datagen::GeneratedDataset dataset =
      config.dataset == "fodors_zagats"
          ? datagen::GenerateFodorsZagats(
                datagen::ScaleDims(datagen::kDimsFodorsZagats, config.scale))
          : datagen::GenerateAmazonGoogle(
                datagen::ScaleDims(datagen::kDimsAmazonGoogle, config.scale));

  ConfigGeneratorOptions config_options;
  Result<PromisingAttributes> attributes = SelectPromisingAttributes(
      dataset.table_a, dataset.table_b, config_options);
  MC_CHECK(attributes.ok()) << attributes.status().ToString();
  const std::vector<size_t> columns = attributes->columns;
  const ConfigTree tree = GenerateConfigTree(*attributes, config_options);

  TextPlaneBuildOptions plane_options;
  plane_options.num_threads = config.threads;
  CorpusBuildOptions corpus_options;
  corpus_options.num_threads = config.threads;
  JointOptions joint_options;
  joint_options.k = config.k;
  joint_options.num_threads = config.threads;
  joint_options.exclude = &dataset.gold;

  StageTiming rebuild_stage, patch_stage;
  bool identical = true;
  uint32_t patched_checksum = 0, rebuilt_checksum = 0;
  uint32_t plane_crc = 0, corpus_crc = 0;
  double dead_token_fraction = 0.0;
  size_t lists_repaired = 0, lists_rejoined = 0;

  for (size_t rep = 0; rep < config.reps; ++rep) {
    // Untimed setup: the pre-delta planes and lists both arms start from,
    // plus the per-generation table states and row deltas (table mutation
    // itself is common to both arms).
    Rng rng(config.seed + rep);
    std::vector<Table> tables_a{dataset.table_a};
    std::vector<Table> tables_b{dataset.table_b};
    std::vector<RowsDelta> row_deltas;
    for (size_t g = 1; g <= config.generations; ++g) {
      Table table_a = tables_a.back();
      Table table_b = tables_b.back();
      const uint8_t side = static_cast<uint8_t>(g % 2);
      Table& target = side == 0 ? table_a : table_b;
      const TableDelta delta =
          SmallRandomDelta(target, side, g, config.delta_rows, rng);
      const size_t base_rows = target.num_rows();
      Status applied = ApplyDeltaToTable(target, delta);
      MC_CHECK(applied.ok()) << applied.ToString();
      Result<RowsDelta> rows = MakeRowsDelta(delta, base_rows);
      MC_CHECK(rows.ok()) << rows.status().ToString();
      row_deltas.push_back(*std::move(rows));
      tables_a.push_back(std::move(table_a));
      tables_b.push_back(std::move(table_b));
    }

    std::shared_ptr<const TokenizedTable> base_plane = TokenizedTable::Build(
        tables_a[0], tables_b[0], plane_options);
    MC_CHECK(base_plane != nullptr && !base_plane->truncated());
    auto base_corpus = std::make_shared<SsjCorpus>(SsjCorpus::Build(
        tables_a[0], tables_b[0], columns, corpus_options));
    MC_CHECK(!base_corpus->truncated());
    JointResult base_joint =
        RunJointTopKJoins(*base_corpus, tree, joint_options);
    MC_CHECK(!base_joint.truncated);
    JointListsSnapshot base_snapshot;
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      base_snapshot.configs.push_back(tree.nodes[i].mask);
      base_snapshot.parents.push_back(tree.nodes[i].parent);
      base_snapshot.seeded.push_back(
          base_joint.per_config[i].seeded_from_parent ? 1 : 0);
      base_snapshot.lists.push_back(base_joint.per_config[i].topk);
    }
    base_snapshot.k = config.k;
    base_snapshot.measure = joint_options.measure;
    base_snapshot.q_used = base_joint.q_used;

    // Rebuild arm: every generation pays a full plane + corpus build and a
    // full re-run of the joint joins. CRCs are taken outside the timer.
    std::vector<uint32_t> rebuilt_plane_crcs, rebuilt_corpus_crcs;
    std::vector<uint32_t> rebuilt_list_crcs;
    {
      double seconds = 0.0;
      for (size_t g = 1; g <= config.generations; ++g) {
        Stopwatch watch;
        std::shared_ptr<const TokenizedTable> plane = TokenizedTable::Build(
            tables_a[g], tables_b[g], plane_options);
        SsjCorpus corpus = SsjCorpus::Build(tables_a[g], tables_b[g],
                                            columns, corpus_options);
        JointResult joint = RunJointTopKJoins(corpus, tree, joint_options);
        seconds += watch.ElapsedSeconds();
        MC_CHECK(plane != nullptr && !plane->truncated());
        MC_CHECK(!corpus.truncated() && !joint.truncated);
        std::vector<std::vector<ScoredPair>> lists;
        for (const ConfigJoinResult& result : joint.per_config) {
          lists.push_back(result.topk);
        }
        rebuilt_plane_crcs.push_back(plane->ContentCrc());
        rebuilt_corpus_crcs.push_back(corpus.ContentCrc());
        rebuilt_list_crcs.push_back(TopKListsCrc(lists));
      }
      rebuild_stage.Record(rep, seconds);
    }

    // Patch arm: the chained incremental path the service runs — each
    // generation patches the previous generation's artifacts in place.
    {
      std::shared_ptr<const TokenizedTable> plane = base_plane;
      std::shared_ptr<SsjCorpus> corpus = base_corpus;
      JointListsSnapshot snapshot = base_snapshot;
      double seconds = 0.0;
      for (size_t g = 1; g <= config.generations; ++g) {
        const RowsDelta& rows = row_deltas[g - 1];
        std::vector<RowId> touched_a, touched_b;
        std::vector<RowId>& touched =
            rows.side == 0 ? touched_a : touched_b;
        touched.assign(rows.touched.begin(), rows.touched.end());
        for (size_t i = 0; i < rows.appended; ++i) {
          touched.push_back(static_cast<RowId>(rows.base_rows + i));
        }
        JointRepairOptions repair_options;
        repair_options.exclude = &dataset.gold;
        JointRepairStats repair_stats;
        Stopwatch watch;
        std::shared_ptr<const TokenizedTable> patched_plane =
            TokenizedTable::ApplyDelta(*plane, tables_a[g], tables_b[g],
                                       rows, plane_options);
        std::optional<SsjCorpus> patched_corpus = SsjCorpus::ApplyDelta(
            *corpus, tables_a[g], tables_b[g], columns, rows,
            corpus_options);
        MC_CHECK(patched_plane != nullptr) << "plane patch failed, gen " << g;
        MC_CHECK(patched_corpus.has_value())
            << "corpus patch failed, gen " << g;
        std::vector<std::vector<ScoredPair>> repaired = RepairJointLists(
            *patched_corpus, snapshot, touched_a, touched_b, repair_options,
            &repair_stats);
        seconds += watch.ElapsedSeconds();
        plane = std::move(patched_plane);
        corpus = std::make_shared<SsjCorpus>(*std::move(patched_corpus));
        snapshot.lists = repaired;
        lists_repaired += repair_stats.configs_repaired;
        lists_rejoined += repair_stats.configs_rejoined;
        // Bit-identity at every generation, not just the last.
        identical = identical &&
                    plane->ContentCrc() == rebuilt_plane_crcs[g - 1] &&
                    corpus->ContentCrc() == rebuilt_corpus_crcs[g - 1] &&
                    TopKListsCrc(repaired) == rebuilt_list_crcs[g - 1];
        if (g == config.generations) {
          plane_crc = plane->ContentCrc();
          corpus_crc = corpus->ContentCrc();
          patched_checksum = TopKListsCrc(repaired);
          rebuilt_checksum = rebuilt_list_crcs[g - 1];
          dead_token_fraction = plane->dead_token_fraction();
        }
      }
      patch_stage.Record(rep, seconds);
    }
  }

  const double patch_speedup = rebuild_stage.best / patch_stage.best;
  const double generations = static_cast<double>(config.generations);

  std::ofstream out(config.path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", config.path.c_str());
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.KV("schema_version", uint64_t{1});
  json.KV("benchmark", "micro_delta");
  json.KV("engine", config.engine);
  json.Key("workload");
  json.BeginObject();
  // Machine context: every record names the core budget and the SIMD level
  // it ran under, so archived numbers are comparable across runners.
  json.KV("cpu_cores",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.KV("simd_level", simd::SimdLevelName(simd::ActiveSimdLevel()));
  json.KV("dataset", config.dataset);
  json.KV("scale", config.scale);
  json.KV("rows_a", uint64_t{dataset.table_a.num_rows()});
  json.KV("rows_b", uint64_t{dataset.table_b.num_rows()});
  json.KV("generations", uint64_t{config.generations});
  json.KV("delta_rows", uint64_t{config.delta_rows});
  json.KV("k", uint64_t{config.k});
  json.KV("threads", uint64_t{config.threads});
  json.KV("repetitions", uint64_t{config.reps});
  json.KV("seed", config.seed);
  json.EndObject();
  json.Key("results");
  json.BeginArray();
  auto stage = [&](const char* name, const StageTiming& timing) {
    json.BeginObject();
    json.KV("name", name);
    json.KV("best_seconds", timing.best);
    json.KV("mean_seconds", timing.mean(config.reps));
    json.KV("generations_per_sec", generations / timing.best);
    json.EndObject();
  };
  stage("rebuild", rebuild_stage);
  stage("patch", patch_stage);
  json.EndArray();
  json.Key("output");
  json.BeginObject();
  json.KV("patch_speedup", patch_speedup);
  json.KV("lists_repaired", uint64_t{lists_repaired});
  json.KV("lists_rejoined", uint64_t{lists_rejoined});
  json.KV("dead_token_fraction", dead_token_fraction);
  char hex[16];
  std::snprintf(hex, sizeof(hex), "%08x", plane_crc);
  json.KV("plane_crc", hex);
  std::snprintf(hex, sizeof(hex), "%08x", corpus_crc);
  json.KV("corpus_crc", hex);
  std::snprintf(hex, sizeof(hex), "%08x", patched_checksum);
  json.KV("topk_checksum", hex);
  std::snprintf(hex, sizeof(hex), "%08x", rebuilt_checksum);
  json.KV("rebuilt_topk_checksum", hex);
  json.KV("identical_to_rebuild", identical);
  json.EndObject();
  json.EndObject();
  out << "\n";
  std::printf(
      "wrote %s (rebuild %.3fs, patch %.3fs, speedup %.2fx, repaired %zu, "
      "rejoined %zu)\n",
      config.path.c_str(), rebuild_stage.best, patch_stage.best,
      patch_speedup, lists_repaired, lists_rejoined);
  if (!identical) {
    std::fprintf(stderr,
                 "PATCH VIOLATION: patched planes/lists differ from a "
                 "from-scratch rebuild\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mc

int main(int argc, char** argv) {
  mc::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--json=")) {
      config.path = v;
    } else if (const char* v = value_of("--engine=")) {
      config.engine = v;
    } else if (const char* v = value_of("--dataset=")) {
      config.dataset = v;
    } else if (const char* v = value_of("--scale=")) {
      config.scale = std::atof(v);
    } else if (const char* v = value_of("--generations=")) {
      config.generations = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--delta-rows=")) {
      config.delta_rows = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--reps=")) {
      config.reps = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--k=")) {
      config.k = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--threads=")) {
      config.threads = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--seed=")) {
      config.seed = static_cast<uint64_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (config.path.empty()) {
    std::fprintf(stderr,
                 "usage: micro_delta --json=PATH [--engine=LABEL] "
                 "[--dataset=NAME] [--scale=F] [--generations=N] "
                 "[--delta-rows=N] [--reps=N] [--k=N] [--threads=N] "
                 "[--seed=S]\n");
    return 2;
  }
  if (config.generations == 0 || config.reps == 0 ||
      config.delta_rows == 0) {
    std::fprintf(stderr, "generations, delta-rows, reps must be >= 1\n");
    return 2;
  }
  return mc::RunJsonBench(config);
}
