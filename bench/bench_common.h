#ifndef MATCHCATCHER_BENCH_BENCH_COMMON_H_
#define MATCHCATCHER_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "datagen/generator.h"
#include "table/table.h"

namespace mc {
namespace bench {

/// Environment knobs shared by every experiment binary:
///   MC_BENCH_SCALE   — multiplies every dataset's default scale (default 1).
///   MC_BENCH_THREADS — worker threads for the joint executor (default: all
///                      cores).
/// Paper-table datasets (A-G, W-A, A-D, F-Z) default to full paper size;
/// the large ones (M1, M2, Papers) default to a fraction that keeps each
/// binary in the minutes range (the printed header states the actual sizes).
double EnvScale();
size_t EnvThreads();

/// MC_BENCH_Q — QJoin q (default 2; 0 = race per §4.1, 1 = TopKJoin).
size_t EnvQ();

/// Default generation scale for a dataset (before MC_BENCH_SCALE).
double DefaultDatasetScale(const std::string& name);

/// Generates a dataset at its default scale times MC_BENCH_SCALE.
datagen::GeneratedDataset LoadDataset(const std::string& name);

/// Prints "dataset: |A|=..., |B|=..., gold=..." to stdout.
void PrintDatasetHeader(const datagen::GeneratedDataset& dataset);

/// Fixed-width cell helpers for table output.
std::string Cell(const std::string& text, size_t width);
std::string Cell(double value, size_t width, int precision = 1);
std::string Cell(size_t value, size_t width);

}  // namespace bench
}  // namespace mc

#endif  // MATCHCATCHER_BENCH_BENCH_COMMON_H_
