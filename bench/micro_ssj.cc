// Google-benchmark microbenchmarks for the SSJ kernels: QJoin vs TopKJoin
// (the paper's §4.1 contribution — deferring score computation), the brute
// force baseline, top-k list maintenance, the flat pair map, and rank
// aggregation.
//
// Besides the interactive google-benchmark mode, `--json=PATH` runs a fixed
// default workload and emits a machine-readable perf record (see
// bench/README.md); bench/BENCH_ssj.json archives the before/after records
// of every QJoin perf PR. Knobs: --scale=F (dataset fraction, default 0.02),
// --reps=N (timed repetitions per point, default 5), --k=N (default 200),
// --engine=LABEL (free-form engine tag embedded in the record).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "bench_json.h"
#include "datagen/generator.h"
#include "rank/rank_aggregation.h"
#include "simd/kernels.h"
#include "ssj/corpus.h"
#include "ssj/topk_join.h"
#include "table/profile.h"
#include "util/crc32.h"
#include "util/flat_hash.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace mc {
namespace {

// Shared fixture data: a music-style corpus (leaked intentionally; static
// lifetime).
const SsjCorpus& MusicCorpus() {
  static const SsjCorpus& corpus = *[] {
    datagen::GeneratedDataset dataset = datagen::GenerateMusic(
        datagen::ScaleDims(datagen::kDimsMusic1, 0.02));  // 2K x 2K.
    std::vector<size_t> columns;
    for (size_t c = 0; c < dataset.table_a.schema().size(); ++c) {
      columns.push_back(c);
    }
    return new SsjCorpus(
        SsjCorpus::Build(dataset.table_a, dataset.table_b, columns));
  }();
  return corpus;
}

void BM_TopKJoinQ(benchmark::State& state) {
  const SsjCorpus& corpus = MusicCorpus();
  ConfigView view = corpus.MakeConfigView(0xFF);
  TopKJoinOptions options;
  options.k = 200;
  options.q = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    TopKList result = RunTopKJoin(view, options);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_TopKJoinQ)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_BruteForceTopK(benchmark::State& state) {
  const SsjCorpus& corpus = MusicCorpus();
  ConfigView view = corpus.MakeConfigView(0xFF);
  for (auto _ : state) {
    TopKList result = BruteForceTopK(view, 200, SetMeasure::kJaccard);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_BruteForceTopK);

void BM_TopKListAdd(benchmark::State& state) {
  Rng rng(1);
  std::vector<ScoredPair> entries;
  for (int i = 0; i < 100000; ++i) {
    entries.push_back(ScoredPair{MakePairId(rng.NextBelow(10000),
                                            rng.NextBelow(10000)),
                                 rng.NextDouble()});
  }
  for (auto _ : state) {
    TopKList list(1000);
    for (const ScoredPair& entry : entries) list.Add(entry.pair, entry.score);
    benchmark::DoNotOptimize(list.KthScore());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(entries.size()));
}
BENCHMARK(BM_TopKListAdd);

void BM_PairFlatMap(benchmark::State& state) {
  Rng rng(2);
  std::vector<PairId> keys;
  for (int i = 0; i < 200000; ++i) {
    keys.push_back(MakePairId(rng.NextBelow(5000), rng.NextBelow(5000)));
  }
  for (auto _ : state) {
    PairFlatMap<uint32_t> map(1 << 16);
    for (PairId key : keys) {
      bool inserted = false;
      ++*map.FindOrInsert(key, 0u, &inserted);
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_PairFlatMap);

void BM_MedRank(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::vector<ScoredPair>> lists;
  for (int l = 0; l < 20; ++l) {
    std::vector<ScoredPair> list;
    for (int i = 0; i < 1000; ++i) {
      list.push_back(ScoredPair{MakePairId(0, rng.NextBelow(5000)),
                                1.0 - i * 1e-4});
    }
    lists.push_back(std::move(list));
  }
  for (auto _ : state) {
    RankAggregator aggregator(lists, 7);
    std::vector<PairId> order = aggregator.MedRank();
    benchmark::DoNotOptimize(order.size());
  }
}
BENCHMARK(BM_MedRank);

void BM_CorpusBuild(benchmark::State& state) {
  datagen::GeneratedDataset dataset = datagen::GenerateMusic(
      datagen::ScaleDims(datagen::kDimsMusic1, 0.02));
  std::vector<size_t> columns;
  for (size_t c = 0; c < dataset.table_a.schema().size(); ++c) {
    columns.push_back(c);
  }
  for (auto _ : state) {
    SsjCorpus corpus =
        SsjCorpus::Build(dataset.table_a, dataset.table_b, columns);
    benchmark::DoNotOptimize(corpus.dictionary().size());
  }
}
BENCHMARK(BM_CorpusBuild);

// --------------------------------------------------------------------------
// Machine-readable perf record (--json mode).
// --------------------------------------------------------------------------

// CRC-32 over the sorted top-k list (pair ids + raw score bits), so two
// engines can be compared for *identical* output, not just equal timing.
uint32_t TopKChecksum(const TopKList& list) {
  uint32_t crc = 0;
  for (const ScoredPair& entry : list.SortedDescending()) {
    crc = Crc32(&entry.pair, sizeof(entry.pair), crc);
    crc = Crc32(&entry.score, sizeof(entry.score), crc);
  }
  return crc;
}

struct JsonBenchConfig {
  std::string path;
  std::string engine = "unspecified";
  double scale = 0.02;
  size_t reps = 5;
  size_t k = 200;
};

// One timed point: RunTopKJoin at (q, shards) on the default workload.
struct JsonBenchResult {
  size_t q = 1;
  size_t shards = 1;
  double best_seconds = 0.0;
  double mean_seconds = 0.0;
  size_t pairs = 0;
  size_t events_popped = 0;
  size_t pairs_scored = 0;
  uint32_t checksum = 0;
};

JsonBenchResult TimeJoin(const ConfigView& view, size_t k, size_t q,
                         size_t shards, size_t reps) {
  JsonBenchResult result;
  result.q = q;
  result.shards = shards;
  double total = 0.0;
  double best = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    TopKJoinOptions options;
    options.k = k;
    options.q = q;
    options.shards = shards;
    TopKJoinStats stats;
    Stopwatch watch;
    TopKList list = RunTopKJoin(view, options, nullptr, nullptr, nullptr,
                                &stats);
    double seconds = watch.ElapsedSeconds();
    total += seconds;
    if (rep == 0 || seconds < best) best = seconds;
    result.pairs = list.size();
    result.events_popped = stats.events_popped;
    result.pairs_scored = stats.pairs_scored;
    result.checksum = TopKChecksum(list);
  }
  result.best_seconds = best;
  result.mean_seconds = total / static_cast<double>(reps);
  return result;
}

int RunJsonBench(const JsonBenchConfig& config) {
  datagen::GeneratedDataset dataset = datagen::GenerateMusic(
      datagen::ScaleDims(datagen::kDimsMusic1, config.scale));
  std::vector<size_t> columns;
  for (size_t c = 0; c < dataset.table_a.schema().size(); ++c) {
    columns.push_back(c);
  }
  SsjCorpus corpus =
      SsjCorpus::Build(dataset.table_a, dataset.table_b, columns);
  ConfigView view = corpus.MakeConfigView(0xFF);

  std::vector<JsonBenchResult> results;
  for (size_t q = 1; q <= 4; ++q) {
    results.push_back(TimeJoin(view, config.k, q, /*shards=*/1, config.reps));
  }
  // One sharded point at the fastest-typical q, as a parallel-mode record.
  // Its score multiset matches the sequential q=2 run, but the checksum may
  // differ: pair identity at the boundary score can vary among equal-score
  // ties (the merged list keeps the k best under the (score, pair) total
  // order; the sequential engine may never score a tied boundary pair its
  // pruning bound already excluded).
  results.push_back(TimeJoin(view, config.k, /*q=*/2, /*shards=*/4,
                             config.reps));

  std::ofstream out(config.path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", config.path.c_str());
    return 1;
  }
  bench::JsonWriter json(out);
  json.BeginObject();
  json.KV("schema_version", uint64_t{1});
  json.KV("benchmark", "micro_ssj_topk_join");
  json.KV("engine", config.engine);
  json.Key("workload");
  json.BeginObject();
  // Machine context: every record names the core budget and the SIMD level
  // it ran under, so archived numbers are comparable across runners.
  json.KV("cpu_cores",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
  json.KV("simd_level", simd::SimdLevelName(simd::ActiveSimdLevel()));
  json.KV("dataset", "music");
  json.KV("scale", config.scale);
  json.KV("rows_a", uint64_t{dataset.table_a.num_rows()});
  json.KV("rows_b", uint64_t{dataset.table_b.num_rows()});
  json.KV("config_mask", uint64_t{0xFF});
  json.KV("measure", "jaccard");
  json.KV("k", uint64_t{config.k});
  json.KV("repetitions", uint64_t{config.reps});
  json.EndObject();
  json.Key("results");
  json.BeginArray();
  for (const JsonBenchResult& result : results) {
    json.BeginObject();
    json.KV("name", "run_topk_join");
    json.KV("q", uint64_t{result.q});
    json.KV("shards", uint64_t{result.shards});
    json.KV("best_seconds", result.best_seconds);
    json.KV("mean_seconds", result.mean_seconds);
    json.KV("pairs", uint64_t{result.pairs});
    json.KV("events_popped", uint64_t{result.events_popped});
    json.KV("pairs_scored", uint64_t{result.pairs_scored});
    char checksum[16];
    std::snprintf(checksum, sizeof(checksum), "%08x", result.checksum);
    json.KV("topk_checksum", checksum);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  out << "\n";
  std::printf("wrote %s\n", config.path.c_str());
  return 0;
}

}  // namespace
}  // namespace mc

int main(int argc, char** argv) {
  mc::JsonBenchConfig config;
  bool json_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--json=")) {
      json_mode = true;
      config.path = v;
    } else if (const char* v = value_of("--engine=")) {
      config.engine = v;
    } else if (const char* v = value_of("--scale=")) {
      config.scale = std::atof(v);
    } else if (const char* v = value_of("--reps=")) {
      config.reps = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--k=")) {
      config.k = static_cast<size_t>(std::atoll(v));
    }
  }
  if (json_mode) return mc::RunJsonBench(config);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
