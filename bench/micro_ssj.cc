// Google-benchmark microbenchmarks for the SSJ kernels: QJoin vs TopKJoin
// (the paper's §4.1 contribution — deferring score computation), the brute
// force baseline, top-k list maintenance, the flat pair map, and rank
// aggregation.

#include <benchmark/benchmark.h>

#include "datagen/generator.h"
#include "rank/rank_aggregation.h"
#include "ssj/corpus.h"
#include "ssj/topk_join.h"
#include "table/profile.h"
#include "util/flat_hash.h"
#include "util/random.h"

namespace mc {
namespace {

// Shared fixture data: a music-style corpus (leaked intentionally; static
// lifetime).
const SsjCorpus& MusicCorpus() {
  static const SsjCorpus& corpus = *[] {
    datagen::GeneratedDataset dataset = datagen::GenerateMusic(
        datagen::ScaleDims(datagen::kDimsMusic1, 0.02));  // 2K x 2K.
    std::vector<size_t> columns;
    for (size_t c = 0; c < dataset.table_a.schema().size(); ++c) {
      columns.push_back(c);
    }
    return new SsjCorpus(
        SsjCorpus::Build(dataset.table_a, dataset.table_b, columns));
  }();
  return corpus;
}

void BM_TopKJoinQ(benchmark::State& state) {
  const SsjCorpus& corpus = MusicCorpus();
  ConfigView view = corpus.MakeConfigView(0xFF);
  TopKJoinOptions options;
  options.k = 200;
  options.q = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    TopKList result = RunTopKJoin(view, options);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_TopKJoinQ)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_BruteForceTopK(benchmark::State& state) {
  const SsjCorpus& corpus = MusicCorpus();
  ConfigView view = corpus.MakeConfigView(0xFF);
  for (auto _ : state) {
    TopKList result = BruteForceTopK(view, 200, SetMeasure::kJaccard);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_BruteForceTopK);

void BM_TopKListAdd(benchmark::State& state) {
  Rng rng(1);
  std::vector<ScoredPair> entries;
  for (int i = 0; i < 100000; ++i) {
    entries.push_back(ScoredPair{MakePairId(rng.NextBelow(10000),
                                            rng.NextBelow(10000)),
                                 rng.NextDouble()});
  }
  for (auto _ : state) {
    TopKList list(1000);
    for (const ScoredPair& entry : entries) list.Add(entry.pair, entry.score);
    benchmark::DoNotOptimize(list.KthScore());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(entries.size()));
}
BENCHMARK(BM_TopKListAdd);

void BM_PairFlatMap(benchmark::State& state) {
  Rng rng(2);
  std::vector<PairId> keys;
  for (int i = 0; i < 200000; ++i) {
    keys.push_back(MakePairId(rng.NextBelow(5000), rng.NextBelow(5000)));
  }
  for (auto _ : state) {
    PairFlatMap<uint32_t> map(1 << 16);
    for (PairId key : keys) {
      bool inserted = false;
      ++*map.FindOrInsert(key, 0u, &inserted);
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_PairFlatMap);

void BM_MedRank(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::vector<ScoredPair>> lists;
  for (int l = 0; l < 20; ++l) {
    std::vector<ScoredPair> list;
    for (int i = 0; i < 1000; ++i) {
      list.push_back(ScoredPair{MakePairId(0, rng.NextBelow(5000)),
                                1.0 - i * 1e-4});
    }
    lists.push_back(std::move(list));
  }
  for (auto _ : state) {
    RankAggregator aggregator(lists, 7);
    std::vector<PairId> order = aggregator.MedRank();
    benchmark::DoNotOptimize(order.size());
  }
}
BENCHMARK(BM_MedRank);

void BM_CorpusBuild(benchmark::State& state) {
  datagen::GeneratedDataset dataset = datagen::GenerateMusic(
      datagen::ScaleDims(datagen::kDimsMusic1, 0.02));
  std::vector<size_t> columns;
  for (size_t c = 0; c < dataset.table_a.schema().size(); ++c) {
    columns.push_back(c);
  }
  for (auto _ : state) {
    SsjCorpus corpus =
        SsjCorpus::Build(dataset.table_a, dataset.table_b, columns);
    benchmark::DoNotOptimize(corpus.dictionary().size());
  }
}
BENCHMARK(BM_CorpusBuild);

}  // namespace
}  // namespace mc

BENCHMARK_MAIN();
