#ifndef MATCHCATCHER_BENCH_PAPER_BLOCKERS_H_
#define MATCHCATCHER_BENCH_PAPER_BLOCKERS_H_

#include <memory>
#include <string>
#include <vector>

#include "blocking/blocker.h"
#include "table/schema.h"

namespace mc {
namespace bench {

/// A labeled blocker from the paper's Table 2 (or §6.2).
struct PaperBlocker {
  std::string label;
  std::shared_ptr<const Blocker> blocker;
};

/// The Table 2 blockers for a dataset ("A-G", "W-A", "A-D", "F-Z", "M1",
/// "M2"), in table order. Table 2 lists *drop* conditions; these are the
/// equivalent keep-form blockers (see DESIGN.md §5).
std::vector<PaperBlocker> PaperBlockersFor(const std::string& dataset,
                                           const Schema& schema);

/// §6.2: the "best possible hash blocker" a well-trained user produced for
/// the dataset — a union of hash blockers over informative key functions.
std::shared_ptr<const Blocker> BestHashBlockerFor(const std::string& dataset,
                                                  const Schema& schema);

/// §6.2: the blocker after the user fixed the problems MatchCatcher
/// surfaced (similarity/edit-distance rules replacing brittle hash rules).
std::shared_ptr<const Blocker> ImprovedBlockerFor(const std::string& dataset,
                                                  const Schema& schema);

}  // namespace bench
}  // namespace mc

#endif  // MATCHCATCHER_BENCH_PAPER_BLOCKERS_H_
