// §6.5 ablation: multiple configurations vs a single configuration.
//
// The paper reports that using the config tree instead of just one config
// (all promising attributes concatenated — the approach of [Song & Heflin
// 2011]) retrieves 10-74% more killed-off matches. We compute M_E (killed
// matches present in E) under the full tree and under the root config only.

#include <iostream>

#include "bench_common.h"
#include "config/config_generator.h"
#include "core/match_catcher.h"
#include "joint/joint_executor.h"
#include "paper_blockers.h"
#include "ssj/corpus.h"
#include "table/profile.h"

namespace mc {
namespace bench {
namespace {

size_t MatchesInE(const JointResult& joint, const CandidateSet& gold,
                  const CandidateSet& blocked) {
  CandidateSet e;
  for (const ConfigJoinResult& config : joint.per_config) {
    for (const ScoredPair& entry : config.topk) e.Add(entry.pair);
  }
  size_t matches = 0;
  for (PairId pair : e) {
    if (gold.Contains(pair) && !blocked.Contains(pair)) ++matches;
  }
  return matches;
}

void RunDataset(const std::string& name, const std::string& blocker_label) {
  datagen::GeneratedDataset dataset = LoadDataset(name);
  Table table_a = dataset.table_a;
  Table table_b = dataset.table_b;
  table_a.SetSchema(InferAttributeTypes(table_a));
  table_b.SetSchema(table_a.schema());

  std::shared_ptr<const Blocker> blocker;
  for (const PaperBlocker& paper_blocker :
       PaperBlockersFor(name, table_a.schema())) {
    if (paper_blocker.label == blocker_label) blocker = paper_blocker.blocker;
  }
  MC_CHECK(blocker != nullptr);
  CandidateSet c = blocker->Run(table_a, table_b);

  Result<PromisingAttributes> attributes =
      SelectPromisingAttributes(table_a, table_b);
  MC_CHECK(attributes.ok()) << attributes.status().ToString();
  SsjCorpus corpus = SsjCorpus::Build(table_a, table_b, attributes->columns);

  JointOptions options;
  options.k = 1000;
  options.q = EnvQ();
  options.num_threads = EnvThreads();
  options.exclude = &c;

  // Full config tree.
  ConfigTree tree = GenerateConfigTree(*attributes);
  JointResult multi = RunJointTopKJoins(corpus, tree, options);

  // Single config: the root only.
  ConfigTree root_only;
  root_only.nodes.push_back(ConfigNode{attributes->FullMask(), -1, {}, 0});
  JointResult single = RunJointTopKJoins(corpus, root_only, options);

  size_t multi_matches = MatchesInE(multi, dataset.gold, c);
  size_t single_matches = MatchesInE(single, dataset.gold, c);
  double gain = single_matches == 0
                    ? (multi_matches > 0 ? 100.0 : 0.0)
                    : 100.0 * (static_cast<double>(multi_matches) -
                               static_cast<double>(single_matches)) /
                          static_cast<double>(single_matches);
  std::cout << Cell(name + "/" + blocker_label, 12)
            << Cell(tree.size(), 9) << Cell(single_matches, 14)
            << Cell(multi_matches, 14) << Cell(gain, 8, 1) << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace mc

int main() {
  std::cout << "=== Ablation (§6.5): multiple configs vs a single config "
               "===\n"
            << mc::bench::Cell("case", 12) << mc::bench::Cell("configs", 9)
            << mc::bench::Cell("ME(single)", 14)
            << mc::bench::Cell("ME(multi)", 14)
            << mc::bench::Cell("gain%", 8) << "\n";
  mc::bench::RunDataset("A-G", "HASH");
  mc::bench::RunDataset("A-G", "OL");
  mc::bench::RunDataset("W-A", "R");
  mc::bench::RunDataset("A-D", "R2");
  mc::bench::RunDataset("F-Z", "OL");
  mc::bench::RunDataset("M1", "HASH");
  std::cout << "\n(paper: multiple configs retrieve 10-74% more matches; "
               "[29]'s single config is the baseline)\n";
  return 0;
}
