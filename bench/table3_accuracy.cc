// Table 3: accuracy of MatchCatcher in retrieving killed-off matches.
//
// For every dataset and Table 2 blocker: |C| (blocker output), M_D (true
// matches killed off), |E| (union of top-k lists), M_E (true matches in E,
// with % of M_D), F (matches retrieved by the Match Verifier run to its
// natural stop with a synthetic oracle user, with % of M_E), and I (number
// of verifier iterations). The top-k module's wall-clock time is appended
// (the §6.4 runtime column).

#include <iostream>

#include "bench_common.h"
#include "blocking/metrics.h"
#include "core/match_catcher.h"
#include "paper_blockers.h"

namespace mc {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  datagen::GeneratedDataset dataset = LoadDataset(name);
  PrintDatasetHeader(dataset);
  std::cout << Cell("Q", 7) << Cell("|C|", 10) << Cell("MD", 7)
            << Cell("|E|", 7) << Cell("ME", 12) << Cell("F", 12)
            << Cell("I", 5) << Cell("topk_s", 8) << "\n";

  for (const PaperBlocker& paper_blocker :
       PaperBlockersFor(name, dataset.table_a.schema())) {
    CandidateSet c =
        paper_blocker.blocker->Run(dataset.table_a, dataset.table_b);
    BlockerMetrics metrics =
        EvaluateBlocking(c, dataset.gold, dataset.table_a.num_rows(),
                         dataset.table_b.num_rows());
    const size_t killed = metrics.killed_matches;  // M_D.

    MatchCatcherOptions options;
    options.joint.k = 1000;
    options.joint.num_threads = EnvThreads();
    options.joint.q = EnvQ();
    Result<DebugSession> session =
        DebugSession::Create(dataset.table_a, dataset.table_b, c, options);
    MC_CHECK(session.ok()) << session.status().ToString();

    // M_E: killed-off gold matches present in E.
    size_t matches_in_e = 0;
    for (PairId pair : session->CandidatePairs()) {
      if (dataset.gold.Contains(pair)) ++matches_in_e;
    }

    GoldOracle oracle(&dataset.gold);
    VerifierResult verification = session->RunVerification(oracle);
    size_t found = verification.confirmed_matches.size();  // F.

    auto percent = [](size_t part, size_t whole) {
      return whole == 0 ? 0.0
                        : 100.0 * static_cast<double>(part) /
                              static_cast<double>(whole);
    };
    std::cout << Cell(paper_blocker.label, 7) << Cell(c.size(), 10)
              << Cell(killed, 7)
              << Cell(session->CandidatePairs().size(), 7)
              << Cell(std::to_string(matches_in_e) + " (" +
                          Cell(percent(matches_in_e, killed), 0, 1) + "%)",
                      12)
              << Cell(std::to_string(found) + " (" +
                          Cell(percent(found, matches_in_e), 0, 1) + "%)",
                      12)
              << Cell(verification.num_iterations(), 5)
              << Cell(session->topk_seconds(), 8, 2) << "\n";
  }
  std::cout << "\n";
}

}  // namespace
}  // namespace bench
}  // namespace mc

int main(int argc, char** argv) {
  std::vector<std::string> datasets;
  for (int i = 1; i < argc; ++i) datasets.push_back(argv[i]);
  if (datasets.empty()) {
    datasets = {"A-G", "W-A", "A-D", "F-Z", "M1", "M2"};
  }
  std::cout << "=== Table 3: accuracy in retrieving the killed-off matches "
               "===\nColumns: blocker Q, |C|, M_D (matches killed), |E|, "
               "M_E (matches in E, % of M_D),\nF (matches retrieved by the "
               "verifier, % of M_E), I (iterations), top-k seconds.\n\n";
  for (const std::string& name : datasets) {
    mc::bench::RunDataset(name);
  }
  return 0;
}
